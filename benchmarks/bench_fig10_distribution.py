"""Regenerates paper Fig. 10 — tile-distribution strategy comparison."""

from repro.experiments import fig10

from .conftest import run_experiment_benchmark


def test_fig10_distribution(benchmark, quick):
    result = run_experiment_benchmark(benchmark, fig10, quick)
    for row in result.rows:
        _n, t_guide, t_cores, t_even, even_ratio, cores_ratio = row
        # Paper shape: guide array wins against the even distribution by
        # a clear margin, and never loses meaningfully to cores-based.
        assert even_ratio > 1.10
        assert cores_ratio > 0.95
