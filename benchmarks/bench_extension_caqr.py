"""Extension bench — column vs CA-QR row-block distribution."""

from repro.experiments import caqr_comparison

from .conftest import run_experiment_benchmark


def test_caqr_comparison(benchmark, quick):
    result = run_experiment_benchmark(benchmark, caqr_comparison, quick)
    # On the degraded network the column scheme's relative position must
    # worsen (its per-panel broadcast pays the slow wire every panel).
    by_link = {}
    for link, n, *_rest, col_over_row, _ in result.rows:
        by_link.setdefault(link, {})[n] = col_over_row
    for n in by_link["PCIe"]:
        assert by_link["slow net"][n] >= by_link["PCIe"][n] * 0.9
