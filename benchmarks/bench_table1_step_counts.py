"""Regenerates paper Table I — tiles operated per step."""

from repro.experiments import table1

from .conftest import run_experiment_benchmark


def test_table1_step_counts(benchmark, quick):
    result = run_experiment_benchmark(benchmark, table1, quick)
    # Paper shape: per panel, T and E tile counts are equal and the
    # update pools scale as M(N-1).
    for row in result.rows:
        _panel, t, e, ut, ue, *_ = row
        assert t == e
        assert ut == ue
