"""Shared benchmark configuration.

Every ``bench_*`` module regenerates one paper table/figure by calling
the matching :mod:`repro.experiments` driver inside pytest-benchmark.
The regenerated rows are attached to the benchmark's ``extra_info`` and
printed, so ``pytest benchmarks/ --benchmark-only -s`` reproduces the
paper's evaluation section in one go.

Set ``REPRO_BENCH_FULL=1`` to run the paper's full sweeps (matrix sizes
up to 16000); the default quick sweeps keep the whole harness under a
few minutes.
"""

from __future__ import annotations

import os

import pytest


def pytest_collection_modifyitems(items):
    # Benchmarks live here; plain `pytest benchmarks/` without
    # --benchmark-only still runs them once each, which is fine.
    pass


@pytest.fixture(scope="session")
def quick() -> bool:
    """False when REPRO_BENCH_FULL=1 (full paper sweeps)."""
    return os.environ.get("REPRO_BENCH_FULL", "") != "1"


def run_experiment_benchmark(benchmark, module, quick: bool):
    """Run one experiment driver under pytest-benchmark and report it."""
    result = benchmark.pedantic(module.run, kwargs={"quick": quick}, rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = result.name
    benchmark.extra_info["paper_expectation"] = result.paper_expectation
    benchmark.extra_info["observations"] = result.observations
    benchmark.extra_info["rows"] = [[str(v) for v in row] for row in result.rows]
    print()
    print(result.to_text())
    return result
