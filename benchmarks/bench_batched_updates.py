"""Batched vs per-tile trailing-matrix update throughput.

Measures the update phase of one panel step (the hot loop of tiled QR:
one UNMQR row plus the full TSMQR trailing block) two ways on the same
data:

* **per-tile** — the classic one-kernel-per-tile loop over a
  list-of-arrays :class:`~repro.tiles.TiledMatrix`;
* **batched** — the coarsened row-panel kernels
  (:func:`~repro.kernels.unmqr_batch` / :func:`~repro.kernels.tsmqr_batch`)
  over row-major tile storage, where each panel is a zero-copy view.

Both paths reuse one :class:`~repro.kernels.Workspace`, so the measured
difference is purely GEMM width and call count.  Updates apply
orthogonal transforms, so repeating them on the same tiles keeps values
bounded and timings data-independent — no per-round copies are timed.

Acceptance gate: ``>= 1.5x`` update-phase speedup at tile size <= 64 on
a >= 8x8 tile grid.  Every invocation (pytest or script) appends its
cases to the ``BENCH_batched_updates.json`` trajectory file at the repo
root, so speedups are tracked across commits::

    python benchmarks/bench_batched_updates.py            # full sweep
    pytest benchmarks/bench_batched_updates.py            # gate case only
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter

import numpy as np

from repro.kernels import Workspace, geqrt, tsmqr, tsmqr_batch, tsqrt, unmqr, unmqr_batch
from repro.observability import append_record
from repro.tiles import TiledMatrix

#: Gate case (grid >= 8x8, tile <= 64) and its required speedup.  Small
#: tiles are where batching matters most (call overhead dominates), and
#: the margin there (~4x) keeps the gate robust to machine noise.
GATE_GRID = 8
GATE_TILE = 16
MIN_SPEEDUP = 1.5
ROUNDS = 7

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_batched_updates.json"


def _setup(t: int, b: int, seed: int = 0):
    """Panel-0 factors plus the trailing submatrix in both storage modes."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((t * b, t * b))
    per_tile = TiledMatrix.from_dense(a, b)
    row_major = TiledMatrix.from_dense(a, b, storage="rowmajor")
    fg = geqrt(per_tile.tile(0, 0).copy())
    fes = []
    top = fg.r.copy()
    for i in range(1, t):
        fe = tsqrt(top, per_tile.tile(i, 0).copy())
        top = fe.r.copy()
        fes.append((i, fe))
    return per_tile, row_major, fg, fes


def _per_tile_pass(tiles: TiledMatrix, fg, fes, ws: Workspace, t: int) -> None:
    for j in range(1, t):
        unmqr(fg, tiles.tile(0, j), workspace=ws)
    for i, fe in fes:
        for j in range(1, t):
            tsmqr(fe, tiles.tile(0, j), tiles.tile(i, j), workspace=ws)


def _batched_pass(tiles: TiledMatrix, fg, fes, ws: Workspace, t: int) -> None:
    panel = tiles.row_panel(0, 1, t)
    unmqr_batch(fg, panel, workspace=ws)
    tiles.scatter_row_panel(0, 1, t, panel)
    for i, fe in fes:
        top = tiles.row_panel(0, 1, t)
        bot = tiles.row_panel(i, 1, t)
        tsmqr_batch(fe, top, bot, workspace=ws)
        tiles.scatter_row_panel(0, 1, t, top)
        tiles.scatter_row_panel(i, 1, t, bot)


def _best_of(fn, rounds: int) -> float:
    fn()  # warm BLAS + workspace before timing
    times = []
    for _ in range(rounds):
        t0 = perf_counter()
        fn()
        times.append(perf_counter() - t0)
    return min(times)


def bench_case(t: int, b: int, rounds: int = ROUNDS, seed: int = 0) -> dict:
    """Time one ``t x t``-grid, ``b x b``-tile update phase both ways."""
    per_tile, row_major, fg, fes = _setup(t, b, seed)
    ws = Workspace()
    per_s = _best_of(lambda: _per_tile_pass(per_tile, fg, fes, ws, t), rounds)
    bat_s = _best_of(lambda: _batched_pass(row_major, fg, fes, ws, t), rounds)
    return {
        "grid": t,
        "tile_size": b,
        "per_tile_seconds": per_s,
        "batched_seconds": bat_s,
        "speedup": per_s / bat_s if bat_s > 0 else float("inf"),
    }


def append_trajectory(cases: list[dict], path: Path = TRAJECTORY_PATH) -> Path:
    """Append one run record to the JSON trajectory file.

    The format is the shared perf-trajectory format — ``tiledqr perf
    --check`` gates the ``speedup`` metric of every recorded case
    against its trajectory baseline.
    """
    return append_record(
        path, "batched_updates", cases, extra={"min_speedup_gate": MIN_SPEEDUP}
    )


def run(cases=((8, 16), (8, 32), (8, 64), (12, 32)), rounds: int = ROUNDS) -> list[dict]:
    """Run a sweep, print it, append to the trajectory file."""
    results = [bench_case(t, b, rounds) for t, b in cases]
    for c in results:
        print(
            f"grid {c['grid']:3d}x{c['grid']:<3d} b={c['tile_size']:<3d} "
            f"per-tile {c['per_tile_seconds'] * 1e3:8.3f} ms  "
            f"batched {c['batched_seconds'] * 1e3:8.3f} ms  "
            f"speedup {c['speedup']:.2f}x"
        )
    out = append_trajectory(results)
    print(f"trajectory appended to {out}")
    return results


def test_batched_update_speedup(benchmark):
    """Gate: batching the gate case is >= 1.5x faster, recorded on disk."""
    case = benchmark.pedantic(
        bench_case, args=(GATE_GRID, GATE_TILE), rounds=1, iterations=1
    )
    benchmark.extra_info.update(case)
    append_trajectory([case])
    print(
        f"\ngrid {case['grid']}x{case['grid']} b={case['tile_size']}: "
        f"per-tile {case['per_tile_seconds'] * 1e3:.3f} ms, "
        f"batched {case['batched_seconds'] * 1e3:.3f} ms, "
        f"speedup {case['speedup']:.2f}x"
    )
    assert case["speedup"] >= MIN_SPEEDUP, (
        f"batched update phase is only {case['speedup']:.2f}x faster "
        f"(gate {MIN_SPEEDUP}x at b={GATE_TILE}, grid {GATE_GRID}x{GATE_GRID})"
    )


if __name__ == "__main__":
    run()
