"""Regenerates paper Table III — predicted vs actual device-count choice."""

from repro.experiments import table3

from .conftest import run_experiment_benchmark


def test_table3_device_count(benchmark, quick):
    result = run_experiment_benchmark(benchmark, table3, quick)
    # Paper's claim: the Alg. 3 predictor picks the actually-fastest
    # configuration at every size.
    assert result.extra["agreements"] == result.extra["total"]
    winners = [row[-2] for row in result.rows]
    assert winners[0] == "1G"
    assert winners[-1] == "3G"
