"""Regenerates paper Fig. 6 — time vs matrix size for 1/2/3 GPUs."""

from repro.experiments import fig6

from .conftest import run_experiment_benchmark


def test_fig6_num_devices(benchmark, quick):
    result = run_experiment_benchmark(benchmark, fig6, quick)
    # Paper shape: the winner progresses 1G -> 2G -> 3G with size.
    winners = [row[-1] for row in result.rows]
    assert winners[0] == "1G"
    assert winners[-1] == "3G"
    assert "2G" in winners
    # Winners never regress (1 -> 2 -> 3).
    order = {"1G": 1, "2G": 2, "3G": 3}
    ranks = [order[w] for w in winners]
    assert ranks == sorted(ranks)
