"""Regenerates paper Fig. 4 — per-step kernel time per device vs tile size.

Also micro-benchmarks the *real* NumPy tile kernels with
pytest-benchmark, giving honest host-side numbers next to the device
models.
"""

import numpy as np
import pytest

from repro.experiments import fig4
from repro.kernels import geqrt, tsmqr, tsqrt, unmqr

from .conftest import run_experiment_benchmark

B = 16


@pytest.fixture(scope="module")
def tiles():
    rng = np.random.default_rng(42)
    a = rng.standard_normal((B, B))
    r1 = np.triu(rng.standard_normal((B, B)))
    a2 = rng.standard_normal((B, B))
    c = rng.standard_normal((B, B))
    return {"a": a, "r1": r1, "a2": a2, "c": c,
            "geqrt": geqrt(a), "tsqrt": tsqrt(r1, a2)}


def test_fig4_model_table(benchmark, quick):
    result = run_experiment_benchmark(benchmark, fig4, quick)
    # Fig. 4 shape: T above the updates everywhere.
    for row in result.rows:
        _dev, _b, t, _e, ut, _ue, *_ = row
        assert t > ut


def test_kernel_geqrt(benchmark, tiles):
    """Triangulation (T) on one 16x16 tile — real NumPy kernel."""
    benchmark(geqrt, tiles["a"])


def test_kernel_unmqr(benchmark, tiles):
    """Update-for-triangulation (UT) on one tile."""
    c = tiles["c"].copy()
    benchmark(unmqr, tiles["geqrt"], c)


def test_kernel_tsqrt(benchmark, tiles):
    """Elimination (E) of one tile pair."""
    benchmark(tsqrt, tiles["r1"], tiles["a2"])


def test_kernel_tsmqr(benchmark, tiles):
    """Update-for-elimination (UE) of one tile pair."""
    c1 = tiles["c"].copy()
    c2 = tiles["c"].copy()
    benchmark(tsmqr, tiles["tsqrt"], c1, c2)
