"""Extension benches — multi-node clusters and out-of-core memory."""

from repro.experiments import ablation_guide_optimality, ablation_scheduler, cluster_scaling, memory_out_of_core

from .conftest import run_experiment_benchmark


def test_cluster_scaling(benchmark, quick):
    result = run_experiment_benchmark(benchmark, cluster_scaling, quick)
    # Column-scheme time must not depend on node count when the
    # optimizer declines remote devices.
    cols = {}
    for net, n, nodes, _p, _remote, t_col, _t_row in result.rows:
        cols.setdefault((net, n), []).append(t_col)
    for (net, n), times in cols.items():
        assert max(times) / min(times) < 1.05, (net, n, times)


def test_memory_out_of_core(benchmark, quick):
    result = run_experiment_benchmark(benchmark, memory_out_of_core, quick)
    fits = [row[1] for row in result.rows]
    passes = [row[4] for row in result.rows]
    assert fits[0] == "yes"
    assert fits[-1] == "NO"
    assert passes[-1] > 1
    assert passes == sorted(passes)


def test_scheduler_policies(benchmark, quick):
    result = run_experiment_benchmark(benchmark, ablation_scheduler, quick)
    for row in result.rows:
        assert row[-1] < 1.25  # policies stay close with a panel engine


def test_guide_optimality(benchmark, quick):
    result = run_experiment_benchmark(benchmark, ablation_guide_optimality, quick)
    for row in result.rows:
        assert row[-1] < 1.15  # pipeline within 15% of best-found
