"""Regenerates paper Fig. 3 (DAG structure) and benchmarks DAG construction."""

from repro.dag import build_dag
from repro.experiments import fig3_dag

from .conftest import run_experiment_benchmark


def test_fig3_dag_structure(benchmark, quick):
    result = run_experiment_benchmark(benchmark, fig3_dag, quick)
    # TT has more tasks but a shorter or equal critical path per grid.
    by_grid = {}
    for grid, elim, tasks, _edges, cp, _width in result.rows:
        by_grid.setdefault(grid, {})[elim] = (tasks, cp)
    for grid, d in by_grid.items():
        assert d["TT"][0] >= d["TS"][0], grid


def test_dag_build_throughput(benchmark):
    """Tasks/second of the dependency-inference builder (20x20 grid)."""
    dag = benchmark(build_dag, 20, 20)
    assert len(dag) == 2870
