"""Ablation bench — TS vs TT elimination orders."""

from repro.experiments import ablation_elimination

from .conftest import run_experiment_benchmark


def test_ablation_elimination(benchmark, quick):
    result = run_experiment_benchmark(benchmark, ablation_elimination, quick)
    assert result.extra["r_equivalence_max_diff"] < 1e-8
    for row in result.rows:
        _n, ts_tasks, _ts_ms, tt_tasks, _tt_ms, _ratio = row
        assert tt_tasks > ts_tasks
