"""Extension benches — precision, Song tuning, and the solve pipeline."""

from repro.experiments import precision, solve_pipeline, song_tuning

from .conftest import run_experiment_benchmark


def test_precision(benchmark, quick):
    result = run_experiment_benchmark(benchmark, precision, quick)
    for row in result.rows:
        _n, err32, err64, *_ = row
        assert 1e-9 < err32 < 1e-5   # genuinely single precision
        assert err64 < 1e-12


def test_song_tuning(benchmark, quick):
    result = run_experiment_benchmark(benchmark, song_tuning, quick)
    by_dev = {row[0]: row for row in result.rows}
    # The GPUs sit at (or within a few percent of) their own optimum at
    # the paper's common b=16 — the paper's equal-tile argument.
    for dev, row in by_dev.items():
        if dev.startswith("gtx"):
            assert row[4] < 1.10, row


def test_solve_pipeline(benchmark, quick):
    result = run_experiment_benchmark(benchmark, solve_pipeline, quick)
    assert 0.3 < result.extra["model_vs_des"] < 3.0
    # Breakeven grows with matrix size (factor n^3 vs chain ~n).
    breaks = [float(row[-1]) for row in result.rows]
    assert breaks == sorted(breaks)


def test_weak_scaling(benchmark, quick):
    from repro.experiments import weak_scaling

    result = run_experiment_benchmark(benchmark, weak_scaling, quick)
    effs = [row[-1] for row in result.rows]
    # Efficiency erodes (the n^2 serial chain) but never collapses; the
    # quick sweep starts from a smaller base where the chain weighs more.
    floor = 0.6 if quick else 0.8
    assert all(e > floor for e in effs), effs


def test_energy_to_solution(benchmark, quick):
    from repro.experiments import energy_to_solution

    result = run_experiment_benchmark(benchmark, energy_to_solution, quick)
    for row in result.rows:
        assert int(row[-1][0]) <= int(row[-2][0])


def test_tall_matrices(benchmark, quick):
    from repro.experiments import tall_matrices

    result = run_experiment_benchmark(benchmark, tall_matrices, quick)
    advantages = [row[-1] for row in result.rows]
    # The row tree's edge grows monotonically with tallness.
    assert all(a <= b * 1.02 for a, b in zip(advantages, advantages[1:]))
    assert advantages[-1] > 1.2
