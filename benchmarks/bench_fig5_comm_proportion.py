"""Regenerates paper Fig. 5 — calculation vs communication proportion."""

from repro.experiments import fig5

from .conftest import run_experiment_benchmark


def test_fig5_comm_proportion(benchmark, quick):
    result = run_experiment_benchmark(benchmark, fig5, quick)
    shares = {row[0]: row[2] for row in result.rows}
    smallest, largest = min(shares), max(shares)
    # Paper shape: small matrices comm-heavy, large ones comm-light.
    assert shares[smallest] > 20.0
    assert shares[largest] < max(15.0, shares[smallest] / 2)
