"""Regenerates paper Fig. 8 — scalability over device subsets."""

from repro.experiments import fig8

from .conftest import run_experiment_benchmark


def test_fig8_scalability(benchmark, quick):
    result = run_experiment_benchmark(benchmark, fig8, quick)
    assert result.extra["monotone"], "adding devices must reduce time"
    # Full-system speedup over CPU-only should be an order of magnitude.
    for row in result.rows:
        cpu_only = float(row[1])
        full = float(row[-1])
        assert cpu_only / full > 8.0
