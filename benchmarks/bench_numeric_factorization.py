"""Benchmarks of the real NumPy tiled-QR factorization (not simulated).

These are honest host-machine numbers for the from-scratch kernels:
end-to-end factorization, implicit Q application, and the triangular
solve.
"""

import numpy as np
import pytest

from repro.runtime import SerialRuntime, ThreadedRuntime, tiled_qr


@pytest.fixture(scope="module")
def matrix256():
    return np.random.default_rng(0).standard_normal((256, 256))


@pytest.fixture(scope="module")
def fact256(matrix256):
    return tiled_qr(matrix256, tile_size=16)


def test_factorize_256_serial(benchmark, matrix256):
    """Full tiled QR, 256x256, b=16 (16x16 grid, 1496 tasks)."""
    f = benchmark(lambda: SerialRuntime().factorize(matrix256.copy(), 16))
    assert f.shape == (256, 256)


def test_factorize_256_tt(benchmark, matrix256):
    """Same matrix with the binary-tree elimination order."""
    f = benchmark(lambda: SerialRuntime("TT").factorize(matrix256.copy(), 16))
    assert f.shape == (256, 256)


def test_factorize_256_threaded(benchmark, matrix256):
    """Thread-pool runtime (dependency-counting dispatch overheads)."""
    f = benchmark(lambda: ThreadedRuntime(num_workers=2).factorize(matrix256.copy(), 16))
    assert f.shape == (256, 256)


def test_factorize_256_big_tiles(benchmark, matrix256):
    """b=64: fewer, fatter tasks — BLAS-3 friendlier on a host CPU."""
    f = benchmark(lambda: SerialRuntime().factorize(matrix256.copy(), 64))
    assert f.shape == (256, 256)


def test_apply_qt(benchmark, fact256, matrix256):
    """Implicit Q^T application to a block of 8 vectors."""
    x = np.random.default_rng(1).standard_normal((256, 8))
    out = benchmark(fact256.apply_qt, x)
    assert out.shape == (256, 8)


def test_solve(benchmark, fact256, matrix256):
    """Triangular solve path (Q^T b then back-substitution)."""
    b = np.random.default_rng(2).standard_normal(256)
    x = benchmark(fact256.solve, b)
    assert np.linalg.norm(matrix256 @ x - b) / np.linalg.norm(b) < 1e-8


def test_geqrt_blocked_vs_unblocked(benchmark):
    """Panel-blocked GEQRT at b=128 (identical factors, fewer Python loops)."""
    from repro.kernels import geqrt

    a = np.random.default_rng(3).standard_normal((128, 128))
    blocked = benchmark(lambda: geqrt(a))
    unblocked = geqrt(a, inner_block=1)
    assert np.allclose(blocked.r, unblocked.r, atol=1e-12)


def test_kernel_scaling_gflops(benchmark):
    """GEQRT sustained rate at b=256 (tracks blocked-panel efficiency)."""
    from repro.kernels import geqrt
    from repro.kernels.flops import flops_geqrt

    a = np.random.default_rng(5).standard_normal((256, 256))
    benchmark(lambda: geqrt(a))
    secs = benchmark.stats["mean"]
    benchmark.extra_info["gflops"] = flops_geqrt(256) / secs / 1e9


def test_multiprocess_runtime_96(benchmark):
    """Distributed-memory (3 worker processes) factorization, 96x96.

    Dominated by IPC on a single host — the point is exercising the
    manager/worker protocol, not speed.
    """
    from repro.core.optimizer import Optimizer
    from repro.devices.registry import paper_testbed
    from repro.runtime.multiprocess import MultiprocessRuntime

    plan = Optimizer(paper_testbed()).plan(matrix_size=96, num_devices=3)
    a = np.random.default_rng(6).standard_normal((96, 96))
    f = benchmark.pedantic(
        lambda: MultiprocessRuntime(plan).factorize(a), rounds=2, iterations=1
    )
    assert f.shape == (96, 96)
