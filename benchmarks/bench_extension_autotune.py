"""Extension bench — host kernel autotuning (Song et al. [7] workflow)."""

from repro.experiments import autotune_host

from .conftest import run_experiment_benchmark


def test_autotune_host(benchmark, quick):
    result = run_experiment_benchmark(benchmark, autotune_host, quick)
    # The fitted device must show the Fig. 4 qualitative profile:
    # panel steps far slower than updates on this host.
    dev = result.extra["device"]
    from repro.dag.tasks import Step

    assert dev.time(Step.T, 16) > 5 * dev.time(Step.UE, 16)
    assert result.extra["tuned_tile_size"] in (8, 16, 24, 32, 48, 64)
