"""Tracing overhead: a disabled tracer must be free on the hot path.

Acceptance gate for the observability layer: ``ThreadedRuntime.factorize``
on a 512 x 512 matrix with a *disabled* tracer attached stays within 3%
of the untraced wall-time (best-of-N to damp scheduler noise, plus a
small absolute epsilon so the gate is meaningful on fast machines).
The enabled-tracer cost is measured too and reported via
``extra_info`` — it is allowed to cost something, disabled tracing is not.
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter

import numpy as np

from repro.observability import Tracer, append_record
from repro.runtime.threaded import ThreadedRuntime

N = 512
TILE = 32
WORKERS = 4
ROUNDS = 5
#: Relative + absolute tolerance of the disabled-tracer gate.
MAX_OVERHEAD = 0.03
ABS_EPS_SECONDS = 0.005

TRAJECTORY_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_observability_overhead.json"
)


def _best_of(fn, rounds: int = ROUNDS) -> float:
    times = []
    for _ in range(rounds):
        t0 = perf_counter()
        fn()
        times.append(perf_counter() - t0)
    return min(times)


def test_disabled_tracer_overhead(benchmark):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((N, N))
    untraced = ThreadedRuntime(WORKERS)
    disabled = ThreadedRuntime(WORKERS, tracer=Tracer(enabled=False))
    enabled_tracer = Tracer()
    enabled = ThreadedRuntime(WORKERS, tracer=enabled_tracer)

    # Warm NumPy/BLAS and the thread machinery before timing anything.
    untraced.factorize(a, TILE)
    disabled.factorize(a, TILE)

    t_untraced = _best_of(lambda: untraced.factorize(a, TILE))
    t_disabled = _best_of(lambda: disabled.factorize(a, TILE))
    t_enabled = _best_of(lambda: enabled.factorize(a, TILE))
    overhead = t_disabled / t_untraced - 1.0

    benchmark.extra_info["n"] = N
    benchmark.extra_info["tile_size"] = TILE
    benchmark.extra_info["untraced_seconds"] = t_untraced
    benchmark.extra_info["disabled_tracer_seconds"] = t_disabled
    benchmark.extra_info["enabled_tracer_seconds"] = t_enabled
    benchmark.extra_info["disabled_overhead"] = overhead
    benchmark.extra_info["enabled_overhead"] = t_enabled / t_untraced - 1.0
    print(
        f"\nuntraced {t_untraced * 1e3:.1f} ms | disabled tracer "
        f"{t_disabled * 1e3:.1f} ms ({overhead:+.2%}) | enabled tracer "
        f"{t_enabled * 1e3:.1f} ms ({t_enabled / t_untraced - 1.0:+.2%})"
    )

    benchmark.pedantic(
        lambda: disabled.factorize(a, TILE), rounds=1, iterations=1
    )

    # Informational trajectory (not gated by `tiledqr perf`; the hard
    # gate is the assert below).
    append_record(
        TRAJECTORY_PATH,
        "observability_overhead",
        [
            {
                "n": N,
                "tile_size": TILE,
                "untraced_seconds": t_untraced,
                "disabled_tracer_seconds": t_disabled,
                "enabled_tracer_seconds": t_enabled,
                "overhead_fraction": overhead,
            }
        ],
    )

    assert t_disabled <= t_untraced * (1.0 + MAX_OVERHEAD) + ABS_EPS_SECONDS, (
        f"disabled tracer costs {overhead:+.2%} "
        f"(budget {MAX_OVERHEAD:.0%} + {ABS_EPS_SECONDS * 1e3:.0f} ms)"
    )
