"""Telemetry overhead: disabled must be free, live must be cheap.

Acceptance gates for the observability layer, on a 512 x 512
``ThreadedRuntime.factorize`` (best-of-N to damp scheduler noise, plus
a small absolute epsilon so the gates are meaningful on fast machines):

* a *disabled* tracer attached to the runtime stays within 3% of the
  untraced wall-time (per-tile tasks, tile 32) — observability must
  cost nothing when off;
* the full *live telemetry* pipeline (TelemetryBus + ProgressTracker +
  StragglerDetector + streaming JSONL sink) stays within 5% on the
  batched-updates path (tile 64) — the production-representative task
  granularity (docs/PERFORMANCE.md), and the event-volume shape the
  multiprocess runtime produces.

Live telemetry costs ~10 us of dispatcher-thread work per event
(publish + fold + encode + write), so its overhead scales with the
*event rate*, not the compute: per-tile streams on toy-sized tiles
publish thousands of sub-millisecond tasks and can cost well over the
budget on a saturated machine.  That fine-grained mode is measured and
reported here too (``mode: "live-per-tile"``) but informationally —
it carries no ``within_budget`` field, so ``tiledqr perf`` never gates
it.

Each gated case appends a ``within_budget`` flag (1.0/0.0) to the
trajectory; ``tiledqr perf --check`` gates on that flag (see ``GATES``
in :mod:`repro.observability.perf`), so a budget-blowing run fails
both here (the assert) and in any later perf check.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.observability import (
    JsonlStreamSink,
    ProgressTracker,
    StragglerDetector,
    TelemetryBus,
    Tracer,
    append_record,
)
from repro.runtime.threaded import ThreadedRuntime

N = 512
TILE = 32
#: Tile size of the gated live-telemetry case (batched updates).
LIVE_TILE = 64
WORKERS = 4
ROUNDS = 5
#: Relative + absolute tolerance of the disabled-tracer gate.
MAX_OVERHEAD = 0.03
#: Relative tolerance of the full live-telemetry pipeline.
MAX_LIVE_OVERHEAD = 0.05
ABS_EPS_SECONDS = 0.005

TRAJECTORY_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_observability_overhead.json"
)


def _best_of(fn, rounds: int = ROUNDS) -> float:
    times = []
    for _ in range(rounds):
        t0 = perf_counter()
        fn()
        times.append(perf_counter() - t0)
    return min(times)


def _live_factorize(a, tile: int, batch: bool, stream: Path) -> int:
    """One factorization with the full live pipeline; returns events written."""
    bus = TelemetryBus()
    ProgressTracker().attach(bus)
    StragglerDetector().attach(bus)
    sink = JsonlStreamSink(stream, append=False).attach(bus)
    try:
        ThreadedRuntime(WORKERS, batch_updates=batch, bus=bus).factorize(a, tile)
    finally:
        sink.close()
        bus.close()
    return sink.written


def test_disabled_tracer_overhead(benchmark):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((N, N))
    untraced = ThreadedRuntime(WORKERS)
    disabled = ThreadedRuntime(WORKERS, tracer=Tracer(enabled=False))
    enabled_tracer = Tracer()
    enabled = ThreadedRuntime(WORKERS, tracer=enabled_tracer)

    # Warm NumPy/BLAS and the thread machinery before timing anything.
    untraced.factorize(a, TILE)
    disabled.factorize(a, TILE)

    # Interleave the variants so slow machine-state drift (frequency
    # scaling, co-tenants) hits every side equally instead of biasing
    # whichever was measured last.
    t_untraced = t_disabled = t_enabled = float("inf")
    for _ in range(2 * ROUNDS):
        t0 = perf_counter()
        untraced.factorize(a, TILE)
        t_untraced = min(t_untraced, perf_counter() - t0)
        t0 = perf_counter()
        disabled.factorize(a, TILE)
        t_disabled = min(t_disabled, perf_counter() - t0)
        t0 = perf_counter()
        enabled.factorize(a, TILE)
        t_enabled = min(t_enabled, perf_counter() - t0)
    overhead = t_disabled / t_untraced - 1.0

    with tempfile.TemporaryDirectory() as tmp:
        stream = Path(tmp) / "live.jsonl"

        # -- gated live case: batched updates, coarse tasks ---------------
        # Interleave baseline/live rounds so slow machine-state drift
        # (frequency scaling, co-tenants) hits both sides equally.
        batched = ThreadedRuntime(WORKERS, batch_updates=True)
        batched.factorize(a, LIVE_TILE)
        live_events = _live_factorize(a, LIVE_TILE, True, stream)  # warm-up
        t_batched = t_live = float("inf")
        for _ in range(2 * ROUNDS):
            t0 = perf_counter()
            batched.factorize(a, LIVE_TILE)
            t_batched = min(t_batched, perf_counter() - t0)
            t0 = perf_counter()
            _live_factorize(a, LIVE_TILE, True, stream)
            t_live = min(t_live, perf_counter() - t0)

        # -- informational live case: per-tile fine-grained stream --------
        t_live_fine = _best_of(lambda: _live_factorize(a, TILE, False, stream))
        fine_events = _live_factorize(a, TILE, False, stream)
    live_overhead = t_live / t_batched - 1.0
    fine_overhead = t_live_fine / t_untraced - 1.0

    disabled_ok = t_disabled <= t_untraced * (1.0 + MAX_OVERHEAD) + ABS_EPS_SECONDS
    live_ok = t_live <= t_batched * (1.0 + MAX_LIVE_OVERHEAD) + ABS_EPS_SECONDS

    benchmark.extra_info["n"] = N
    benchmark.extra_info["tile_size"] = TILE
    benchmark.extra_info["untraced_seconds"] = t_untraced
    benchmark.extra_info["disabled_tracer_seconds"] = t_disabled
    benchmark.extra_info["enabled_tracer_seconds"] = t_enabled
    benchmark.extra_info["live_telemetry_seconds"] = t_live
    benchmark.extra_info["disabled_overhead"] = overhead
    benchmark.extra_info["enabled_overhead"] = t_enabled / t_untraced - 1.0
    benchmark.extra_info["live_overhead"] = live_overhead
    benchmark.extra_info["live_fine_overhead"] = fine_overhead
    print(
        f"\nuntraced {t_untraced * 1e3:.1f} ms | disabled tracer "
        f"{t_disabled * 1e3:.1f} ms ({overhead:+.2%}) | enabled tracer "
        f"{t_enabled * 1e3:.1f} ms ({t_enabled / t_untraced - 1.0:+.2%})"
    )
    print(
        f"live (batched, tile {LIVE_TILE}, {live_events} events): "
        f"{t_batched * 1e3:.1f} -> {t_live * 1e3:.1f} ms ({live_overhead:+.2%}) | "
        f"live (per-tile, tile {TILE}, {fine_events} events): "
        f"{t_untraced * 1e3:.1f} -> {t_live_fine * 1e3:.1f} ms "
        f"({fine_overhead:+.2%}, informational)"
    )

    benchmark.pedantic(
        lambda: disabled.factorize(a, TILE), rounds=1, iterations=1
    )

    # Trajectory: `tiledqr perf --check` gates the within_budget flag
    # per (n, tile_size, mode); the raw seconds ride along as context.
    # The per-tile live case intentionally has no within_budget field.
    append_record(
        TRAJECTORY_PATH,
        "observability_overhead",
        [
            {
                "n": N,
                "tile_size": TILE,
                "mode": "disabled",
                "untraced_seconds": t_untraced,
                "disabled_tracer_seconds": t_disabled,
                "enabled_tracer_seconds": t_enabled,
                "overhead_fraction": overhead,
                "within_budget": 1.0 if disabled_ok else 0.0,
            },
            {
                "n": N,
                "tile_size": LIVE_TILE,
                "mode": "live",
                "untraced_seconds": t_batched,
                "live_telemetry_seconds": t_live,
                "live_events": live_events,
                "overhead_fraction": live_overhead,
                "within_budget": 1.0 if live_ok else 0.0,
            },
            {
                "n": N,
                "tile_size": TILE,
                "mode": "live-per-tile",
                "untraced_seconds": t_untraced,
                "live_telemetry_seconds": t_live_fine,
                "live_events": fine_events,
                "overhead_fraction": fine_overhead,
            },
        ],
    )

    assert disabled_ok, (
        f"disabled tracer costs {overhead:+.2%} "
        f"(budget {MAX_OVERHEAD:.0%} + {ABS_EPS_SECONDS * 1e3:.0f} ms)"
    )
    assert live_ok, (
        f"live telemetry pipeline costs {live_overhead:+.2%} "
        f"(budget {MAX_LIVE_OVERHEAD:.0%} + {ABS_EPS_SECONDS * 1e3:.0f} ms)"
    )
