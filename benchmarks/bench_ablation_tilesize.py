"""Ablation bench — tile-size sweep around the paper's b = 16."""

from repro.experiments import ablation_tilesize

from .conftest import run_experiment_benchmark


def test_ablation_tilesize(benchmark, quick):
    result = run_experiment_benchmark(benchmark, ablation_tilesize, quick)
    for row in result.rows:
        times = row[1:-1]
        assert all(t > 0 for t in times)
        # The optimum is interior-ish: the extremes are not both best.
        best = row[-1]
        assert best in (8, 12, 16, 20, 24, 32, 48)
