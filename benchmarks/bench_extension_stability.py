"""Extension bench — QR variant stability vs conditioning."""

import math

from repro.experiments import stability

from .conftest import run_experiment_benchmark


def test_stability_of_qr_variants(benchmark, quick):
    result = run_experiment_benchmark(benchmark, stability, quick)
    for row in result.rows:
        _cond, hh, cq, _cq2, mgs = row
        assert hh < 1e-12          # Householder flat at machine precision
        assert cq > hh or math.isinf(cq)
        assert mgs >= hh
