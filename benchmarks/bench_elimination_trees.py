"""End-to-end elimination-tree comparison on a tall 16x4 tile grid.

The claim under test (arXiv:1104.4475, "Tiled QR factorization
algorithms"): on tall-skinny grids the within-panel reduction tree —
not kernel speed — bounds throughput, because FLAT's sequential TSQRT
chain puts O(p) merges on the critical path while BINARY / FIBONACCI /
GREEDY need only O(log p) rounds.

Two measurements per tree:

* **Modelled end-to-end makespan** (gated): the full 16x4 DAG is
  dispatched highest-bottom-level-rank-first onto a pool of 16 worker
  slots — byte-for-byte the priority rule
  :class:`~repro.runtime.threaded.ThreadedRuntime` uses — with each
  kernel priced by the PLASMA flop counts
  (:func:`~repro.dag.analysis.task_weight_model`, TTQRT ``4/3 b^3`` vs
  TSQRT ``7/3 b^3``, ...).  This is deterministic and machine
  independent; on a host with enough cores the threaded runtime's
  wall-clock ratio converges to it.  Wall-clock itself cannot carry the
  gate: CI containers (including the one this trajectory was seeded on)
  often expose a single core, where *no* tree can beat another by
  parallelism and total flops alone decide.
* **Real threaded run** (informational): every tree is also factorized
  for real end to end under ``ThreadedRuntime`` and its wall seconds
  and residual recorded, so the trajectory still tracks genuine
  execution and the numerics of every tree are exercised each run.

Gates, enforced here and via ``tiledqr perf --check`` against the
``BENCH_elimination_trees.json`` trajectory:

* best of GREEDY / FIBONACCI modelled speedup over FLAT ``>= 1.4x``;
* analytically, flop-weighted critical path GREEDY <= BINARY <= FLAT.

Run ``python benchmarks/bench_elimination_trees.py`` for the sweep, or
``pytest benchmarks/bench_elimination_trees.py`` for the gate case.
"""

from __future__ import annotations

import heapq
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.dag import (
    build_dag,
    bottom_level_ranks,
    critical_path_length,
    task_weight_model,
    tree_names,
)
from repro.observability import append_record
from repro.runtime.threaded import ThreadedRuntime

GRID_ROWS, GRID_COLS = 16, 4
TILE_SIZE = 16
#: Worker-slot pool for the modelled schedule.  One slot per panel row:
#: tall-skinny grids are exactly the regime where the runtime is
#: deployed wide, and fewer slots than merge parallelism would measure
#: work-boundedness, not the tree.
SLOTS = 16
#: Worker count for the real (informational) threaded runs — kept at
#: the runtime default so CI containers are not oversubscribed.
REAL_WORKERS = 4
MIN_SPEEDUP = 1.4

TRAJECTORY_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_elimination_trees.json"
)


def priority_makespan(dag, weight, slots: int) -> float:
    """Makespan of the highest-rank-first list schedule on ``slots``.

    The dispatch rule is the runtimes' one: among ready tasks, pop the
    largest bottom-level rank (ties broken by task sort key, like the
    threaded runtime's heap).
    """
    ranks = bottom_level_ranks(dag, weight)
    ndep = {t: len(dag.preds[t]) for t in dag.tasks}
    ready = [(-ranks[t], t.sort_key(), t) for t in dag.tasks if not ndep[t]]
    heapq.heapify(ready)
    running: list = []
    now, free = 0.0, slots
    while ready or running:
        while ready and free:
            _, _, t = heapq.heappop(ready)
            heapq.heappush(running, (now + weight(t), t.sort_key(), t))
            free -= 1
        now, _, t = heapq.heappop(running)
        free += 1
        for s in dag.succs[t]:
            ndep[s] -= 1
            if ndep[s] == 0:
                heapq.heappush(ready, (-ranks[s], s.sort_key(), s))
    return now


def _real_run(tree: str, a: np.ndarray) -> tuple[float, float]:
    """Factorize ``a`` for real; returns (wall seconds, residual)."""
    t0 = perf_counter()
    fact = ThreadedRuntime(REAL_WORKERS, tree).factorize(a.copy(), TILE_SIZE)
    wall = perf_counter() - t0
    q, r = fact.q_dense(), fact.r_dense()
    residual = float(np.linalg.norm(q @ r - a) / np.linalg.norm(a))
    return wall, residual


def bench_cases(seed: int = 0) -> list[dict]:
    """One case per registered tree on the 16x4 gate grid."""
    weight = task_weight_model(TILE_SIZE)
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((GRID_ROWS * TILE_SIZE, GRID_COLS * TILE_SIZE))
    flat_makespan = None
    cases = []
    for name in tree_names():
        dag = build_dag(GRID_ROWS, GRID_COLS, name)
        makespan = priority_makespan(dag, weight, SLOTS)
        if name == "flat":
            flat_makespan = makespan
        wall, residual = _real_run(name, a)
        cases.append(
            {
                "tree": name,
                "grid_rows": GRID_ROWS,
                "grid_cols": GRID_COLS,
                "tile_size": TILE_SIZE,
                "slots": SLOTS,
                "modelled_makespan": makespan,
                "speedup": flat_makespan / makespan,
                "weighted_critical_path": critical_path_length(dag, weight=weight),
                "tasks": len(dag.tasks),
                "real_wall_seconds": wall,
                "real_residual": residual,
            }
        )
    return cases


def check_gates(cases: list[dict]) -> None:
    """Assert the two acceptance properties on a finished sweep."""
    by_tree = {c["tree"]: c for c in cases}
    cp = {t: c["weighted_critical_path"] for t, c in by_tree.items()}
    assert cp["greedy"] <= cp["binary"] <= cp["flat"], (
        f"critical-path ordering violated: greedy={cp['greedy']:.4g} "
        f"binary={cp['binary']:.4g} flat={cp['flat']:.4g}"
    )
    best = max(by_tree["greedy"]["speedup"], by_tree["fibonacci"]["speedup"])
    assert best >= MIN_SPEEDUP, (
        f"best of greedy/fibonacci is only {best:.2f}x vs flat on the "
        f"{GRID_ROWS}x{GRID_COLS} grid (gate {MIN_SPEEDUP}x, {SLOTS} slots)"
    )
    for c in cases:
        assert c["real_residual"] < 1e-12, (
            f"{c['tree']}: threaded run lost accuracy "
            f"(residual {c['real_residual']:.2e})"
        )


def append_trajectory(cases: list[dict], path: Path = TRAJECTORY_PATH) -> Path:
    return append_record(
        path,
        "elimination_trees",
        cases,
        extra={"min_speedup_gate": MIN_SPEEDUP, "slots": SLOTS},
    )


def run(seed: int = 0) -> list[dict]:
    """Run the sweep, print it, gate it, append to the trajectory."""
    cases = bench_cases(seed)
    for c in cases:
        # Modelled values are in the weight model's unit (plain flops
        # when no profile is fitted) — only the ratio is meaningful.
        print(
            f"{c['tree']:10s} modelled {c['modelled_makespan']:10.4g} "
            f"(speedup {c['speedup']:4.2f}x)  cp {c['weighted_critical_path']:.3g}  "
            f"{c['tasks']:3d} tasks  real {c['real_wall_seconds'] * 1e3:8.2f} ms "
            f"residual {c['real_residual']:.2e}"
        )
    check_gates(cases)
    out = append_trajectory(cases)
    print(f"trajectory appended to {out}")
    return cases


def test_elimination_tree_speedup(benchmark):
    """Gate: log-depth trees beat FLAT >= 1.4x on the tall grid."""
    cases = benchmark.pedantic(bench_cases, rounds=1, iterations=1)
    benchmark.extra_info["cases"] = cases
    check_gates(cases)
    append_trajectory(cases)
    best = max(
        c["speedup"] for c in cases if c["tree"] in ("greedy", "fibonacci")
    )
    print(f"\nbest greedy/fibonacci speedup vs flat: {best:.2f}x (gate {MIN_SPEEDUP}x)")


if __name__ == "__main__":
    run()
