"""Per-kernel backend throughput vs the reference implementation.

Times each registered kernel backend against ``reference`` on the four
hot kernels (GEQRT, TSQRT, UNMQR, TSMQR) across small tile sizes and
records the per-case ``speedup = reference_seconds / backend_seconds``.
Small tiles are where backends differentiate: call overhead dominates,
which is exactly what a jitted backend removes and what the
cache-blocked backend trades for GEMM locality on wide panels.

Acceptance gate (compiled backends only): ``>= 1.3x`` over reference on
GEQRT and TSQRT at ``b <= 32``.  Interpreted backends (``blocked``) are
recorded but not gated — their speedup hovers around 1.0 on small tiles
by design, and ``tiledqr perf --check`` tracks that trajectory instead.
When no compiled backend is registered (numba absent, as in the default
container) the gate test skips rather than fails: graceful degradation
extends to the benchmark suite.

Every invocation appends its cases to ``BENCH_backend_kernels.json`` at
the repo root::

    python benchmarks/bench_backend_kernels.py     # full sweep
    pytest benchmarks/bench_backend_kernels.py     # gate cases only
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter

import numpy as np
import pytest

from repro.kernels import Workspace
from repro.kernels.backends import (
    DEFAULT_BACKEND,
    available_backends,
    get_backend,
)
from repro.observability import append_record

KERNELS = ("GEQRT", "TSQRT", "UNMQR", "TSMQR")
TILE_SIZES = (8, 16, 32)
GATE_KERNELS = ("GEQRT", "TSQRT")
MIN_COMPILED_SPEEDUP = 1.3
ROUNDS = 7
#: Kernel-call repetitions per timed round, so a round is long enough
#: for ``perf_counter`` resolution at b=8.
CALLS_PER_ROUND = 50

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_backend_kernels.json"


def _kernel_thunk(backend, kernel: str, b: int, seed: int = 0):
    """A zero-argument callable running one ``kernel`` call at size ``b``.

    Inputs are preallocated outside the thunk; update kernels run in
    place on the same tiles (orthogonal transforms keep values bounded),
    so the timing covers kernel work only.
    """
    reference = get_backend(DEFAULT_BACKEND)
    rng = np.random.default_rng(seed)
    ws = Workspace()
    if kernel == "GEQRT":
        a = rng.standard_normal((b, b))
        return lambda: backend.geqrt(a)
    if kernel == "TSQRT":
        r1 = np.triu(rng.standard_normal((b, b)))
        a2 = rng.standard_normal((b, b))
        return lambda: backend.tsqrt(r1, a2)
    if kernel == "UNMQR":
        f = reference.geqrt(rng.standard_normal((b, b)))
        c = rng.standard_normal((b, 4 * b))
        return lambda: backend.unmqr(f, c, workspace=ws)
    if kernel == "TSMQR":
        f = reference.tsqrt(
            np.triu(rng.standard_normal((b, b))), rng.standard_normal((b, b))
        )
        c1 = rng.standard_normal((b, 4 * b))
        c2 = rng.standard_normal((b, 4 * b))
        return lambda: backend.tsmqr(f, c1, c2, workspace=ws)
    raise ValueError(f"unknown kernel {kernel!r}")


def _best_of(fn, rounds: int) -> float:
    """Best per-call seconds over ``rounds`` timed batches."""
    fn()  # warm BLAS, workspace, and any JIT compilation before timing
    times = []
    for _ in range(rounds):
        t0 = perf_counter()
        for _ in range(CALLS_PER_ROUND):
            fn()
        times.append((perf_counter() - t0) / CALLS_PER_ROUND)
    return min(times)


def bench_case(backend_name: str, kernel: str, b: int, rounds: int = ROUNDS) -> dict:
    """Time one backend/kernel/tile-size case against reference."""
    be_s = _best_of(_kernel_thunk(get_backend(backend_name), kernel, b), rounds)
    ref_s = _best_of(_kernel_thunk(get_backend(DEFAULT_BACKEND), kernel, b), rounds)
    return {
        "backend": backend_name,
        "kernel": kernel,
        "tile_size": b,
        "backend_seconds": be_s,
        "reference_seconds": ref_s,
        "speedup": ref_s / be_s if be_s > 0 else float("inf"),
    }


def append_trajectory(cases: list[dict], path: Path = TRAJECTORY_PATH) -> Path:
    """Append one run record to the shared perf-trajectory format."""
    return append_record(
        path,
        "backend_kernels",
        cases,
        extra={"min_compiled_speedup_gate": MIN_COMPILED_SPEEDUP},
    )


def compiled_backends() -> list[str]:
    return [n for n in available_backends() if get_backend(n).compiled]


def run(rounds: int = ROUNDS) -> list[dict]:
    """Sweep every registered backend, print, append to the trajectory."""
    results = [
        bench_case(name, kernel, b, rounds)
        for name in available_backends()
        if name != DEFAULT_BACKEND
        for kernel in KERNELS
        for b in TILE_SIZES
    ]
    for c in results:
        print(
            f"{c['backend']:10s} {c['kernel']:6s} b={c['tile_size']:<3d} "
            f"ref {c['reference_seconds'] * 1e6:8.2f} us  "
            f"backend {c['backend_seconds'] * 1e6:8.2f} us  "
            f"speedup {c['speedup']:.2f}x"
        )
    if not results:
        print("only the reference backend is registered; nothing to compare")
        return results
    out = append_trajectory(results)
    print(f"trajectory appended to {out}")
    return results


def test_compiled_backend_factorization_speedup(benchmark):
    """Gate: compiled backends beat reference >= 1.3x on GEQRT/TSQRT, b<=32."""
    compiled = compiled_backends()
    if not compiled:
        pytest.skip("no compiled backend registered (numba not installed)")

    def gate_cases():
        return [
            bench_case(name, kernel, b)
            for name in compiled
            for kernel in GATE_KERNELS
            for b in TILE_SIZES
        ]

    cases = benchmark.pedantic(gate_cases, rounds=1, iterations=1)
    benchmark.extra_info["cases"] = cases
    append_trajectory(cases)
    slow = [c for c in cases if c["speedup"] < MIN_COMPILED_SPEEDUP]
    for c in cases:
        print(
            f"\n{c['backend']} {c['kernel']} b={c['tile_size']}: "
            f"{c['speedup']:.2f}x vs reference"
        )
    assert not slow, (
        f"compiled backend below the {MIN_COMPILED_SPEEDUP}x gate: "
        + ", ".join(
            f"{c['backend']}/{c['kernel']}/b={c['tile_size']}={c['speedup']:.2f}x"
            for c in slow
        )
    )


def test_interpreted_backends_recorded(benchmark):
    """Non-compiled backends are tracked (trajectory), never gated here."""
    names = [
        n for n in available_backends()
        if n != DEFAULT_BACKEND and not get_backend(n).compiled
    ]
    if not names:
        pytest.skip("no interpreted non-reference backend registered")
    cases = benchmark.pedantic(
        lambda: [bench_case(n, "TSMQR", 16, rounds=3) for n in names],
        rounds=1, iterations=1,
    )
    benchmark.extra_info["cases"] = cases
    append_trajectory(cases)
    for c in cases:
        assert c["speedup"] > 0


if __name__ == "__main__":
    run()
