"""Regenerates paper Fig. 9 — main-computing-device selection."""

from repro.experiments import fig9

from .conftest import run_experiment_benchmark


def test_fig9_main_selection(benchmark, quick):
    result = run_experiment_benchmark(benchmark, fig9, quick)
    assert result.extra["selected_main"] == "gtx580-0"
    for row in result.rows:
        _n, t580, t680, _tnone, tcpu, ratio680, _ratio_none = row
        # Paper shape: GTX580 < GTX680 << CPU as main.
        assert t580 < t680 < tcpu
        assert tcpu / t580 > 3.0
        assert 1.0 < ratio680 < 1.5
