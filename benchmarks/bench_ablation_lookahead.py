"""Ablation bench — per-iteration runtime vs asynchronous lookahead."""

from repro.experiments import ablation_lookahead

from .conftest import run_experiment_benchmark


def test_ablation_lookahead(benchmark, quick):
    result = run_experiment_benchmark(benchmark, ablation_lookahead, quick)
    for row in result.rows:
        _n, _t_iter, _t_look, _t_ideal, iter_over_look, iter_over_ideal = row
        assert iter_over_look >= 0.95   # lookahead never loses
        assert iter_over_ideal >= iter_over_look - 1e-9
