"""The paper's headline claims, asserted end to end.

These are the reproduction's acceptance tests: each corresponds to a
table or figure and checks the *shape* — who wins, by roughly what
factor, where the crossovers fall.
"""

import pytest

from repro.baselines import cores_based_plan, even_plan, forced_main_plan, no_main_plan
from repro.core.main_device import select_main_device
from repro.sim import simulate_iteration_level


def _makespan(qr_sys, optimizer, topology, n, **kw):
    plan = optimizer.plan(matrix_size=n, **kw)
    g = -(-n // 16)
    return simulate_iteration_level(plan, g, g, qr_sys, topology).makespan


class TestTable3Crossovers:
    """1 GPU optimal small, 2 mid, 3 large; predictor agrees (Table III)."""

    def test_one_gpu_wins_small(self, system, topology, optimizer):
        for n in (160, 320, 480):
            times = {
                p: _makespan(system, optimizer, topology, n, num_devices=p)
                for p in (1, 2, 3)
            }
            assert min(times, key=times.get) == 1, f"n={n}: {times}"

    def test_two_gpus_win_midrange(self, system, topology, optimizer):
        for n in (800, 1600, 2400):
            times = {
                p: _makespan(system, optimizer, topology, n, num_devices=p)
                for p in (1, 2, 3)
            }
            assert min(times, key=times.get) == 2, f"n={n}: {times}"

    def test_three_gpus_win_large(self, system, topology, optimizer):
        for n in (2880, 3200, 4000):
            times = {
                p: _makespan(system, optimizer, topology, n, num_devices=p)
                for p in (1, 2, 3)
            }
            assert min(times, key=times.get) == 3, f"n={n}: {times}"

    def test_predictor_agrees_with_actual(self, system, topology, optimizer):
        for n in (320, 800, 1600, 3200):
            plans = {p: optimizer.plan(matrix_size=n, num_devices=p) for p in (1, 2, 3)}
            actual = {
                p: _makespan(system, optimizer, topology, n, num_devices=p)
                for p in (1, 2, 3)
            }
            predicted = {
                p: plans[p].notes["predicted"][p - 1].total for p in (1, 2, 3)
            }
            assert min(actual, key=actual.get) == min(predicted, key=predicted.get), n


class TestFig9MainSelection:
    """GTX580 is selected and beats the alternatives (Fig. 9)."""

    def test_alg2_selects_gtx580(self, system):
        assert select_main_device(system, 200, 200, 16) == "gtx580-0"

    @pytest.mark.parametrize("n", [3200, 6400])
    def test_gtx580_beats_gtx680_as_main(self, system, topology, n):
        g = n // 16
        t580 = simulate_iteration_level(
            forced_main_plan(system, "gtx580-0", g, g, 16), g, g, system, topology
        ).makespan
        t680 = simulate_iteration_level(
            forced_main_plan(system, "gtx680-0", g, g, 16), g, g, system, topology
        ).makespan
        assert t580 < t680
        # Paper: ~13% at 16000; we accept a 3%..40% band.
        assert 1.03 < t680 / t580 < 1.40

    def test_cpu_as_main_is_catastrophic(self, system, topology):
        g = 200
        t580 = simulate_iteration_level(
            forced_main_plan(system, "gtx580-0", g, g, 16), g, g, system, topology
        ).makespan
        tcpu = simulate_iteration_level(
            forced_main_plan(system, "cpu-0", g, g, 16), g, g, system, topology
        ).makespan
        assert tcpu > 4.0 * t580

    def test_no_main_not_better_than_selected_by_much(self, system, topology):
        g = 400
        t580 = simulate_iteration_level(
            forced_main_plan(system, "gtx580-0", g, g, 16), g, g, system, topology
        ).makespan
        tnone = simulate_iteration_level(
            no_main_plan(system, g, g, 16), g, g, system, topology
        ).makespan
        # Paper: no-main is ~5% slower; our model shows a tie. Either
        # way the optimized selection must not lose meaningfully.
        assert tnone > 0.9 * t580


class TestFig10Distribution:
    """Guide array beats the even distribution clearly (Fig. 10)."""

    @pytest.mark.parametrize("n", [3200, 6400])
    def test_guide_beats_even(self, system, topology, optimizer, n):
        g = n // 16
        gpus = [d.device_id for d in system.gpus()]
        t_guide = simulate_iteration_level(
            optimizer.plan(matrix_size=n, num_devices=4), g, g, system, topology
        ).makespan
        t_even = simulate_iteration_level(
            even_plan(system, "gtx580-0", participants=gpus), g, g, system, topology
        ).makespan
        # Paper: 21% at 16000. Require at least 10%.
        assert t_even > 1.10 * t_guide

    def test_guide_not_worse_than_cores(self, system, topology, optimizer):
        n, g = 6400, 400
        t_guide = simulate_iteration_level(
            optimizer.plan(matrix_size=n, num_devices=4), g, g, system, topology
        ).makespan
        t_cores = simulate_iteration_level(
            cores_based_plan(system, "gtx580-0"), g, g, system, topology
        ).makespan
        assert t_guide < 1.05 * t_cores


class TestFig8Scalability:
    """Adding devices reduces time for every size (Fig. 8)."""

    @pytest.mark.parametrize("n", [3200, 6400])
    def test_monotone_speedup(self, system, topology, n):
        from repro.core.optimizer import Optimizer

        g = n // 16
        times = []
        for ids in (
            ["cpu-0"],
            ["cpu-0", "gtx580-0"],
            ["cpu-0", "gtx580-0", "gtx680-0"],
            ["cpu-0", "gtx580-0", "gtx680-0", "gtx680-1"],
        ):
            sub = system.subset(ids)
            from repro.comm.topology import pcie_star

            top = pcie_star(sub.devices)
            plan = Optimizer(sub, top).plan(matrix_size=n, num_devices=len(ids))
            times.append(simulate_iteration_level(plan, g, g, sub, top).makespan)
        assert all(a > b for a, b in zip(times, times[1:])), times

    def test_cpu_only_3200_magnitude(self, system, topology):
        """Paper: 19.9 s. Our calibration lands within a small factor."""
        from repro.comm.topology import pcie_star
        from repro.core.optimizer import Optimizer

        sub = system.subset(["cpu-0"])
        top = pcie_star(sub.devices)
        plan = Optimizer(sub, top).plan(matrix_size=3200, num_devices=1)
        t = simulate_iteration_level(plan, 200, 200, sub, top).makespan
        assert 10.0 < t < 80.0


class TestFig5CommFraction:
    """Communication share shrinks with matrix size (Fig. 5)."""

    def test_small_matrices_comm_heavy(self, system, topology, optimizer):
        plan = optimizer.plan(matrix_size=320, num_devices=4)
        rep = simulate_iteration_level(plan, 20, 20, system, topology)
        assert rep.comm_fraction > 0.20

    def test_large_matrices_comm_light(self, system, topology, optimizer):
        plan = optimizer.plan(matrix_size=3840, num_devices=4)
        rep = simulate_iteration_level(plan, 240, 240, system, topology)
        assert rep.comm_fraction < 0.10

    def test_fraction_monotone_decreasing_overall(self, system, topology, optimizer):
        fracs = []
        for n in (320, 960, 1920, 3840):
            plan = optimizer.plan(matrix_size=n, num_devices=4)
            g = n // 16
            fracs.append(
                simulate_iteration_level(plan, g, g, system, topology).comm_fraction
            )
        assert all(a > b for a, b in zip(fracs, fracs[1:])), fracs


class TestGoldenCrossovers:
    """The exact Table III crossover positions — the reproduction's
    flagship result. Full 25-size sweep (a few seconds)."""

    def test_exact_crossovers_640_and_2720(self, system, topology, optimizer):
        best = {}
        for n in range(160, 4001, 160):
            times = {
                p: _makespan(system, optimizer, topology, n, num_devices=p)
                for p in (1, 2, 3)
            }
            best[n] = min(times, key=times.get)
        switches = [
            n for n in sorted(best) if n > 160 and best[n] != best[n - 160]
        ]
        assert switches == [640, 2720], f"crossovers moved: {switches}"
        assert best[160] == 1 and best[4000] == 3

    def test_predictor_agrees_at_all_25_sizes(self, system, topology, optimizer):
        for n in range(160, 4001, 160):
            actual = {
                p: _makespan(system, optimizer, topology, n, num_devices=p)
                for p in (1, 2, 3)
            }
            plans = {
                p: optimizer.plan(matrix_size=n, num_devices=p) for p in (1, 2, 3)
            }
            predicted = {
                p: plans[p].notes["predicted"][p - 1].total for p in (1, 2, 3)
            }
            assert min(actual, key=actual.get) == min(predicted, key=predicted.get), n
