"""Tests for Givens rotations, QR updating and streaming least squares."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KernelError, ShapeError
from repro.kernels.givens import GivensRotation, make_givens, qr_delete_row, qr_insert_row
from repro.linalg.streaming import StreamingLeastSquares


class TestGivens:
    def test_zeroes_second_component(self):
        g = make_givens(3.0, 4.0)
        v = np.array([[3.0], [4.0]])
        g.apply_rows(v, 0, 1)
        assert v[0, 0] == pytest.approx(5.0)
        assert v[1, 0] == pytest.approx(0.0, abs=1e-15)
        assert g.r == pytest.approx(5.0)

    def test_orthogonality(self):
        g = make_givens(1.2, -0.7)
        m = np.array([[g.c, g.s], [-g.s, g.c]])
        np.testing.assert_allclose(m @ m.T, np.eye(2), atol=1e-15)

    def test_degenerate_cases(self):
        assert make_givens(5.0, 0.0) == GivensRotation(1.0, 0.0, 5.0)
        g = make_givens(0.0, 5.0)
        assert g.c == 0.0 and g.s == 1.0

    @given(st.floats(-1e8, 1e8), st.floats(-1e8, 1e8))
    @settings(max_examples=60, deadline=None)
    def test_property_rotation(self, a, b):
        g = make_givens(a, b)
        # Unit determinant and correct action.
        assert g.c * g.c + g.s * g.s == pytest.approx(1.0, rel=1e-12)
        assert g.c * a + g.s * b == pytest.approx(g.r, rel=1e-9, abs=1e-9)
        assert -g.s * a + g.c * b == pytest.approx(0.0, abs=1e-6 * max(abs(a), abs(b), 1.0))


class TestQRInsertDelete:
    def test_insert_matches_refactorization(self, rng):
        a = rng.standard_normal((20, 6))
        r = np.linalg.qr(a, mode="r")
        v = rng.standard_normal(6)
        r2, rots = qr_insert_row(r, v)
        r_ref = np.linalg.qr(np.vstack([a, v]), mode="r")
        np.testing.assert_allclose(np.abs(r2), np.abs(r_ref), atol=1e-10)
        assert len(rots) == 6

    @pytest.mark.parametrize("i", [0, 7, 19])
    def test_delete_matches_refactorization(self, rng, i):
        a = rng.standard_normal((20, 6))
        r = np.linalg.qr(a, mode="r")
        r2, _ = qr_delete_row(r, a[i])
        r_ref = np.linalg.qr(np.delete(a, i, axis=0), mode="r")
        np.testing.assert_allclose(np.abs(r2), np.abs(r_ref), atol=1e-9)

    def test_insert_delete_roundtrip(self, rng):
        a = rng.standard_normal((15, 5))
        r = np.linalg.qr(a, mode="r")
        v = rng.standard_normal(5)
        r2, _ = qr_insert_row(r, v)
        r3, _ = qr_delete_row(r2, v)
        np.testing.assert_allclose(np.abs(r3), np.abs(np.triu(r)), atol=1e-9)

    def test_delete_impossible_raises(self, rng):
        # Removing a row that carries all rank in some direction.
        a = np.vstack([np.eye(3), np.zeros((2, 3))])
        a[3:] = 1e-13
        r = np.linalg.qr(a, mode="r")
        with pytest.raises(np.linalg.LinAlgError):
            qr_delete_row(r, np.array([1.0, 0.0, 0.0]))

    def test_shape_validation(self, rng):
        r = np.linalg.qr(rng.standard_normal((8, 4)), mode="r")
        with pytest.raises(KernelError):
            qr_insert_row(r, np.zeros(3))
        with pytest.raises(KernelError):
            qr_delete_row(r, np.zeros(5))
        with pytest.raises(KernelError):
            qr_insert_row(rng.standard_normal((3, 4)), np.zeros(4))

    @given(st.integers(2, 10), st.integers(0, 40))
    @settings(max_examples=25, deadline=None)
    def test_property_insert_consistency(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n + 4, n))
        r = np.linalg.qr(a, mode="r")
        v = rng.standard_normal(n)
        r2, _ = qr_insert_row(r, v)
        # R'^T R' == A'^T A' exactly characterizes a valid update.
        lhs = r2.T @ r2
        rhs = a.T @ a + np.outer(v, v)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-8, atol=1e-8)


class TestStreamingLeastSquares:
    def _stream(self, rng, n=4, m=30, noise=0.01):
        beta = rng.standard_normal(n)
        x = rng.standard_normal((m, n))
        y = x @ beta + noise * rng.standard_normal(m)
        return x, y, beta

    def test_growing_matches_batch(self, rng):
        x, y, _ = self._stream(rng)
        sls = StreamingLeastSquares(4)
        for i in range(len(y)):
            sls.add(x[i], y[i])
        ref, *_ = np.linalg.lstsq(x, y, rcond=None)
        np.testing.assert_allclose(sls.coefficients(), ref, atol=1e-9)

    def test_rss_matches_batch(self, rng):
        x, y, _ = self._stream(rng)
        sls = StreamingLeastSquares.from_batch(x, y)
        _, res, *_ = np.linalg.lstsq(x, y, rcond=None)
        assert sls.residual_sum_of_squares == pytest.approx(float(res[0]), rel=1e-8)

    def test_from_batch_equals_streamed(self, rng):
        x, y, _ = self._stream(rng)
        a = StreamingLeastSquares.from_batch(x, y)
        b = StreamingLeastSquares(4)
        for i in range(len(y)):
            b.add(x[i], y[i])
        np.testing.assert_allclose(a.coefficients(), b.coefficients(), atol=1e-9)

    def test_sliding_window_tracks_recent_data(self, rng):
        n, w = 3, 12
        sls = StreamingLeastSquares(n, window=w)
        xs, ys = [], []
        beta1, beta2 = np.array([1.0, -2.0, 3.0]), np.array([-4.0, 0.5, 2.0])
        for i in range(40):
            beta = beta1 if i < 20 else beta2
            x = rng.standard_normal(n)
            y = float(x @ beta)
            xs.append(x)
            ys.append(y)
            sls.add(x, y)
        # After the regime change leaves the window, the fit is exact
        # for the new coefficients.
        np.testing.assert_allclose(sls.coefficients(), beta2, atol=1e-8)
        assert sls.num_observations == w

    def test_remove_explicit(self, rng):
        x, y, _ = self._stream(rng, m=20)
        sls = StreamingLeastSquares.from_batch(x, y)
        sls.remove(x[0], y[0])
        ref, *_ = np.linalg.lstsq(x[1:], y[1:], rcond=None)
        np.testing.assert_allclose(sls.coefficients(), ref, atol=1e-8)

    def test_predict(self, rng):
        x, y, beta = self._stream(rng, noise=0.0)
        sls = StreamingLeastSquares.from_batch(x, y)
        x_new = rng.standard_normal(4)
        assert sls.predict(x_new) == pytest.approx(float(x_new @ beta), abs=1e-8)

    def test_underdetermined_raises(self):
        sls = StreamingLeastSquares(5)
        sls.add(np.ones(5), 1.0)
        with pytest.raises(KernelError):
            sls.coefficients()

    def test_validation(self):
        with pytest.raises(ShapeError):
            StreamingLeastSquares(0)
        with pytest.raises(ShapeError):
            StreamingLeastSquares(5, window=3)
        sls = StreamingLeastSquares(3)
        with pytest.raises(ShapeError):
            sls.add(np.zeros(2), 0.0)
