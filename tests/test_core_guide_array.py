"""Tests for integer ratios and the distribution guide array (Alg. 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.guide_array import build_guide_array, integer_ratio
from repro.errors import PlanError


class TestIntegerRatio:
    def test_paper_example(self):
        # Paper Sec. IV-C: devices updating 8, 12, 4 tiles/unit -> 2:3:1.
        assert integer_ratio([8.0, 12.0, 4.0]) == [2, 3, 1]

    def test_equal_throughputs(self):
        assert integer_ratio([5.0, 5.0, 5.0]) == [1, 1, 1]

    def test_single_device(self):
        assert integer_ratio([3.7]) == [1]

    def test_fractional_ratio_refined(self):
        # 4/3 should not collapse to 1:1.
        r = integer_ratio([3.0, 4.0, 4.0])
        assert r == [3, 4, 4]

    def test_scaling_invariance(self):
        assert integer_ratio([1.0, 2.0]) == integer_ratio([100.0, 200.0])

    def test_large_spread_capped(self):
        r = integer_ratio([1.0, 10.0, 13.3, 13.3])
        assert min(r) >= 1
        assert sum(r) <= 64

    def test_rejects_bad_input(self):
        with pytest.raises(PlanError):
            integer_ratio([])
        with pytest.raises(PlanError):
            integer_ratio([1.0, 0.0])
        with pytest.raises(PlanError):
            integer_ratio([1.0, float("inf")])

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_property_positive_and_bounded(self, thr):
        r = integer_ratio(thr)
        assert len(r) == len(thr)
        assert all(v >= 1 for v in r)
        # The fastest device always gets at least as much as the slowest.
        fastest = thr.index(max(thr))
        slowest = thr.index(min(thr))
        assert r[fastest] >= r[slowest]


class TestBuildGuideArray:
    def test_paper_example_sequence(self):
        # Ratio 2:3:1 over device ids 0,1,2 -> {1,0,1,0,1,2} (Sec. IV-C).
        assert build_guide_array([2, 3, 1], ["0", "1", "2"]) == [
            "1", "0", "1", "0", "1", "2",
        ]

    def test_length_is_ratio_sum(self):
        arr = build_guide_array([3, 2, 2], ["a", "b", "c"])
        assert len(arr) == 7

    def test_counts_match_ratio(self):
        ratio = [4, 2, 1]
        arr = build_guide_array(ratio, ["a", "b", "c"])
        assert arr.count("a") == 4
        assert arr.count("b") == 2
        assert arr.count("c") == 1

    def test_larger_ratio_appears_first(self):
        arr = build_guide_array([1, 5], ["slow", "fast"])
        assert arr[0] == "fast"

    def test_tie_breaks_toward_earlier_device(self):
        arr = build_guide_array([2, 2], ["a", "b"])
        assert arr[0] == "a"

    def test_interleaving_no_long_runs(self):
        # Greedy max-budget interleaves: with ratio [3,3] no device
        # appears three times in a row.
        arr = build_guide_array([3, 3], ["a", "b"])
        assert arr == ["a", "b", "a", "b", "a", "b"]

    def test_validation(self):
        with pytest.raises(PlanError):
            build_guide_array([1, 2], ["a"])
        with pytest.raises(PlanError):
            build_guide_array([], [])
        with pytest.raises(PlanError):
            build_guide_array([0, 1], ["a", "b"])

    @given(st.lists(st.integers(1, 6), min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_property_multiset_preserved(self, ratio):
        ids = [f"d{i}" for i in range(len(ratio))]
        arr = build_guide_array(ratio, ids)
        assert len(arr) == sum(ratio)
        for i, r in enumerate(ratio):
            assert arr.count(ids[i]) == r

    @given(st.lists(st.integers(1, 8), min_size=2, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_property_prefix_balance(self, ratio):
        """Cyclic fairness: in every prefix, each device's count stays
        within the greedy's worst-case drift of its proportional share
        (the max-budget greedy front-loads the dominant device by up to
        the budget gap, e.g. ratio [8,5,5,5] opens with a run of 'd0')."""
        ids = [f"d{i}" for i in range(len(ratio))]
        arr = build_guide_array(ratio, ids)
        total = sum(ratio)
        drift = max(ratio) / 2.0 + 1.5
        for prefix_len in range(1, total + 1):
            prefix = arr[:prefix_len]
            for i, r in enumerate(ratio):
                share = r * prefix_len / total
                assert abs(prefix.count(ids[i]) - share) <= drift
