"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.topology import pcie_star
from repro.core.optimizer import Optimizer
from repro.devices.registry import paper_testbed


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def system():
    return paper_testbed()


@pytest.fixture(scope="session")
def topology(system):
    return pcie_star(system.devices)


@pytest.fixture(scope="session")
def optimizer(system, topology):
    return Optimizer(system, topology)
