"""Kernel edge cases: degenerate tiles, ragged boundaries, odd memory.

The conformance harness sweeps these shapes too, but differentially —
these tests pin the *absolute* behaviour: a 1x1 tile is a scalar
Householder step, a boundary tile with fewer rows than the tile edge
still eliminates cleanly, non-contiguous views factor like their
contiguous copies, and float32 inputs stay float32 end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import (
    Workspace,
    check_orthogonality,
    check_reconstruction,
    geqrt,
    tsmqr,
    tsqrt,
    unmqr,
)
from repro.kernels.backends import available_backends, get_backend
from repro.runtime.serial import SerialRuntime
from tests.strategies import random_tile, random_triangular


class TestOneByOneTiles:
    """b=1 degenerates every kernel to scalar arithmetic; it must hold."""

    def test_geqrt_scalar(self):
        f = geqrt(np.array([[-3.0]]))
        assert f.r.shape == (1, 1)
        assert abs(f.r[0, 0]) == pytest.approx(3.0)
        q = f.q_dense()
        np.testing.assert_allclose(q @ f.r, [[-3.0]], atol=1e-14)

    def test_tsqrt_scalar_pair(self):
        f = tsqrt(np.array([[3.0]]), np.array([[4.0]]))
        # Eliminating 4 into 3 is a 2-D rotation: |r| = 5.
        assert abs(f.r[0, 0]) == pytest.approx(5.0)
        c1, c2 = np.array([[3.0]]), np.array([[4.0]])
        tsmqr(f, c1, c2)
        assert c2[0, 0] == pytest.approx(0.0, abs=1e-14)
        assert abs(c1[0, 0]) == pytest.approx(5.0)

    def test_unmqr_scalar_identity_when_tau_zero(self):
        f = geqrt(np.array([[2.0]]))
        c = np.array([[7.0, -1.0]])
        out = unmqr(f, c.copy())
        # Q is +-1; applying it twice round-trips.
        back = unmqr(f, out.copy(), transpose=False)
        np.testing.assert_allclose(back, c, atol=1e-14)

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_full_factorization_at_b1(self, backend_name):
        a = random_tile(5, (6, 6))
        fact = SerialRuntime(backend=backend_name).factorize(a.copy(), tile_size=1)
        check_reconstruction(a, fact.q_dense(), fact.r_dense())
        check_orthogonality(fact.q_dense())


class TestRaggedBoundaries:
    """Tile edges >= remaining rows/cols at the matrix boundary."""

    def test_tsqrt_short_bottom_tile(self):
        rng = np.random.default_rng(11)
        b = 8
        r1 = random_triangular(rng, b)
        a2 = rng.standard_normal((3, b))  # boundary tile: 3 rows < b
        f = tsqrt(r1, a2)
        q = f.q_dense()
        stacked = np.vstack([r1, a2])
        rebuilt = q @ np.vstack([f.r, np.zeros((3, b))])
        np.testing.assert_allclose(rebuilt, stacked, atol=1e-10)

    def test_geqrt_single_row(self):
        a = np.array([[2.0]])
        f = geqrt(a)
        assert f.tile_shape == (1, 1)

    @pytest.mark.parametrize("n", [1, 7, 17, 33])
    def test_tile_size_at_least_matrix_size(self, n):
        # b >= m collapses the grid to a single tile; the runtime must
        # behave exactly like one dense QR.
        a = random_tile(n, (n, n))
        fact = SerialRuntime().factorize(a.copy(), tile_size=max(n, 8))
        check_reconstruction(a, fact.q_dense(), fact.r_dense())

    @pytest.mark.parametrize("shape", [(33, 33), (49, 33), (65, 17)])
    def test_indivisible_sizes_all_backends(self, shape):
        a = random_tile(hash(shape) % 1000, shape)
        ref = SerialRuntime().factorize(a.copy(), tile_size=16)
        for name in available_backends():
            fact = SerialRuntime(backend=name).factorize(a.copy(), tile_size=16)
            if get_backend(name).bit_exact:
                np.testing.assert_array_equal(fact.r_dense(), ref.r_dense())
            check_reconstruction(a, fact.q_dense(), fact.r_dense())


class TestNonContiguousInputs:
    """Strided views must factor exactly like their contiguous copies."""

    def test_geqrt_on_strided_view(self):
        base = random_tile(21, (16, 16))
        view = base[::2, ::2]
        assert not view.flags["C_CONTIGUOUS"]
        f_view = geqrt(view)
        f_copy = geqrt(np.ascontiguousarray(view))
        np.testing.assert_array_equal(f_view.r, f_copy.r)
        np.testing.assert_array_equal(f_view.v, f_copy.v)

    def test_tsqrt_on_transposed_view(self):
        rng = np.random.default_rng(31)
        r1 = np.asfortranarray(random_triangular(rng, 8))
        a2 = rng.standard_normal((8, 8)).T
        assert not a2.flags["C_CONTIGUOUS"]
        f = tsqrt(r1, a2)
        f_ref = tsqrt(np.ascontiguousarray(r1), np.ascontiguousarray(a2))
        np.testing.assert_array_equal(f.r, f_ref.r)

    def test_unmqr_updates_strided_target_in_place(self):
        rng = np.random.default_rng(41)
        b = 8
        f = geqrt(rng.standard_normal((b, b)))
        base = rng.standard_normal((b, 12))
        view = base[:, ::2]  # update every other column in place
        expected = np.ascontiguousarray(view)
        unmqr(f, expected, workspace=Workspace())
        untouched = base[:, 1::2].copy()
        unmqr(f, view, workspace=Workspace())
        np.testing.assert_allclose(view, expected, atol=1e-13)
        np.testing.assert_array_equal(base[:, 1::2], untouched)

    def test_factorize_fortran_ordered_matrix(self):
        a = np.asfortranarray(random_tile(51, (48, 48)))
        ref = SerialRuntime().factorize(np.ascontiguousarray(a), tile_size=16)
        got = SerialRuntime().factorize(a, tile_size=16)
        np.testing.assert_array_equal(got.r_dense(), ref.r_dense())


class TestFloat32:
    """float32 flows through without silent upcasts to float64."""

    def test_geqrt_preserves_dtype(self):
        a = random_tile(61, (12, 12), np.float32)
        f = geqrt(a)
        assert f.r.dtype == np.float32
        assert f.v.dtype == np.float32
        assert f.tf.dtype == np.float32
        q = f.q_dense()
        np.testing.assert_allclose(q @ f.r, a, atol=1e-4)

    def test_tsqrt_preserves_dtype_and_eliminates(self):
        rng = np.random.default_rng(71)
        b = 8
        r1 = random_triangular(rng, b, np.float32)
        a2 = random_tile(rng, (b, b), np.float32)
        f = tsqrt(r1, a2)
        assert f.r.dtype == np.float32
        c1, c2 = r1.copy(), a2.copy()
        tsmqr(f, c1, c2, workspace=Workspace())
        scale = max(float(np.linalg.norm(np.vstack([r1, a2]))), 1.0)
        assert float(np.linalg.norm(c2)) <= 1e-4 * scale

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_backends_agree_in_float32(self, backend_name):
        be = get_backend(backend_name)
        a = random_tile(81, (20, 8), np.float32)
        got = be.geqrt(a)
        want = geqrt(a)
        np.testing.assert_allclose(got.r, want.r, atol=1e-4)
        assert got.r.dtype == np.float32
