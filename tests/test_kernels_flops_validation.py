"""Tests for the flop models and numerical validation helpers."""

import numpy as np
import pytest

from repro.kernels import (
    check_orthogonality,
    check_reconstruction,
    check_upper_triangular,
    flops_dense_qr,
    flops_geqrt,
    flops_tiled_qr,
    flops_tsmqr,
    flops_tsqrt,
    flops_ttmqr,
    flops_ttqrt,
    flops_unmqr,
)


class TestFlops:
    def test_all_positive_and_cubic(self):
        for fn in (flops_geqrt, flops_unmqr, flops_tsqrt, flops_tsmqr,
                   flops_ttqrt, flops_ttmqr):
            assert fn(16) > 0
            # Cubic growth: doubling b multiplies by ~8.
            assert fn(32) / fn(16) == pytest.approx(8.0, rel=0.01)

    def test_tt_cheaper_than_ts(self):
        assert flops_ttqrt(16) < flops_tsqrt(16)
        assert flops_ttmqr(16) < flops_tsmqr(16)

    def test_update_heavier_than_panel_per_tile(self):
        # Per tile, the UE GEMMs outweigh the panel factorization.
        assert flops_tsmqr(16) > flops_geqrt(16)

    def test_dense_qr_square(self):
        n = 100
        assert flops_dense_qr(n) == pytest.approx((4.0 / 3.0) * n**3, rel=1e-12)

    def test_dense_qr_rectangular(self):
        assert flops_dense_qr(10, 100) == pytest.approx(
            2 * 100 * 100 - (2 / 3) * 1000, rel=1e-12
        )

    def test_tiled_total_close_to_dense(self):
        # The tiled algorithm does more flops than dense QR but within a
        # small constant factor (the TS update overhead).
        p, b = 20, 16
        n = p * b
        tiled = flops_tiled_qr(p, p, b)
        dense = flops_dense_qr(n)
        assert 1.0 < tiled / dense < 2.5

    def test_tiled_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            flops_tiled_qr(4, 4, 16, elimination="XX")

    def test_tiled_single_tile(self):
        assert flops_tiled_qr(1, 1, 16) == pytest.approx(flops_geqrt(16))


class TestValidationHelpers:
    def test_check_reconstruction_passes(self, rng):
        a = rng.standard_normal((10, 10))
        q, r = np.linalg.qr(a)
        assert check_reconstruction(a, q, r) < 1e-12

    def test_check_reconstruction_fails(self, rng):
        a = rng.standard_normal((10, 10))
        q, r = np.linalg.qr(a)
        with pytest.raises(AssertionError):
            check_reconstruction(a + 1.0, q, r)

    def test_check_orthogonality(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((8, 8)))
        check_orthogonality(q)
        with pytest.raises(AssertionError):
            check_orthogonality(q * 1.5)

    def test_check_upper_triangular(self, rng):
        check_upper_triangular(np.triu(rng.standard_normal((6, 6))))
        with pytest.raises(AssertionError):
            check_upper_triangular(rng.standard_normal((6, 6)) + 10 * np.eye(6))
