"""Workspace arena guarantees: zero steady-state allocation, counted fallbacks.

The arena exists so kernel GEMMs never hit the heap on the hot path;
the ``fallbacks`` counter exists so we *notice* if they do.  These
tests pin both halves: the float64 path performs no allocation (and no
fallbacks) once warm, the mixed-dtype escape hatch increments the
counter, and :func:`drain_fallbacks` folds the counts into the
``kernel.workspace.fallbacks`` metric across every runtime.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import Workspace, drain_fallbacks, geqrt, tsmqr, tsqrt, unmqr
from repro.observability import MetricsRegistry
from repro.runtime.multiprocess import MultiprocessRuntime
from repro.runtime.serial import SerialRuntime
from repro.runtime.threaded import ThreadedRuntime
from tests.strategies import random_tile, random_triangular


class TestSteadyStateAllocations:
    def test_float64_hot_path_never_falls_back_or_grows(self, rng):
        b = 16
        ws = Workspace()
        fg = geqrt(rng.standard_normal((b, b)))
        fe = tsqrt(random_triangular(rng, b), rng.standard_normal((b, b)))
        # Warm-up: first call at each (name, width) sizes the buffers.
        unmqr(fg, rng.standard_normal((b, 3 * b)), workspace=ws)
        tsmqr(fe, rng.standard_normal((b, 3 * b)), rng.standard_normal((b, 3 * b)), workspace=ws)
        warm_bytes = ws.nbytes
        assert warm_bytes > 0
        for _ in range(20):
            unmqr(fg, rng.standard_normal((b, 3 * b)), workspace=ws)
            tsmqr(
                fe,
                rng.standard_normal((b, 3 * b)),
                rng.standard_normal((b, 3 * b)),
                workspace=ws,
            )
        assert ws.fallbacks == 0
        assert ws.nbytes == warm_bytes  # steady state: no reallocation

    def test_narrower_requests_reuse_the_warm_buffer(self, rng):
        b = 8
        ws = Workspace()
        fg = geqrt(rng.standard_normal((b, b)))
        unmqr(fg, rng.standard_normal((b, 4 * b)), workspace=ws)
        warm_bytes = ws.nbytes
        for width in (4 * b, 2 * b, b, 1):
            unmqr(fg, rng.standard_normal((b, width)), workspace=ws)
        assert ws.nbytes == warm_bytes

    def test_serial_float64_factorization_reports_zero_fallbacks(self, rng):
        metrics = MetricsRegistry()
        SerialRuntime(metrics=metrics).factorize(rng.standard_normal((64, 64)), 16)
        counters = metrics.snapshot()["counters"]
        assert counters.get("kernel.workspace.fallbacks", 0) == 0


class TestMixedDtypeFallbacks:
    def test_mixed_dtype_unmqr_increments_counter(self, rng):
        ws = Workspace()
        f = geqrt(rng.standard_normal((8, 8)))  # float64 factors
        c = random_tile(rng, (8, 4), np.float32)
        unmqr(f, c, workspace=ws)
        assert ws.fallbacks == 1
        unmqr(f, c, workspace=ws)
        assert ws.fallbacks == 2

    def test_mixed_dtype_tsmqr_increments_counter(self, rng):
        ws = Workspace()
        f = tsqrt(random_triangular(rng, 8), rng.standard_normal((8, 8)))
        c1 = random_tile(rng, (8, 4), np.float32)
        c2 = random_tile(rng, (8, 4), np.float32)
        tsmqr(f, c1, c2, workspace=ws)
        assert ws.fallbacks >= 1

    def test_matching_float32_does_not_fall_back(self, rng):
        ws = Workspace()
        a = random_tile(rng, (8, 8), np.float32)
        f = geqrt(a)  # float32 factors
        unmqr(f, random_tile(rng, (8, 4), np.float32), workspace=ws)
        assert ws.fallbacks == 0


class TestDrainFallbacks:
    def test_folds_and_resets(self):
        metrics = MetricsRegistry()
        w1, w2 = Workspace(), Workspace()
        w1.fallbacks, w2.fallbacks = 3, 4
        assert drain_fallbacks(metrics, w1, w2) == 7
        assert (w1.fallbacks, w2.fallbacks) == (0, 0)
        assert metrics.snapshot()["counters"]["kernel.workspace.fallbacks"] == 7
        # Second drain reports the delta (zero), not the lifetime total.
        assert drain_fallbacks(metrics, w1, w2) == 0
        assert metrics.snapshot()["counters"]["kernel.workspace.fallbacks"] == 7

    def test_zero_total_creates_no_counter(self):
        metrics = MetricsRegistry()
        assert drain_fallbacks(metrics, Workspace()) == 0
        assert "kernel.workspace.fallbacks" not in metrics.snapshot()["counters"]

    def test_none_metrics_still_resets(self):
        ws = Workspace()
        ws.fallbacks = 5
        assert drain_fallbacks(None, ws) == 5
        assert ws.fallbacks == 0

    def test_threaded_runtime_drains_worker_arenas(self, rng):
        metrics = MetricsRegistry()
        ThreadedRuntime(3, metrics=metrics).factorize(rng.standard_normal((64, 64)), 16)
        counters = metrics.snapshot()["counters"]
        assert counters.get("kernel.workspace.fallbacks", 0) == 0

    def test_multiprocess_runtime_folds_worker_fallbacks(self, rng, optimizer):
        metrics = MetricsRegistry()
        plan = optimizer.plan(matrix_size=64, tile_size=16)
        MultiprocessRuntime(plan, metrics=metrics).factorize(
            rng.standard_normal((64, 64)), 16
        )
        counters = metrics.snapshot()["counters"]
        # float64 end to end: the piggybacked per-reply stats must sum to 0.
        assert counters.get("kernel.workspace.fallbacks", 0) == 0
