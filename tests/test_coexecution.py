"""Tests for virtual-time co-execution (numeric kernels inside the DES)."""

import numpy as np
import pytest

from repro import TiledQR, paper_testbed
from repro.dag import build_dag
from repro.errors import SimulationError
from repro.runtime import tiled_qr
from repro.sim.engine import DiscreteEventSimulator
from repro.tiles import TiledMatrix


class TestCoexecution:
    def test_numeric_result_matches_serial(self, rng, system, topology, optimizer):
        a = rng.standard_normal((96, 96))
        plan = optimizer.plan(matrix_size=96, num_devices=3)
        tiled = TiledMatrix.from_dense(a, 16)
        dag = build_dag(6, 6)
        trace = DiscreteEventSimulator(system, topology).run(dag, plan, tiles=tiled)
        serial = tiled_qr(a, 16)
        np.testing.assert_allclose(tiled.to_dense(), serial.r_dense(), atol=1e-12)
        assert len(trace.numeric_log) == len(serial.log)

    def test_q_valid_from_coexec_log(self, rng, system):
        from repro.runtime.factorization import TiledQRFactorization

        a = rng.standard_normal((80, 80))
        qr = TiledQR(system)
        run = qr.factorize(a, coexecute=True)
        assert run.factorization.reconstruction_error(a) < 1e-10
        assert run.report.makespan > 0
        assert run.report.num_tasks == len(build_dag(5, 5))

    def test_trace_schedule_still_valid(self, rng, system, topology, optimizer):
        a = rng.standard_normal((96, 96))
        plan = optimizer.plan(matrix_size=96, num_devices=4)
        tiled = TiledMatrix.from_dense(a, 16)
        dag = build_dag(6, 6)
        trace = DiscreteEventSimulator(system, topology).run(dag, plan, tiles=tiled)
        trace.validate_no_overlap({d.device_id: d.slots for d in system})
        end_of = {r.task: r.end for r in trace.tasks}
        start_of = {r.task: r.start for r in trace.tasks}
        for t in dag.tasks:
            for d in dag.preds[t]:
                assert start_of[t] >= end_of[d] - 1e-12

    def test_grid_mismatch_rejected(self, rng, system, topology, optimizer):
        plan = optimizer.plan(matrix_size=96, num_devices=2)
        tiled = TiledMatrix.from_dense(rng.standard_normal((80, 80)), 16)
        dag = build_dag(6, 6)
        with pytest.raises(SimulationError):
            DiscreteEventSimulator(system, topology).run(dag, plan, tiles=tiled)

    def test_without_tiles_no_numeric_log(self, system, topology, optimizer):
        plan = optimizer.plan(matrix_size=96, num_devices=2)
        dag = build_dag(6, 6)
        trace = DiscreteEventSimulator(system, topology).run(dag, plan)
        assert trace.numeric_log == []
