"""Tests for the distributed-memory (multi-process) runtime."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.runtime import tiled_qr
from repro.runtime.multiprocess import MultiprocessRuntime


class TestMultiprocessRuntime:
    @pytest.mark.parametrize("num_devices", [1, 2, 4])
    def test_matches_serial(self, rng, optimizer, num_devices):
        a = rng.standard_normal((96, 96))
        plan = optimizer.plan(matrix_size=96, num_devices=num_devices)
        f = MultiprocessRuntime(plan).factorize(a)
        f_ref = tiled_qr(a, 16)
        np.testing.assert_allclose(f.r_dense(), f_ref.r_dense(), atol=1e-13)

    def test_q_and_solve_from_gathered_factors(self, rng, optimizer):
        a = rng.standard_normal((80, 80)) + 6 * np.eye(80)
        plan = optimizer.plan(matrix_size=80, num_devices=3)
        f = MultiprocessRuntime(plan).factorize(a)
        assert f.reconstruction_error(a) < 1e-10
        x = rng.standard_normal(80)
        np.testing.assert_allclose(f.solve(a @ x), x, atol=1e-8)

    def test_padded_matrix(self, rng, optimizer):
        a = rng.standard_normal((70, 70))
        plan = optimizer.plan(matrix_size=70, num_devices=2)
        f = MultiprocessRuntime(plan).factorize(a)
        np.testing.assert_allclose(
            f.r_dense(), tiled_qr(a, 16).r_dense(), atol=1e-13
        )

    def test_no_main_plan_migrates_panels(self, rng, system):
        from repro.baselines import no_main_plan

        a = rng.standard_normal((96, 96))
        plan = no_main_plan(system, 6, 6, 16)
        f = MultiprocessRuntime(plan).factorize(a)
        np.testing.assert_allclose(
            f.r_dense(), tiled_qr(a, 16).r_dense(), atol=1e-13
        )

    def test_rejects_bad_shapes(self, optimizer, rng):
        plan = optimizer.plan(matrix_size=64, num_devices=2)
        rt = MultiprocessRuntime(plan)
        with pytest.raises(ShapeError):
            rt.factorize(np.zeros(5))
        with pytest.raises(ShapeError):
            rt.factorize(rng.standard_normal((16, 32)))
