"""Tests for the trace validators and the report generator."""

import pytest

from repro.dag import build_dag
from repro.dag.tasks import Task, TaskKind
from repro.errors import SimulationError
from repro.sim.engine import simulate_task_level
from repro.sim.trace import ExecutionTrace, TaskRecord, TransferRecord
from repro.sim.validation import (
    validate_assignment,
    validate_dependencies,
    validate_ports,
    validate_trace,
)


@pytest.fixture
def valid_setup(system, topology, optimizer):
    plan = optimizer.plan(matrix_size=96, num_devices=3)
    dag = build_dag(6, 6)
    trace = simulate_task_level(dag, plan, system, topology)
    return trace, dag, plan


class TestValidators:
    def test_real_trace_passes_everything(self, valid_setup, system):
        trace, dag, plan = valid_setup
        validate_trace(trace, dag, plan, system)

    def test_missing_task_detected(self, valid_setup):
        trace, dag, plan = valid_setup
        broken = ExecutionTrace(tasks=trace.tasks[:-1], transfers=trace.transfers)
        with pytest.raises(SimulationError, match="never executed"):
            validate_dependencies(broken, dag)

    def test_dependency_violation_detected(self, valid_setup):
        trace, dag, plan = valid_setup
        # Move the *last* task to start at time 0 — before its preds.
        last = max(trace.tasks, key=lambda r: r.start)
        hacked = [
            r if r is not last else TaskRecord(r.task, r.device_id, 0.0, 1e-9)
            for r in trace.tasks
        ]
        broken = ExecutionTrace(tasks=hacked, transfers=trace.transfers)
        with pytest.raises(SimulationError, match="dependency violated"):
            validate_dependencies(broken, dag)

    def test_wrong_device_detected(self, valid_setup):
        trace, dag, plan = valid_setup
        rec = trace.tasks[0]
        wrong_dev = next(
            d for d in plan.participants if d != rec.device_id
        )
        hacked = [
            TaskRecord(r.task, wrong_dev, r.start, r.end) if r is rec else r
            for r in trace.tasks
        ]
        broken = ExecutionTrace(tasks=hacked, transfers=trace.transfers)
        with pytest.raises(SimulationError, match="plan says"):
            validate_assignment(broken, plan)

    def test_port_overlap_detected(self):
        trace = ExecutionTrace(
            transfers=[
                TransferRecord("a", "b", 8, 0.0, 1.0),
                TransferRecord("a", "c", 8, 0.5, 1.5),
            ]
        )
        with pytest.raises(SimulationError, match="overlapping transfers"):
            validate_ports(trace)

    def test_port_back_to_back_ok(self):
        trace = ExecutionTrace(
            transfers=[
                TransferRecord("a", "b", 8, 0.0, 1.0),
                TransferRecord("a", "c", 8, 1.0, 2.0),
            ]
        )
        validate_ports(trace)


class TestReportGenerator:
    def test_writes_markdown(self, tmp_path):
        from repro.experiments.report import generate_report

        out = generate_report(tmp_path / "r.md", quick=True, only=["table1"])
        text = out.read_text()
        assert "# Tiled QR reproduction" in text
        assert "## table1" in text
        assert "| panel |" in text

    def test_unknown_experiment(self, tmp_path):
        from repro.experiments.report import generate_report

        with pytest.raises(KeyError):
            generate_report(tmp_path / "r.md", only=["nope"])

    def test_cli_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "rep.md"
        assert main(["report", "--out", str(out), "--only", "table1"]) == 0
        assert out.exists()
