"""Cross-backend conformance: the gate every kernel backend must pass.

Four layers, mirroring the contract in ``docs/KERNELS.md``:

* **registry** — registration/lookup/validation semantics, including
  the graceful no-op when numba is absent;
* **differential kernels** — hypothesis-driven agreement of every
  registered backend with the ``reference`` oracle, per kernel, over
  randomized tile sizes, shapes, and dtypes (``<= 1e-12`` in float64);
* **workspace aliasing** — a shared scratch arena never lets one
  kernel's temporaries corrupt another's operands or factors;
* **end-to-end** — bit-identical R across backends under each runtime
  (serial, threaded, multiprocess) and through the ``TiledQR`` facade,
  plus the packaged :func:`run_conformance` sweep that backs
  ``tiledqr backends --check``.

Backend *selection* (profile-driven, audited) is covered at the end:
:func:`select_kernel_backends` fallback and measured-choice paths, and
the ``kernel_backend`` stage landing in ``Optimizer.plan`` audits.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backend_select import select_kernel_backends
from repro.core.executor import TiledQR
from repro.core.optimizer import Optimizer
from repro.errors import KernelError
from repro.kernels import Workspace
from repro.kernels.backends import (
    DEFAULT_BACKEND,
    HAVE_NUMBA,
    KERNEL_NAMES,
    NUMBA_BACKEND,
    FunctionBackend,
    available_backends,
    backend_info,
    get_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.kernels.backends.conformance import (
    check_end_to_end,
    max_abs_diff,
    run_conformance,
    tolerance_for,
)
from repro.observability import ProfileStore
from repro.observability.decisions import STAGE_BACKEND, DecisionAudit, explain_plan
from repro.runtime.multiprocess import MultiprocessRuntime
from repro.runtime.serial import SerialRuntime
from repro.runtime.threaded import ThreadedRuntime
from tests.strategies import (
    DTYPES,
    batch_widths,
    random_tile,
    random_triangular,
    seeds,
    small_tile_sizes,
    tile_sizes,
)
from tests.test_profile_perf import small_trace

REFERENCE = get_backend(DEFAULT_BACKEND)

#: Every registered backend; the non-reference ones get the
#: differential treatment (reference vs itself is a tautology).
ALL_BACKENDS = list(available_backends())
OTHER_BACKENDS = [n for n in ALL_BACKENDS if n != DEFAULT_BACKEND]

dtypes_st = st.sampled_from(DTYPES)


def _clone_reference(name: str, **overrides) -> FunctionBackend:
    """A valid throwaway backend delegating to the reference kernels."""
    kwargs = {k: getattr(REFERENCE, k) for k in KERNEL_NAMES}
    kwargs.update(overrides)
    return FunctionBackend(name=name, description=f"test clone {name}", **kwargs)


def _factor_arrays(f):
    v = f.v2 if hasattr(f, "v2") else f.v
    return [f.r, v, f.tf, f.taus]


def _assert_factors_match(got, want, tol):
    for g, w in zip(_factor_arrays(got), _factor_arrays(want)):
        assert max_abs_diff(g, w) <= tol


class TestRegistry:
    def test_reference_is_registered_and_first(self):
        names = available_backends()
        assert names[0] == DEFAULT_BACKEND
        assert "blocked" in names
        assert list(names[1:]) == sorted(names[1:])

    def test_unknown_backend_lists_registered(self):
        with pytest.raises(KernelError, match="reference"):
            get_backend("no-such-backend")

    def test_resolve_none_string_and_object(self):
        assert resolve_backend(None) is REFERENCE
        assert resolve_backend("blocked") is get_backend("blocked")
        clone = _clone_reference("unregistered-clone")
        assert resolve_backend(clone) is clone  # objects pass through

    def test_register_refuses_duplicates_unless_replace(self):
        clone = _clone_reference("dup-test")
        register_backend(clone)
        try:
            with pytest.raises(KernelError, match="already registered"):
                register_backend(_clone_reference("dup-test"))
            replacement = _clone_reference("dup-test")
            assert register_backend(replacement, replace=True) is replacement
            assert get_backend("dup-test") is replacement
        finally:
            unregister_backend("dup-test")
        with pytest.raises(KernelError):
            get_backend("dup-test")

    def test_validation_rejects_incomplete_backends(self):
        class MissingKernels:
            name = "broken"
            description = ""
            compiled = False
            bit_exact = True

        with pytest.raises(KernelError, match="missing kernel"):
            register_backend(MissingKernels())
        import dataclasses

        with pytest.raises(KernelError, match="name"):
            register_backend(dataclasses.replace(_clone_reference("x"), name=""))

    def test_backend_info_shape(self):
        info = backend_info()
        assert [d["name"] for d in info] == list(available_backends())
        by_name = {d["name"]: d for d in info}
        assert by_name[DEFAULT_BACKEND]["default"] is True
        for d in info:
            assert isinstance(d["compiled"], bool)
            assert isinstance(d["bit_exact"], bool)
            assert d["description"]

    def test_numba_absence_is_a_graceful_noop(self):
        # The container intentionally lacks numba: importing the package
        # must still succeed (it did, above) and simply not register it.
        assert ("numba" in available_backends()) == HAVE_NUMBA
        assert (NUMBA_BACKEND is not None) == HAVE_NUMBA


@pytest.mark.parametrize("backend_name", OTHER_BACKENDS)
class TestDifferentialKernels:
    """Each non-reference backend vs the oracle, property-tested."""

    @given(b=tile_sizes, seed=seeds, dtype=dtypes_st, extra_rows=st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_geqrt(self, backend_name, b, seed, dtype, extra_rows):
        be = get_backend(backend_name)
        a = random_tile(seed, (b + extra_rows, b), dtype)
        _assert_factors_match(be.geqrt(a), REFERENCE.geqrt(a), tolerance_for(dtype))

    @given(b=small_tile_sizes, seed=seeds, dtype=dtypes_st, ragged=st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_tsqrt(self, backend_name, b, seed, dtype, ragged):
        be = get_backend(backend_name)
        rng = np.random.default_rng(seed)
        r1 = random_triangular(rng, b, dtype)
        a2 = random_tile(rng, (max(1, b - ragged), b), dtype)
        _assert_factors_match(
            be.tsqrt(r1, a2), REFERENCE.tsqrt(r1, a2), tolerance_for(dtype)
        )

    @given(b=small_tile_sizes, seed=seeds, dtype=dtypes_st)
    @settings(max_examples=20, deadline=None)
    def test_ttqrt(self, backend_name, b, seed, dtype):
        be = get_backend(backend_name)
        rng = np.random.default_rng(seed)
        r1 = random_triangular(rng, b, dtype)
        r2 = random_triangular(rng, b, dtype)
        _assert_factors_match(
            be.ttqrt(r1, r2), REFERENCE.ttqrt(r1, r2), tolerance_for(dtype)
        )

    @given(
        b=small_tile_sizes, seed=seeds, dtype=dtypes_st,
        ncols=st.integers(1, 40), transpose=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_unmqr(self, backend_name, b, seed, dtype, ncols, transpose):
        be = get_backend(backend_name)
        rng = np.random.default_rng(seed)
        f = REFERENCE.geqrt(random_tile(rng, (b, b), dtype))
        c = random_tile(rng, (b, ncols), dtype)
        got, want = c.copy(), c.copy()
        v_before, tf_before = f.v.copy(), f.tf.copy()
        be.unmqr(f, got, transpose=transpose, workspace=Workspace())
        REFERENCE.unmqr(f, want, transpose=transpose)
        assert max_abs_diff(got, want) <= tolerance_for(dtype)
        np.testing.assert_array_equal(f.v, v_before)
        np.testing.assert_array_equal(f.tf, tf_before)

    @given(
        b=small_tile_sizes, seed=seeds, dtype=dtypes_st,
        ncols=st.integers(1, 40), transpose=st.booleans(), tt=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_tsmqr_ttmqr(self, backend_name, b, seed, dtype, ncols, transpose, tt):
        be = get_backend(backend_name)
        rng = np.random.default_rng(seed)
        r1 = random_triangular(rng, b, dtype)
        if tt:
            f = REFERENCE.ttqrt(r1, random_triangular(rng, b, dtype))
            fn, ref_fn = be.ttmqr, REFERENCE.ttmqr
        else:
            f = REFERENCE.tsqrt(r1, random_tile(rng, (b, b), dtype))
            fn, ref_fn = be.tsmqr, REFERENCE.tsmqr
        c1 = random_tile(rng, (b, ncols), dtype)
        c2 = random_tile(rng, (b, ncols), dtype)
        g1, g2, w1, w2 = c1.copy(), c2.copy(), c1.copy(), c2.copy()
        v2_before = f.v2.copy()
        fn(f, g1, g2, transpose=transpose, workspace=Workspace())
        ref_fn(f, w1, w2, transpose=transpose)
        tol = tolerance_for(dtype)
        assert max_abs_diff(g1, w1) <= tol
        assert max_abs_diff(g2, w2) <= tol
        np.testing.assert_array_equal(f.v2, v2_before)

    @given(b=small_tile_sizes, seed=seeds, ntiles=batch_widths)
    @settings(max_examples=15, deadline=None)
    def test_batched_variants(self, backend_name, b, seed, ntiles):
        be = get_backend(backend_name)
        rng = np.random.default_rng(seed)
        fg = REFERENCE.geqrt(random_tile(rng, (b, b)))
        fe = REFERENCE.tsqrt(random_triangular(rng, b), random_tile(rng, (b, b)))
        panel = random_tile(rng, (b, ntiles * b))
        gp, wp = panel.copy(), panel.copy()
        be.unmqr_batch(fg, gp, workspace=Workspace())
        REFERENCE.unmqr_batch(fg, wp)
        assert max_abs_diff(gp, wp) <= 1e-12
        p1 = random_tile(rng, (b, ntiles * b))
        p2 = random_tile(rng, (b, ntiles * b))
        g1, g2, w1, w2 = p1.copy(), p2.copy(), p1.copy(), p2.copy()
        be.tsmqr_batch(fe, g1, g2, workspace=Workspace())
        REFERENCE.tsmqr_batch(fe, w1, w2)
        assert max_abs_diff(g1, w1) <= 1e-12
        assert max_abs_diff(g2, w2) <= 1e-12


@pytest.mark.parametrize("backend_name", ALL_BACKENDS)
class TestWorkspaceAliasing:
    """One shared arena across kernels must never corrupt operands."""

    def test_shared_workspace_matches_fresh_workspaces(self, backend_name, rng):
        be = get_backend(backend_name)
        b = 8
        fg = REFERENCE.geqrt(rng.standard_normal((b, b)))
        fe = REFERENCE.tsqrt(
            np.triu(rng.standard_normal((b, b))), rng.standard_normal((b, b))
        )
        c = rng.standard_normal((b, 3 * b))
        c1 = rng.standard_normal((b, 3 * b))
        c2 = rng.standard_normal((b, 3 * b))

        def run(ws_factory):
            a, x, y = c.copy(), c1.copy(), c2.copy()
            be.unmqr(fg, a, workspace=ws_factory())
            be.tsmqr(fe, x, y, workspace=ws_factory())
            be.unmqr_batch(fg, a, workspace=ws_factory())
            return a, x, y

        shared = Workspace()
        got = run(lambda: shared)
        want = run(Workspace)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g, w)

    def test_later_kernel_calls_leave_earlier_outputs_alone(self, backend_name, rng):
        be = get_backend(backend_name)
        b = 8
        ws = Workspace()
        fg = REFERENCE.geqrt(rng.standard_normal((b, b)))
        first = rng.standard_normal((b, 2 * b))
        be.unmqr(fg, first, workspace=ws)
        snapshot = first.copy()
        # Hammer the same arena with other work at other widths.
        for width in (b, 4 * b, 1):
            other = rng.standard_normal((b, width))
            be.unmqr(fg, other, workspace=ws)
        fe = REFERENCE.tsqrt(np.triu(rng.standard_normal((b, b))), rng.standard_normal((b, b)))
        be.tsmqr(fe, rng.standard_normal((b, b)), rng.standard_normal((b, b)), workspace=ws)
        np.testing.assert_array_equal(first, snapshot)


class TestEndToEndAcrossRuntimes:
    """Per-runtime R bit-identity between backends (the headline gate)."""

    N, B = 64, 16

    @pytest.fixture(scope="class")
    def matrix(self):
        return np.random.default_rng(99).standard_normal((self.N, self.N))

    @pytest.fixture(scope="class")
    def reference_r(self, matrix):
        return SerialRuntime("TS").factorize(matrix.copy(), self.B).r_dense()

    def _check(self, backend_name, r_got, r_ref):
        if get_backend(backend_name).bit_exact:
            np.testing.assert_array_equal(r_got, r_ref)
        else:
            np.testing.assert_allclose(r_got, r_ref, atol=1e-12 * self.N)

    @pytest.mark.parametrize("elimination", ["TS", "TT"])
    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_serial(self, matrix, backend_name, elimination):
        ref = SerialRuntime(elimination).factorize(matrix.copy(), self.B).r_dense()
        got = (
            SerialRuntime(elimination, backend=backend_name)
            .factorize(matrix.copy(), self.B)
            .r_dense()
        )
        self._check(backend_name, got, ref)

    @pytest.mark.parametrize("batch_updates", [False, True])
    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_threaded(self, matrix, reference_r, backend_name, batch_updates):
        got = (
            ThreadedRuntime(3, backend=backend_name, batch_updates=batch_updates)
            .factorize(matrix.copy(), self.B)
            .r_dense()
        )
        self._check(backend_name, got, reference_r)

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_multiprocess(self, matrix, reference_r, backend_name, optimizer):
        plan = optimizer.plan(matrix_size=self.N, tile_size=self.B)
        got = (
            MultiprocessRuntime(plan, backend=backend_name)
            .factorize(matrix, self.B)
            .r_dense()
        )
        self._check(backend_name, got, reference_r)

    def test_tiledqr_facade_accepts_backend(self, matrix, reference_r, system):
        qr = TiledQR(system)
        for name in ALL_BACKENDS:
            run = qr.factorize(matrix.copy(), self.B, backend=name)
            self._check(name, run.factorization.r_dense(), reference_r)

    def test_tiledqr_facade_rejects_unknown_backend(self, matrix, system):
        with pytest.raises(KernelError, match="unknown kernel backend"):
            TiledQR(system).factorize(matrix.copy(), self.B, backend="nope")


class TestRunConformance:
    def test_sweep_passes_for_every_registered_backend(self):
        report = run_conformance(tile_sizes=(1, 2, 5, 16), end_to_end=True)
        assert report.passed, report.to_text()
        assert set(report.backends) == set(ALL_BACKENDS)
        kernels_seen = {c.kernel for c in report.cases}
        assert {"GEQRT", "TSQRT", "TTQRT", "UNMQR", "TSMQR", "TTMQR",
                "UNMQR_BATCH", "TSMQR_BATCH", "TTMQR_BATCH",
                "END_TO_END"} <= kernels_seen

    def test_report_serializes(self):
        report = run_conformance(tile_sizes=(2,), dtypes=(np.float64,), end_to_end=False)
        d = report.to_dict()
        assert d["kind"] == "backend-conformance-report"
        assert d["passed"] is True and d["failures"] == []
        assert "PASS" in report.to_text()
        import json

        assert json.loads(report.to_json())["num_cases"] == len(report.cases)

    def test_broken_backend_is_caught(self):
        def bad_geqrt(a, *args, **kwargs):
            f = REFERENCE.geqrt(a, *args, **kwargs)
            f.r[...] = f.r + 0.01
            return f

        broken = _clone_reference("broken-geqrt", geqrt=bad_geqrt)
        report = run_conformance(
            backends=[broken], tile_sizes=(4,), dtypes=(np.float64,), end_to_end=True
        )
        assert not report.passed
        assert all(c.kernel in ("GEQRT", "END_TO_END") for c in report.failures())

    def test_input_mutation_is_caught(self):
        def mutating_geqrt(a, *args, **kwargs):
            f = REFERENCE.geqrt(a, *args, **kwargs)
            a = np.asarray(a)
            if a.dtype.kind == "f":
                a += 1.0  # scribble on the caller's tile
            return f

        broken = _clone_reference("mutating-geqrt", geqrt=mutating_geqrt)
        report = run_conformance(
            backends=[broken], tile_sizes=(4,), dtypes=(np.float64,), end_to_end=False
        )
        assert not report.passed
        assert any("input modified" in c.note for c in report.failures())

    def test_end_to_end_bit_exactness_enforced(self):
        case = check_end_to_end(get_backend("blocked"), REFERENCE)
        assert case.ok and case.max_err == 0.0 and case.tol == 0.0


class TestBackendSelection:
    def test_no_profile_falls_back_to_reference_with_audit(self):
        audit = DecisionAudit()
        choices = select_kernel_backends(("devA", "devB"), 16, audit=audit)
        assert choices == {"devA": DEFAULT_BACKEND, "devB": DEFAULT_BACKEND}
        rec = audit.get(STAGE_BACKEND)
        assert rec is not None
        assert "reference fallback" in rec.notes["devA"]
        assert all(c.chosen for c in rec.candidates)

    def test_measured_profile_picks_fastest_backend(self):
        store = ProfileStore()
        store.ingest_trace(small_trace(device="dev"), tile_size=16)
        store.ingest_trace(
            small_trace(device="dev", scale=0.5), tile_size=16, backend="blocked"
        )
        audit = DecisionAudit()
        choices = select_kernel_backends(("dev",), 16, profile=store, audit=audit)
        assert choices == {"dev": "blocked"}
        rec = audit.get(STAGE_BACKEND)
        assert rec.chosen == "dev=blocked"
        assert rec.margin > 0
        assert set(rec.inputs["dev"]) == {"reference", "blocked"}
        assert rec.inputs["dev"]["blocked"] < rec.inputs["dev"]["reference"]

    def test_unregistered_backend_measurements_are_ignored(self):
        store = ProfileStore()
        store.ingest_trace(
            small_trace(device="dev", scale=0.1), tile_size=16, backend="vendor-x"
        )
        choices = select_kernel_backends(("dev",), 16, profile=store)
        assert choices == {"dev": DEFAULT_BACKEND}

    def test_tile_size_mismatch_falls_back(self):
        store = ProfileStore()
        store.ingest_trace(
            small_trace(device="dev", b=16), tile_size=16, backend="blocked"
        )
        choices = select_kernel_backends(("dev",), 32, profile=store)
        assert choices == {"dev": DEFAULT_BACKEND}

    def test_optimizer_plan_records_backend_stage(self, system, topology):
        store = ProfileStore()
        for dev in system.device_ids:
            store.ingest_trace(small_trace(device=dev), tile_size=16)
            store.ingest_trace(
                small_trace(device=dev, scale=0.5), tile_size=16, backend="blocked"
            )
        audit = DecisionAudit()
        plan = Optimizer(system, topology, profile=store).plan(
            matrix_size=256, tile_size=16, audit=audit
        )
        backends = plan.notes["backends"]
        assert set(backends) == set(plan.participants)
        assert all(b == "blocked" for b in backends.values())
        text = explain_plan(plan)
        assert STAGE_BACKEND in text and "blocked" in text

    def test_optimizer_without_profile_still_notes_backends(self, optimizer):
        plan = optimizer.plan(matrix_size=128, tile_size=16)
        backends = plan.notes["backends"]
        assert set(backends) == set(plan.participants)
        assert all(b == DEFAULT_BACKEND for b in backends.values())

    def test_profile_backend_ranking_orders_by_score(self):
        store = ProfileStore()
        store.ingest_trace(small_trace(device="dev"), tile_size=16)
        store.ingest_trace(
            small_trace(device="dev", scale=3.0), tile_size=16, backend="blocked"
        )
        ranking = store.backend_ranking(device="dev", tile_size=16)
        assert [name for name, _ in ranking] == ["reference", "blocked"]
        scores = [s for _, s in ranking]
        assert scores == sorted(scores)
        assert store.best_backend(device="dev", tile_size=16) == "reference"
