"""Tests for utilities, configuration helpers and the error hierarchy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.errors as errors
from repro.config import reconstruction_rtol, validate_tile_size
from repro.errors import ConfigError, ReproError
from repro.utils import (
    as_square_matrix,
    chunked,
    frobenius_relative_error,
    geometric_sizes,
    human_time,
    is_upper_triangular,
    orthogonality_error,
    require_2d,
    require_same_shape,
)


class TestConfig:
    def test_validate_tile_size(self):
        assert validate_tile_size(16) == 16
        assert validate_tile_size(np.int64(8)) == 8
        with pytest.raises(ConfigError):
            validate_tile_size(0)
        with pytest.raises(ConfigError):
            validate_tile_size(2.5)
        with pytest.raises(ConfigError):
            validate_tile_size(True)

    def test_reconstruction_rtol(self):
        assert reconstruction_rtol(np.float64) < reconstruction_rtol(np.float32)
        with pytest.raises(ConfigError):
            reconstruction_rtol(np.int32)


class TestErrors:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not ReproError:
                if obj.__module__ == "repro.errors":
                    assert issubclass(obj, ReproError), name

    def test_value_error_compatibility(self):
        assert issubclass(errors.TilingError, ValueError)
        assert issubclass(errors.PlanError, ValueError)


class TestShapeHelpers:
    def test_as_square_matrix(self, rng):
        a = rng.standard_normal((4, 4))
        assert as_square_matrix(a) is not None
        with pytest.raises(errors.ShapeError):
            as_square_matrix(rng.standard_normal((4, 5)))
        with pytest.raises(errors.ShapeError):
            as_square_matrix(np.zeros(3))

    def test_require_2d(self):
        with pytest.raises(errors.ShapeError):
            require_2d(np.zeros(3))

    def test_require_same_shape(self):
        require_same_shape(np.zeros((2, 2)), np.ones((2, 2)))
        with pytest.raises(errors.ShapeError):
            require_same_shape(np.zeros((2, 2)), np.zeros((3, 2)))


class TestNumericHelpers:
    def test_frobenius_relative_error(self):
        a = np.eye(3)
        assert frobenius_relative_error(a, a) == 0.0
        assert frobenius_relative_error(2 * a, a) == pytest.approx(1.0)

    def test_frobenius_zero_reference(self):
        assert frobenius_relative_error(np.ones((2, 2)), np.zeros((2, 2))) == 2.0

    def test_is_upper_triangular(self):
        assert is_upper_triangular(np.triu(np.ones((4, 4))))
        assert not is_upper_triangular(np.ones((4, 4)))
        assert is_upper_triangular(np.tril(np.full((3, 3), 1e-12), -1), atol=1e-10)

    def test_orthogonality_error(self):
        q = np.eye(5)
        assert orthogonality_error(q) == 0.0
        assert orthogonality_error(2 * q) > 1.0


class TestMisc:
    def test_human_time(self):
        assert human_time(2e-9).endswith("ns")
        assert human_time(3e-6).endswith("us")
        assert human_time(5e-3).endswith("ms")
        assert human_time(2.0).endswith("s")
        assert human_time(300.0).endswith("min")
        assert human_time(-1.0).startswith("-")
        assert human_time(float("nan")) == "nan"

    def test_geometric_sizes(self):
        sizes = geometric_sizes(100, 1000, 2.0)
        assert sizes[0] == 100
        assert sizes[-1] == 1000
        assert sizes == sorted(set(sizes))
        with pytest.raises(ValueError):
            geometric_sizes(0, 10, 2.0)
        with pytest.raises(ValueError):
            geometric_sizes(10, 5, 2.0)

    def test_chunked(self):
        assert list(chunked([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]
        with pytest.raises(ValueError):
            list(chunked([1], 0))

    @given(st.integers(1, 100), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_property_chunked_covers(self, n, size):
        data = list(range(n))
        chunks = list(chunked(data, size))
        assert sum(chunks, []) == data
        assert all(len(c) <= size for c in chunks)
