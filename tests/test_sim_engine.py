"""Tests for the task-level discrete-event simulator."""

import pytest

from repro.dag import Step, build_dag
from repro.dag.analysis import critical_path_length
from repro.sim import DiscreteEventSimulator, simulate_task_level


def simple_plan(optimizer, n, **kw):
    return optimizer.plan(matrix_size=n, **kw)


class TestEngineBasics:
    def test_all_tasks_executed_once(self, system, topology, optimizer):
        plan = simple_plan(optimizer, 96, num_devices=2)
        dag = build_dag(6, 6)
        trace = simulate_task_level(dag, plan, system, topology)
        assert len(trace.tasks) == len(dag)
        executed = {r.task for r in trace.tasks}
        assert executed == set(dag.tasks)

    def test_dependencies_respected(self, system, topology, optimizer):
        plan = simple_plan(optimizer, 96, num_devices=3)
        dag = build_dag(6, 6)
        trace = simulate_task_level(dag, plan, system, topology)
        end_of = {r.task: r.end for r in trace.tasks}
        start_of = {r.task: r.start for r in trace.tasks}
        for t in dag.tasks:
            for d in dag.preds[t]:
                assert start_of[t] >= end_of[d] - 1e-12, f"{d} -> {t} violated"

    def test_assignment_follows_plan(self, system, topology, optimizer):
        plan = simple_plan(optimizer, 96, num_devices=3)
        dag = build_dag(6, 6)
        trace = simulate_task_level(dag, plan, system, topology)
        for r in trace.tasks:
            if r.task.step in (Step.T, Step.E):
                assert r.device_id == plan.panel_owner(r.task.k)
            else:
                assert r.device_id == plan.column_owner(r.task.col)

    def test_no_slot_overcommit(self, system, topology, optimizer):
        plan = simple_plan(optimizer, 128, num_devices=4)
        dag = build_dag(8, 8)
        trace = simulate_task_level(dag, plan, system, topology)
        trace.validate_no_overlap({d.device_id: d.slots for d in system})

    def test_makespan_at_least_critical_path(self, system, topology, optimizer):
        plan = simple_plan(optimizer, 96, num_devices=2)
        dag = build_dag(6, 6)
        trace = simulate_task_level(dag, plan, system, topology)
        main = system.device(plan.main_device)

        def weight(task):
            return main.time(task.step, 16)

        # Lower bound: the critical path at main-device speeds is not
        # exact (different devices differ), but the chain runs on main,
        # so the panel-chain path bounds from below.
        chain_total = sum(
            main.time(Step.T, 16) + (6 - k - 1) * main.time(Step.E, 16)
            for k in range(6)
        )
        assert trace.makespan >= chain_total - 1e-9

    def test_single_device_no_transfers(self, system, topology, optimizer):
        plan = simple_plan(optimizer, 96, num_devices=1)
        dag = build_dag(6, 6)
        trace = simulate_task_level(dag, plan, system, topology)
        assert trace.transfers == []

    def test_multi_device_has_transfers(self, system, topology, optimizer):
        plan = simple_plan(optimizer, 96, num_devices=3)
        dag = build_dag(6, 6)
        trace = simulate_task_level(dag, plan, system, topology)
        assert len(trace.transfers) > 0
        for t in trace.transfers:
            assert t.src != t.dst
            assert t.end > t.start

    def test_transfer_endpoints_are_participants(self, system, topology, optimizer):
        plan = simple_plan(optimizer, 96, num_devices=2)
        dag = build_dag(6, 6)
        trace = simulate_task_level(dag, plan, system, topology)
        for t in trace.transfers:
            assert t.src in plan.participants
            assert t.dst in plan.participants

    def test_port_serialization(self, system, topology, optimizer):
        """Transfers out of one device never overlap (star topology)."""
        plan = simple_plan(optimizer, 160, num_devices=4)
        dag = build_dag(10, 10)
        trace = simulate_task_level(dag, plan, system, topology)
        by_src = {}
        for t in trace.transfers:
            by_src.setdefault(t.src, []).append((t.start, t.end))
        for src, spans in by_src.items():
            spans.sort()
            for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-12, f"overlapping sends from {src}"

    def test_more_devices_change_makespan(self, system, topology, optimizer):
        dag = build_dag(20, 20)
        t1 = simulate_task_level(
            dag, simple_plan(optimizer, 320, num_devices=1), system, topology
        ).report().makespan
        t3 = simulate_task_level(
            dag, simple_plan(optimizer, 320, num_devices=3), system, topology
        ).report().makespan
        assert t1 != t3

    def test_tt_dag_also_simulates(self, system, topology, optimizer):
        plan = simple_plan(optimizer, 96, num_devices=2)
        dag = build_dag(6, 6, "TT")
        trace = simulate_task_level(dag, plan, system, topology)
        assert len(trace.tasks) == len(dag)

    def test_panel_unit_slower_or_equal_than_ideal(self, system, topology, optimizer):
        plan = simple_plan(optimizer, 320, num_devices=2)
        dag = build_dag(20, 20)
        constrained = DiscreteEventSimulator(system, topology, panel_unit=True).run(dag, plan)
        ideal = DiscreteEventSimulator(system, topology, panel_unit=False).run(dag, plan)
        assert ideal.makespan <= constrained.makespan + 1e-12

    def test_deterministic(self, system, topology, optimizer):
        plan = simple_plan(optimizer, 96, num_devices=3)
        dag = build_dag(6, 6)
        t1 = simulate_task_level(dag, plan, system, topology)
        t2 = simulate_task_level(dag, plan, system, topology)
        assert t1.makespan == t2.makespan
        assert len(t1.transfers) == len(t2.transfers)

    def test_single_tile_grid(self, system, topology, optimizer):
        plan = simple_plan(optimizer, 16, num_devices=1)
        dag = build_dag(1, 1)
        trace = simulate_task_level(dag, plan, system, topology)
        assert len(trace.tasks) == 1
        assert trace.makespan == pytest.approx(
            system.device(plan.main_device).time(Step.T, 16)
        )
