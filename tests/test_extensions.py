"""Tests for the extension subsystems: row-block simulation, autotuning,
trace tooling, scheduler policies, clusters and memory modelling."""

import json

import numpy as np
import pytest

from repro.cluster import ClusterSpec, NodeSpec, cluster_topology
from repro.core.memory import (
    OutOfCoreEstimate,
    check_memory,
    out_of_core_estimate,
    plan_footprint,
)
from repro.dag import build_dag
from repro.dag.tasks import Step
from repro.devices import paper_gtx580, paper_testbed
from repro.devices.autotune import (
    autotune_host_device,
    fit_timing_model,
    measure_host_kernels,
    tuned_tile_size,
)
from repro.errors import DeviceError, PlanError, SimulationError
from repro.sim.engine import DiscreteEventSimulator
from repro.sim.gantt import ascii_gantt, to_chrome_trace
from repro.sim.rowblock import assign_rows, simulate_rowblock_level


class TestRowBlockSimulation:
    def test_assign_rows_cyclic_covers_all(self, system):
        rows = assign_rows(system, list(system.device_ids), 40, 16, "cyclic")
        all_rows = sorted(r for rs in rows.values() for r in rs)
        assert all_rows == list(range(40))

    def test_assign_rows_contiguous_bands(self, system):
        rows = assign_rows(system, list(system.device_ids), 40, 16, "contiguous")
        for rs in rows.values():
            if rs:
                assert rs == list(range(rs[0], rs[-1] + 1))
        all_rows = sorted(r for rs in rows.values() for r in rs)
        assert all_rows == list(range(40))

    def test_faster_devices_get_more_rows(self, system):
        rows = assign_rows(system, list(system.device_ids), 80, 16, "cyclic")
        assert len(rows["gtx680-0"]) > len(rows["cpu-0"])

    def test_unknown_layout(self, system):
        with pytest.raises(SimulationError):
            assign_rows(system, list(system.device_ids), 10, 16, "diagonal")

    def test_simulation_runs_and_reports(self, system, topology):
        rep = simulate_rowblock_level(
            system, list(system.device_ids), 40, 40, 16, topology
        )
        assert rep.makespan > 0
        assert rep.comm_time > 0
        assert rep.meta["fidelity"] == "rowblock-level"

    def test_single_device_no_comm(self, system, topology):
        rep = simulate_rowblock_level(system, ["gtx580-0"], 20, 20, 16, topology)
        assert rep.comm_time == 0.0

    def test_row_tree_beats_column_at_large_n(self, system, topology, optimizer):
        """The panel tree parallelizes the chain the paper serializes."""
        from repro.sim.iteration import simulate_iteration_level

        g = 200
        plan = optimizer.plan(matrix_size=3200, num_devices=4)
        t_col = simulate_iteration_level(plan, g, g, system, topology).makespan
        t_row = simulate_rowblock_level(
            system, list(system.device_ids), g, g, 16, topology
        ).makespan
        assert t_row < t_col

    def test_invalid_inputs(self, system, topology):
        with pytest.raises(SimulationError):
            simulate_rowblock_level(system, [], 10, 10, 16, topology)
        with pytest.raises(SimulationError):
            simulate_rowblock_level(system, ["gtx580-0"], 0, 10, 16, topology)


class TestAutotune:
    def test_synthetic_timer_fit_recovers_model(self):
        """Inject a deterministic timer so the fit target is exact."""
        from repro.kernels.flops import flops_geqrt

        true_overhead = 5e-6
        true_rate = 2e9
        meas = {
            step: {b: true_overhead + fl(b) / true_rate for b in (8, 16, 32, 64)}
            for step, fl in {
                Step.T: flops_geqrt,
                Step.E: flops_geqrt,
                Step.UT: flops_geqrt,
                Step.UE: flops_geqrt,
            }.items()
        }
        # Use the *matching* flop curves so recovery is exact for T only;
        # check T (the aligned one) precisely.
        model = fit_timing_model(
            {Step.T: meas[Step.T], Step.E: meas[Step.E],
             Step.UT: meas[Step.UT], Step.UE: meas[Step.UE]}
        )
        assert model.overheads_s[Step.T] == pytest.approx(true_overhead, rel=1e-6)
        assert model.rates_flops[Step.T] == pytest.approx(true_rate, rel=1e-6)

    def test_fit_needs_two_points(self):
        with pytest.raises(DeviceError):
            fit_timing_model({s: {16: 1e-3} for s in Step})

    def test_measure_host_kernels_structure(self):
        meas = measure_host_kernels([8, 16], repeats=2)
        assert set(meas) == set(Step)
        for per_b in meas.values():
            assert set(per_b) == {8, 16}
            assert all(v > 0 for v in per_b.values())

    def test_measure_rejects_tiny(self):
        with pytest.raises(DeviceError):
            measure_host_kernels([1])

    def test_autotuned_device_usable_in_planner(self):
        dev = autotune_host_device(tile_sizes=[8, 16, 32], repeats=2)
        from repro.core.optimizer import Optimizer
        from repro.devices.registry import make_system

        system = make_system("host", [dev])
        plan = Optimizer(system).plan(matrix_size=256)
        assert plan.main_device == dev.device_id

    def test_tuned_tile_size_returns_candidate(self, system):
        b = tuned_tile_size(system, 640, candidates=[8, 16, 32])
        assert b in (8, 16, 32)


class TestTraceTooling:
    @pytest.fixture
    def trace(self, system, topology, optimizer):
        plan = optimizer.plan(matrix_size=96, num_devices=3)
        dag = build_dag(6, 6)
        return DiscreteEventSimulator(system, topology).run(dag, plan)

    def test_ascii_gantt_rows(self, trace):
        out = ascii_gantt(trace, width=60)
        assert "makespan" in out
        assert "T=triangulation" in out
        # One row per device that executed something.
        devices = {r.device_id for r in trace.tasks}
        for d in devices:
            assert d in out

    def test_ascii_gantt_empty(self):
        from repro.sim.trace import ExecutionTrace

        assert "empty" in ascii_gantt(ExecutionTrace())

    def test_chrome_trace_valid_json(self, trace):
        doc = json.loads(to_chrome_trace(trace))
        events = doc["traceEvents"]
        assert len(events) == len(trace.tasks) + len(trace.transfers)
        kinds = {e["cat"] for e in events}
        assert "T" in kinds and "comm" in kinds
        for e in events:
            assert e["dur"] >= 0


class TestSchedulerPolicies:
    def test_all_policies_complete(self, system, topology, optimizer):
        plan = optimizer.plan(matrix_size=160, num_devices=3)
        dag = build_dag(10, 10)
        spans = {}
        for pol in DiscreteEventSimulator.POLICIES:
            trace = DiscreteEventSimulator(system, topology, policy=pol).run(dag, plan)
            assert len(trace.tasks) == len(dag)
            spans[pol] = trace.makespan
        # Same total work regardless of order.
        busies = {
            pol: None for pol in spans
        }
        assert max(spans.values()) < 2.0 * min(spans.values())

    def test_unknown_policy_rejected(self, system, topology):
        with pytest.raises(SimulationError):
            DiscreteEventSimulator(system, topology, policy="random")


class TestCluster:
    def make(self, n=2):
        base = paper_testbed()
        return ClusterSpec(
            name="c", nodes=tuple(
                NodeSpec(name=f"n{i}", devices=base.devices) for i in range(n)
            )
        )

    def test_flatten_namespaces_ids(self):
        sys_ = self.make(2).flatten()
        assert "n0/gtx580-0" in sys_.device_ids
        assert "n1/gtx580-0" in sys_.device_ids
        assert len(sys_) == 8

    def test_node_of(self):
        c = self.make(2)
        assert c.node_of("n1/cpu-0") == "n1"
        with pytest.raises(DeviceError):
            c.node_of("cpu-0")
        with pytest.raises(DeviceError):
            c.node_of("nope/cpu-0")

    def test_duplicate_node_names_rejected(self):
        base = paper_testbed()
        with pytest.raises(DeviceError):
            ClusterSpec(
                name="bad",
                nodes=(
                    NodeSpec(name="n", devices=base.devices),
                    NodeSpec(name="n", devices=base.devices),
                ),
            )

    def test_topology_hierarchy(self):
        c = self.make(2)
        top = cluster_topology(c)
        intra = top.transfer_time("n0/cpu-0", "n0/gtx580-0", 1e6)
        inter = top.transfer_time("n0/cpu-0", "n1/cpu-0", 1e6)
        inter_gpu = top.transfer_time("n0/gtx580-0", "n1/gtx680-0", 1e6)
        assert intra < inter < inter_gpu

    def test_optimizer_runs_on_cluster(self):
        c = self.make(2)
        sys_ = c.flatten()
        from repro.core.optimizer import Optimizer

        opt = Optimizer(sys_, cluster_topology(c))
        plan = opt.plan(matrix_size=640)
        assert plan.main_device in sys_.device_ids

    def test_total_cores(self):
        assert self.make(3).total_cores == 3 * 3588


class TestMemoryModel:
    def test_footprint_scales_with_columns(self, optimizer):
        plan = optimizer.plan(matrix_size=1600, num_devices=4)
        fp_small = plan_footprint(plan, 100, 100)
        fp_big = plan_footprint(plan, 200, 200)
        for d in plan.participants:
            assert fp_big[d] > fp_small[d]

    def test_total_at_least_matrix_bytes(self, optimizer):
        plan = optimizer.plan(matrix_size=1600, num_devices=4)
        g = 100
        total = sum(plan_footprint(plan, g, g).values())
        assert total >= g * g * 16 * 16 * 4

    def test_check_memory_feasible_small(self, optimizer):
        plan = optimizer.plan(matrix_size=1600)
        rep = check_memory(plan, 100, 100)
        assert rep.feasible
        assert 0.0 < max(rep.utilization().values()) < 1.0

    def test_check_memory_infeasible_huge(self, optimizer):
        plan = optimizer.plan(matrix_size=64000)
        rep = check_memory(plan, 4000, 4000)
        assert not rep.feasible
        assert rep.tightest_device() is not None

    def test_out_of_core_single_pass_when_fits(self, optimizer, topology):
        plan = optimizer.plan(matrix_size=1600)
        est = out_of_core_estimate(plan, 100, 100, 1.0, topology)
        assert est.passes == 1
        assert est.makespan == 1.0
        assert est.extra_bytes == 0.0

    def test_out_of_core_multi_pass_overhead(self, optimizer, topology):
        plan = optimizer.plan(matrix_size=64000)
        est = out_of_core_estimate(plan, 4000, 4000, 100.0, topology)
        assert est.passes > 1
        assert est.makespan > 100.0
        assert est.extra_bytes > 0
        assert est.overhead > 0

    def test_invalid_grid(self, optimizer):
        plan = optimizer.plan(matrix_size=160)
        with pytest.raises(PlanError):
            plan_footprint(plan, 0, 10)


class TestRowBlockProperties:
    """Hypothesis fuzz of the row-block simulator."""

    def test_fuzz_invariants(self, system, topology):
        from hypothesis import given, settings, strategies as st

        @given(
            st.integers(2, 30),
            st.integers(2, 20),
            st.sampled_from(["cyclic", "contiguous"]),
            st.integers(1, 4),
        )
        @settings(max_examples=25, deadline=None)
        def check(g_rows, g_cols, layout, ndev):
            parts = list(system.device_ids)[:ndev]
            rep = simulate_rowblock_level(
                system, parts, g_rows, g_cols, 16, topology, layout=layout
            )
            assert rep.makespan > 0
            assert rep.makespan >= max(rep.compute_busy.values()) - 1e-12
            assert rep.comm_time >= 0
            assert set(rep.compute_busy) <= set(parts)

        check()
