"""Tests for the measure -> model -> schedule loop.

Covers the kernel profile store (ingest, merge laws, timing-model
round-trip), the scheduler decision audit (Alg. 2/3/4 records and
``explain_plan``), and the perf-regression tracker — including the
end-to-end loop the PR exists for: a traced real factorization feeds a
profile store, whose calibrated timing models drive the paper's
scheduling algorithms, whose decisions the audit explains.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.device_count import select_num_devices
from repro.core.main_device import select_main_device
from repro.core.optimizer import Optimizer
from repro.comm.topology import pcie_star
from repro.dag.tasks import Step, Task, TaskKind
from repro.devices.calibration import paper_cpu_i7_3820
from repro.devices.model import KernelTimingModel
from repro.devices.registry import paper_testbed
from repro.errors import ObservabilityError
from repro.observability import (
    DecisionAudit,
    MetricsRegistry,
    ProfileStore,
    Tracer,
    append_record,
    compare_trajectory,
    expand_batched,
    explain_plan,
    kernel_times,
    record_traced_run,
    summarize_trace,
)
from repro.runtime.serial import SerialRuntime
from repro.runtime.threaded import ThreadedRuntime
from repro.sim.trace import ExecutionTrace, TaskRecord

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")

#: One single-tile kind per paper step.
STEP_KIND = {
    Step.T: TaskKind.GEQRT,
    Step.E: TaskKind.TSQRT,
    Step.UT: TaskKind.UNMQR,
    Step.UE: TaskKind.TSMQR,
}


def _valid_task(kind: TaskKind, i: int) -> Task:
    """A structurally valid task of ``kind``, distinct per ``i``."""
    if kind is TaskKind.GEQRT:
        return Task(kind, i, i, i, i)
    if kind is TaskKind.TSQRT:
        return Task(kind, 0, i + 1, 0, 0)
    if kind is TaskKind.UNMQR:
        return Task(kind, 0, 0, 0, i + 1)
    return Task(kind, 0, i + 1, 0, i + 1)  # TSMQR


def model_trace(model: KernelTimingModel, b: int, device: str = "dev", calls: int = 3) -> ExecutionTrace:
    """A synthetic trace whose durations follow ``model`` exactly."""
    tasks = []
    t = 0.0
    for step, kind in STEP_KIND.items():
        dt = model.time(step, b)
        for i in range(calls):
            tasks.append(
                TaskRecord(task=_valid_task(kind, i), device_id=device, start=t, end=t + dt)
            )
            t += dt
    return ExecutionTrace(tasks=tasks, transfers=[])


def small_trace(device: str = "dev", scale: float = 1.0, b: int = 16) -> ExecutionTrace:
    model = KernelTimingModel(
        overheads_s={s: 1e-5 * scale for s in Step},
        rates_flops={s: 1e9 / scale for s in Step},
    )
    return model_trace(model, b, device=device)


class TestProfileStoreIngest:
    def test_ingest_and_stats(self):
        store = ProfileStore()
        store.ingest_trace(small_trace(), tile_size=16, recorded_at="2026-01-01")
        st_ = store.stats("GEQRT", device="dev", tile_size=16)
        assert st_ is not None
        assert st_.count == 3
        assert st_.mean_seconds == pytest.approx(st_.total_seconds / 3)
        assert st_.gflops > 0
        assert store.devices() == ["dev"]
        assert store.tile_sizes() == [16]
        assert "GEQRT" in store.report()

    def test_reingest_identical_is_noop(self):
        store = ProfileStore()
        r1 = store.ingest_trace(small_trace(), tile_size=16)
        r2 = store.ingest_trace(small_trace(), tile_size=16)
        assert r1 == r2
        assert store.num_runs == 1

    def test_same_run_id_different_content_rejected(self):
        store = ProfileStore()
        store.ingest_trace(small_trace(), tile_size=16, run_id="r")
        with pytest.raises(ObservabilityError):
            store.ingest_trace(small_trace(scale=2.0), tile_size=16, run_id="r")

    def test_empty_trace_rejected(self):
        with pytest.raises(ObservabilityError):
            ProfileStore().ingest_trace(ExecutionTrace(tasks=[], transfers=[]), tile_size=16)

    def test_batched_records_credited_per_tile(self):
        """A *_BATCH record counts as ncols per-tile calls of equal time,
        preserving total seconds and keeping stats per-tile comparable."""
        batch = Task(TaskKind.TSMQR_BATCH, 0, 1, 0, 1, col_end=4)
        rec = TaskRecord(task=batch, device_id="d", start=0.0, end=0.3)
        store = ProfileStore()
        store.ingest_trace(ExecutionTrace(tasks=[rec], transfers=[]), tile_size=16)
        st_ = store.stats("TSMQR", device="d", tile_size=16)
        assert st_.count == batch.ncols == 3
        assert st_.total_seconds == pytest.approx(0.3)
        assert st_.mean_seconds == pytest.approx(0.1)

    def test_ingest_metrics_snapshot(self):
        metrics = MetricsRegistry()
        tracer = Tracer(metrics=metrics)
        a = np.random.default_rng(0).standard_normal((64, 64))
        SerialRuntime(tracer=tracer).factorize(a, 16)
        store = ProfileStore()
        store.ingest_metrics(metrics.snapshot(), tile_size=16, device="serial")
        st_ = store.stats("GEQRT", device="serial", tile_size=16)
        assert st_ is not None and st_.count >= 4
        assert st_.p50_seconds > 0

    def test_save_load_roundtrip(self, tmp_path):
        store = ProfileStore()
        store.ingest_trace(small_trace(), tile_size=16, recorded_at="2026-01-01")
        path = store.save(tmp_path / "store.json")
        loaded = ProfileStore.load(path)
        assert loaded.to_json() == store.to_json()

    def test_load_rejects_garbage(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{\"kind\": \"something-else\"}")
        with pytest.raises(ObservabilityError):
            ProfileStore.load(p)
        with pytest.raises(ObservabilityError):
            ProfileStore.load(tmp_path / "missing.json")


def disjoint_stores(seeds: list[int]) -> list[ProfileStore]:
    stores = []
    for seed in seeds:
        s = ProfileStore()
        s.ingest_trace(
            small_trace(device=f"dev-{seed}", scale=1.0 + seed * 0.25),
            tile_size=16,
            recorded_at=f"2026-01-{(seed % 27) + 1:02d}",
        )
        stores.append(s)
    return stores


class TestMergeLaws:
    """`merge` is a keyed union: commutative/associative on disjoint runs."""

    if HAVE_HYPOTHESIS:

        @needs_hypothesis
        @settings(max_examples=25, deadline=None)
        @given(st.lists(st.integers(min_value=0, max_value=40), min_size=3, max_size=3, unique=True))
        def test_merge_laws_hypothesis(self, seeds):
            a, b, c = disjoint_stores(seeds)
            assert a.merge(b).to_json() == b.merge(a).to_json()
            assert a.merge(b).merge(c).to_json() == a.merge(b.merge(c)).to_json()

    @pytest.mark.parametrize("seeds", [[0, 1, 2], [5, 3, 9], [7, 7 + 13, 2]])
    def test_merge_laws_fixed(self, seeds):
        a, b, c = disjoint_stores(seeds)
        assert a.merge(b).to_json() == b.merge(a).to_json()
        assert a.merge(b).merge(c).to_json() == a.merge(b.merge(c)).to_json()

    def test_merge_idempotent_on_shared_run(self):
        a, = disjoint_stores([1])
        merged = a.merge(a)
        assert merged.to_json() == a.to_json()

    def test_merge_conflicting_content_rejected(self):
        a = ProfileStore()
        a.ingest_trace(small_trace(), tile_size=16, run_id="r")
        b = ProfileStore()
        b.ingest_trace(small_trace(scale=3.0), tile_size=16, run_id="r")
        with pytest.raises(ObservabilityError):
            a.merge(b)

    def test_merge_pools_statistics(self):
        a, b = disjoint_stores([0, 1])
        merged = a.merge(b)
        sa = a.stats("GEQRT")
        sb = b.stats("GEQRT")
        sm = merged.stats("GEQRT")
        assert sm.count == sa.count + sb.count
        assert sm.total_seconds == pytest.approx(sa.total_seconds + sb.total_seconds)


class TestTimingModelRoundTrip:
    def test_single_tile_size_exact(self):
        model = paper_cpu_i7_3820().timing
        store = ProfileStore()
        store.ingest_trace(model_trace(model, 32), tile_size=32)
        fitted = store.to_timing_model()
        for step in Step:
            assert fitted.time(step, 32) == pytest.approx(model.time(step, 32), rel=1e-9)

    def test_two_tile_sizes_recover_model(self):
        model = paper_cpu_i7_3820().timing
        store = ProfileStore()
        store.ingest_trace(model_trace(model, 16), tile_size=16, recorded_at="a")
        store.ingest_trace(model_trace(model, 64), tile_size=64, recorded_at="b")
        fitted = store.to_timing_model()
        for step in Step:
            for b in (16, 64):
                assert fitted.time(step, b) == pytest.approx(model.time(step, b), rel=1e-6)

    def test_missing_step_falls_back_to_base(self):
        base = paper_cpu_i7_3820().timing
        rec = TaskRecord(
            task=Task(TaskKind.GEQRT, 0, 0, 0, 0), device_id="d", start=0.0, end=0.5
        )
        store = ProfileStore()
        store.ingest_trace(ExecutionTrace(tasks=[rec], transfers=[]), tile_size=16)
        fitted = store.to_timing_model(base=base)
        assert fitted.time(Step.T, 16) == pytest.approx(0.5)
        assert fitted.time(Step.UE, 16) == pytest.approx(base.time(Step.UE, 16))

    def test_missing_step_without_base_raises(self):
        rec = TaskRecord(
            task=Task(TaskKind.GEQRT, 0, 0, 0, 0), device_id="d", start=0.0, end=0.5
        )
        store = ProfileStore()
        store.ingest_trace(ExecutionTrace(tasks=[rec], transfers=[]), tile_size=16)
        with pytest.raises(ObservabilityError):
            store.to_timing_model()

    def test_real_trace_roundtrips_recorded_seconds(self):
        """`to_timing_model()` on a real single-device recorded trace
        reproduces the recorded mean per-kernel seconds at that size."""
        tracer = Tracer()
        a = np.random.default_rng(1).standard_normal((96, 96))
        SerialRuntime(tracer=tracer).factorize(a, 32)
        trace = tracer.to_trace()
        store = ProfileStore()
        store.ingest_trace(trace, tile_size=32)
        fitted = store.to_timing_model("serial")
        meas = store.step_measurements("serial")
        for step, points in meas.items():
            assert fitted.time(step, 32) == pytest.approx(points[32], rel=1e-6)

    def test_to_device_spec_keeps_identity(self):
        base = paper_cpu_i7_3820()
        store = ProfileStore()
        store.ingest_trace(small_trace(device=base.device_id), tile_size=16)
        spec = store.to_device_spec(base)
        assert spec.device_id == base.device_id
        assert spec.kind == base.kind
        assert spec.time(Step.T, 16) != base.time(Step.T, 16)

    def test_drift_report_lists_measured_steps(self):
        store = ProfileStore()
        store.ingest_trace(small_trace(device="cpu-0"), tile_size=16)
        text = store.drift_report(paper_cpu_i7_3820())
        assert "drift" in text
        assert "cpu-0" in text
        assert "T " in text


class TestBatchedConservation:
    def test_expand_batched_preserves_per_kernel_seconds(self):
        """Regression: expanding a real batched trace must conserve every
        kernel's total seconds (batch kind mapped to its per-tile kind)."""
        tracer = Tracer()
        a = np.random.default_rng(2).standard_normal((128, 128))
        SerialRuntime(tracer=tracer, batch_updates=True).factorize(a, 32)
        trace = tracer.to_trace()
        assert any(r.task.is_batch for r in trace.tasks)
        before = kernel_times(trace)
        expanded = expand_batched(trace)
        after = kernel_times(expanded)
        merged = {}
        for kind, secs in before.items():
            merged[TaskKind(kind).single.value] = (
                merged.get(TaskKind(kind).single.value, 0.0) + secs
            )
        assert set(after) == set(merged)
        for kind, secs in merged.items():
            assert after[kind] == pytest.approx(secs, rel=1e-9)
        # the summary sees the same totals
        summary = summarize_trace(expanded)
        for kind, secs in merged.items():
            assert summary.kernel_seconds[kind] == pytest.approx(secs, rel=1e-9)


class TestDecisionAudit:
    def test_plan_records_all_three_stages(self):
        audit = DecisionAudit()
        plan = Optimizer(paper_testbed()).plan(matrix_size=2048, tile_size=512, audit=audit)
        stages = [r.stage for r in audit.records]
        assert stages == [
            "main_device", "device_count", "distribution", "kernel_backend",
        ]
        assert plan.notes["audit"] is audit
        main_rec = audit.get("main_device")
        assert main_rec.chosen == plan.main_device
        assert "kernel_seconds" in main_rec.inputs
        count_rec = audit.get("device_count")
        assert count_rec.chosen == f"p={plan.notes['optimal_num_devices']}"
        assert all("total" in c.metrics for c in count_rec.candidates)

    def test_plan_creates_audit_by_default(self):
        plan = Optimizer(paper_testbed()).plan(matrix_size=1024, tile_size=256)
        assert isinstance(plan.notes["audit"], DecisionAudit)

    def test_explain_plan_text(self):
        plan = Optimizer(paper_testbed()).plan(matrix_size=2048, tile_size=512)
        text = explain_plan(plan)
        assert "[main_device]" in text
        assert "[device_count]" in text
        assert "[distribution]" in text
        assert "margin" in text
        assert "candidates:" in text

    def test_explain_plan_without_audit(self):
        plan = Optimizer(paper_testbed()).plan(matrix_size=1024, tile_size=256)
        object.__setattr__(plan, "notes", {})
        assert "no decision audit" in explain_plan(plan)

    def test_audit_serializes_to_json(self):
        audit = DecisionAudit()
        Optimizer(paper_testbed()).plan(matrix_size=2048, tile_size=512, audit=audit)
        doc = audit.to_dict()
        json.dumps(doc)  # must be JSONL-meta safe
        assert len(doc["decisions"]) == 4

    def test_single_device_system_records_shortcut(self):
        from repro.devices.registry import SystemSpec

        sys1 = SystemSpec(name="one", devices=(paper_cpu_i7_3820(),))
        audit = DecisionAudit()
        select_main_device(sys1, 4, 4, 32, audit=audit)
        rec = audit.get("main_device")
        assert rec.metric == "only_device"


class TestEndToEndLoop:
    """The acceptance-criteria loop: trace -> store -> Alg. 2/3 on
    measured numbers -> audit explains the same choices the algorithms
    make when called directly."""

    def test_measured_loop_matches_direct_calls(self):
        tracer = Tracer()
        a = np.random.default_rng(3).standard_normal((96, 96))
        ThreadedRuntime(num_workers=2, tracer=tracer).factorize(a, 32)
        store = ProfileStore()
        store.ingest_trace(tracer.to_trace(), tile_size=32)
        system = store.to_system()
        assert sorted(system.device_ids) == ["worker-0", "worker-1"]

        audit = DecisionAudit()
        opt = Optimizer(system)
        plan = opt.plan(matrix_size=96, tile_size=32, audit=audit)

        # same choices as calling the algorithms directly on the same
        # measured system
        direct_main = select_main_device(system, 3, 3, 32)
        assert plan.main_device == direct_main
        topo = pcie_star(system.devices)
        direct_p, _table = select_num_devices(system, direct_main, 3, 3, 32, topo)
        assert plan.notes["optimal_num_devices"] == direct_p

        # the audit exposes the measured inputs and per-candidate numbers
        text = explain_plan(plan)
        assert "kernel_seconds" in text
        for d in system.device_ids:
            assert d in text
        count_rec = audit.get("device_count")
        assert f"p={direct_p}" == count_rec.chosen
        assert len(count_rec.candidates) == len(system.device_ids)
        main_rec = audit.get("main_device")
        assert main_rec.margin >= 0.0
        # measured kernel seconds in the audit match the store's fit
        fitted = store.to_timing_model(direct_main)
        recorded = main_rec.inputs["kernel_seconds"][direct_main]
        for step in Step:
            assert recorded[step.value] == pytest.approx(
                fitted.time(step, 32), rel=1e-9
            )

    def test_store_overrides_base_system(self):
        base = paper_testbed()
        store = ProfileStore()
        store.ingest_trace(small_trace(device="cpu-0", scale=4.0), tile_size=16)
        system = store.to_system(base=base)
        assert set(system.device_ids) == set(base.device_ids)
        assert system.device("cpu-0").time(Step.T, 16) != base.device("cpu-0").time(Step.T, 16)
        assert system.device("gtx580-0").time(Step.T, 16) == base.device("gtx580-0").time(Step.T, 16)


class TestPerfTracker:
    def _write(self, path, speedups):
        for s in speedups:
            append_record(
                path,
                "batched_updates",
                [{"grid": 8, "tile_size": 16, "speedup": s}],
            )

    def test_improvement_passes(self, tmp_path):
        p = tmp_path / "BENCH_batched_updates.json"
        self._write(p, [3.0, 3.2, 3.4])
        report = compare_trajectory(p)
        assert report.ok
        assert report.rows[0].baseline == pytest.approx(3.1)
        assert report.rows[0].newest == pytest.approx(3.4)

    def test_injected_regression_fails(self, tmp_path):
        p = tmp_path / "BENCH_batched_updates.json"
        self._write(p, [3.0, 3.2, 3.1 * 0.75])  # >20% below the median baseline
        report = compare_trajectory(p)
        assert not report.ok
        assert report.regressions[0].metric == "speedup"
        assert "REGRESSED" in report.to_text()

    def test_small_wobble_within_threshold_passes(self, tmp_path):
        p = tmp_path / "BENCH_batched_updates.json"
        self._write(p, [3.0, 3.2, 2.9])
        assert compare_trajectory(p).ok

    def test_lower_is_better_direction(self, tmp_path):
        p = tmp_path / "BENCH_traced.json"
        for s in (1.0, 1.0, 1.5):
            append_record(
                p,
                "traced_run",
                [{"runtime": "serial", "n": 96, "tile_size": 16, "makespan_seconds": s}],
            )
        report = compare_trajectory(p)
        assert not report.ok  # makespan rose 50%

    def test_single_record_skipped(self, tmp_path):
        p = tmp_path / "BENCH_batched_updates.json"
        self._write(p, [3.0])
        report = compare_trajectory(p)
        assert report.ok
        assert report.skipped

    def test_unknown_benchmark_is_informational(self, tmp_path):
        p = tmp_path / "BENCH_custom.json"
        for v in (1.0, 10.0):
            append_record(p, "custom_thing", [{"case": "x", "value": v}])
        report = compare_trajectory(p)
        assert report.ok  # 10x delta, but nothing gated
        assert report.rows and not report.rows[0].gated

    def test_record_traced_run(self, tmp_path):
        tracer = Tracer()
        a = np.random.default_rng(4).standard_normal((64, 64))
        SerialRuntime(tracer=tracer).factorize(a, 16)
        p = record_traced_run(tmp_path / "BENCH_t.json", "serial", 64, 16, tracer.to_trace())
        doc = json.loads(p.read_text())
        case = doc[0]["cases"][0]
        assert case["runtime"] == "serial"
        assert case["makespan_seconds"] > 0
        assert case["compute_busy_seconds"] > 0

    def test_load_rejects_garbage(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("not json")
        with pytest.raises(ObservabilityError):
            compare_trajectory(p)
