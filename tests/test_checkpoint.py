"""Tests for factorization checkpointing."""

import numpy as np
import pytest

from repro.runtime import tiled_qr
from repro.runtime.checkpoint import (
    CheckpointError,
    load_factorization,
    save_factorization,
)


class TestCheckpoint:
    @pytest.mark.parametrize(
        "shape,b,elim",
        [((64, 64), 16, "TS"), ((50, 50), 16, "TS"), ((48, 48), 16, "TT"),
         ((80, 48), 16, "TS")],
    )
    def test_roundtrip_preserves_everything(self, rng, tmp_path, shape, b, elim):
        a = rng.standard_normal(shape)
        f = tiled_qr(a, b, elimination=elim)
        path = tmp_path / "fact.npz"
        save_factorization(f, path)
        g = load_factorization(path)
        np.testing.assert_array_equal(g.r_dense(), f.r_dense())
        np.testing.assert_allclose(g.q_dense(), f.q_dense(), atol=1e-13)
        assert g.shape == f.shape
        assert g.tile_size == f.tile_size

    def test_restored_solve(self, rng, tmp_path):
        a = rng.standard_normal((64, 64)) + 6 * np.eye(64)
        f = tiled_qr(a, 16)
        path = tmp_path / "fact.npz"
        save_factorization(f, path)
        g = load_factorization(path)
        x = rng.standard_normal(64)
        np.testing.assert_allclose(g.solve(a @ x), x, atol=1e-8)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_factorization(tmp_path / "nope.npz")

    def test_truncated_file(self, rng, tmp_path):
        f = tiled_qr(rng.standard_normal((32, 32)), 16)
        path = tmp_path / "fact.npz"
        save_factorization(f, path)
        # Corrupt: rewrite with a subset of arrays.
        with np.load(path) as data:
            keep = {k: data[k] for k in list(data.files)[:2]}
        np.savez(path, **keep)
        with pytest.raises(CheckpointError):
            load_factorization(path)

    def test_float32_roundtrip(self, rng, tmp_path):
        a = rng.standard_normal((48, 48)).astype(np.float32)
        f = tiled_qr(a, 16)
        path = tmp_path / "f32.npz"
        save_factorization(f, path)
        g = load_factorization(path)
        assert g.r_dense().dtype == np.float32
        err = np.linalg.norm(g.apply_q(g.r_dense()) - a) / np.linalg.norm(a)
        assert err < 5e-6
