"""Tests for the baseline plans and sequential reference."""

import numpy as np
import pytest

from repro.baselines import (
    cores_based_plan,
    even_plan,
    forced_main_plan,
    no_main_plan,
    round_robin_plan,
    sequential_qr,
    sequential_time_estimate,
)
from repro.errors import PlanError


class TestEvenPlan:
    def test_equal_column_shares(self, system):
        plan = even_plan(system, "gtx580-0")
        owners = plan.owners(400)[1:]  # column 0 is pinned to main
        counts = {d: owners.count(d) for d in plan.participants}
        assert max(counts.values()) - min(counts.values()) <= 2

    def test_participants_subset(self, system):
        gpus = [d.device_id for d in system.gpus()]
        plan = even_plan(system, "gtx580-0", participants=gpus)
        assert set(plan.participants) == set(gpus)

    def test_main_must_participate(self, system):
        with pytest.raises(PlanError):
            even_plan(system, "cpu-0", participants=["gtx580-0"])


class TestCoresBasedPlan:
    def test_shares_proportional_to_cores(self, system):
        plan = cores_based_plan(system, "gtx580-0")
        owners = plan.owners(10000)[1:]
        n680 = owners.count("gtx680-0")
        n580 = owners.count("gtx580-0")
        assert n680 / max(n580, 1) == pytest.approx(1536 / 512, rel=0.1)

    def test_cpu_nearly_starved(self, system):
        plan = cores_based_plan(system, "gtx580-0")
        owners = plan.owners(4000)
        assert owners.count("cpu-0") < 0.01 * len(owners)


class TestRoundRobinPlan:
    def test_cycles_in_order(self, system):
        plan = round_robin_plan(system, "gtx580-0", participants=["gtx580-0", "gtx680-0"])
        assert plan.column_owner(1) == "gtx680-0"
        assert plan.column_owner(2) == "gtx580-0"


class TestForcedMainPlan:
    def test_main_respected(self, system):
        plan = forced_main_plan(system, "gtx680-1", 50, 50, 16)
        assert plan.main_device == "gtx680-1"
        assert plan.panel_owner(3) == "gtx680-1"

    def test_unknown_device(self, system):
        with pytest.raises(PlanError):
            forced_main_plan(system, "nope", 10, 10)

    def test_explicit_participants(self, system):
        plan = forced_main_plan(
            system, "gtx580-0", 50, 50, 16,
            participants=["gtx580-0", "cpu-0"],
        )
        assert set(plan.participants) == {"gtx580-0", "cpu-0"}


class TestNoMainPlan:
    def test_panels_follow_columns(self, system):
        plan = no_main_plan(system, 50, 50, 16)
        assert plan.panel_follows_column
        owners = {plan.panel_owner(k) for k in range(20)}
        assert len(owners) > 1  # panels actually migrate

    def test_gpus_only_by_default(self, system):
        plan = no_main_plan(system, 50, 50, 16)
        assert "cpu-0" not in set(plan.guide_array)

    def test_cpu_included_when_requested(self, system):
        plan = no_main_plan(system, 50, 50, 16, gpus_only_panels=False)
        assert "cpu-0" in plan.participants


class TestSequential:
    def test_qr_correct(self, rng):
        a = rng.standard_normal((20, 12))
        q, r = sequential_qr(a)
        np.testing.assert_allclose(q @ r, a, atol=1e-10)

    def test_time_estimate_positive_and_cubic(self, system):
        dev = system.device("gtx580-0")
        t1 = sequential_time_estimate(dev, 1000, 16)
        t2 = sequential_time_estimate(dev, 2000, 16)
        assert t1 > 0
        assert t2 / t1 == pytest.approx(8.0, rel=0.01)
