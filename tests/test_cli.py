"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "fig9" in out

    def test_plan(self, capsys):
        assert main(["plan", "640"]) == 0
        out = capsys.readouterr().out
        assert "main=gtx580-0" in out
        assert "selected" in out

    def test_plan_custom_tile(self, capsys):
        assert main(["plan", "640", "--tile-size", "32"]) == 0
        assert "b=32" in capsys.readouterr().out

    def test_experiment_quick(self, capsys):
        assert main(["experiment", "table1", "--quick"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "nope"]) == 2

    def test_factorize(self, capsys):
        assert main(["factorize", "96"]) == 0
        out = capsys.readouterr().out
        assert "||A - QR||/||A||" in out

    def test_factorize_too_large(self):
        assert main(["factorize", "99999"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_gantt(self, capsys):
        assert main(["gantt", "160", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "T=triangulation" in out

    def test_gantt_too_large(self):
        assert main(["gantt", "99999"]) == 2

    def test_selfcheck(self, capsys):
        assert main(["selfcheck"]) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_experiment_out_json(self, capsys, tmp_path):
        out = tmp_path / "res.json"
        assert main(["experiment", "table1", "--quick", "--out", str(out)]) == 0
        import json

        data = json.loads(out.read_text())
        assert data[0]["name"] == "table1"
        assert data[0]["rows"]


class TestTraceCLI:
    def test_trace_record_and_summarize(self, capsys, tmp_path):
        out = tmp_path / "real.jsonl"
        assert main(["trace", "96", "--runtime", "serial", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "per-kernel time share" in text
        assert "critical path" in text
        assert "device utilization" in text
        assert "achieved GFLOP/s" in text
        assert out.exists()
        # summarize the file we just wrote
        assert main(["trace", str(out)]) == 0
        assert "per-kernel time share" in capsys.readouterr().out

    def test_trace_diff_against_simulation(self, capsys):
        assert main(["trace", "96", "--runtime", "threaded", "--diff"]) == 0
        text = capsys.readouterr().out
        assert "sim-vs-real prediction error" in text
        assert "task sets match" in text
        assert "GEQRT" in text

    def test_trace_diff_two_files(self, capsys, tmp_path):
        out = tmp_path / "real.jsonl"
        assert main(["trace", "64", "--runtime", "serial", "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["trace", str(out), "--diff", str(out)]) == 0
        text = capsys.readouterr().out
        assert "task sets match" in text

    def test_trace_file_diff_needs_operand(self, tmp_path, capsys):
        out = tmp_path / "real.jsonl"
        assert main(["trace", "64", "--runtime", "serial", "--out", str(out)]) == 0
        assert main(["trace", str(out), "--diff"]) == 2

    def test_trace_rejects_bad_target(self):
        assert main(["trace", "not-a-thing.jsonl"]) == 2

    def test_trace_rejects_huge_n(self):
        assert main(["trace", "99999"]) == 2


class TestPlanExplainCLI:
    def test_plan_explain(self, capsys):
        assert main(["plan", "2048", "--tile-size", "512", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "[main_device]" in out
        assert "[device_count]" in out
        assert "[distribution]" in out
        assert "margin" in out
        assert "candidates:" in out

    def test_plan_profile_store(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        store = tmp_path / "store.json"
        assert main(
            ["trace", "96", "--tile-size", "32", "--runtime", "threaded",
             "--workers", "2", "--out", str(trace), "--profile-out", str(store)]
        ) == 0
        capsys.readouterr()
        assert store.exists()
        assert main(
            ["plan", "96", "--tile-size", "32", "--profile", str(store), "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "using measured kernel times" in out
        assert "[main_device]" in out

    def test_plan_profile_missing_file(self, capsys, tmp_path):
        assert main(
            ["plan", "96", "--profile", str(tmp_path / "nope.json")]
        ) == 2


class TestTraceExportCLI:
    def test_trace_chrome_export(self, capsys, tmp_path):
        chrome = tmp_path / "chrome.json"
        assert main(
            ["trace", "64", "--runtime", "serial", "--chrome", str(chrome)]
        ) == 0
        assert "Chrome trace written" in capsys.readouterr().out
        import json

        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        assert any(e["cat"] == "T" for e in doc["traceEvents"])

    def test_trace_chrome_batch_args(self, tmp_path):
        chrome = tmp_path / "chrome.json"
        assert main(
            ["trace", "96", "--tile-size", "32", "--runtime", "serial",
             "--batch-updates", "--chrome", str(chrome)]
        ) == 0
        import json

        doc = json.loads(chrome.read_text())
        batched = [e for e in doc["traceEvents"] if "col_end" in e.get("args", {})]
        assert batched
        assert all(e["args"]["tiles"] == e["args"]["col_end"] - e["args"]["col"]
                   for e in batched)

    def test_trace_chrome_from_file(self, capsys, tmp_path):
        out = tmp_path / "t.jsonl"
        chrome = tmp_path / "c.json"
        assert main(["trace", "64", "--runtime", "serial", "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["trace", str(out), "--chrome", str(chrome)]) == 0
        assert chrome.exists()

    def test_trace_meta_provenance(self, tmp_path):
        import json

        out = tmp_path / "t.jsonl"
        assert main(
            ["trace", "64", "--runtime", "serial", "--out", str(out)]
        ) == 0
        header = json.loads(out.read_text().splitlines()[0])
        assert header["type"] == "meta" and header["schema"] == 1
        for key in ("host", "grid", "elimination", "batch_updates", "runtime"):
            assert key in header

    def test_trace_meta_decisions_multiprocess(self, tmp_path):
        import json

        out = tmp_path / "t.jsonl"
        assert main(
            ["trace", "96", "--tile-size", "32", "--runtime", "multiprocess",
             "--out", str(out)]
        ) == 0
        header = json.loads(out.read_text().splitlines()[0])
        stages = [d["stage"] for d in header["decisions"]]
        assert "main_device" in stages and "device_count" in stages


class TestPerfCLI:
    def _write(self, path, speedups):
        from repro.observability import append_record

        for s in speedups:
            append_record(
                path, "batched_updates",
                [{"grid": 8, "tile_size": 16, "speedup": s}],
            )

    def test_perf_ok_exit_zero(self, capsys, tmp_path):
        p = tmp_path / "BENCH_x.json"
        self._write(p, [3.0, 3.1])
        assert main(["perf", str(p), "--check"]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_perf_regression_exit_nonzero(self, capsys, tmp_path):
        p = tmp_path / "BENCH_x.json"
        self._write(p, [3.0, 3.0, 2.0])  # 33% drop
        assert main(["perf", str(p), "--check"]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_perf_committed_trajectories_pass(self, capsys):
        """The repo's committed BENCH_*.json must be regression-free."""
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        paths = sorted(repo_root.glob("BENCH_*.json"))
        assert paths, "committed benchmark trajectories are missing"
        assert main(["perf", *[str(p) for p in paths], "--check"]) == 0

    def test_perf_no_trajectories(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["perf", "--check"]) == 2
        assert main(["perf"]) == 0

    def test_perf_threshold_flag(self, tmp_path):
        p = tmp_path / "BENCH_x.json"
        self._write(p, [3.0, 2.8])  # ~7% drop
        assert main(["perf", str(p), "--check", "--threshold", "0.05"]) == 1
        assert main(["perf", str(p), "--check", "--threshold", "0.20"]) == 0

    def test_trace_perf_out_roundtrip(self, capsys, tmp_path):
        p = tmp_path / "BENCH_traced.json"
        for _ in range(2):
            assert main(
                ["trace", "64", "--runtime", "serial", "--perf-out", str(p)]
            ) == 0
        capsys.readouterr()
        assert main(["perf", str(p)]) == 0
        assert "traced_run" in capsys.readouterr().out


class TestExitCodes:
    """Each failure class maps to its own documented exit code.

    The contract lives in docs/API.md: 0 ok, 1 unclassified failure,
    2 configuration, 4 numerical, 5 infrastructure (worker death /
    hang / timeout / injected fault), 130 interrupted.
    """

    def _plan(self, tmp_path, specs, seed=0):
        from repro.resilience import FaultPlan

        path = tmp_path / "plan.json"
        FaultPlan(specs, seed=seed).save(path)
        return str(path)

    def test_exit_code_constants(self):
        from repro.cli import (
            EXIT_CONFIG,
            EXIT_FAILURE,
            EXIT_INFRASTRUCTURE,
            EXIT_INTERRUPTED,
            EXIT_NUMERICAL,
            EXIT_OK,
        )

        codes = [EXIT_OK, EXIT_FAILURE, EXIT_CONFIG, EXIT_NUMERICAL,
                 EXIT_INFRASTRUCTURE, EXIT_INTERRUPTED]
        assert codes == [0, 1, 2, 4, 5, 130]
        assert len(set(codes)) == len(codes)

    def test_config_errors_exit_2(self, capsys):
        assert main(["factorize", "99999"]) == 2
        assert main(["chaos", "64", "--plan", "/no/such/plan.json"]) == 2
        capsys.readouterr()

    def test_injected_fault_exits_5(self, tmp_path, capsys):
        from repro.resilience import FaultKind, FaultSpec

        plan = self._plan(
            tmp_path,
            [FaultSpec(FaultKind.EXCEPTION, task_kind="GEQRT", times=99)],
        )
        code = main([
            "chaos", "64", "--plan", plan,
            "--runtime", "serial", "--max-attempts", "2",
        ])
        capsys.readouterr()
        assert code == 5

    def test_numerical_fault_exits_4(self, tmp_path, capsys):
        from repro.resilience import FaultKind, FaultSpec

        plan = self._plan(
            tmp_path,
            [FaultSpec(FaultKind.CORRUPT_NAN, task_kind="GEQRT", times=99)],
        )
        code = main([
            "chaos", "64", "--plan", plan,
            "--runtime", "serial", "--max-attempts", "2", "--health-checks",
        ])
        capsys.readouterr()
        assert code == 4

    def test_postmortem_exit_codes(self, tmp_path, capsys):
        from repro.resilience import FaultKind, FaultSpec

        plan = self._plan(
            tmp_path,
            [FaultSpec(FaultKind.EXCEPTION, task_kind="GEQRT", times=99)],
        )
        bundle = tmp_path / "fail.zip"
        assert main([
            "chaos", "64", "--plan", plan,
            "--runtime", "serial", "--max-attempts", "2",
            "--bundle-out", str(bundle),
        ]) == 5
        assert bundle.is_file()
        assert main(["postmortem", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "injected-fault" in out
        junk = tmp_path / "junk.zip"
        junk.write_text("not a bundle")
        assert main(["postmortem", str(junk)]) == 2
        capsys.readouterr()
