"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "fig9" in out

    def test_plan(self, capsys):
        assert main(["plan", "640"]) == 0
        out = capsys.readouterr().out
        assert "main=gtx580-0" in out
        assert "selected" in out

    def test_plan_custom_tile(self, capsys):
        assert main(["plan", "640", "--tile-size", "32"]) == 0
        assert "b=32" in capsys.readouterr().out

    def test_experiment_quick(self, capsys):
        assert main(["experiment", "table1", "--quick"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "nope"]) == 2

    def test_factorize(self, capsys):
        assert main(["factorize", "96"]) == 0
        out = capsys.readouterr().out
        assert "||A - QR||/||A||" in out

    def test_factorize_too_large(self):
        assert main(["factorize", "99999"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_gantt(self, capsys):
        assert main(["gantt", "160", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "T=triangulation" in out

    def test_gantt_too_large(self):
        assert main(["gantt", "99999"]) == 2

    def test_selfcheck(self, capsys):
        assert main(["selfcheck"]) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_experiment_out_json(self, capsys, tmp_path):
        out = tmp_path / "res.json"
        assert main(["experiment", "table1", "--quick", "--out", str(out)]) == 0
        import json

        data = json.loads(out.read_text())
        assert data[0]["name"] == "table1"
        assert data[0]["rows"]


class TestTraceCLI:
    def test_trace_record_and_summarize(self, capsys, tmp_path):
        out = tmp_path / "real.jsonl"
        assert main(["trace", "96", "--runtime", "serial", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "per-kernel time share" in text
        assert "critical path" in text
        assert "device utilization" in text
        assert "achieved GFLOP/s" in text
        assert out.exists()
        # summarize the file we just wrote
        assert main(["trace", str(out)]) == 0
        assert "per-kernel time share" in capsys.readouterr().out

    def test_trace_diff_against_simulation(self, capsys):
        assert main(["trace", "96", "--runtime", "threaded", "--diff"]) == 0
        text = capsys.readouterr().out
        assert "sim-vs-real prediction error" in text
        assert "task sets match" in text
        assert "GEQRT" in text

    def test_trace_diff_two_files(self, capsys, tmp_path):
        out = tmp_path / "real.jsonl"
        assert main(["trace", "64", "--runtime", "serial", "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["trace", str(out), "--diff", str(out)]) == 0
        text = capsys.readouterr().out
        assert "task sets match" in text

    def test_trace_file_diff_needs_operand(self, tmp_path, capsys):
        out = tmp_path / "real.jsonl"
        assert main(["trace", "64", "--runtime", "serial", "--out", str(out)]) == 0
        assert main(["trace", str(out), "--diff"]) == 2

    def test_trace_rejects_bad_target(self):
        assert main(["trace", "not-a-thing.jsonl"]) == 2

    def test_trace_rejects_huge_n(self):
        assert main(["trace", "99999"]) == 2
