"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "fig9" in out

    def test_plan(self, capsys):
        assert main(["plan", "640"]) == 0
        out = capsys.readouterr().out
        assert "main=gtx580-0" in out
        assert "selected" in out

    def test_plan_custom_tile(self, capsys):
        assert main(["plan", "640", "--tile-size", "32"]) == 0
        assert "b=32" in capsys.readouterr().out

    def test_experiment_quick(self, capsys):
        assert main(["experiment", "table1", "--quick"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "nope"]) == 2

    def test_factorize(self, capsys):
        assert main(["factorize", "96"]) == 0
        out = capsys.readouterr().out
        assert "||A - QR||/||A||" in out

    def test_factorize_too_large(self):
        assert main(["factorize", "99999"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_gantt(self, capsys):
        assert main(["gantt", "160", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "T=triangulation" in out

    def test_gantt_too_large(self):
        assert main(["gantt", "99999"]) == 2

    def test_selfcheck(self, capsys):
        assert main(["selfcheck"]) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_experiment_out_json(self, capsys, tmp_path):
        out = tmp_path / "res.json"
        assert main(["experiment", "table1", "--quick", "--out", str(out)]) == 0
        import json

        data = json.loads(out.read_text())
        assert data[0]["name"] == "table1"
        assert data[0]["rows"]
