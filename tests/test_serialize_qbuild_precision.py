"""Tests for plan serialization, tiled Q generation, and float32 support."""

import json

import numpy as np
import pytest

from repro.core.serialize import (
    device_from_dict,
    device_to_dict,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
    system_from_dict,
    system_to_dict,
)
from repro.dag.tasks import Step
from repro.devices import paper_gtx580, paper_testbed
from repro.errors import PlanError
from repro.kernels.flops import flops_orgqr
from repro.runtime import tiled_qr


class TestDeviceSerialization:
    def test_roundtrip(self):
        dev = paper_gtx580()
        restored = device_from_dict(device_to_dict(dev))
        assert restored == dev
        for s in Step:
            assert restored.timing.time(s, 16) == dev.timing.time(s, 16)

    def test_memory_preserved(self):
        dev = paper_gtx580()
        assert device_from_dict(device_to_dict(dev)).memory_bytes == dev.memory_bytes

    def test_malformed_rejected(self):
        with pytest.raises(PlanError):
            device_from_dict({"device_id": "x"})


class TestSystemSerialization:
    def test_roundtrip(self, system):
        restored = system_from_dict(system_to_dict(system))
        assert restored.device_ids == system.device_ids
        assert restored.total_cores == system.total_cores

    def test_missing_key(self):
        with pytest.raises(PlanError):
            system_from_dict({"name": "x"})


class TestPlanSerialization:
    def test_dict_roundtrip(self, optimizer):
        plan = optimizer.plan(matrix_size=640)
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.main_device == plan.main_device
        assert restored.participants == plan.participants
        assert restored.guide_array == plan.guide_array
        assert restored.tile_size == plan.tile_size
        # Ownership function identical.
        for j in range(50):
            assert restored.column_owner(j) == plan.column_owner(j)

    def test_json_roundtrip(self, optimizer):
        plan = optimizer.plan(matrix_size=640, panel_follows_column=False)
        text = plan_to_json(plan)
        json.loads(text)  # valid JSON
        restored = plan_from_json(text)
        assert restored.describe().split(":")[1] == plan.describe().split(":")[1]

    def test_restored_plan_simulates(self, optimizer, system, topology):
        from repro.sim import simulate_iteration_level

        plan = optimizer.plan(matrix_size=320, num_devices=3)
        restored = plan_from_json(plan_to_json(plan))
        t1 = simulate_iteration_level(plan, 20, 20, system, topology).makespan
        t2 = simulate_iteration_level(restored, 20, 20, restored.system, topology).makespan
        assert t1 == pytest.approx(t2)

    def test_invalid_json(self):
        with pytest.raises(PlanError):
            plan_from_json("{not json")

    def test_missing_field(self, optimizer):
        d = plan_to_dict(optimizer.plan(matrix_size=160))
        del d["guide_array"]
        with pytest.raises(PlanError):
            plan_from_dict(d)

    def test_tampered_plan_validated(self, optimizer):
        d = plan_to_dict(optimizer.plan(matrix_size=160))
        d["main_device"] = "bogus"
        with pytest.raises(PlanError):
            plan_from_dict(d)


class TestTiledQBuild:
    def test_matches_dense_q(self, rng):
        a = rng.standard_normal((64, 64))
        f = tiled_qr(a, 16)
        np.testing.assert_allclose(f.q_tiled().to_dense(), f.q_dense(), atol=1e-12)

    def test_padded(self, rng):
        a = rng.standard_normal((50, 50))
        f = tiled_qr(a, 16)
        np.testing.assert_allclose(f.q_tiled().to_dense(), f.q_dense(), atol=1e-12)

    def test_rectangular(self, rng):
        a = rng.standard_normal((48, 24))
        f = tiled_qr(a, 8)
        q = f.q_tiled().to_dense()
        assert q.shape == (48, 48)
        np.testing.assert_allclose(q @ f.r_dense(), a, atol=1e-9)

    def test_orgqr_flops_positive_and_cubic(self):
        assert flops_orgqr(10, 10, 16) > 0
        assert flops_orgqr(20, 20, 16) / flops_orgqr(10, 10, 16) > 6.0


class TestFloat32:
    def test_factorization_stays_f32(self, rng):
        a = rng.standard_normal((64, 64)).astype(np.float32)
        f = tiled_qr(a, 16)
        assert f.r.dtype == np.float32
        assert f.r_dense().dtype == np.float32

    def test_f32_accuracy_at_machine_eps(self, rng):
        a = rng.standard_normal((96, 96)).astype(np.float32)
        f = tiled_qr(a, 16)
        err = np.linalg.norm(f.apply_q(f.r_dense()) - a) / np.linalg.norm(a)
        assert err < 5e-6
        assert err > 1e-9  # genuinely single precision, not silently f64

    def test_f32_tt_elimination(self, rng):
        a = rng.standard_normal((64, 64)).astype(np.float32)
        f = tiled_qr(a, 16, elimination="TT")
        assert f.r.dtype == np.float32
        err = np.linalg.norm(f.apply_q(f.r_dense()) - a) / np.linalg.norm(a)
        assert err < 5e-6

    def test_f32_solve(self, rng):
        a = (rng.standard_normal((48, 48)) + 8 * np.eye(48)).astype(np.float32)
        x = rng.standard_normal(48).astype(np.float32)
        f = tiled_qr(a, 16)
        got = f.solve(a @ x)
        assert np.linalg.norm(got - x) / np.linalg.norm(x) < 1e-4
