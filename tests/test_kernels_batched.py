"""Batched row-panel update kernels and the ``batch_updates`` path.

Covers the whole stack: the fused kernels agree with per-tile loops
(property-tested), the coarsened DAG is dependency-equivalent to the
unfused one, all three runtimes produce bit-identical factors with
batching on, traces/metrics account batched tasks correctly, and the
benchmark's measurement harness runs at smoke sizes.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings

from repro.dag import build_dag
from repro.dag.tasks import Task, TaskKind
from repro.errors import TilingError
from repro.kernels import (
    Workspace,
    check_orthogonality,
    check_reconstruction,
    geqrt,
    tsmqr,
    tsmqr_batch,
    tsqrt,
    unmqr,
    unmqr_batch,
)
from repro.observability import (
    MetricsRegistry,
    Tracer,
    diff_traces,
    expand_batched,
    kernel_flops,
)
from repro.runtime.multiprocess import MultiprocessRuntime
from repro.runtime.serial import SerialRuntime, tiled_qr
from repro.runtime.threaded import ThreadedRuntime, split_batch
from repro.tiles import TiledMatrix
from tests.strategies import batch_tile_sizes, batch_widths, wide_seeds

PARITY_TOL = 1e-12


class TestWorkspace:
    def test_temp_reuses_buffer_across_calls(self):
        ws = Workspace()
        a = ws.temp("w", (4, 8), np.float64)
        a[...] = 7.0
        b = ws.temp("w", (4, 8), np.float64)
        assert np.shares_memory(a, b)

    def test_temp_grows_and_shrinks_views(self):
        ws = Workspace()
        small = ws.temp("w", (2, 2), np.float64)
        big = ws.temp("w", (8, 8), np.float64)
        assert big.shape == (8, 8)
        again = ws.temp("w", (2, 2), np.float64)
        assert again.shape == (2, 2)
        assert np.shares_memory(big, again)
        assert small.shape == (2, 2)

    def test_temp_keys_by_dtype(self):
        ws = Workspace()
        f = ws.temp("w", (3, 3), np.float64)
        c = ws.temp("w", (3, 3), np.complex128)
        assert f.dtype == np.float64 and c.dtype == np.complex128
        assert not np.shares_memory(f, c)

    def test_nbytes_and_clear(self):
        ws = Workspace()
        ws.temp("w", (16, 16), np.float64)
        assert ws.nbytes >= 16 * 16 * 8
        ws.clear()
        assert ws.nbytes == 0


class TestBatchedKernelParity:
    """Fused kernels == per-tile loops, property-tested over shapes."""

    @settings(max_examples=25, deadline=None)
    @given(b=batch_tile_sizes, ntiles=batch_widths, seed=wide_seeds)
    def test_unmqr_batch_matches_per_tile(self, b, ntiles, seed):
        rng = np.random.default_rng(seed)
        f = geqrt(rng.standard_normal((b, b)))
        panel = rng.standard_normal((b, ntiles * b))
        batched = panel.copy()
        unmqr_batch(f, batched, workspace=Workspace())
        loop = panel.copy()
        for j in range(ntiles):
            unmqr(f, loop[:, j * b : (j + 1) * b])
        np.testing.assert_allclose(batched, loop, atol=PARITY_TOL, rtol=0)

    @settings(max_examples=25, deadline=None)
    @given(b=batch_tile_sizes, ntiles=batch_widths, seed=wide_seeds)
    def test_tsmqr_batch_matches_per_tile(self, b, ntiles, seed):
        rng = np.random.default_rng(seed)
        f = tsqrt(rng.standard_normal((b, b)), rng.standard_normal((b, b)))
        top = rng.standard_normal((b, ntiles * b))
        bot = rng.standard_normal((b, ntiles * b))
        top_b, bot_b = top.copy(), bot.copy()
        tsmqr_batch(f, top_b, bot_b, workspace=Workspace())
        top_l, bot_l = top.copy(), bot.copy()
        for j in range(ntiles):
            sl = slice(j * b, (j + 1) * b)
            tsmqr(f, top_l[:, sl], bot_l[:, sl])
        np.testing.assert_allclose(top_b, top_l, atol=PARITY_TOL, rtol=0)
        np.testing.assert_allclose(bot_b, bot_l, atol=PARITY_TOL, rtol=0)

    def test_batch_kernels_validate_shapes(self):
        rng = np.random.default_rng(0)
        f = geqrt(rng.standard_normal((4, 4)))
        with pytest.raises(Exception):
            unmqr_batch(f, rng.standard_normal((3, 8)))
        fe = tsqrt(rng.standard_normal((4, 4)), rng.standard_normal((4, 4)))
        with pytest.raises(Exception):
            tsmqr_batch(fe, rng.standard_normal((4, 8)), rng.standard_normal((4, 12)))


class TestBatchTaskModel:
    def test_expand_is_the_per_tile_multiset(self):
        t = Task(TaskKind.TSMQR_BATCH, 1, 3, 1, 2, 6)
        assert t.ncols == 4 and t.last_col == 5 and t.is_batch
        assert t.expand() == [Task(TaskKind.TSMQR, 1, 3, 1, j) for j in range(2, 6)]

    def test_non_batch_rejects_col_end(self):
        with pytest.raises(Exception):
            Task(TaskKind.UNMQR, 0, 0, 0, 1, 3)

    def test_batch_requires_nonempty_range(self):
        with pytest.raises(Exception):
            Task(TaskKind.UNMQR_BATCH, 0, 0, 0, 2, 2)

    def test_split_batch_partitions_the_expansion(self):
        t = Task(TaskKind.UNMQR_BATCH, 0, 0, 0, 1, 8)
        for parts in (1, 2, 3, 7, 20):
            chunks = split_batch(t, parts)
            assert len(chunks) == min(max(parts, 1), t.ncols)
            merged = [e for c in chunks for e in c.expand()]
            assert merged == t.expand()

    def test_split_batch_passes_per_tile_tasks_through(self):
        t = Task(TaskKind.TSMQR, 0, 1, 0, 2)
        assert split_batch(t, 4) == [t]


def _per_tile_parent(fused_dag):
    """Map each per-tile task to its fused-DAG task."""
    parent = {}
    for t in fused_dag.tasks:
        for e in t.expand() if t.is_batch else [t]:
            parent[e] = t
    return parent


@pytest.mark.parametrize("elimination", ["TS", "TT"])
@pytest.mark.parametrize("grid", [(3, 3), (4, 3), (4, 4)])
class TestFusedDagEquivalence:
    def test_expansion_matches_unfused_task_multiset(self, grid, elimination):
        p, q = grid
        unfused = build_dag(p, q, elimination)
        fused = build_dag(p, q, elimination, batch_updates=True)
        expanded = sorted(
            e
            for t in fused.tasks
            for e in (t.expand() if t.is_batch else [t])
        )
        assert expanded == sorted(unfused.tasks)
        assert any(t.is_batch for t in fused.tasks)  # coarsening happened

    def test_dependencies_are_equivalent(self, grid, elimination):
        """The fused DAG is a correctness-equivalent collapse of the
        unfused one:

        * **legality** — tasks fused into one batch are mutually
          unordered in the unfused DAG (they touch disjoint tiles), so
          fusing them discards no required ordering;
        * **completeness** — every unfused ordering between tasks of
          different batches survives: u -> v unfused implies
          parent(u) -> parent(v) fused;
        * **soundness** — every fused edge is witnessed by at least one
          per-tile dependence between the two expansions (coarsening
          may *add* conservative orderings within a witnessed edge, but
          never invents an edge between independent task groups).
        """
        nx = pytest.importorskip("networkx")
        p, q = grid
        unfused = build_dag(p, q, elimination)
        fused = build_dag(p, q, elimination, batch_updates=True)
        parent = _per_tile_parent(fused)

        def closure(dag):
            g = nx.DiGraph()
            g.add_nodes_from(dag.tasks)
            for t in dag.tasks:
                for s in dag.succs[t]:
                    g.add_edge(t, s)
            return nx.transitive_closure_dag(g)

        un_c, fu_c = closure(unfused), closure(fused)
        tasks = list(unfused.tasks)
        for u in tasks:
            for v in tasks:
                if u == v:
                    continue
                if parent[u] == parent[v]:
                    assert not un_c.has_edge(u, v), (u, v)
                elif un_c.has_edge(u, v):
                    assert fu_c.has_edge(parent[u], parent[v]), (u, v)
        for a_task in fused.tasks:
            ea = a_task.expand() if a_task.is_batch else [a_task]
            for b_task in fused.succs[a_task]:
                eb = b_task.expand() if b_task.is_batch else [b_task]
                assert any(
                    un_c.has_edge(x, y) for x in ea for y in eb
                ), (a_task, b_task)


class TestEndToEndBatched:
    N, B = 96, 16

    @pytest.fixture(scope="class")
    def matrix(self):
        return np.random.default_rng(42).standard_normal((self.N, self.N))

    @pytest.mark.parametrize("elimination", ["TS", "TT"])
    def test_serial_batched_is_bit_identical_and_valid(self, matrix, elimination):
        ref = SerialRuntime(elimination).factorize(matrix.copy(), self.B)
        bat = SerialRuntime(elimination, batch_updates=True).factorize(
            matrix.copy(), self.B
        )
        np.testing.assert_array_equal(bat.r_dense(), ref.r_dense())
        q = bat.q_dense()
        check_reconstruction(matrix, q, bat.r_dense())
        check_orthogonality(q)

    @pytest.mark.parametrize("elimination", ["TS", "TT"])
    def test_threaded_batched_is_valid(self, matrix, elimination):
        bat = ThreadedRuntime(4, elimination, batch_updates=True).factorize(
            matrix.copy(), self.B
        )
        ref = SerialRuntime(elimination).factorize(matrix.copy(), self.B)
        np.testing.assert_array_equal(bat.r_dense(), ref.r_dense())
        q = bat.q_dense()
        check_reconstruction(matrix, q, bat.r_dense())
        check_orthogonality(q)

    def test_multiprocess_batched_is_valid(self, matrix, optimizer):
        plan = optimizer.plan(matrix_size=self.N, tile_size=self.B)
        bat = MultiprocessRuntime(plan, batch_updates=True).factorize(matrix, self.B)
        ref = SerialRuntime("TS").factorize(matrix.copy(), self.B)
        np.testing.assert_array_equal(bat.r_dense(), ref.r_dense())
        q = bat.q_dense()
        check_reconstruction(matrix, q, bat.r_dense())
        check_orthogonality(q)

    def test_tiled_qr_entry_point_accepts_batch_updates(self, matrix):
        f = tiled_qr(matrix, self.B, batch_updates=True)
        check_reconstruction(matrix, f.q_dense(), f.r_dense())

    def test_single_worker_threaded_runs_unsplit_batches(self, matrix):
        bat = ThreadedRuntime(1, batch_updates=True).factorize(matrix.copy(), self.B)
        ref = SerialRuntime("TS").factorize(matrix.copy(), self.B)
        np.testing.assert_array_equal(bat.r_dense(), ref.r_dense())


class TestBatchedObservability:
    N, B = 64, 16

    @pytest.fixture(scope="class")
    def traces(self):
        a = np.random.default_rng(7).standard_normal((self.N, self.N))
        per_tracer = Tracer(metrics=MetricsRegistry())
        SerialRuntime(tracer=per_tracer).factorize(a.copy(), self.B)
        bat_tracer = Tracer(metrics=MetricsRegistry())
        SerialRuntime(tracer=bat_tracer, batch_updates=True).factorize(
            a.copy(), self.B
        )
        return per_tracer, bat_tracer

    def test_expanded_batched_trace_matches_per_tile_trace(self, traces):
        per_tracer, bat_tracer = traces
        raw = bat_tracer.to_trace()
        assert any(r.task.is_batch for r in raw.tasks)
        diff = diff_traces(expand_batched(per_tracer.to_trace()), expand_batched(raw))
        assert diff.task_sets_match

    def test_expand_batched_preserves_kernel_time_and_count(self, traces):
        _, bat_tracer = traces
        raw = bat_tracer.to_trace()
        expanded = expand_batched(raw)
        assert len(expanded.tasks) == sum(r.task.ncols for r in raw.tasks)
        assert sum(r.duration for r in expanded.tasks) == pytest.approx(
            sum(r.duration for r in raw.tasks)
        )
        assert not any(r.task.is_batch for r in expanded.tasks)

    def test_batched_flops_accounting_matches_per_tile(self, traces):
        per_tracer, bat_tracer = traces
        per = per_tracer.metrics.snapshot()["counters"]
        bat = bat_tracer.metrics.snapshot()["counters"]
        assert (
            bat["kernel.UNMQR_BATCH.flops"] == per["kernel.UNMQR.flops"]
        )
        assert (
            bat["kernel.TSMQR_BATCH.flops"] == per["kernel.TSMQR.flops"]
        )

    def test_batch_tile_count_histogram_recorded(self, traces):
        _, bat_tracer = traces
        snap = bat_tracer.metrics.snapshot()
        tiles = snap["histograms"]["kernel.TSMQR_BATCH.tiles"]
        # 64/16 = 4x4 grid: panel k updates are (q - k - 1)-wide batches
        assert tiles["max"] == 3 and tiles["min"] == 1
        assert tiles["count"] == snap["counters"]["kernel.TSMQR_BATCH.calls"]

    def test_kernel_flops_scales_with_ncols(self):
        b = 8
        assert kernel_flops(TaskKind.UNMQR_BATCH, b, 5) == 5 * kernel_flops(
            TaskKind.UNMQR, b
        )
        assert kernel_flops(TaskKind.TSMQR_BATCH, b, 3) == 3 * kernel_flops(
            TaskKind.TSMQR, b
        )

    def test_jsonl_round_trips_col_end(self, traces):
        from repro.observability import dump_jsonl, load_jsonl

        _, bat_tracer = traces
        raw = bat_tracer.to_trace()
        loaded = load_jsonl(dump_jsonl(raw))
        assert sorted(r.task for r in loaded.tasks) == sorted(
            r.task for r in raw.tasks
        )


class TestRowMajorStorage:
    def test_row_major_round_trip(self, rng):
        a = rng.standard_normal((48, 32))
        tm = TiledMatrix.from_dense(a, 16, storage="rowmajor")
        assert tm.is_row_major
        np.testing.assert_array_equal(tm.to_dense(), a)

    def test_row_panel_is_zero_copy_in_row_major(self, rng):
        tm = TiledMatrix.from_dense(rng.standard_normal((32, 64)), 16, storage="rowmajor")
        panel = tm.row_panel(0, 1, 4)
        assert np.shares_memory(panel, tm.tile(0, 2))
        panel[...] = 5.0
        assert np.all(tm.tile(0, 3) == 5.0)
        tm.scatter_row_panel(0, 1, 4, panel)  # no-op on aliased storage
        assert np.all(tm.tile(0, 3) == 5.0)

    def test_row_panel_scatter_in_legacy_layout(self, rng):
        tm = TiledMatrix.from_dense(rng.standard_normal((32, 64)), 16)
        assert not tm.is_row_major
        panel = tm.row_panel(1, 0, 4)
        assert panel.shape == (16, 64)
        panel[...] = -3.0
        assert not np.all(tm.tile(1, 2) == -3.0)  # gathered copy
        tm.scatter_row_panel(1, 0, 4, panel)
        assert np.all(tm.tile(1, 2) == -3.0)

    def test_row_panel_range_validation(self, rng):
        tm = TiledMatrix.from_dense(rng.standard_normal((32, 32)), 16)
        with pytest.raises(TilingError):
            tm.row_panel(0, 1, 1)
        with pytest.raises(TilingError):
            tm.row_panel(5, 0, 1)

    def test_set_tile_rejects_dtype_mismatch(self, rng):
        tm = TiledMatrix.from_dense(rng.standard_normal((32, 32)), 16)
        with pytest.raises(TilingError):
            tm.set_tile(0, 0, np.zeros((16, 16), dtype=np.float32))
        tm.set_tile(0, 0, np.zeros((16, 16)))  # matching dtype is fine

    def test_tile_returns_live_view(self, rng):
        tm = TiledMatrix.from_dense(rng.standard_normal((32, 32)), 16)
        tm.tile(1, 1)[...] = 9.0
        assert np.all(tm.to_dense()[16:, 16:] == 9.0)

    def test_copy_preserves_storage_mode(self, rng):
        tm = TiledMatrix.from_dense(rng.standard_normal((32, 32)), 16, storage="rowmajor")
        assert tm.copy().is_row_major


class TestGeqrtCopies:
    def test_integer_input_is_converted_once_and_factored(self):
        a = np.arange(16, dtype=np.int64).reshape(4, 4) + np.eye(4, dtype=np.int64)
        f = geqrt(a)
        assert f.r.dtype == np.float64
        assert a.dtype == np.int64  # input untouched
        q = np.eye(4) - f.v @ f.tf @ f.v.T
        np.testing.assert_allclose(q @ f.r, a.astype(np.float64), atol=1e-12)


class TestBenchmarkSmoke:
    def test_bench_batched_updates_harness(self, tmp_path):
        path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "bench_batched_updates.py"
        )
        spec = importlib.util.spec_from_file_location("bench_batched_updates", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        case = mod.bench_case(3, 8, rounds=1)
        assert case["per_tile_seconds"] > 0 and case["batched_seconds"] > 0
        out = tmp_path / "BENCH_batched_updates.json"
        mod.append_trajectory([case], out)
        mod.append_trajectory([case], out)  # appends, not overwrites
        import json

        history = json.loads(out.read_text())
        assert len(history) == 2
        assert history[0]["cases"][0]["grid"] == 3
