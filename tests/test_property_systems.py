"""Property-based tests over *random device systems*.

The paper's policies must behave sensibly for any physically-plausible
system, not just the Table II testbed.  Hypothesis generates systems
(device counts, slots, rates) and these tests assert the pipeline's
invariants hold across them.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.topology import pcie_star
from repro.core.optimizer import Optimizer
from repro.dag.tasks import Step
from repro.devices.model import DeviceKind, DeviceSpec, KernelTimingModel
from repro.devices.registry import SystemSpec
from repro.sim.iteration import simulate_iteration_level


@st.composite
def device_specs(draw, device_id: str = "dev"):
    kind = draw(st.sampled_from([DeviceKind.CPU, DeviceKind.GPU]))
    slots = draw(st.integers(1, 64))
    base_rate = draw(st.floats(0.005, 5.0))  # GF
    panel_penalty = draw(st.floats(1.5, 50.0))
    overhead = draw(st.floats(0.0, 100e-6))
    timing = KernelTimingModel(
        overheads_s={
            Step.T: overhead, Step.E: overhead,
            Step.UT: overhead / 10.0, Step.UE: overhead / 10.0,
        },
        rates_flops={
            Step.T: base_rate * 1e9 / panel_penalty,
            Step.E: base_rate * 1e9 / panel_penalty,
            Step.UT: base_rate * 1e9,
            Step.UE: base_rate * 1e9,
        },
    )
    return DeviceSpec(
        device_id=device_id,
        name=f"random-{kind.value}",
        kind=kind,
        cores=draw(st.integers(1, 2048)),
        slots=slots,
        timing=timing,
    )


@st.composite
def systems(draw, max_devices: int = 4):
    n = draw(st.integers(1, max_devices))
    devices = tuple(
        draw(device_specs(device_id=f"d{i}")) for i in range(n)
    )
    return SystemSpec(name="hypothesis", devices=devices)


class TestPlannerOnRandomSystems:
    @given(systems(), st.integers(3, 25))
    @settings(max_examples=40, deadline=None)
    def test_plan_always_valid(self, system, grid):
        opt = Optimizer(system, pcie_star(system.devices))
        plan = opt.plan(grid_rows=grid, grid_cols=grid)
        assert plan.main_device in system.device_ids
        assert 1 <= plan.num_devices <= len(system)
        assert plan.participants[0] == plan.main_device
        # Every column has a valid owner.
        owners = plan.owners(grid)
        assert all(o in plan.participants for o in owners)
        assert owners[0] == plan.main_device

    @given(systems(), st.integers(3, 20))
    @settings(max_examples=30, deadline=None)
    def test_simulation_invariants(self, system, grid):
        top = pcie_star(system.devices)
        opt = Optimizer(system, top)
        plan = opt.plan(grid_rows=grid, grid_cols=grid)
        rep = simulate_iteration_level(plan, grid, grid, system, top)
        assert rep.makespan > 0
        assert rep.makespan >= max(rep.compute_busy.values()) - 1e-12
        assert rep.comm_time >= 0
        # Work conservation: total busy equals the modelled task work.
        total_busy = sum(rep.compute_busy.values())
        assert total_busy > 0

    @given(systems(max_devices=3), st.integers(4, 16))
    @settings(max_examples=25, deadline=None)
    def test_predictor_table_shape(self, system, grid):
        from repro.core.device_count import predicted_times, select_num_devices

        top = pcie_star(system.devices)
        main = system.devices[0].device_id
        table = predicted_times(system, main, grid, grid, 16, top)
        assert len(table) == len(system)
        assert all(r.total > 0 for r in table)
        comms = [r.t_comm for r in table]
        # A single device never communicates; more devices never reach
        # zero (strict monotonicity can break when adding a device
        # relocates the next-panel column to a cheaper link).
        assert comms[0] == 0.0
        assert all(c >= 0.0 for c in comms)
        if len(comms) > 1:
            assert comms[-1] > 0.0
        p, _ = select_num_devices(system, main, grid, grid, 16, top)
        assert 1 <= p <= len(system)

    @given(systems(max_devices=4), st.integers(3, 12))
    @settings(max_examples=25, deadline=None)
    def test_guide_array_covers_participants_with_work(self, system, grid):
        from repro.core.distribution import guide_for_participants

        ids = list(system.device_ids)
        ratio, guide = guide_for_participants(
            system, ids, ids[0], grid, grid, 16
        )
        assert set(guide) <= set(ids)
        assert sum(ratio.values()) >= 1
        for d, weight in ratio.items():
            assert (weight > 0) == (d in guide)


class TestProgressHook:
    def test_serial_runtime_reports_every_task(self, rng):
        from repro.dag.analysis import task_counts_total
        from repro.runtime.serial import SerialRuntime

        seen = []
        rt = SerialRuntime(progress=lambda done, total, task: seen.append((done, total)))
        rt.factorize(rng.standard_normal((64, 64)), 16)
        expected = sum(task_counts_total(4, 4).values())
        assert len(seen) == expected
        assert seen[-1] == (expected, expected)
        assert [d for d, _ in seen] == list(range(1, expected + 1))

    def test_progress_can_abort(self, rng):
        from repro.runtime.serial import SerialRuntime

        class Abort(RuntimeError):
            pass

        def cb(done, _total, _task):
            if done >= 3:
                raise Abort()

        with pytest.raises(Abort):
            SerialRuntime(progress=cb).factorize(rng.standard_normal((64, 64)), 16)


class TestDESFuzz:
    """Fuzz the discrete-event simulator over random grids and plans;
    every run must satisfy all conservation laws."""

    @given(
        st.integers(2, 9),
        st.integers(2, 9),
        st.integers(1, 4),
        st.sampled_from(["TS", "TT"]),
        st.sampled_from(["critical-path", "fifo", "column-major", "reverse"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_conservation_laws_hold(self, p, q, ndev, elim, policy):
        from repro.comm.topology import pcie_star
        from repro.dag import build_dag
        from repro.devices.registry import paper_testbed
        from repro.sim.engine import DiscreteEventSimulator
        from repro.sim.validation import validate_trace

        system = paper_testbed()
        top = pcie_star(system.devices)
        opt = Optimizer(system, top)
        plan = opt.plan(grid_rows=p, grid_cols=q, num_devices=ndev)
        dag = build_dag(p, q, elim)
        trace = DiscreteEventSimulator(system, top, policy=policy).run(dag, plan)
        validate_trace(trace, dag, plan, system)
        # Busy time equals the sum of modelled kernel durations.
        total = sum(
            system.device(r.device_id).time(r.task.step, 16) for r in trace.tasks
        )
        import pytest as _pytest

        assert sum(trace.compute_busy().values()) == _pytest.approx(total)

    @given(st.integers(2, 8), st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_solve_dag_fuzz(self, g, rhs):
        from repro.comm.topology import pcie_star
        from repro.dag.solve import build_solve_dag
        from repro.devices.registry import paper_testbed
        from repro.sim.engine import simulate_task_level
        from repro.sim.validation import validate_dependencies, validate_ports

        system = paper_testbed()
        top = pcie_star(system.devices)
        opt = Optimizer(system, top)
        plan = opt.plan(grid_rows=g, grid_cols=g, num_devices=3)
        dag = build_solve_dag(g, rhs)
        dag.validate()
        trace = simulate_task_level(dag, plan, system, top)
        validate_dependencies(trace, dag)
        validate_ports(trace)
