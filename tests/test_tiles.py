"""Tests for tile partitioning and the TiledMatrix container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError, TilingError
from repro.tiles import Partition, TiledMatrix, partition_extent


class TestPartition:
    def test_exact_division(self):
        p = Partition(64, 16)
        assert p.num_tiles == 4
        assert p.is_exact
        assert p.padded_extent == 64

    def test_ragged_last_tile(self):
        p = Partition(50, 16)
        assert p.num_tiles == 4
        assert not p.is_exact
        assert p.padded_extent == 64
        assert p.tile_span(3) == (48, 50)

    def test_tile_span_interior(self):
        p = Partition(64, 16)
        assert p.tile_span(1) == (16, 32)

    def test_tile_span_out_of_range(self):
        p = Partition(32, 16)
        with pytest.raises(TilingError):
            p.tile_span(2)
        with pytest.raises(TilingError):
            p.tile_span(-1)

    def test_single_tile(self):
        p = Partition(5, 16)
        assert p.num_tiles == 1
        assert p.tile_span(0) == (0, 5)

    def test_invalid_extent(self):
        with pytest.raises(TilingError):
            Partition(0, 16)

    def test_invalid_tile_size(self):
        with pytest.raises(Exception):
            Partition(16, 0)

    def test_partition_extent_helper(self):
        assert partition_extent(33, 16).num_tiles == 3

    @given(st.integers(1, 500), st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_property_spans_cover_exactly(self, extent, b):
        p = Partition(extent, b)
        covered = 0
        prev_stop = 0
        for i in range(p.num_tiles):
            start, stop = p.tile_span(i)
            assert start == prev_stop
            assert stop > start
            covered += stop - start
            prev_stop = stop
        assert covered == extent


class TestTiledMatrix:
    def test_roundtrip_exact(self, rng):
        a = rng.standard_normal((64, 48))
        t = TiledMatrix.from_dense(a, 16)
        assert t.grid_shape == (4, 3)
        np.testing.assert_array_equal(t.to_dense(), a)

    def test_roundtrip_padded(self, rng):
        a = rng.standard_normal((50, 30))
        t = TiledMatrix.from_dense(a, 16)
        assert t.grid_shape == (4, 2)
        np.testing.assert_array_equal(t.to_dense(), a)

    def test_padding_is_zero(self, rng):
        a = rng.standard_normal((20, 20))
        t = TiledMatrix.from_dense(a, 16)
        last = t.tile(1, 1)
        assert np.allclose(last[4:, :], 0.0)
        assert np.allclose(last[:, 4:], 0.0)

    def test_tiles_are_owned_copies(self, rng):
        a = rng.standard_normal((32, 32))
        t = TiledMatrix.from_dense(a, 16)
        t.tile(0, 0)[0, 0] = 999.0
        assert a[0, 0] != 999.0

    def test_identity(self):
        t = TiledMatrix.identity(40, 16)
        np.testing.assert_array_equal(t.to_dense(), np.eye(40))

    def test_zeros_shape(self):
        t = TiledMatrix.zeros(30, 20, 8)
        assert t.shape == (30, 20)
        assert np.allclose(t.to_dense(), 0.0)

    def test_random_reproducible(self):
        t1 = TiledMatrix.random(32, 32, 16, seed=5)
        t2 = TiledMatrix.random(32, 32, 16, seed=5)
        np.testing.assert_array_equal(t1.to_dense(), t2.to_dense())

    def test_set_tile_and_copy(self, rng):
        t = TiledMatrix.zeros(32, 32, 16)
        block = rng.standard_normal((16, 16))
        t.set_tile(1, 0, block)
        np.testing.assert_array_equal(t.tile(1, 0), block)
        c = t.copy()
        c.tile(1, 0)[0, 0] = -1.0
        assert t.tile(1, 0)[0, 0] == block[0, 0]

    def test_set_tile_shape_check(self):
        t = TiledMatrix.zeros(32, 32, 16)
        with pytest.raises(ShapeError):
            t.set_tile(0, 0, np.zeros((8, 8)))

    def test_tile_out_of_range(self):
        t = TiledMatrix.zeros(32, 32, 16)
        with pytest.raises(TilingError):
            t.tile(2, 0)

    def test_column_tiles(self, rng):
        t = TiledMatrix.from_dense(rng.standard_normal((48, 48)), 16)
        col = t.column_tiles(1)
        assert len(col) == 3
        np.testing.assert_array_equal(col[2], t.tile(2, 1))
        with pytest.raises(TilingError):
            t.column_tiles(5)

    def test_iter_tiles_order(self):
        t = TiledMatrix.zeros(32, 48, 16)
        coords = [(i, j) for i, j, _ in t.iter_tiles()]
        assert coords == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_tile_bytes(self):
        t = TiledMatrix.zeros(32, 32, 16, dtype=np.float64)
        assert t.tile_bytes() == 16 * 16 * 8
        assert t.tile_bytes(element_size=4) == 16 * 16 * 4

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            TiledMatrix.from_dense(np.zeros(5), 4)

    def test_integer_input_promoted(self):
        t = TiledMatrix.from_dense(np.arange(16).reshape(4, 4), 2)
        assert t.dtype.kind == "f"

    @given(
        st.integers(1, 80),
        st.integers(1, 80),
        st.integers(1, 20),
        st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_dense_roundtrip(self, rows, cols, b, seed):
        a = np.random.default_rng(seed).standard_normal((rows, cols))
        t = TiledMatrix.from_dense(a, b)
        np.testing.assert_array_equal(t.to_dense(), a)


class TestTranspose:
    def test_roundtrip(self, rng):
        a = rng.standard_normal((50, 34))
        t = TiledMatrix.from_dense(a, 16)
        tt = t.transpose()
        assert tt.shape == (34, 50)
        np.testing.assert_array_equal(tt.to_dense(), a.T)
        np.testing.assert_array_equal(tt.transpose().to_dense(), a)

    def test_grid_shape_swaps(self, rng):
        t = TiledMatrix.from_dense(rng.standard_normal((48, 32)), 16)
        assert t.transpose().grid_shape == (2, 3)

    def test_tiles_are_copies(self, rng):
        t = TiledMatrix.from_dense(rng.standard_normal((32, 32)), 16)
        tt = t.transpose()
        tt.tile(0, 0)[0, 0] = 123.0
        assert t.tile(0, 0)[0, 0] != 123.0
