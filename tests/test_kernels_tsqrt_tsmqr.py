"""Tests for TS/TT elimination kernels and their updates."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import KernelError
from repro.kernels import geqrt, tsmqr, tsqrt, ttmqr, ttqrt
from tests.strategies import random_triangular as _random_triangular
from tests.strategies import seeds, small_tile_sizes


class TestTSQRT:
    @pytest.mark.parametrize("b", [1, 2, 4, 8, 16])
    def test_stacked_reconstruction(self, rng, b):
        r1 = _random_triangular(rng, b)
        a2 = rng.standard_normal((b, b))
        f = tsqrt(r1, a2)
        q = f.q_dense()
        stacked = np.vstack([r1, a2])
        rebuilt = q @ np.vstack([f.r, np.zeros_like(a2)])
        np.testing.assert_allclose(rebuilt, stacked, atol=1e-9 * max(b, 1))

    def test_q_orthogonal(self, rng):
        f = tsqrt(_random_triangular(rng, 8), rng.standard_normal((8, 8)))
        q = f.q_dense()
        np.testing.assert_allclose(q.T @ q, np.eye(16), atol=1e-10)

    def test_result_upper_triangular(self, rng):
        f = tsqrt(_random_triangular(rng, 8), rng.standard_normal((8, 8)))
        assert np.allclose(np.tril(f.r, -1), 0.0)

    def test_rectangular_bottom(self, rng):
        r1 = _random_triangular(rng, 6)
        a2 = rng.standard_normal((10, 6))
        f = tsqrt(r1, a2)
        q = f.q_dense()
        stacked = np.vstack([r1, a2])
        rebuilt = q @ np.vstack([f.r, np.zeros((10, 6))])
        np.testing.assert_allclose(rebuilt, stacked, atol=1e-9)

    def test_kind_is_ts(self, rng):
        f = tsqrt(_random_triangular(rng, 4), rng.standard_normal((4, 4)))
        assert f.kind == "TS"

    def test_zero_bottom_tile_is_noop(self, rng):
        r1 = _random_triangular(rng, 5)
        f = tsqrt(r1, np.zeros((5, 5)))
        np.testing.assert_allclose(f.r, r1, atol=1e-12)
        assert np.allclose(f.taus, 0.0)

    def test_inputs_not_modified(self, rng):
        r1 = _random_triangular(rng, 5)
        a2 = rng.standard_normal((5, 5))
        r1c, a2c = r1.copy(), a2.copy()
        tsqrt(r1, a2)
        np.testing.assert_array_equal(r1, r1c)
        np.testing.assert_array_equal(a2, a2c)

    def test_shape_validation(self, rng):
        with pytest.raises(KernelError):
            tsqrt(rng.standard_normal((4, 5)), rng.standard_normal((4, 4)))
        with pytest.raises(KernelError):
            tsqrt(rng.standard_normal((4, 4)), rng.standard_normal((4, 3)))

    @given(small_tile_sizes, seeds)
    @settings(max_examples=25, deadline=None)
    def test_property_elimination_zeroes_bottom(self, b, seed):
        rng = np.random.default_rng(seed)
        r1 = _random_triangular(rng, b)
        a2 = rng.standard_normal((b, b))
        f = tsqrt(r1, a2)
        c1, c2 = r1.copy(), a2.copy()
        tsmqr(f, c1, c2)
        scale = max(np.linalg.norm(np.vstack([r1, a2])), 1.0)
        assert np.linalg.norm(c2) <= 1e-9 * scale
        assert np.linalg.norm(c1 - f.r) <= 1e-9 * scale


class TestTSMQR:
    def test_transpose_roundtrip(self, rng):
        f = tsqrt(_random_triangular(rng, 8), rng.standard_normal((8, 8)))
        c1, c2 = rng.standard_normal((8, 6)), rng.standard_normal((8, 6))
        o1, o2 = c1.copy(), c2.copy()
        tsmqr(f, c1, c2, transpose=True)
        tsmqr(f, c1, c2, transpose=False)
        np.testing.assert_allclose(c1, o1, atol=1e-10)
        np.testing.assert_allclose(c2, o2, atol=1e-10)

    def test_matches_dense_q(self, rng):
        b = 6
        f = tsqrt(_random_triangular(rng, b), rng.standard_normal((b, b)))
        q = f.q_dense()
        c1, c2 = rng.standard_normal((b, 4)), rng.standard_normal((b, 4))
        stacked = np.vstack([c1, c2])
        expected = q.T @ stacked
        tsmqr(f, c1, c2)
        np.testing.assert_allclose(np.vstack([c1, c2]), expected, atol=1e-10)

    def test_column_count_mismatch(self, rng):
        f = tsqrt(_random_triangular(rng, 4), rng.standard_normal((4, 4)))
        with pytest.raises(KernelError):
            tsmqr(f, rng.standard_normal((4, 3)), rng.standard_normal((4, 2)))

    def test_row_mismatch(self, rng):
        f = tsqrt(_random_triangular(rng, 4), rng.standard_normal((4, 4)))
        with pytest.raises(KernelError):
            tsmqr(f, rng.standard_normal((5, 3)), rng.standard_normal((4, 3)))


class TestTTQRT:
    @pytest.mark.parametrize("b", [1, 2, 5, 8, 16])
    def test_reconstruction(self, rng, b):
        r1 = _random_triangular(rng, b)
        r2 = _random_triangular(rng, b)
        f = ttqrt(r1, r2)
        q = f.q_dense()
        stacked = np.vstack([r1, r2])
        rebuilt = q @ np.vstack([f.r, np.zeros_like(r2)])
        np.testing.assert_allclose(rebuilt, stacked, atol=1e-9 * max(b, 1))

    def test_v2_upper_triangular(self, rng):
        f = ttqrt(_random_triangular(rng, 8), _random_triangular(rng, 8))
        assert np.allclose(np.tril(f.v2, -1), 0.0)
        assert f.kind == "TT"

    def test_garbage_below_diagonal_ignored(self, rng):
        r1 = _random_triangular(rng, 6)
        r2 = _random_triangular(rng, 6)
        noisy = r2 + np.tril(rng.standard_normal((6, 6)), -1)
        f_clean = ttqrt(r1, r2)
        f_noisy = ttqrt(r1, noisy)
        np.testing.assert_allclose(f_clean.r, f_noisy.r, atol=1e-12)

    def test_rejects_rectangular_bottom(self, rng):
        with pytest.raises(KernelError):
            ttqrt(_random_triangular(rng, 4), rng.standard_normal((6, 4)))


class TestTTMQR:
    def test_eliminates_pair(self, rng):
        b = 8
        r1, r2 = _random_triangular(rng, b), _random_triangular(rng, b)
        f = ttqrt(r1, r2)
        c1, c2 = r1.copy(), r2.copy()
        ttmqr(f, c1, c2)
        assert np.linalg.norm(c2) < 1e-9
        np.testing.assert_allclose(c1, f.r, atol=1e-9)

    def test_rejects_ts_factors(self, rng):
        f = tsqrt(_random_triangular(rng, 4), rng.standard_normal((4, 4)))
        with pytest.raises(KernelError):
            ttmqr(f, rng.standard_normal((4, 2)), rng.standard_normal((4, 2)))

    def test_matches_tsmqr_application(self, rng):
        b = 5
        f = ttqrt(_random_triangular(rng, b), _random_triangular(rng, b))
        c1, c2 = rng.standard_normal((b, 3)), rng.standard_normal((b, 3))
        d1, d2 = c1.copy(), c2.copy()
        ttmqr(f, c1, c2)
        tsmqr(f, d1, d2)
        np.testing.assert_array_equal(c1, d1)
        np.testing.assert_array_equal(c2, d2)
