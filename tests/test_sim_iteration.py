"""Tests for the iteration-level simulator and DES cross-validation."""

import pytest

from repro.baselines import no_main_plan
from repro.dag import build_dag
from repro.dag.tasks import Step
from repro.errors import SimulationError
from repro.sim import simulate_iteration_level, simulate_task_level


class TestIterationSimulator:
    def test_report_structure(self, system, topology, optimizer):
        plan = optimizer.plan(matrix_size=320, num_devices=3)
        rep = simulate_iteration_level(plan, 20, 20, system, topology)
        assert rep.makespan > 0
        assert rep.meta["fidelity"] == "iteration-level"
        assert set(rep.compute_busy) <= set(plan.participants)

    def test_single_device_no_comm(self, system, topology, optimizer):
        plan = optimizer.plan(matrix_size=320, num_devices=1)
        rep = simulate_iteration_level(plan, 20, 20, system, topology)
        assert rep.comm_time == 0.0
        assert rep.num_transfers == 0

    def test_multi_device_has_comm(self, system, topology, optimizer):
        plan = optimizer.plan(matrix_size=320, num_devices=3)
        rep = simulate_iteration_level(plan, 20, 20, system, topology)
        assert rep.comm_time > 0.0

    def test_makespan_bounded_below_by_chain(self, system, topology, optimizer):
        plan = optimizer.plan(matrix_size=640, num_devices=3)
        rep = simulate_iteration_level(plan, 40, 40, system, topology)
        main = system.device(plan.main_device)
        chain = sum(main.panel_chain_time(40 - k, 16) for k in range(40))
        assert rep.makespan >= chain

    def test_busy_conservation(self, system, topology, optimizer):
        """Total busy time equals the plan's work at the device models."""
        g = 12
        plan = optimizer.plan(matrix_size=g * 16, num_devices=2)
        rep = simulate_iteration_level(plan, g, g, system, topology)
        expected = {d: 0.0 for d in plan.participants}
        for k in range(g):
            m_k = g - k
            owner = plan.panel_owner(k)
            dev = system.device(owner)
            expected[owner] += dev.panel_chain_time(m_k, 16)
            for d in plan.participants:
                spec = system.device(d)
                cols = plan.columns_of(d, g, k + 1)
                per_col = (
                    spec.time(Step.UT, 16) + (m_k - 1) * spec.time(Step.UE, 16)
                ) / spec.slots
                expected[d] += len(cols) * per_col
        for d in plan.participants:
            assert rep.compute_busy.get(d, 0.0) == pytest.approx(expected[d])

    def test_makespan_at_least_max_busy(self, system, topology, optimizer):
        plan = optimizer.plan(matrix_size=640, num_devices=4)
        rep = simulate_iteration_level(plan, 40, 40, system, topology)
        assert rep.makespan >= max(rep.compute_busy.values()) - 1e-12

    def test_grid_scaling_superlinear(self, system, topology, optimizer):
        plan = optimizer.plan(matrix_size=320, num_devices=2)
        t_small = simulate_iteration_level(plan, 20, 20, system, topology).makespan
        t_large = simulate_iteration_level(plan, 40, 40, system, topology).makespan
        assert t_large > 2.0 * t_small

    def test_no_main_mode_runs(self, system, topology):
        plan = no_main_plan(system, 30, 30, 16)
        rep = simulate_iteration_level(plan, 30, 30, system, topology)
        assert rep.makespan > 0

    def test_invalid_grid(self, system, topology, optimizer):
        plan = optimizer.plan(matrix_size=160, num_devices=1)
        with pytest.raises(SimulationError):
            simulate_iteration_level(plan, 0, 5, system, topology)

    def test_single_panel(self, system, topology, optimizer):
        plan = optimizer.plan(matrix_size=16, num_devices=1)
        rep = simulate_iteration_level(plan, 1, 1, system, topology)
        main = system.device(plan.main_device)
        assert rep.makespan == pytest.approx(main.time(Step.T, 16))


class TestCrossValidation:
    """The two fidelities must agree on regime and ordering."""

    @pytest.mark.parametrize("n,p", [(160, 1), (160, 2), (320, 2), (640, 2), (640, 4)])
    def test_iteration_bounds_des_from_above(self, system, topology, optimizer, n, p):
        """Lookahead scheduling (DES) can only improve on the paper's
        per-iteration runtime; the gap stays bounded."""
        g = n // 16
        plan = optimizer.plan(matrix_size=n, num_devices=p)
        dag = build_dag(g, g)
        t_des = simulate_task_level(dag, plan, system, topology).report().makespan
        t_iter = simulate_iteration_level(plan, g, g, system, topology).makespan
        assert t_iter >= t_des * 0.95
        assert t_iter <= t_des * 2.5

    def test_both_agree_on_distribution_ordering(self, system, topology, optimizer):
        """Even distribution must lose to the guide array in both models
        once the matrix is large enough for distribution to matter (the
        paper notes small sizes barely react to the distribution)."""
        from repro.baselines import even_plan

        even = even_plan(system, "gtx580-0")
        # Iteration model at 3200 (the Fig. 10 regime).
        g = 200
        guide = optimizer.plan(matrix_size=3200, num_devices=4)
        t_g = simulate_iteration_level(guide, g, g, system, topology).makespan
        t_e = simulate_iteration_level(even, g, g, system, topology).makespan
        assert t_e > t_g * 1.1, "even should lose under the iteration model"
        # Task-level DES at 960 (largest grid that stays fast).
        g = 60
        guide = optimizer.plan(matrix_size=960, num_devices=4)
        dag = build_dag(g, g)
        t_g = simulate_task_level(dag, guide, system, topology).report().makespan
        t_e = simulate_task_level(dag, even, system, topology).report().makespan
        assert t_e > t_g, "even should lose under the DES"
