"""Postmortem forensics: flight recorder, failure bundles, root-cause.

The acceptance matrix from the observability work: for seeded chaos
faults of each class — worker kill, hang, NaN corruption, exception
with retries exhausted — every runtime that can hit the failure must
produce a failure bundle whose postmortem classification names the
injected fault class and cites the triggering FaultSpec.  Plus the
plumbing underneath: recorder bounds and in-flight tracking, atomic
bundle write/load, error classification, and bundle capture racing a
multiprocess failover.
"""

from __future__ import annotations

import json
import zipfile

import numpy as np
import pytest

from repro.cli import main
from repro.dag.tasks import Task, TaskKind
from repro.errors import (
    ConfigError,
    FaultInjectionError,
    NumericalHealthError,
    ObservabilityError,
    RetryExhaustedError,
    ShapeError,
    TaskTimeoutError,
    WorkerFailoverError,
)
from repro.observability import MetricsRegistry, TelemetryBus, read_live_events
from repro.observability.postmortem import (
    BUNDLE_SCHEMA_VERSION,
    BundleCapture,
    FailureBundle,
    FlightRecorder,
    analyze_bundle,
    classify_error,
    error_chain,
    write_failure_bundle,
)
from repro.resilience import FaultKind, FaultPlan, FaultSpec, RetryPolicy
from repro.runtime.serial import SerialRuntime
from repro.runtime.threaded import ThreadedRuntime

N = 64
B = 16
FAST_RETRY = RetryPolicy(max_attempts=2, backoff=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def matrix():
    return np.random.default_rng(4242).standard_normal((N, N))


def _chained(outer_cls, inner):
    try:
        raise inner
    except type(inner) as exc:
        try:
            raise outer_cls("wrapped") from exc
        except outer_cls as out:
            return out


def _serial_chaos(plan, bundle, **kw):
    from repro.resilience import ChaosEngine

    kw.setdefault("retry_policy", FAST_RETRY)
    return SerialRuntime(chaos=ChaosEngine(plan), bundle_out=bundle, **kw)


# ---------------------------------------------------------------------------
# FlightRecorder


class TestFlightRecorder:
    def _task(self, k=0, row=0):
        return Task(TaskKind.GEQRT, k, row, row, k)

    def test_capacity_bounds_tail_but_not_inflight(self):
        bus = TelemetryBus()
        rec = FlightRecorder(capacity=4).attach(bus)
        for i in range(10):
            bus.task_start(self._task(k=0, row=i), "dev0", t=float(i))
        bus.drain()
        assert len(rec) == 4  # tail is a ring
        assert rec.events_seen == 10
        assert len(rec.inflight()) == 10  # in-flight table is exact
        bus.close()

    def test_finish_clears_inflight_and_folds_devices(self):
        bus = TelemetryBus()
        rec = FlightRecorder().attach(bus)
        t = self._task()
        bus.task_start(t, "dev0", t=1.0)
        bus.task_finish(t, "dev0", start=1.0, end=2.0)
        bus.publish("retry", "dev0", {"task": "T", "attempt": 2})
        bus.publish("failover", "dev1", {"died": True, "panel": 0})
        bus.drain()
        assert rec.inflight() == []
        devs = rec.device_progress()
        assert devs["dev0"]["started"] == 1 and devs["dev0"]["finished"] == 1
        assert devs["dev0"]["retries"] == 1
        assert devs["dev1"]["dead"] is True
        bus.close()

    def test_inflight_ordered_by_start_time(self):
        bus = TelemetryBus()
        rec = FlightRecorder().attach(bus)
        bus.task_start(self._task(k=1, row=3), "b", t=5.0)
        bus.task_start(self._task(k=0, row=0), "a", t=1.0)
        bus.drain()
        sines = [e["since"] for e in rec.inflight()]
        assert sines == sorted(sines)
        bus.close()

    def test_detach_stops_recording(self):
        bus = TelemetryBus()
        rec = FlightRecorder().attach(bus)
        bus.publish("heartbeat", "dev0")
        bus.drain()
        rec.detach()
        bus.publish("heartbeat", "dev0")
        bus.drain()
        assert rec.events_seen == 1
        bus.close()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


# ---------------------------------------------------------------------------
# classify_error


class TestClassifyError:
    def test_classes(self):
        assert classify_error(WorkerFailoverError("x")) == "worker_death"
        assert classify_error(NumericalHealthError("x")) == "numerical"
        assert classify_error(TaskTimeoutError("x")) == "timeout"
        assert classify_error(FaultInjectionError("x")) == "injected-fault"
        assert classify_error(ShapeError("x")) == "config"
        assert classify_error(ConfigError("x")) == "config"
        assert classify_error(KeyboardInterrupt()) == "interrupted"
        assert classify_error(RuntimeError("x")) == "unknown"
        assert classify_error(None) == "unknown"

    def test_retry_exhaustion_classifies_as_its_cause(self):
        exc = _chained(RetryExhaustedError, NumericalHealthError("NaN"))
        assert classify_error(exc) == "numerical"
        exc = _chained(RetryExhaustedError, TaskTimeoutError("slow"))
        assert classify_error(exc) == "timeout"

    def test_checkpoint_error_is_config_by_name(self):
        from repro.runtime.checkpoint import CheckpointError

        assert classify_error(CheckpointError("bad snapshot")) == "config"

    def test_error_chain_walks_causes(self):
        exc = _chained(RetryExhaustedError, FaultInjectionError("boom"))
        chain = error_chain(exc)
        assert [type(e).__name__ for e in chain] == [
            "RetryExhaustedError",
            "FaultInjectionError",
        ]


# ---------------------------------------------------------------------------
# Bundle write / load


class TestBundleRoundTrip:
    def test_round_trip(self, tmp_path):
        bus = TelemetryBus()
        rec = FlightRecorder().attach(bus)
        task = Task(TaskKind.GEQRT, 0, 0, 0, 0)
        bus.task_start(task, "serial", t=1.0)
        bus.publish("retry", "serial", {"task": task.label(), "attempt": 2})
        bus.drain()
        metrics = MetricsRegistry()
        metrics.counter("resilience.retries").inc()
        plan = FaultPlan([FaultSpec(FaultKind.EXCEPTION, times=3)], seed=7)
        path = write_failure_bundle(
            tmp_path / "b.zip",
            error=_chained(RetryExhaustedError, FaultInjectionError("boom")),
            recorder=rec,
            metrics=metrics,
            fault_plan=plan,
            meta={"runtime": "serial", "n": 64},
        )
        bus.close()

        b = FailureBundle.load(path)
        assert b.manifest["schema"] == BUNDLE_SCHEMA_VERSION
        assert b.manifest["failure_class"] == "injected-fault"
        assert b.manifest["run"]["runtime"] == "serial"
        assert [e["type"] for e in b.manifest["error"]["chain"]] == [
            "RetryExhaustedError",
            "FaultInjectionError",
        ]
        assert b.manifest["provenance"]["version"]  # satellite: version recorded
        assert [e.type for e in b.events] == ["task.start", "retry"]
        assert len(b.inflight) == 1 and b.inflight[0]["device"] == "serial"
        assert b.metrics["counters"]["resilience.retries"] == 1
        assert b.fault_plan is not None and b.fault_plan.seed == 7
        # no temp droppings from the atomic write
        assert list(tmp_path.glob("*.tmp*")) == []

    def test_bundle_events_readable_as_live_stream(self, tmp_path):
        """events.jsonl inside a bundle is live schema v1: the standard
        reader parses it after extraction."""
        bus = TelemetryBus()
        rec = FlightRecorder().attach(bus)
        bus.publish("run.start", "serial", {"total_tasks": 3})
        bus.drain()
        path = write_failure_bundle(tmp_path / "b.zip", recorder=rec)
        bus.close()
        with zipfile.ZipFile(path) as zf:
            (tmp_path / "events.jsonl").write_bytes(zf.read("events.jsonl"))
        meta, events = read_live_events(tmp_path / "events.jsonl")
        assert meta["schema"] == 1
        assert [e.type for e in events] == ["run.start"]

    def test_load_rejects_junk(self, tmp_path):
        missing = tmp_path / "nope.zip"
        with pytest.raises(ObservabilityError, match="no failure bundle"):
            FailureBundle.load(missing)
        notzip = tmp_path / "junk.zip"
        notzip.write_text("not a zip")
        with pytest.raises(ObservabilityError, match="unreadable"):
            FailureBundle.load(notzip)
        with zipfile.ZipFile(tmp_path / "nomanifest.zip", "w") as zf:
            zf.writestr("other.json", "{}")
        with pytest.raises(ObservabilityError, match="manifest"):
            FailureBundle.load(tmp_path / "nomanifest.zip")

    def test_capture_is_idempotent_and_selective(self, tmp_path):
        cap = BundleCapture(tmp_path / "b.zip")
        assert cap.capture(AttributeError("bug")) is None  # programming error
        first = cap.capture(FaultInjectionError("boom"))
        assert first is not None and first.is_file()
        mtime = first.stat().st_mtime_ns
        assert cap.capture(FaultInjectionError("again")) == first
        assert first.stat().st_mtime_ns == mtime  # first capture won
        cap.close()


# ---------------------------------------------------------------------------
# Acceptance matrix: every injected fault class classifies correctly


class TestFaultClassMatrix:
    def _analyze(self, bundle_path):
        assert bundle_path.is_file(), "terminal failure must produce a bundle"
        return analyze_bundle(bundle_path)

    def test_serial_exception_exhausted(self, matrix, tmp_path):
        out = tmp_path / "b.zip"
        plan = FaultPlan([FaultSpec(FaultKind.EXCEPTION, task_kind="GEQRT", times=99)])
        with pytest.raises(RetryExhaustedError):
            _serial_chaos(plan, out).factorize(matrix.copy(), B)
        rep = self._analyze(out)
        assert rep.failure_class == "injected-fault"
        assert rep.injected and rep.fault_spec["kind"] == "exception"

    def test_serial_hang_deadline(self, matrix, tmp_path):
        out = tmp_path / "b.zip"
        plan = FaultPlan(
            [FaultSpec(FaultKind.HANG, task_kind="GEQRT", times=99, seconds=0.05)]
        )
        policy = RetryPolicy(max_attempts=2, backoff=0.0, jitter=0.0, deadline=0.01)
        with pytest.raises(RetryExhaustedError):
            _serial_chaos(plan, out, retry_policy=policy).factorize(matrix.copy(), B)
        rep = self._analyze(out)
        assert rep.failure_class == "hang"  # timeout upgraded: HANG spec seeded it
        assert rep.injected and rep.fault_spec["kind"] == "hang"

    def test_threaded_nan_corruption(self, matrix, tmp_path):
        from repro.resilience import ChaosEngine

        out = tmp_path / "b.zip"
        plan = FaultPlan(
            [FaultSpec(FaultKind.CORRUPT_NAN, task_kind="GEQRT", times=99)]
        )
        rt = ThreadedRuntime(
            num_workers=2,
            retry_policy=FAST_RETRY,
            chaos=ChaosEngine(plan),
            health_checks=True,
            bundle_out=out,
        )
        with pytest.raises(RetryExhaustedError):
            rt.factorize(matrix.copy(), B)
        rep = self._analyze(out)
        assert rep.failure_class == "numerical"
        assert rep.injected and rep.fault_spec["kind"] == "corrupt_nan"

    def test_multiprocess_worker_death(self, matrix, tmp_path, optimizer):
        from repro.runtime.multiprocess import MultiprocessRuntime

        out = tmp_path / "b.zip"
        dist = optimizer.plan(matrix_size=N, num_devices=2)
        plan = FaultPlan(
            specs=tuple(
                FaultSpec(FaultKind.KILL_WORKER, k=1, device=d)
                for d in dist.participants
            )
        )
        rt = MultiprocessRuntime(
            dist, retry_policy=FAST_RETRY, chaos_plan=plan, bundle_out=out
        )
        with pytest.raises(WorkerFailoverError):
            rt.factorize(matrix.copy(), B)
        rep = self._analyze(out)
        assert rep.failure_class == "worker_death"
        assert rep.injected and rep.fault_spec["kind"] == "kill_worker"
        assert rep.summary.startswith("run died as worker_death")

    def test_clean_run_writes_no_bundle(self, matrix, tmp_path):
        out = tmp_path / "b.zip"
        fact = SerialRuntime(bundle_out=out).factorize(matrix.copy(), B)
        assert fact.reconstruction_error(matrix) <= 1e-10
        assert not out.exists()


# ---------------------------------------------------------------------------
# Bundle capture racing a multiprocess failover (satellite)


class TestCaptureRacesFailover:
    def test_bundle_written_and_consistent_mid_failover(
        self, matrix, tmp_path, optimizer
    ):
        """Kill every worker at staggered panels: capture fires while the
        manager is still re-homing columns from the first death.  The
        bundle must exist and be internally consistent anyway."""
        from repro.runtime.multiprocess import MultiprocessRuntime

        out = tmp_path / "b.zip"
        dist = optimizer.plan(matrix_size=96, num_devices=3)
        specs = [
            FaultSpec(FaultKind.KILL_WORKER, k=1 + i, device=d)
            for i, d in enumerate(dist.participants)
        ]
        rt = MultiprocessRuntime(
            dist,
            retry_policy=RetryPolicy(max_attempts=3, backoff=0.0, jitter=0.0),
            chaos_plan=FaultPlan(specs=tuple(specs)),
            bundle_out=out,
        )
        a = np.random.default_rng(11).standard_normal((96, 96))
        with pytest.raises(WorkerFailoverError):
            rt.factorize(a, B)
        b = FailureBundle.load(out)  # loads => zip is complete, not torn
        assert b.manifest["failure_class"] == "worker_death"
        assert b.manifest["events"] == len(b.events)
        deaths = [e for e in b.events if e.type == "failover" and e.data.get("died")]
        assert deaths, "recorder must have seen at least one worker death"
        dead_devices = {
            name for name, st in b.progress["devices"].items() if st.get("dead")
        }
        assert dead_devices  # the fold agrees with the event tail
        assert set(e.device for e in deaths) <= dead_devices
        rep = analyze_bundle(b)
        assert rep.injected and rep.fault_spec["kind"] == "kill_worker"


# ---------------------------------------------------------------------------
# CLI


class TestPostmortemCli:
    def _bundle(self, tmp_path):
        out = tmp_path / "b.zip"
        plan = FaultPlan([FaultSpec(FaultKind.EXCEPTION, task_kind="GEQRT", times=99)])
        plan_path = tmp_path / "plan.json"
        plan.save(plan_path)
        code = main(
            [
                "chaos", "64", "--plan", str(plan_path), "--tile-size", "16",
                "--max-attempts", "2", "--bundle-out", str(out),
            ]
        )
        return code, out

    def test_chaos_bundle_and_postmortem_text(self, tmp_path, capsys):
        code, out = self._bundle(tmp_path)
        assert code == 5  # infrastructure: injected fault
        assert out.is_file()
        capsys.readouterr()
        assert main(["postmortem", str(out)]) == 0
        text = capsys.readouterr().out
        assert "injected-fault" in text
        assert "FaultSpec" in text
        assert "timeline" in text

    def test_postmortem_json(self, tmp_path, capsys):
        _, out = self._bundle(tmp_path)
        capsys.readouterr()
        assert main(["postmortem", str(out), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["failure_class"] == "injected-fault"
        assert doc["injected"] is True
        assert doc["fault_spec"]["kind"] == "exception"
        assert doc["narrative"]

    def test_postmortem_rejects_junk(self, tmp_path, capsys):
        assert main(["postmortem", str(tmp_path / "nope.zip")]) == 2
