"""Tests for task definitions, the DAG builder, analysis and export."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dag import (
    Step,
    Task,
    TaskKind,
    build_dag,
    critical_path_length,
    max_parallelism,
    step_counts,
    task_counts_total,
)
from repro.dag.analysis import dag_step_counts, per_panel_ready_updates
from repro.dag.builder import task_accesses
from repro.dag.export import to_dot, to_networkx
from repro.errors import DAGError


class TestTask:
    def test_step_mapping(self):
        assert TaskKind.GEQRT.step is Step.T
        assert TaskKind.TSQRT.step is Step.E
        assert TaskKind.TTQRT.step is Step.E
        assert TaskKind.UNMQR.step is Step.UT
        assert TaskKind.TSMQR.step is Step.UE
        assert TaskKind.TTMQR.step is Step.UE

    def test_update_flag(self):
        assert Step.UT.is_update and Step.UE.is_update
        assert not Step.T.is_update and not Step.E.is_update

    def test_validation_geqrt_row2(self):
        with pytest.raises(DAGError):
            Task(TaskKind.GEQRT, 0, 1, 0, 0)

    def test_validation_geqrt_col(self):
        with pytest.raises(DAGError):
            Task(TaskKind.GEQRT, 0, 0, 0, 1)

    def test_validation_elim_rows(self):
        with pytest.raises(DAGError):
            Task(TaskKind.TSQRT, 0, 1, 1, 0)  # top row not above bottom

    def test_validation_elim_col(self):
        with pytest.raises(DAGError):
            Task(TaskKind.TSQRT, 0, 1, 0, 1)

    def test_negative_index(self):
        with pytest.raises(DAGError):
            Task(TaskKind.UNMQR, -1, 0, 0, 0)

    def test_labels(self):
        assert Task(TaskKind.GEQRT, 0, 0, 0, 0).label() == "T[0,0]"
        assert Task(TaskKind.TSQRT, 0, 2, 0, 0).label() == "E[0+2,0]"
        assert "UT" in Task(TaskKind.UNMQR, 0, 0, 0, 1).label()
        assert "UE" in Task(TaskKind.TSMQR, 0, 1, 0, 2).label()

    def test_hashable_and_ordered(self):
        a = Task(TaskKind.GEQRT, 0, 0, 0, 0)
        b = Task(TaskKind.GEQRT, 1, 1, 1, 1)
        assert len({a, b, a}) == 2
        assert sorted([b, a])[0] == a


class TestBuilderTS:
    def test_counts_match_closed_form(self):
        for p, q in [(1, 1), (3, 3), (5, 3), (3, 5), (6, 6)]:
            dag = build_dag(p, q)
            expect = task_counts_total(p, q)
            assert dag.count_by_step() == expect, (p, q)

    def test_structure_valid(self):
        for p, q in [(1, 1), (4, 4), (5, 2)]:
            build_dag(p, q).validate()

    def test_single_tile(self):
        dag = build_dag(1, 1)
        assert len(dag) == 1
        assert dag.tasks[0].kind is TaskKind.GEQRT

    def test_first_task_is_geqrt_00(self):
        dag = build_dag(4, 4)
        assert dag.tasks[0] == Task(TaskKind.GEQRT, 0, 0, 0, 0)
        assert dag.sources() == [dag.tasks[0]]

    def test_elimination_chain_sequential(self):
        dag = build_dag(4, 4)
        e1 = Task(TaskKind.TSQRT, 0, 1, 0, 0)
        e2 = Task(TaskKind.TSQRT, 0, 2, 0, 0)
        e3 = Task(TaskKind.TSQRT, 0, 3, 0, 0)
        assert e1 in dag.preds[e2]
        assert e2 in dag.preds[e3]

    def test_updates_of_same_elim_parallel(self):
        dag = build_dag(3, 4)
        u1 = Task(TaskKind.TSMQR, 0, 1, 0, 1)
        u2 = Task(TaskKind.TSMQR, 0, 1, 0, 2)
        assert u1 not in dag.preds[u2]
        assert u2 not in dag.preds[u1]

    def test_unmqr_depends_on_geqrt(self):
        dag = build_dag(3, 3)
        g = Task(TaskKind.GEQRT, 0, 0, 0, 0)
        u = Task(TaskKind.UNMQR, 0, 0, 0, 2)
        assert g in dag.preds[u]

    def test_next_panel_geqrt_depends_on_update(self):
        dag = build_dag(3, 3)
        g1 = Task(TaskKind.GEQRT, 1, 1, 1, 1)
        # Last writer of tile (1,1) in panel 0 is TSMQR(0, row=1, col=1).
        u = Task(TaskKind.TSMQR, 0, 1, 0, 1)
        assert u in dag.preds[g1]

    def test_fig3_pattern(self):
        """Paper Fig. 3: T leads UT (right) and E (down); E leads UE and
        the next column's T (via UE)."""
        dag = build_dag(3, 3)
        t0 = Task(TaskKind.GEQRT, 0, 0, 0, 0)
        assert Task(TaskKind.UNMQR, 0, 0, 0, 1) in dag.succs[t0]
        assert Task(TaskKind.TSQRT, 0, 1, 0, 0) in dag.succs[t0]
        e = Task(TaskKind.TSQRT, 0, 1, 0, 0)
        assert Task(TaskKind.TSMQR, 0, 1, 0, 1) in dag.succs[e]

    def test_sinks_in_last_panel(self):
        dag = build_dag(4, 4)
        assert all(t.k == 3 for t in dag.sinks())

    def test_panel_tasks(self):
        dag = build_dag(4, 4)
        panel0 = dag.panel_tasks(0)
        assert len(panel0) == 1 + 3 + 3 + 9

    def test_rectangular_wide(self):
        dag = build_dag(2, 5)
        dag.validate()
        assert dag.count_by_step()[Step.T] == 2

    def test_invalid_args(self):
        with pytest.raises(DAGError):
            build_dag(0, 3)
        with pytest.raises(DAGError):
            build_dag(3, 3, "XX")


class TestBuilderTT:
    def test_valid_and_more_tasks(self):
        ts = build_dag(6, 6, "TS")
        tt = build_dag(6, 6, "TT")
        tt.validate()
        assert len(tt) > len(ts)

    def test_shorter_critical_path_for_tall(self):
        ts = build_dag(16, 2, "TS")
        tt = build_dag(16, 2, "TT")
        assert critical_path_length(tt) < critical_path_length(ts)

    def test_each_row_eliminated_once_per_panel(self):
        dag = build_dag(8, 8, "TT")
        for k in range(8):
            eliminated = [t.row for t in dag.panel_tasks(k) if t.step is Step.E]
            assert len(eliminated) == len(set(eliminated)) == 8 - k - 1

    def test_binary_tree_round_structure(self):
        dag = build_dag(4, 1, "TT")
        elims = [t for t in dag.tasks if t.step is Step.E]
        pairs = {(t.row2, t.row) for t in elims}
        assert pairs == {(0, 1), (2, 3), (0, 2)}


class TestAnalysis:
    def test_paper_table1(self):
        c = step_counts(10, 6)
        assert c[Step.T] == 10
        assert c[Step.E] == 10
        assert c[Step.UT] == 50
        assert c[Step.UE] == 50

    def test_exact_counts(self):
        c = dag_step_counts(10, 6)
        assert c == {Step.T: 1, Step.E: 9, Step.UT: 5, Step.UE: 45}

    def test_update_totals_agree(self):
        paper = step_counts(10, 6)
        exact = dag_step_counts(10, 6)
        assert exact[Step.UT] + exact[Step.UE] == paper[Step.UT]

    def test_invalid_panel(self):
        with pytest.raises(ValueError):
            step_counts(0, 3)

    def test_critical_path_unit_weights(self):
        # 1x1 grid: single task.
        assert critical_path_length(build_dag(1, 1)) == 1.0
        assert critical_path_length(build_dag(2, 2)) >= 4.0

    def test_critical_path_custom_weight(self):
        dag = build_dag(3, 3)
        cp = critical_path_length(dag, weight=lambda t: 2.0)
        assert cp == 2.0 * critical_path_length(dag)

    def test_max_parallelism_grows_with_grid(self):
        assert max_parallelism(build_dag(8, 8)) > max_parallelism(build_dag(3, 3))

    def test_per_panel_ready_updates(self):
        assert per_panel_ready_updates(10, 10, 0) == 10 * 9
        assert per_panel_ready_updates(10, 10, 9) == 0

    @given(st.integers(1, 10), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_property_closed_form_matches_builder(self, p, q):
        dag = build_dag(p, q)
        assert dag.count_by_step() == task_counts_total(p, q)


class TestAccesses:
    def test_geqrt_access(self):
        reads, writes = task_accesses(Task(TaskKind.GEQRT, 1, 1, 1, 1))
        assert ("t", 1, 1) in reads and ("t", 1, 1) in writes
        assert ("Vg", 1, 1) in writes

    def test_tsmqr_reads_factors(self):
        reads, _ = task_accesses(Task(TaskKind.TSMQR, 0, 2, 0, 3))
        assert ("Ve", 2, 0) in reads


class TestExport:
    def test_networkx_roundtrip(self):
        dag = build_dag(3, 3)
        g = to_networkx(dag)
        assert g.number_of_nodes() == len(dag)
        import networkx as nx

        assert nx.is_directed_acyclic_graph(g)
        # Edges match preds.
        assert g.number_of_edges() == sum(len(v) for v in dag.preds.values())

    def test_dot_contains_all_labels(self):
        dag = build_dag(2, 2)
        dot = to_dot(dag)
        assert dot.startswith("digraph")
        for t in dag.tasks:
            assert t.label() in dot
