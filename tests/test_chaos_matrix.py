"""End-to-end chaos matrix: every runtime survives every fault kind.

Each case runs a full factorization under a seeded fault plan and
checks (a) the result is still numerically correct (residual <= 1e-10)
and (b) where the fault is masked by a retry — exception, hang,
corruption caught by the health sentinels — the result is *bit-identical*
to the fault-free run, because a retry restores the task's written tiles
before replaying.
"""

import numpy as np
import pytest

from repro.observability import MetricsRegistry, Tracer
from repro.resilience import ChaosEngine, FaultKind, FaultPlan, FaultSpec, RetryPolicy
from repro.runtime import tiled_qr
from repro.runtime.serial import SerialRuntime
from repro.runtime.threaded import ThreadedRuntime
from repro.runtime.multiprocess import MultiprocessRuntime

N = 96
B = 16

#: fault kind -> (spec fields, needs health sentinels to be detected)
FAULTS = {
    "exception": (dict(kind=FaultKind.EXCEPTION, task_kind="TSQRT", k=1, times=2), False),
    "delay": (dict(kind=FaultKind.DELAY, task_kind="UNMQR", k=0, times=2, seconds=0.02), False),
    "hang": (dict(kind=FaultKind.HANG, task_kind="GEQRT", k=2, times=1, seconds=0.15), False),
    "corrupt_nan": (dict(kind=FaultKind.CORRUPT_NAN, task_kind="TSMQR", k=0, row=2, times=1), True),
    "corrupt_inf": (dict(kind=FaultKind.CORRUPT_INF, task_kind="GEQRT", k=1, times=1), True),
}


@pytest.fixture(scope="module")
def matrix():
    return np.random.default_rng(4242).standard_normal((N, N))


@pytest.fixture(scope="module")
def clean_r(matrix):
    return tiled_qr(matrix, B).r_dense()


def _policy(name):
    # Hangs need a deadline to be detected; everything else retries flat.
    deadline = 0.05 if name == "hang" else None
    return RetryPolicy(max_attempts=3, backoff=0.0, jitter=0.0, deadline=deadline)


def _check(fact, matrix, clean_r, name, masked):
    assert fact.reconstruction_error(matrix) <= 1e-10
    if masked:
        assert np.array_equal(fact.r_dense(), clean_r), (
            f"retry-masked {name} fault must leave R bit-identical"
        )


@pytest.mark.parametrize("name", sorted(FAULTS))
def test_serial_survives(name, matrix, clean_r):
    spec, needs_health = FAULTS[name]
    plan = FaultPlan(specs=(FaultSpec(**spec),))
    metrics = MetricsRegistry()
    fact = SerialRuntime(
        retry_policy=_policy(name),
        chaos=ChaosEngine(plan, metrics=metrics),
        health_checks=needs_health,
        metrics=metrics,
    ).factorize(matrix.copy(), B)
    counters = metrics.snapshot()["counters"]
    assert counters["resilience.faults_injected"] == spec["times"]
    # A delay perturbs timing only; every other kind forces retries.
    masked = name != "delay"
    if masked:
        assert counters["resilience.retries"] >= 1
    _check(fact, matrix, clean_r, name, masked=True)


@pytest.mark.parametrize("name", sorted(FAULTS))
def test_threaded_survives(name, matrix, clean_r):
    spec, needs_health = FAULTS[name]
    plan = FaultPlan(specs=(FaultSpec(**spec),))
    metrics = MetricsRegistry()
    fact = ThreadedRuntime(
        num_workers=4,
        retry_policy=_policy(name),
        chaos=ChaosEngine(plan, metrics=metrics),
        health_checks=needs_health,
        metrics=metrics,
    ).factorize(matrix.copy(), B)
    assert metrics.snapshot()["counters"]["resilience.faults_injected"] == spec["times"]
    _check(fact, matrix, clean_r, name, masked=True)


@pytest.mark.parametrize("name", ["exception", "corrupt_nan", "kill_worker"])
def test_multiprocess_survives(name, matrix, clean_r, optimizer):
    dist = optimizer.plan(matrix_size=N, num_devices=3)
    if name == "kill_worker":
        victim = next(d for d in dist.participants if d != dist.main_device)
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.KILL_WORKER, task_kind="TSMQR", k=1, device=victim),
        ))
        needs_health = False
    else:
        spec, needs_health = FAULTS[name]
        plan = FaultPlan(specs=(FaultSpec(**spec),))
    metrics = MetricsRegistry()
    tracer = Tracer(metrics=metrics)
    fact = MultiprocessRuntime(
        dist,
        tracer=tracer,
        retry_policy=RetryPolicy(max_attempts=3, backoff=0.0, jitter=0.0),
        chaos_plan=plan,
        health_checks=needs_health,
        metrics=metrics,
    ).factorize(matrix.copy(), B)
    counters = metrics.snapshot()["counters"]
    if name == "kill_worker":
        assert counters["resilience.worker_deaths"] == 1
        assert counters["resilience.failovers"] >= 1
        assert any(r.kind == "failover" for r in tracer.annotation_records())
    else:
        assert counters["resilience.faults_injected"] >= 1
        assert counters["resilience.retries"] >= 1
    # Failover replays per-tile kernels against pristine column copies,
    # so even the worker-kill path reproduces R bit-for-bit.
    _check(fact, matrix, clean_r, name, masked=True)


def test_batched_updates_chaos_serial(matrix):
    """The coarsened-update DAG goes through the same envelope: a batch
    task's written tiles snapshot/restore covers the whole row panel."""
    plan = FaultPlan(specs=(
        FaultSpec(FaultKind.EXCEPTION, task_kind="TSMQR_BATCH", k=0, times=1),
        FaultSpec(FaultKind.CORRUPT_NAN, task_kind="UNMQR_BATCH", k=1, times=1),
    ))
    clean = SerialRuntime(batch_updates=True).factorize(matrix.copy(), B)
    fact = SerialRuntime(
        batch_updates=True,
        retry_policy=RetryPolicy(backoff=0.0, jitter=0.0),
        chaos=ChaosEngine(plan),
        health_checks=True,
    ).factorize(matrix.copy(), B)
    assert np.array_equal(fact.r_dense(), clean.r_dense())
