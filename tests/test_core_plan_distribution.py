"""Tests for DistributionPlan, ColumnDistribution and the optimizer pipeline."""

import pytest

from repro.core import ColumnDistribution, DistributionPlan, Optimizer
from repro.core.distribution import guide_for_participants, main_update_share
from repro.errors import PlanError


def make_plan(system, **kw):
    defaults = dict(
        system=system,
        main_device="gtx580-0",
        participants=("gtx580-0", "gtx680-0"),
        guide_array=("gtx680-0",),
        tile_size=16,
    )
    defaults.update(kw)
    return DistributionPlan(**defaults)


class TestDistributionPlan:
    def test_column_zero_belongs_to_main(self, system):
        plan = make_plan(system)
        assert plan.column_owner(0) == "gtx580-0"

    def test_cyclic_ownership(self, system):
        plan = make_plan(
            system,
            participants=("gtx580-0", "gtx680-0", "gtx680-1"),
            guide_array=("gtx680-0", "gtx680-1"),
        )
        assert plan.column_owner(1) == "gtx680-1"  # 1 % 2 == 1
        assert plan.column_owner(2) == "gtx680-0"
        assert plan.column_owner(3) == "gtx680-1"

    def test_panel_owner_default_is_main(self, system):
        plan = make_plan(system)
        assert plan.panel_owner(5) == "gtx580-0"

    def test_panel_follows_column(self, system):
        plan = make_plan(system, panel_follows_column=True)
        assert plan.panel_owner(1) == plan.column_owner(1)

    def test_columns_of(self, system):
        plan = make_plan(system)
        cols = plan.columns_of("gtx680-0", 6)
        assert cols == [1, 2, 3, 4, 5]
        assert plan.columns_of("gtx580-0", 6) == [0]

    def test_validation_unknown_device(self, system):
        with pytest.raises(PlanError):
            make_plan(system, main_device="nope")

    def test_validation_main_must_participate(self, system):
        with pytest.raises(PlanError):
            make_plan(system, participants=("gtx680-0",))

    def test_validation_guide_subset(self, system):
        with pytest.raises(PlanError):
            make_plan(system, guide_array=("gtx680-1",))

    def test_validation_duplicates(self, system):
        with pytest.raises(PlanError):
            make_plan(system, participants=("gtx580-0", "gtx580-0"))

    def test_negative_column(self, system):
        with pytest.raises(PlanError):
            make_plan(system).column_owner(-1)

    def test_describe_mentions_main(self, system):
        assert "gtx580-0" in make_plan(system).describe()


class TestColumnDistribution:
    def test_update_tiles_first_iteration(self, system):
        plan = make_plan(system)
        dist = ColumnDistribution(plan, grid_rows=10, grid_cols=10)
        # Device gtx680-0 owns columns 1..9: 9 columns x 10 rows.
        assert dist.update_tiles("gtx680-0", 0) == 90
        assert dist.update_tiles("gtx580-0", 0) == 0

    def test_update_columns_shrink_with_k(self, system):
        plan = make_plan(system)
        dist = ColumnDistribution(plan, 10, 10)
        assert len(dist.update_columns("gtx680-0", 0)) == 9
        assert len(dist.update_columns("gtx680-0", 8)) == 1
        assert dist.update_columns("gtx680-0", 9) == []

    def test_tiles_per_device_total(self, system):
        plan = make_plan(system)
        dist = ColumnDistribution(plan, 6, 6)
        total = sum(dist.tiles_per_device().values())
        expected = sum((6 - k) * (6 - k - 1) for k in range(6))
        assert total == expected

    def test_load_balance_summary(self, system):
        plan = make_plan(system)
        dist = ColumnDistribution(plan, 8, 8)
        summary = dist.load_balance_summary()
        assert set(summary) == set(plan.participants)
        assert summary["gtx680-0"] > 0.0

    def test_invalid_grid(self, system):
        with pytest.raises(PlanError):
            ColumnDistribution(make_plan(system), 0, 5)


class TestMainUpdateShare:
    def test_alone_gets_everything(self, system):
        x = main_update_share(system, ["gtx580-0"], "gtx580-0", 100, 100, 16)
        assert x == 1.0

    def test_share_in_unit_interval(self, system):
        x = main_update_share(
            system, list(system.device_ids), "gtx580-0", 500, 500, 16
        )
        assert 0.0 <= x <= 1.0

    def test_small_grid_saturates_main(self, system):
        # Short panels: the chain dwarfs the update pool -> no share.
        x = main_update_share(
            system, ["gtx580-0", "gtx680-0"], "gtx580-0", 20, 20, 16
        )
        assert x == 0.0

    def test_large_grid_gives_main_some_updates(self, system):
        x = main_update_share(
            system, list(system.device_ids), "gtx580-0", 1000, 1000, 16
        )
        assert x > 0.05


class TestGuideForParticipants:
    def test_residual_excludes_saturated_main(self, system):
        ratio, guide = guide_for_participants(
            system, ["gtx580-0", "gtx680-0"], "gtx580-0", 40, 40, 16
        )
        assert ratio["gtx580-0"] == 0
        assert "gtx580-0" not in guide
        assert set(guide) == {"gtx680-0"}

    def test_always_mode_includes_main(self, system):
        ratio, guide = guide_for_participants(
            system, ["gtx580-0", "gtx680-0"], "gtx580-0", 40, 40, 16,
            main_updates="always",
        )
        assert ratio["gtx580-0"] >= 1
        assert "gtx580-0" in guide

    def test_unknown_mode(self, system):
        with pytest.raises(PlanError):
            guide_for_participants(
                system, ["gtx580-0"], "gtx580-0", 10, 10, 16, main_updates="x"
            )

    def test_main_must_participate(self, system):
        with pytest.raises(PlanError):
            guide_for_participants(system, ["gtx680-0"], "gtx580-0", 10, 10, 16)


class TestOptimizer:
    def test_plan_roundtrip(self, optimizer):
        plan = optimizer.plan(matrix_size=640)
        assert plan.main_device == "gtx580-0"
        assert plan.tile_size == 16
        assert plan.notes["grid"] == (40, 40)

    def test_optimal_device_count_small_vs_large(self, optimizer):
        small = optimizer.plan(matrix_size=320)
        large = optimizer.plan(matrix_size=4000)
        assert small.num_devices < large.num_devices

    def test_num_devices_override(self, optimizer):
        plan = optimizer.plan(matrix_size=640, num_devices=3)
        assert plan.num_devices == 3
        assert plan.notes["optimal_num_devices"] >= 1

    def test_main_override(self, optimizer):
        plan = optimizer.plan(matrix_size=640, main_device="gtx680-0", num_devices=4)
        assert plan.main_device == "gtx680-0"
        assert plan.participants[0] == "gtx680-0"

    def test_invalid_inputs(self, optimizer):
        with pytest.raises(PlanError):
            optimizer.plan()
        with pytest.raises(PlanError):
            optimizer.plan(matrix_size=0)
        with pytest.raises(PlanError):
            optimizer.plan(matrix_size=100, num_devices=9)
        with pytest.raises(PlanError):
            optimizer.plan(matrix_size=100, main_device="nope")

    def test_predicted_table_attached(self, optimizer):
        plan = optimizer.plan(matrix_size=640)
        table = plan.notes["predicted"]
        assert len(table) == 4
        assert all(r.total > 0 for r in table)

    def test_participants_ordered_main_first(self, optimizer):
        plan = optimizer.plan(matrix_size=3200, num_devices=4)
        assert plan.participants[0] == plan.main_device
