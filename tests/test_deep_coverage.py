"""Deeper behavioural coverage across subsystems.

Each test pins a behaviour not covered elsewhere: transfer batching,
broadcast gating, padding corner cases, horizon variants, doctest of the
package front page, etc.
"""

import numpy as np
import pytest

from repro.dag import Step, build_dag
from repro.sim import simulate_iteration_level, simulate_task_level


class TestEngineTransferBehaviour:
    def test_transfers_batched_per_destination(self, system, topology, optimizer):
        """Port batching: fewer messages than payloads moved."""
        plan = optimizer.plan(matrix_size=320, num_devices=3)
        dag = build_dag(20, 20)
        trace = simulate_task_level(dag, plan, system, topology)
        # Unbatched, every factor/tile would be its own transfer; with
        # batching the message count is far below the task count.
        assert 0 < len(trace.transfers) < len(trace.tasks) / 4

    def test_factor_broadcast_cached_per_device(self, system, topology, optimizer):
        """A factor travels to a given device at most once."""
        plan = optimizer.plan(matrix_size=160, num_devices=2)
        dag = build_dag(10, 10)
        trace = simulate_task_level(dag, plan, system, topology)
        # Count total payload-bytes vs naive per-consumer shipping:
        # every UE task consuming a remote factor would be 2 KB each.
        ue_tasks = sum(1 for r in trace.tasks if r.task.step is Step.UE)
        total_bytes = sum(t.num_bytes for t in trace.transfers)
        assert total_bytes < ue_tasks * 2048  # strictly better than naive

    def test_no_transfer_to_self(self, system, topology, optimizer):
        plan = optimizer.plan(matrix_size=160, num_devices=4)
        dag = build_dag(10, 10)
        trace = simulate_task_level(dag, plan, system, topology)
        assert all(t.src != t.dst for t in trace.transfers)


class TestIterationBroadcastGating:
    def test_exhausted_devices_stop_receiving(self, system, topology, optimizer):
        """Once a device's columns are all factored, broadcasts to it stop
        (the fix validated by ablation-guide-optimality)."""
        plan = optimizer.plan(matrix_size=160, num_devices=2)
        g = 10
        rep_full = simulate_iteration_level(plan, g, g, system, topology)
        # Same plan on a 1-wide grid: the non-main device owns nothing,
        # so there must be no broadcasts at all.
        rep_thin = simulate_iteration_level(plan, g, 1, system, topology)
        assert rep_thin.num_transfers == 0
        assert rep_full.num_transfers > 0

    def test_panel_follows_column_moves_broadcast_source(self, system, topology):
        from repro.baselines import no_main_plan

        g = 12
        plan = no_main_plan(system, g, g, 16)
        rep = simulate_iteration_level(plan, g, g, system, topology)
        assert rep.makespan > 0
        # All GPUs do panel work -> all three accumulate busy time.
        gpus_busy = [v for d, v in rep.compute_busy.items() if "gtx" in d]
        assert all(v > 0 for v in gpus_busy)


class TestPaddingCorners:
    def test_identity_padded_diagonal_cleared(self):
        from repro.tiles import TiledMatrix

        t = TiledMatrix.identity(20, 16)
        # The padded diagonal entries of the last tile must be zero.
        last = t.tile(1, 1)
        assert last[4, 4] == 0.0
        assert last[15, 15] == 0.0
        np.testing.assert_array_equal(t.to_dense(), np.eye(20))

    def test_single_element_matrix(self):
        from repro.runtime import tiled_qr

        f = tiled_qr(np.array([[3.0]]), tile_size=16)
        assert f.r_dense()[0, 0] == pytest.approx(-3.0) or f.r_dense()[0, 0] == pytest.approx(3.0)
        assert abs(abs(f.q_dense()[0, 0]) - 1.0) < 1e-15

    def test_tile_size_larger_than_matrix(self, rng):
        from repro.runtime import tiled_qr

        a = rng.standard_normal((5, 5))
        f = tiled_qr(a, tile_size=64)
        assert np.linalg.norm(f.apply_q(f.r_dense()) - a) < 1e-12

    def test_one_column_matrix(self, rng):
        from repro.runtime import tiled_qr

        a = rng.standard_normal((40, 1))
        f = tiled_qr(a, tile_size=16)
        r = f.r_dense()
        assert abs(abs(r[0, 0]) - np.linalg.norm(a)) < 1e-10
        assert np.linalg.norm(r[1:]) < 1e-10


class TestPredictorHorizons:
    def test_first_vs_total_agree_at_boundaries(self, system, topology):
        """Both horizons of the Alg. 3 predictor give valid tables; the
        total horizon is what lines up with execution (Table III)."""
        from repro.core.device_count import predicted_times

        for horizon in ("first", "total"):
            table = predicted_times(
                system, "gtx580-0", 100, 100, 16, topology, horizon=horizon
            )
            assert len(table) == 4
            assert all(r.t_op > 0 for r in table)

    def test_total_is_larger_than_first(self, system, topology):
        from repro.core.device_count import predicted_times

        first = predicted_times(system, "gtx580-0", 50, 50, 16, topology, horizon="first")
        total = predicted_times(system, "gtx580-0", 50, 50, 16, topology, horizon="total")
        for f, t in zip(first, total):
            assert t.total > f.total  # whole run costs more than iteration 1


class TestPackageFrontPage:
    def test_init_doctests(self):
        import doctest

        import repro

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 2

    def test_version_exposed(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_public_symbols_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestExperimentCommon:
    def test_paper_sizes_quick_subset(self):
        from repro.experiments.common import paper_sizes

        quick = paper_sizes(True)
        full = paper_sizes(False)
        assert set(quick["large"]) <= set(full["large"])
        assert len(full["table3"]) == 25
        assert full["table3"][0] == 160 and full["table3"][-1] == 4000

    def test_experiment_result_to_text(self):
        from repro.experiments.common import ExperimentResult

        res = ExperimentResult(
            name="x", title="T", headers=["a"], rows=[[1.0]],
            paper_expectation="p", observations="o",
        )
        text = res.to_text()
        assert "T" in text and "paper: p" in text and "measured: o" in text


class TestGanttEdgeCases:
    def test_zero_length_trace(self):
        from repro.dag.tasks import Task, TaskKind
        from repro.sim.gantt import ascii_gantt
        from repro.sim.trace import ExecutionTrace, TaskRecord

        tr = ExecutionTrace(
            tasks=[TaskRecord(Task(TaskKind.GEQRT, 0, 0, 0, 0), "d", 0.0, 0.0)]
        )
        assert "zero-length" in ascii_gantt(tr)

    def test_chrome_trace_time_unit(self, system, topology, optimizer):
        import json

        from repro.sim.gantt import to_chrome_trace

        plan = optimizer.plan(matrix_size=64, num_devices=1)
        dag = build_dag(4, 4)
        trace = simulate_task_level(dag, plan, system, topology)
        doc1 = json.loads(to_chrome_trace(trace, time_unit=1e6))
        doc2 = json.loads(to_chrome_trace(trace, time_unit=1e3))
        d1 = doc1["traceEvents"][0]["dur"]
        d2 = doc2["traceEvents"][0]["dur"]
        assert d1 == pytest.approx(1000 * d2)


class TestLogging:
    def test_optimizer_logs_decisions(self, optimizer, caplog):
        import logging

        with caplog.at_level(logging.DEBUG, logger="repro.optimizer"):
            optimizer.plan(matrix_size=640)
        assert any("main=gtx580-0" in r.message for r in caplog.records)
        assert any("Alg.3" in r.message for r in caplog.records)

    def test_silent_by_default(self, optimizer, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro.optimizer"):
            optimizer.plan(matrix_size=640)
        assert not caplog.records
