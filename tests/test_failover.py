"""Device-failover tests for the multiprocess runtime.

The acceptance scenario from the reliability work: a seeded fault plan
kills one worker process mid-run *and* injects kernel exceptions; the
run must converge to a correct R (residual <= 1e-10), the trace must
record the failover, and the ``resilience.*`` counters must be non-zero.
"""

import numpy as np
import pytest

from repro.errors import WorkerFailoverError
from repro.observability import MetricsRegistry, Tracer
from repro.resilience import FaultKind, FaultPlan, FaultSpec, RetryPolicy
from repro.runtime import tiled_qr
from repro.runtime.multiprocess import MultiprocessRuntime

N = 96
B = 16
POLICY = RetryPolicy(max_attempts=3, backoff=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def matrix():
    return np.random.default_rng(777).standard_normal((N, N))


@pytest.fixture(scope="module")
def clean_r(matrix):
    return tiled_qr(matrix, B).r_dense()


def _run(dist, matrix, plan):
    metrics = MetricsRegistry()
    tracer = Tracer(metrics=metrics)
    fact = MultiprocessRuntime(
        dist, tracer=tracer, retry_policy=POLICY, chaos_plan=plan, metrics=metrics
    ).factorize(matrix.copy(), B)
    return fact, metrics.snapshot()["counters"], tracer.annotation_records()


def test_acceptance_kill_plus_exceptions(matrix, clean_r, optimizer):
    """One worker killed mid-run + two kernel exceptions: the run
    completes, R is bit-identical to the clean run, the failover and the
    retries are all visible in counters and trace annotations."""
    dist = optimizer.plan(matrix_size=N, num_devices=3)
    victim = next(d for d in dist.participants if d != dist.main_device)
    plan = FaultPlan(specs=(
        FaultSpec(FaultKind.KILL_WORKER, task_kind="TSMQR", k=2, device=victim),
        FaultSpec(FaultKind.EXCEPTION, task_kind="UNMQR", k=1, times=1),
        FaultSpec(FaultKind.EXCEPTION, task_kind="TSQRT", k=3, times=1),
    ), seed=42)
    fact, counters, annotations = _run(dist, matrix, plan)

    assert fact.reconstruction_error(matrix) <= 1e-10
    assert np.array_equal(fact.r_dense(), clean_r)
    assert counters["resilience.worker_deaths"] == 1
    assert counters["resilience.failovers"] >= 1
    assert counters["resilience.retries"] >= 2
    assert counters["resilience.faults_injected"] == 3
    failover_notes = [a for a in annotations if a.kind == "failover"]
    assert any("died" in a.label for a in failover_notes)
    assert any("migrated column" in a.label for a in failover_notes)


def test_kill_main_device(matrix, clean_r, optimizer):
    """Killing the *main* device forces a main re-election on top of the
    column migration; the survivors still finish correctly."""
    dist = optimizer.plan(matrix_size=N, num_devices=3)
    # The main owns column 0, so its panel-0 factorization is the one
    # task guaranteed to run there.
    plan = FaultPlan(specs=(
        FaultSpec(FaultKind.KILL_WORKER, task_kind="GEQRT", k=0,
                  device=dist.main_device),
    ))
    fact, counters, annotations = _run(dist, matrix, plan)
    assert np.array_equal(fact.r_dense(), clean_r)
    assert counters["resilience.worker_deaths"] == 1
    # The death annotation names the re-elected main.
    died = next(a for a in annotations if a.kind == "failover" and "died" in a.label)
    assert dist.main_device in died.label


def test_two_deaths_leave_one_survivor(matrix, clean_r, optimizer):
    """Two of three devices die (at different panels); the single
    survivor inherits everything and completes alone."""
    dist = optimizer.plan(matrix_size=N, num_devices=3)
    others = [d for d in dist.participants if d != dist.main_device]
    plan = FaultPlan(specs=(
        FaultSpec(FaultKind.KILL_WORKER, task_kind="TSMQR", k=1, device=others[0]),
        FaultSpec(FaultKind.KILL_WORKER, task_kind="TSMQR", k=3, device=others[1]),
    ))
    fact, counters, _ = _run(dist, matrix, plan)
    assert np.array_equal(fact.r_dense(), clean_r)
    assert counters["resilience.worker_deaths"] == 2
    assert counters["resilience.failovers"] >= 2


def test_all_devices_dead_raises(matrix, optimizer):
    """No survivors -> WorkerFailoverError, not a hang or garbage R."""
    dist = optimizer.plan(matrix_size=N, num_devices=2)
    plan = FaultPlan(specs=tuple(
        FaultSpec(FaultKind.KILL_WORKER, k=1, device=d) for d in dist.participants
    ))
    with pytest.raises(WorkerFailoverError, match="no surviving devices"):
        MultiprocessRuntime(
            dist, retry_policy=POLICY, chaos_plan=plan
        ).factorize(matrix.copy(), B)


def test_worker_side_retry_stats_reach_manager(matrix, optimizer):
    """Retries that happen inside a worker process are folded back into
    the manager's metrics through the reply protocol."""
    dist = optimizer.plan(matrix_size=N, num_devices=2)
    plan = FaultPlan(specs=(
        FaultSpec(FaultKind.EXCEPTION, task_kind="GEQRT", k=0, times=1),
        FaultSpec(FaultKind.EXCEPTION, task_kind="TSMQR", k=1, times=2),
    ))
    fact, counters, _ = _run(dist, matrix, plan)
    assert counters["resilience.retries"] == 3
    assert counters["resilience.faults_injected"] == 3
    assert fact.reconstruction_error(matrix) <= 1e-10


def test_hung_worker_is_detected_and_failed_over(matrix, clean_r, optimizer):
    """A worker that stops responding (hang far beyond the deadline) is
    declared dead by the manager's reply timeout and failed over."""
    dist = optimizer.plan(matrix_size=N, num_devices=3)
    victim = next(d for d in dist.participants if d != dist.main_device)
    plan = FaultPlan(specs=(
        FaultSpec(FaultKind.HANG, task_kind="TSMQR", k=1, device=victim,
                  times=1, seconds=30.0),
    ))
    metrics = MetricsRegistry()
    policy = RetryPolicy(max_attempts=2, backoff=0.0, jitter=0.0, deadline=0.05)
    fact = MultiprocessRuntime(
        dist, retry_policy=policy, chaos_plan=plan, metrics=metrics
    ).factorize(matrix.copy(), B)
    counters = metrics.snapshot()["counters"]
    assert counters["resilience.timeouts"] >= 1
    assert counters["resilience.worker_deaths"] == 1
    assert np.array_equal(fact.r_dense(), clean_r)
