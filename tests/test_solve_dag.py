"""Tests for the solve-phase DAG and its simulation."""

import pytest

from repro.dag import Step, build_dag
from repro.dag.solve import build_solve_dag
from repro.dag.tasks import Task, TaskKind
from repro.errors import DAGError
from repro.sim.engine import simulate_task_level
from repro.sim.validation import validate_dependencies, validate_ports


class TestSolveDagStructure:
    def test_task_count(self):
        # Phase 1: sum_k (p-k) tasks; phase 2: sum_i (1+i) tasks.
        p = 8
        dag = build_solve_dag(p, 1)
        expected = sum(p - k for k in range(p)) + sum(1 + i for i in range(p))
        assert len(dag) == expected
        dag.validate()

    def test_multiple_rhs_scales_tasks(self):
        d1 = build_solve_dag(6, 1)
        d3 = build_solve_dag(6, 3)
        assert len(d3) == 3 * len(d1)

    def test_qt_phase_is_serial_per_column(self):
        dag = build_solve_dag(5, 1)
        col = 5  # the RHS column
        first = Task(TaskKind.UNMQR, 0, 0, 0, col)
        second = Task(TaskKind.TSMQR, 0, 1, 0, col)
        assert first in dag.preds[second]

    def test_substitutions_parallel_across_rows(self):
        """After the access fix, x_i substitutions into different rows
        must NOT be chained."""
        p = 6
        dag = build_solve_dag(p, 1)
        col = p
        i = p - 1
        g1 = Task(TaskKind.TSMQR, p + i, i, 0, col)
        g2 = Task(TaskKind.TSMQR, p + i, i, 1, col)
        assert g1 not in dag.preds[g2]
        assert g2 not in dag.preds[g1]

    def test_trsm_waits_for_substitutions_from_below(self):
        p = 4
        dag = build_solve_dag(p, 1)
        col = p
        trsm_2 = Task(TaskKind.UNMQR, p + 2, 2, 2, col)
        sub_from_3 = Task(TaskKind.TSMQR, p + 3, 3, 2, col)
        assert sub_from_3 in dag.preds[trsm_2]

    def test_invalid_args(self):
        with pytest.raises(DAGError):
            build_solve_dag(0, 1)
        with pytest.raises(DAGError):
            build_solve_dag(5, 0)


class TestSolveDagSimulation:
    def test_simulates_cleanly(self, system, topology, optimizer):
        plan = optimizer.plan(matrix_size=160, num_devices=3)
        dag = build_solve_dag(10, 1)
        trace = simulate_task_level(dag, plan, system, topology)
        assert len(trace.tasks) == len(dag)
        validate_dependencies(trace, dag)
        validate_ports(trace)

    def test_factor_preseed_used(self, system, topology, optimizer):
        """Solve consumes factorization factors that were never produced
        in this DAG — they must be fetched from the main device."""
        plan = optimizer.plan(matrix_size=160, num_devices=3)
        dag = build_solve_dag(10, 1)
        trace = simulate_task_level(dag, plan, system, topology)
        # The RHS column owner differs from main, so factor transfers
        # must appear.
        if plan.column_owner(10) != plan.main_device:
            assert len(trace.transfers) > 0

    def test_solve_cheaper_than_factorization_at_scale(self, system, topology, optimizer):
        g = 24
        plan = optimizer.plan(matrix_size=g * 16, num_devices=3)
        t_solve = simulate_task_level(
            build_solve_dag(g, 1), plan, system, topology
        ).makespan
        t_factor = simulate_task_level(
            build_dag(g, g), plan, system, topology
        ).makespan
        assert t_solve < t_factor

    def test_batched_rhs_rides_along(self, system, topology, optimizer):
        """Two RHS tile columns cost well under 2x one column."""
        g = 12
        plan = optimizer.plan(matrix_size=g * 16, num_devices=2)
        t1 = simulate_task_level(build_solve_dag(g, 1), plan, system, topology).makespan
        t2 = simulate_task_level(build_solve_dag(g, 2), plan, system, topology).makespan
        assert t2 < 1.7 * t1
