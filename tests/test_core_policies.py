"""Tests for main-device selection (Alg. 2) and device-count choice (Alg. 3)."""

import pytest

from repro.core.device_count import (
    PredictedTime,
    order_by_update_speed,
    predicted_times,
    select_num_devices,
)
from repro.core.main_device import (
    can_finish_e_before_ut,
    can_finish_t_before_ue,
    main_device_candidates,
    select_main_device,
)
from repro.devices import paper_testbed, synthetic_system
from repro.errors import PlanError


class TestMainDeviceSelection:
    def test_paper_selection_is_gtx580(self, system):
        """The paper's headline: GTX580 is the main device (Sec. VI-B)."""
        for grid in (50, 200, 1000):
            assert select_main_device(system, grid, grid, 16) == "gtx580-0"

    def test_cpu_never_candidate_on_testbed(self, system):
        cands = main_device_candidates(system, 200, 200, 16)
        assert "cpu-0" not in [d.device_id for d in cands]

    def test_both_gpu_types_are_candidates(self, system):
        cands = [d.device_id for d in main_device_candidates(system, 200, 200, 16)]
        assert "gtx580-0" in cands
        assert "gtx680-0" in cands

    def test_minimum_update_speed_among_candidates_wins(self, system):
        cands = main_device_candidates(system, 200, 200, 16)
        chosen = select_main_device(system, 200, 200, 16)
        slowest = min(cands, key=lambda d: d.update_throughput(16))
        assert chosen == slowest.device_id

    def test_single_device_system(self):
        sys_ = paper_testbed().subset(["cpu-0"])
        assert select_main_device(sys_, 10, 10, 16) == "cpu-0"

    def test_fallback_when_no_candidates(self, system):
        # A 2x2 grid has almost no update pool, so nobody passes the
        # feasibility checks; the fastest chain wins.
        chosen = select_main_device(system, 2, 2, 16)
        assert chosen == "gtx580-0"

    def test_subchecks_consistent(self, system):
        dev = system.device("gtx580-0")
        assert can_finish_t_before_ue(dev, system, 200, 200, 16)
        assert can_finish_e_before_ut(dev, system, 200, 200, 16)
        cpu = system.device("cpu-0")
        assert not can_finish_e_before_ut(cpu, system, 200, 200, 16)

    def test_invalid_grid(self, system):
        with pytest.raises(PlanError):
            main_device_candidates(system, 0, 5, 16)

    def test_homogeneous_gpus(self):
        sys_ = synthetic_system(num_gpus=3, num_cpus=0)
        main = select_main_device(sys_, 100, 100, 16)
        assert main in sys_.device_ids


class TestOrderByUpdateSpeed:
    def test_main_first_then_descending(self, system):
        ordered = order_by_update_speed(system, "gtx580-0", 16)
        assert ordered[0] == "gtx580-0"
        thr = [system.device(d).update_throughput(16) for d in ordered[1:]]
        assert thr == sorted(thr, reverse=True)
        assert ordered[-1] == "cpu-0"

    def test_contains_all_devices(self, system):
        ordered = order_by_update_speed(system, "gtx680-1", 16)
        assert sorted(ordered) == sorted(system.device_ids)


class TestPredictedTimes:
    def test_row_per_prefix(self, system, topology):
        table = predicted_times(system, "gtx580-0", 100, 100, 16, topology)
        assert [r.num_devices for r in table] == [1, 2, 3, 4]

    def test_no_comm_for_single_device(self, system, topology):
        table = predicted_times(system, "gtx580-0", 100, 100, 16, topology)
        assert table[0].t_comm == 0.0

    def test_comm_grows_with_devices(self, system, topology):
        table = predicted_times(system, "gtx580-0", 100, 100, 16, topology)
        comms = [r.t_comm for r in table]
        assert comms == sorted(comms)

    def test_op_time_decreases_weakly(self, system, topology):
        table = predicted_times(system, "gtx580-0", 250, 250, 16, topology)
        ops = [r.t_op for r in table]
        assert all(a >= b - 1e-12 for a, b in zip(ops, ops[1:]))

    def test_total_property(self):
        r = PredictedTime(num_devices=2, t_op=1.0, t_comm=0.5)
        assert r.total == 1.5

    def test_first_horizon_literal_formula(self, system, topology):
        from repro.dag.tasks import Step

        table = predicted_times(
            system, "gtx580-0", 40, 40, 16, topology, horizon="first"
        )
        dev = system.device("gtx580-0")
        # p=1: main does everything; Eq. 10 literal charge.
        m = 40
        expected = m * (dev.time(Step.T, 16) + dev.time(Step.E, 16)) + (
            m * (m - 1)
        ) * dev.effective_update_time(16)
        assert table[0].t_op == pytest.approx(expected, rel=1e-9)

    def test_invalid_horizon(self, system, topology):
        with pytest.raises(PlanError):
            predicted_times(system, "gtx580-0", 10, 10, 16, topology, horizon="x")

    def test_invalid_grid(self, system, topology):
        with pytest.raises(PlanError):
            predicted_times(system, "gtx580-0", 0, 10, 16, topology)


class TestSelectNumDevices:
    def test_small_matrix_prefers_one_gpu(self, system, topology):
        p, _ = select_num_devices(system, "gtx580-0", 10, 10, 16, topology)
        assert p == 1

    def test_large_matrix_prefers_more(self, system, topology):
        p_small, _ = select_num_devices(system, "gtx580-0", 20, 20, 16, topology)
        p_large, _ = select_num_devices(system, "gtx580-0", 250, 250, 16, topology)
        assert p_large > p_small

    def test_returns_table(self, system, topology):
        p, table = select_num_devices(system, "gtx580-0", 100, 100, 16, topology)
        assert 1 <= p <= len(system)
        assert min(table, key=lambda r: r.total).num_devices == p
