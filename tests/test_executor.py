"""Tests for the TiledQR facade (plan + simulate + numeric execute)."""

import numpy as np
import pytest

from repro.core.executor import TASK_LEVEL_GRID_LIMIT, TiledQR
from repro.errors import PlanError


class TestSimulate:
    def test_auto_uses_task_level_for_small(self, system):
        qr = TiledQR(system)
        run = qr.simulate(matrix_size=320)
        assert run.report.meta["fidelity"] == "task-level"
        assert "trace" in run.report.meta

    def test_auto_uses_iteration_for_large(self, system):
        qr = TiledQR(system)
        run = qr.simulate(matrix_size=TASK_LEVEL_GRID_LIMIT * 16 + 16)
        assert run.report.meta["fidelity"] == "iteration-level"

    def test_explicit_fidelity(self, system):
        qr = TiledQR(system)
        assert (
            qr.simulate(matrix_size=320, fidelity="iteration").report.meta["fidelity"]
            == "iteration-level"
        )

    def test_invalid_fidelity(self, system):
        with pytest.raises(PlanError):
            TiledQR(system).simulate(matrix_size=320, fidelity="bogus")

    def test_invalid_size(self, system):
        with pytest.raises(PlanError):
            TiledQR(system).simulate(matrix_size=0)

    def test_plan_override_respected(self, system):
        qr = TiledQR(system)
        plan = qr.plan(matrix_size=320, num_devices=2)
        run = qr.simulate(matrix_size=320, plan=plan)
        assert run.plan is plan

    def test_simulated_seconds_property(self, system):
        run = TiledQR(system).simulate(matrix_size=160)
        assert run.simulated_seconds == run.report.makespan > 0


class TestFactorize:
    def test_numeric_plus_simulation(self, system, rng):
        qr = TiledQR(system)
        a = rng.standard_normal((96, 96))
        run = qr.factorize(a)
        f = run.factorization
        assert f is not None
        assert f.reconstruction_error(a) < 1e-10
        assert run.report.makespan > 0

    def test_without_simulation(self, system, rng):
        qr = TiledQR(system)
        run = qr.factorize(rng.standard_normal((48, 48)), simulate=False)
        assert run.report.makespan == 0.0
        assert run.factorization is not None

    def test_rejects_bad_input(self, system):
        with pytest.raises(PlanError):
            TiledQR(system).factorize(np.zeros(5))

    def test_tt_elimination_mode(self, system, rng):
        qr = TiledQR(system, elimination="TT")
        a = rng.standard_normal((64, 64))
        run = qr.factorize(a)
        assert run.factorization.reconstruction_error(a) < 1e-10


class TestRectangularSimulation:
    def test_tall_matrix_simulates(self, system):
        qr = TiledQR(system)
        run = qr.simulate(matrix_size=(640, 160))
        assert run.report.makespan > 0
        assert run.report.meta.get("grid", run.plan.notes.get("grid")) is not None

    def test_tall_costs_less_than_square(self, system):
        qr = TiledQR(system)
        t_tall = qr.simulate(matrix_size=(640, 160)).report.makespan
        t_square = qr.simulate(matrix_size=640).report.makespan
        assert t_tall < t_square

    def test_wide_rejected(self, system):
        with pytest.raises(PlanError):
            TiledQR(system).simulate(matrix_size=(160, 640))

    def test_rect_iteration_fidelity(self, system):
        qr = TiledQR(system)
        run = qr.simulate(matrix_size=(3200, 320), fidelity="iteration")
        assert run.report.meta["fidelity"] == "iteration-level"
        assert run.report.makespan > 0
