"""Tests for pivoted QR, randomized range finding, and the tiled solve."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import workloads
from repro.errors import KernelError, ShapeError
from repro.linalg.rank_revealing import (
    low_rank_approx,
    numerical_rank,
    qr_column_pivoting,
    randomized_range,
)
from repro.runtime import tiled_qr
from repro.runtime.trisolve import solve_factorized_tiled, tiled_back_substitution
from repro.tiles import TiledMatrix


class TestQRColumnPivoting:
    def test_reconstruction_with_permutation(self, rng):
        a = rng.standard_normal((20, 12))
        res = qr_column_pivoting(a)
        np.testing.assert_allclose(res.q @ res.r, a[:, res.perm], atol=1e-10)
        np.testing.assert_allclose(res.q.T @ res.q, np.eye(20), atol=1e-10)

    def test_diagonal_non_increasing(self, rng):
        a = rng.standard_normal((16, 16))
        res = qr_column_pivoting(a)
        d = np.abs(np.diag(res.r))
        assert np.all(np.diff(d) <= 1e-9 * d[0])

    def test_full_rank_detected(self, rng):
        a = rng.standard_normal((20, 10))
        assert qr_column_pivoting(a).rank == 10

    @pytest.mark.parametrize("true_rank", [1, 3, 7])
    def test_low_rank_detected(self, rng, true_rank):
        u = rng.standard_normal((30, true_rank))
        v = rng.standard_normal((true_rank, 15))
        assert numerical_rank(u @ v) == true_rank

    def test_zero_matrix(self):
        res = qr_column_pivoting(np.zeros((5, 5)))
        assert res.rank == 0

    def test_wide_matrix(self, rng):
        a = rng.standard_normal((6, 14))
        res = qr_column_pivoting(a)
        np.testing.assert_allclose(res.q @ res.r, a[:, res.perm], atol=1e-10)
        assert res.rank == 6

    def test_graded_matrix_pivots_large_first(self):
        a = workloads.graded(40, 12, decay=0.3, seed=5)
        res = qr_column_pivoting(a)
        # The biggest original columns (small indices) are pivoted first.
        assert res.perm[0] in (0, 1)

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            qr_column_pivoting(np.zeros(4))

    @given(st.integers(2, 14), st.integers(2, 14), st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_property_permuted_reconstruction(self, m, n, seed):
        a = np.random.default_rng(seed).standard_normal((m, n))
        res = qr_column_pivoting(a)
        assert np.linalg.norm(res.q @ res.r - a[:, res.perm]) < 1e-9 * max(
            np.linalg.norm(a), 1.0
        )
        assert sorted(res.perm.tolist()) == list(range(n))


class TestRandomizedRange:
    def test_basis_orthonormal(self, rng):
        a = rng.standard_normal((50, 30))
        q = randomized_range(a, k=5)
        np.testing.assert_allclose(q.T @ q, np.eye(q.shape[1]), atol=1e-9)

    def test_captures_low_rank_exactly(self, rng):
        u = rng.standard_normal((60, 4))
        v = rng.standard_normal((4, 25))
        a = u @ v
        q, b = low_rank_approx(a, k=4, oversample=4)
        assert np.linalg.norm(a - q @ b) < 1e-9 * np.linalg.norm(a)

    def test_decaying_spectrum_near_optimal(self, rng):
        s = np.logspace(0, -6, 20)
        a = rng.standard_normal((80, 20)) * s
        q, b = low_rank_approx(a, k=6, power_iters=2, seed=3)
        err = np.linalg.norm(a - q @ b) / np.linalg.norm(a)
        assert err < 1e-3

    def test_power_iterations_help(self, rng):
        s = np.logspace(0, -2, 30)  # slow decay: power iterations matter
        a = rng.standard_normal((100, 30)) * s
        e0 = np.linalg.norm(a - np.linalg.multi_dot(low_rank_approx(a, 5, 2, 0, seed=7)))
        e2 = np.linalg.norm(a - np.linalg.multi_dot(low_rank_approx(a, 5, 2, 3, seed=7)))
        assert e2 <= e0 * 1.05

    def test_rank_bounds_validated(self, rng):
        a = rng.standard_normal((10, 8))
        with pytest.raises(KernelError):
            randomized_range(a, k=0)
        with pytest.raises(KernelError):
            randomized_range(a, k=9)


class TestTiledBackSubstitution:
    def test_matches_dense_solve(self, rng):
        n = 64
        r_dense = np.triu(rng.standard_normal((n, n))) + 6 * np.eye(n)
        r_tiled = TiledMatrix.from_dense(r_dense, 16)
        b = rng.standard_normal(n)
        x = tiled_back_substitution(r_tiled, b)
        np.testing.assert_allclose(r_dense @ x, b, atol=1e-9)

    def test_padded_grid(self, rng):
        n = 50
        r_dense = np.triu(rng.standard_normal((n, n))) + 6 * np.eye(n)
        r_tiled = TiledMatrix.from_dense(r_dense, 16)
        b = rng.standard_normal((n, 2))
        x = tiled_back_substitution(r_tiled, b)
        np.testing.assert_allclose(r_dense @ x, b, atol=1e-9)

    def test_full_solve_path(self, rng):
        a = rng.standard_normal((96, 96)) + 8 * np.eye(96)
        f = tiled_qr(a, 16)
        x_true = rng.standard_normal(96)
        x = solve_factorized_tiled(f, a @ x_true)
        np.testing.assert_allclose(x, x_true, atol=1e-8)
        # Agrees with the dense solve path.
        np.testing.assert_allclose(x, f.solve(a @ x_true), atol=1e-10)

    def test_rejects_rectangular(self, rng):
        r = TiledMatrix.from_dense(np.triu(rng.standard_normal((32, 16))), 16)
        with pytest.raises(ShapeError):
            tiled_back_substitution(r, np.zeros(32))

    def test_rhs_shape_check(self, rng):
        r = TiledMatrix.from_dense(np.eye(32), 16)
        with pytest.raises(ShapeError):
            tiled_back_substitution(r, np.zeros(31))


class TestJacobiSVD:
    def test_reconstruction_and_orthogonality(self, rng):
        from repro.linalg import svd_jacobi

        a = rng.standard_normal((24, 10))
        u, s, vt = svd_jacobi(a)
        np.testing.assert_allclose(u @ np.diag(s) @ vt, a, atol=1e-10)
        np.testing.assert_allclose(u.T @ u, np.eye(10), atol=1e-8)
        np.testing.assert_allclose(vt @ vt.T, np.eye(10), atol=1e-10)

    def test_singular_values_match_numpy(self, rng):
        from repro.linalg import svd_jacobi

        a = rng.standard_normal((30, 14))
        _, s, _ = svd_jacobi(a)
        np.testing.assert_allclose(s, np.linalg.svd(a, compute_uv=False), atol=1e-10)

    def test_descending_order(self, rng):
        from repro.linalg import svd_jacobi

        _, s, _ = svd_jacobi(rng.standard_normal((20, 8)))
        assert np.all(np.diff(s) <= 1e-12)

    def test_rank_deficient(self, rng):
        from repro.linalg import svd_jacobi

        u = rng.standard_normal((20, 3))
        v = rng.standard_normal((3, 8))
        _, s, _ = svd_jacobi(u @ v)
        assert np.sum(s > 1e-10 * s[0]) == 3

    def test_rejects_wide(self, rng):
        from repro.errors import ShapeError
        from repro.linalg import svd_jacobi

        with pytest.raises(ShapeError):
            svd_jacobi(rng.standard_normal((4, 9)))

    def test_diagonal_matrix_exact(self):
        from repro.linalg import svd_jacobi

        a = np.diag([5.0, 3.0, 1.0])
        _, s, _ = svd_jacobi(a)
        np.testing.assert_allclose(s, [5.0, 3.0, 1.0], atol=1e-14)


class TestRandomizedSVD:
    def test_truncated_values_match(self, rng):
        from repro.linalg import randomized_svd

        a = rng.standard_normal((80, 30)) * np.logspace(0, -5, 30)
        u, s, vt = randomized_svd(a, k=5, seed=2)
        s_ref = np.linalg.svd(a, compute_uv=False)[:5]
        np.testing.assert_allclose(s, s_ref, rtol=1e-6)
        assert u.shape == (80, 5) and vt.shape == (5, 30)

    def test_approximation_near_optimal(self, rng):
        from repro.linalg import randomized_svd

        a = rng.standard_normal((60, 25)) * np.logspace(0, -4, 25)
        k = 4
        u, s, vt = randomized_svd(a, k=k, power_iters=3, seed=1)
        err = np.linalg.norm(a - u @ np.diag(s) @ vt)
        s_full = np.linalg.svd(a, compute_uv=False)
        optimal = np.sqrt(np.sum(s_full[k:] ** 2))
        assert err < 1.6 * optimal

    def test_exact_on_low_rank(self, rng):
        from repro.linalg import randomized_svd

        base = rng.standard_normal((40, 5)) @ rng.standard_normal((5, 20))
        u, s, vt = randomized_svd(base, k=5, seed=3)
        np.testing.assert_allclose(u @ np.diag(s) @ vt, base, atol=1e-9)
