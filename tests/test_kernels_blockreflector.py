"""Tests for compact-WY accumulation and application."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels.blockreflector import apply_block_reflector, build_t_factor
from repro.kernels.householder import apply_reflector, make_reflector


def _factor_columns(a):
    """Unblocked QR of ``a`` returning (V, taus) with unit-lower V."""
    m, n = a.shape
    r = a.astype(float).copy()
    v = np.zeros((m, n))
    taus = np.zeros(n)
    for k in range(min(m - 1, n)):
        refl = make_reflector(r[k:, k])
        v[k:, k] = refl.v
        taus[k] = refl.tau
        apply_reflector(refl, r[k:, k:])
    for k in range(min(m - 1, n), n):
        v[k, k] = 1.0
    return v, taus, r


class TestBuildTFactor:
    def test_upper_triangular_with_tau_diagonal(self, rng):
        v, taus, _ = _factor_columns(rng.standard_normal((10, 6)))
        tf = build_t_factor(v, taus)
        assert np.allclose(np.tril(tf, -1), 0.0)
        np.testing.assert_allclose(np.diag(tf), taus)

    def test_product_matches_sequential_reflectors(self, rng):
        m, n = 12, 5
        v, taus, _ = _factor_columns(rng.standard_normal((m, n)))
        tf = build_t_factor(v, taus)
        # H1 H2 ... Hn  ==  I - V Tf V^T
        h = np.eye(m)
        for k in range(n):
            hk = np.eye(m) - taus[k] * np.outer(v[:, k], v[:, k])
            h = h @ hk
        np.testing.assert_allclose(np.eye(m) - v @ tf @ v.T, h, atol=1e-10)

    def test_zero_columns(self):
        tf = build_t_factor(np.zeros((4, 0)), np.zeros(0))
        assert tf.shape == (0, 0)

    def test_tau_zero_column_contributes_identity(self, rng):
        v = np.zeros((5, 2))
        v[0, 0] = 1.0
        v[1, 1] = 1.0
        taus = np.array([0.0, 0.0])
        tf = build_t_factor(v, taus)
        assert np.allclose(tf, 0.0)

    def test_shape_validation(self):
        with pytest.raises(KernelError):
            build_t_factor(np.zeros(3), np.zeros(3))
        with pytest.raises(KernelError):
            build_t_factor(np.zeros((4, 2)), np.zeros(3))


class TestApplyBlockReflector:
    def test_transpose_pair_roundtrip(self, rng):
        v, taus, _ = _factor_columns(rng.standard_normal((9, 4)))
        tf = build_t_factor(v, taus)
        c0 = rng.standard_normal((9, 7))
        c = c0.copy()
        apply_block_reflector(v, tf, c, transpose=True)
        apply_block_reflector(v, tf, c, transpose=False)
        np.testing.assert_allclose(c, c0, atol=1e-10)

    def test_matches_densified_q(self, rng):
        v, taus, _ = _factor_columns(rng.standard_normal((8, 8)))
        tf = build_t_factor(v, taus)
        q = np.eye(8) - v @ tf @ v.T
        c0 = rng.standard_normal((8, 3))
        got = apply_block_reflector(v, tf, c0.copy(), transpose=True)
        np.testing.assert_allclose(got, q.T @ c0, atol=1e-10)

    def test_incompatible_shapes(self, rng):
        v = rng.standard_normal((6, 3))
        tf = np.eye(3)
        with pytest.raises(KernelError):
            apply_block_reflector(v, tf, rng.standard_normal((5, 2)), transpose=True)
        with pytest.raises(KernelError):
            apply_block_reflector(v, np.eye(2), rng.standard_normal((6, 2)), transpose=True)
