"""Tests for the link and topology models."""

import math

import pytest

from repro.comm import Link, Topology, pcie_star
from repro.devices import paper_testbed
from repro.errors import TopologyError


class TestLink:
    def test_affine_transfer_time(self):
        lk = Link(bandwidth_bytes_per_s=1e9, latency_s=1e-5)
        assert lk.transfer_time(1e6) == pytest.approx(1e-5 + 1e-3)

    def test_multiple_messages_pay_latency_each(self):
        lk = Link(bandwidth_bytes_per_s=1e9, latency_s=1e-5)
        assert lk.transfer_time(1e6, messages=3) == pytest.approx(3e-5 + 1e-3)

    def test_zero_bytes_costs_latency(self):
        lk = Link(bandwidth_bytes_per_s=1e9, latency_s=2e-6)
        assert lk.transfer_time(0) == pytest.approx(2e-6)

    def test_effective_speed_below_bandwidth(self):
        lk = Link(bandwidth_bytes_per_s=1e9, latency_s=1e-4)
        assert lk.effective_speed(1e3) < 1e9
        # Large payloads asymptote to the raw bandwidth.
        assert lk.effective_speed(1e12) == pytest.approx(1e9, rel=0.01)

    def test_validation(self):
        with pytest.raises(TopologyError):
            Link(bandwidth_bytes_per_s=0)
        with pytest.raises(TopologyError):
            Link(bandwidth_bytes_per_s=1e9, latency_s=-1)
        lk = Link(1e9)
        with pytest.raises(TopologyError):
            lk.transfer_time(-5)
        with pytest.raises(TopologyError):
            lk.transfer_time(10, messages=0)
        with pytest.raises(TopologyError):
            lk.effective_speed(0)


class TestTopology:
    def test_same_device_is_free(self):
        top = Topology()
        assert top.transfer_time("a", "a", 1e9) == 0.0
        assert top.speed("a", "a") == math.inf

    def test_missing_link_raises(self):
        top = Topology()
        with pytest.raises(TopologyError):
            top.transfer_time("a", "b", 10)

    def test_speed_with_payload(self):
        lk = Link(1e9, 1e-4)
        top = Topology(links={("a", "b"): lk})
        assert top.speed("a", "b") == 1e9
        assert top.speed("a", "b", payload_bytes=1e3) == pytest.approx(
            lk.effective_speed(1e3)
        )


class TestPcieStar:
    def test_all_pairs_present(self, system):
        top = pcie_star(system.devices)
        ids = system.device_ids
        for a in ids:
            for b in ids:
                if a != b:
                    assert top.link(a, b) is not None

    def test_gpu_gpu_via_host_slower(self, system):
        top = pcie_star(system.devices)
        direct = top.transfer_time("cpu-0", "gtx580-0", 1e6)
        staged = top.transfer_time("gtx580-0", "gtx680-0", 1e6)
        assert staged > direct

    def test_cpu_cpu_nearly_free(self):
        from repro.devices import synthetic_system

        sys_ = synthetic_system(num_gpus=1, num_cpus=2)
        top = pcie_star(sys_.devices)
        assert top.transfer_time("cpu-0", "cpu-1", 1e6) < top.transfer_time(
            "cpu-0", "gpu-0", 1e6
        )

    def test_custom_parameters(self, system):
        top = pcie_star(system.devices, bandwidth=1e9, latency=1e-3)
        t = top.transfer_time("cpu-0", "gtx580-0", 1e9)
        assert t == pytest.approx(1e-3 + 1.0)
