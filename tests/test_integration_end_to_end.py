"""End-to-end integration tests crossing all subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import TiledQR, paper_testbed, synthetic_system, tiled_qr
from repro.core.optimizer import Optimizer
from repro.dag import build_dag
from repro.sim import simulate_iteration_level, simulate_task_level


class TestFullPipeline:
    def test_plan_simulate_execute_consistent(self, rng, system):
        """The same plan drives the simulator and the numeric executor."""
        qr = TiledQR(system)
        a = rng.standard_normal((160, 160))
        run = qr.factorize(a)
        assert run.factorization.reconstruction_error(a) < 1e-10
        assert run.report.makespan > 0
        assert run.plan.main_device == "gtx580-0"

    def test_solve_linear_system_through_facade(self, rng, system):
        qr = TiledQR(system)
        a = rng.standard_normal((96, 96)) + 6 * np.eye(96)
        x_true = rng.standard_normal(96)
        run = qr.factorize(a, simulate=False)
        x = run.factorization.solve(a @ x_true)
        np.testing.assert_allclose(x, x_true, atol=1e-8)

    def test_synthetic_system_pipeline(self, rng):
        sys_ = synthetic_system(num_gpus=2, num_cpus=1, gpu_speedup=1.5)
        qr = TiledQR(sys_)
        run = qr.simulate(matrix_size=640)
        assert run.report.makespan > 0
        assert run.plan.main_device in sys_.device_ids

    def test_numeric_result_independent_of_plan(self, rng, system):
        """Distribution is a scheduling concern; numbers never change."""
        a = rng.standard_normal((128, 128))
        qr = TiledQR(system)
        opt = Optimizer(system)
        r1 = qr.factorize(a, plan=opt.plan(matrix_size=128, num_devices=1),
                          simulate=False).factorization.r_dense()
        r2 = qr.factorize(a, plan=opt.plan(matrix_size=128, num_devices=4),
                          simulate=False).factorization.r_dense()
        np.testing.assert_array_equal(r1, r2)

    def test_simulator_counts_every_task(self, system, topology, optimizer):
        g = 10
        dag = build_dag(g, g)
        plan = optimizer.plan(matrix_size=160, num_devices=3)
        trace = simulate_task_level(dag, plan, system, topology)
        rep = trace.report()
        assert rep.num_tasks == len(dag)
        busy = sum(rep.compute_busy.values())
        # Busy time equals the sum of each task's modelled duration.
        expected = sum(
            system.device(r.device_id).time(r.task.step, 16) for r in trace.tasks
        )
        assert busy == pytest.approx(expected)


class TestNumericalProperties:
    """Property-based invariants of the whole numeric stack."""

    @given(
        st.integers(8, 96),
        st.sampled_from([4, 8, 16]),
        st.sampled_from(["TS", "TT"]),
        st.integers(0, 50),
    )
    @settings(max_examples=20, deadline=None)
    def test_qr_invariants(self, n, b, elim, seed):
        a = np.random.default_rng(seed).standard_normal((n, n))
        f = tiled_qr(a, tile_size=b, elimination=elim)
        r = f.r_dense()
        scale = max(np.linalg.norm(a), 1.0)
        # 1. Reconstruction.
        assert np.linalg.norm(f.apply_q(r) - a) < 1e-9 * scale
        # 2. R upper triangular.
        assert np.max(np.abs(np.tril(r, -1))) < 1e-9 * scale
        # 3. Q^T Q = I via the implicit operator.
        x = np.random.default_rng(seed + 1).standard_normal((n, 4))
        assert np.linalg.norm(f.apply_qt(f.apply_q(x)) - x) < 1e-9 * np.linalg.norm(x)
        # 4. |det(A)| preserved as product of |R| diagonal.
        sign, logdet = np.linalg.slogdet(a)
        if sign != 0:
            logdet_r = np.sum(np.log(np.abs(np.diag(r))))
            assert logdet_r == pytest.approx(logdet, rel=1e-6, abs=1e-6)

    @given(st.integers(4, 40), st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_orthogonal_input_gives_identity_like_r(self, n, seed):
        """QR of an orthogonal matrix has |R| = I."""
        a = np.linalg.qr(np.random.default_rng(seed).standard_normal((n, n)))[0]
        f = tiled_qr(a, tile_size=8)
        np.testing.assert_allclose(np.abs(np.diag(f.r_dense())), np.ones(n), atol=1e-9)

    @given(st.integers(8, 64), st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_column_norm_preservation(self, n, seed):
        """Each column of R has the same norm as the matching column of A."""
        a = np.random.default_rng(seed).standard_normal((n, n))
        f = tiled_qr(a, tile_size=16)
        r = f.r_dense()
        np.testing.assert_allclose(
            np.linalg.norm(r, axis=0), np.linalg.norm(a, axis=0), rtol=1e-9
        )


class TestSimulationProperties:
    @given(st.integers(2, 14), st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_property_makespan_bounds(self, g, p):
        system = paper_testbed()
        from repro.comm.topology import pcie_star

        top = pcie_star(system.devices)
        opt = Optimizer(system, top)
        plan = opt.plan(grid_rows=g, grid_cols=g, num_devices=p)
        rep = simulate_iteration_level(plan, g, g, system, top)
        # Makespan at least the busiest device, at most total work + comm.
        assert rep.makespan >= max(rep.compute_busy.values()) - 1e-12
        assert rep.makespan <= sum(rep.compute_busy.values()) + rep.comm_time + 1e-9

    @given(st.integers(2, 10), st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_property_des_vs_iteration_ordering(self, g, p):
        system = paper_testbed()
        from repro.comm.topology import pcie_star

        top = pcie_star(system.devices)
        opt = Optimizer(system, top)
        plan = opt.plan(grid_rows=g, grid_cols=g, num_devices=p)
        dag = build_dag(g, g)
        t_des = simulate_task_level(dag, plan, system, top).report().makespan
        t_iter = simulate_iteration_level(plan, g, g, system, top).makespan
        assert t_iter >= 0.9 * t_des
