"""Smoke-run every example script as a subprocess.

Examples are user-facing documentation; a broken one is a broken
promise.  Each runs with the repository's interpreter and must exit 0
within its budget.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "least_squares_regression.py",
    "dag_visualization.py",
    "online_regression.py",
    "low_rank_compression.py",
    "execution_traces.py",
]

SLOW_EXAMPLES = [
    "heterogeneous_planning.py",
    "custom_system_simulation.py",
    "cluster_and_memory_planning.py",
]


def _run(name: str, timeout: int) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    proc = _run(name, timeout=120)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{name} produced no output"


@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_example_runs(name):
    proc = _run(name, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{name} produced no output"


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES) | set(SLOW_EXAMPLES)
