"""Documentation-quality meta-tests.

A production library promises documented surfaces: every module and
every public callable in ``repro`` must carry a docstring, and the
repository documents (README/DESIGN/EXPERIMENTS) must stay consistent
with the code they describe.
"""

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

def _all_modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        out.append(info.name)
    return out


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        undocumented = []
        for name in _all_modules():
            mod = importlib.import_module(name)
            doc = (mod.__doc__ or "").strip()
            if len(doc) < 30:
                undocumented.append(name)
        assert not undocumented, f"modules lacking docstrings: {undocumented}"

    def test_public_functions_documented(self):
        missing = []
        for name in _all_modules():
            mod = importlib.import_module(name)
            for attr_name in getattr(mod, "__all__", []) or []:
                obj = getattr(mod, attr_name, None)
                if obj is None or not callable(obj):
                    continue
                if getattr(obj, "__module__", "").startswith("repro"):
                    if not (inspect.getdoc(obj) or "").strip():
                        missing.append(f"{name}.{attr_name}")
        assert not missing, f"undocumented public callables: {missing}"

    def test_experiment_registry_matches_docs(self):
        """Every registered experiment id appears in EXPERIMENTS.md."""
        from repro.experiments import ALL_EXPERIMENTS

        # Repo root: src/repro/__init__.py -> src/repro -> src -> root.
        root = Path(repro.__file__).resolve().parent.parent.parent
        text = (root / "EXPERIMENTS.md").read_text()
        missing = [name for name in ALL_EXPERIMENTS if name not in text]
        assert not missing, f"experiments not documented in EXPERIMENTS.md: {missing}"

    def test_repo_documents_exist(self):
        root = Path(repro.__file__).resolve().parent.parent.parent
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE",
                    "CONTRIBUTING.md", "docs/API.md", "docs/TUTORIAL.md",
                    "docs/MODELING.md", "docs/EXAMPLES.md"):
            assert (root / doc).exists(), f"missing {doc}"

    def test_experiment_drivers_state_paper_expectation(self):
        from repro.experiments import ALL_EXPERIMENTS

        for name, mod in ALL_EXPERIMENTS.items():
            result = getattr(mod, "run", None)
            assert result is not None, f"{name} has no run()"
            assert (mod.__doc__ or "").strip(), f"{name} undocumented"
