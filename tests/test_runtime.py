"""Tests for the numeric runtimes (serial, threaded) and the factorization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.kernels.householder import householder_qr
from repro.runtime import SerialRuntime, ThreadedRuntime, tiled_qr
from repro.runtime.factorization import back_substitution
from repro.tiles import TiledMatrix


class TestSerialRuntime:
    @pytest.mark.parametrize(
        "shape,b,elim",
        [
            ((32, 32), 16, "TS"),
            ((48, 48), 16, "TS"),
            ((50, 50), 16, "TS"),   # padded
            ((64, 32), 16, "TS"),   # tall
            ((48, 48), 16, "TT"),
            ((40, 24), 8, "TT"),
            ((16, 16), 16, "TS"),   # single tile
            ((7, 7), 16, "TS"),     # smaller than one tile
        ],
    )
    def test_reconstruction(self, rng, shape, b, elim):
        a = rng.standard_normal(shape)
        f = tiled_qr(a, tile_size=b, elimination=elim)
        q, r = f.q_dense(), f.r_dense()
        scale = max(np.linalg.norm(a), 1.0)
        assert np.linalg.norm(q @ r - a) < 1e-10 * scale
        assert np.linalg.norm(q.T @ q - np.eye(shape[0])) < 1e-9
        assert np.allclose(np.tril(r[: shape[1], : shape[1]], -1), 0.0, atol=1e-10)

    def test_matches_dense_householder_r(self, rng):
        a = rng.standard_normal((48, 48))
        f = tiled_qr(a, tile_size=16)
        _, r_ref = householder_qr(a)
        np.testing.assert_allclose(
            np.abs(np.diag(f.r_dense())), np.abs(np.diag(r_ref)), rtol=1e-9
        )

    def test_accepts_tiled_matrix(self, rng):
        a = rng.standard_normal((32, 32))
        t = TiledMatrix.from_dense(a, 16)
        f = SerialRuntime().factorize(t)
        assert np.linalg.norm(f.apply_q(f.r_dense()) - a) < 1e-9

    def test_rejects_wide(self, rng):
        with pytest.raises(ShapeError):
            tiled_qr(rng.standard_normal((16, 32)))

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            tiled_qr(np.zeros(5))

    def test_log_contains_only_factorizations(self, rng):
        f = tiled_qr(rng.standard_normal((48, 48)), 16)
        from repro.dag.tasks import Step

        assert all(task.step in (Step.T, Step.E) for task, _ in f.log)
        # 3x3 grid: 3 GEQRTs + 3 TSQRTs... panels: k=0: 1+2, k=1: 1+1, k=2: 1.
        assert len(f.log) == 6

    @given(st.integers(2, 40), st.integers(2, 12), st.integers(0, 99))
    @settings(max_examples=25, deadline=None)
    def test_property_reconstruction(self, n, b, seed):
        a = np.random.default_rng(seed).standard_normal((n, n))
        f = tiled_qr(a, tile_size=b)
        err = np.linalg.norm(f.apply_q(f.r_dense()) - a)
        assert err < 1e-9 * max(np.linalg.norm(a), 1.0)


class TestThreadedRuntime:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial(self, rng, workers):
        a = rng.standard_normal((64, 64))
        f_s = tiled_qr(a, 16)
        f_t = ThreadedRuntime(num_workers=workers).factorize(a, 16)
        np.testing.assert_allclose(f_t.r_dense(), f_s.r_dense(), atol=1e-12)

    def test_q_valid_despite_reordering(self, rng):
        a = rng.standard_normal((80, 80))
        f = ThreadedRuntime(num_workers=3).factorize(a, 16)
        assert f.reconstruction_error(a) < 1e-10

    def test_tt_elimination(self, rng):
        a = rng.standard_normal((64, 64))
        f = ThreadedRuntime(num_workers=2, elimination="TT").factorize(a, 16)
        assert f.reconstruction_error(a) < 1e-10

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ThreadedRuntime(num_workers=0)

    def test_rejects_wide(self, rng):
        with pytest.raises(ShapeError):
            ThreadedRuntime().factorize(rng.standard_normal((8, 16)))


class TestFactorizationOps:
    def test_apply_qt_then_q_roundtrip(self, rng):
        a = rng.standard_normal((48, 48))
        f = tiled_qr(a, 16)
        x = rng.standard_normal((48, 3))
        np.testing.assert_allclose(f.apply_q(f.apply_qt(x)), x, atol=1e-10)

    def test_apply_qt_vector(self, rng):
        a = rng.standard_normal((32, 32))
        f = tiled_qr(a, 16)
        v = rng.standard_normal(32)
        out = f.apply_qt(v)
        assert out.shape == (32,)
        np.testing.assert_allclose(
            out, f.q_dense().T @ v, atol=1e-10
        )

    def test_qt_a_equals_r(self, rng):
        a = rng.standard_normal((48, 48))
        f = tiled_qr(a, 16)
        np.testing.assert_allclose(f.apply_qt(a), f.r_dense(), atol=1e-9)

    def test_solve_square_system(self, rng):
        a = rng.standard_normal((48, 48)) + 5 * np.eye(48)
        x_true = rng.standard_normal(48)
        f = tiled_qr(a, 16)
        x = f.solve(a @ x_true)
        np.testing.assert_allclose(x, x_true, atol=1e-8)

    def test_solve_multiple_rhs(self, rng):
        a = rng.standard_normal((32, 32)) + 4 * np.eye(32)
        b = rng.standard_normal((32, 4))
        f = tiled_qr(a, 16)
        x = f.solve(b)
        np.testing.assert_allclose(a @ x, b, atol=1e-8)

    def test_solve_rejects_rectangular(self, rng):
        f = tiled_qr(rng.standard_normal((32, 16)), 16)
        with pytest.raises(ShapeError):
            f.solve(np.zeros(32))

    def test_apply_qt_shape_check(self, rng):
        f = tiled_qr(rng.standard_normal((32, 32)), 16)
        with pytest.raises(ShapeError):
            f.apply_qt(np.zeros(31))

    def test_padded_solve(self, rng):
        a = rng.standard_normal((50, 50)) + 5 * np.eye(50)
        x_true = rng.standard_normal(50)
        f = tiled_qr(a, 16)
        np.testing.assert_allclose(f.solve(a @ x_true), x_true, atol=1e-8)

    def test_least_squares_via_qt(self, rng):
        """Tall system: min ||Ax-b|| via R1 x = (Q^T b)[:n]."""
        a = rng.standard_normal((60, 20))
        b = rng.standard_normal(60)
        f = tiled_qr(a, 16)
        qtb = f.apply_qt(b)
        r = f.r_dense()[:20, :20]
        x = back_substitution(r, qtb[:20, None])[:, 0]
        x_ref, *_ = np.linalg.lstsq(a, b, rcond=None)
        np.testing.assert_allclose(x, x_ref, atol=1e-8)


class TestBackSubstitution:
    def test_solves_triangular(self, rng):
        r = np.triu(rng.standard_normal((10, 10))) + 5 * np.eye(10)
        b = rng.standard_normal((10, 2))
        x = back_substitution(r, b)
        np.testing.assert_allclose(r @ x, b, atol=1e-10)

    def test_singular_detected(self):
        r = np.triu(np.ones((4, 4)))
        r[2, 2] = 0.0
        with pytest.raises(np.linalg.LinAlgError):
            back_substitution(r, np.ones((4, 1)))

    def test_shape_checks(self, rng):
        with pytest.raises(ShapeError):
            back_substitution(rng.standard_normal((3, 5)), np.ones((5, 1)))
        with pytest.raises(ShapeError):
            back_substitution(np.eye(4), np.ones(3))


class TestScipyCrossChecks:
    """Cross-validate the from-scratch stack against SciPy's LAPACK QR."""

    def test_r_matches_scipy(self, rng):
        import scipy.linalg

        a = rng.standard_normal((96, 96))
        f = tiled_qr(a, 16)
        r_ref = scipy.linalg.qr(a, mode="r")[0]
        np.testing.assert_allclose(
            np.abs(np.diag(f.r_dense())), np.abs(np.diag(r_ref)), rtol=1e-10
        )

    def test_graded_workload_accuracy(self):
        import scipy.linalg

        from repro import workloads

        a = workloads.graded(80, 80, decay=0.7, seed=3)
        f = tiled_qr(a, 16)
        q_ref, r_ref = scipy.linalg.qr(a)
        # Same reconstruction quality as LAPACK on a graded matrix.
        ours = np.linalg.norm(f.apply_q(f.r_dense()) - a)
        theirs = np.linalg.norm(q_ref @ r_ref - a)
        assert ours < 10 * max(theirs, 1e-14)

    def test_solve_matches_scipy(self, rng):
        import scipy.linalg

        a = rng.standard_normal((64, 64)) + 8 * np.eye(64)
        b = rng.standard_normal(64)
        f = tiled_qr(a, 16)
        np.testing.assert_allclose(
            f.solve(b), scipy.linalg.solve(a, b), atol=1e-9
        )

    def test_lstsq_matches_scipy(self, rng):
        import scipy.linalg

        from repro.linalg import lstsq

        a = rng.standard_normal((100, 20))
        b = rng.standard_normal(100)
        x, _ = lstsq(a, b)
        x_ref = scipy.linalg.lstsq(a, b)[0]
        np.testing.assert_allclose(x, x_ref, atol=1e-9)
