"""Tests for elementary Householder reflectors and the dense reference QR."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KernelError
from repro.kernels.householder import (
    HouseholderReflector,
    apply_reflector,
    householder_qr,
    make_reflector,
)


def vectors(min_size=1, max_size=40):
    return st.lists(
        st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False, width=64),
        min_size=min_size,
        max_size=max_size,
    ).map(np.array)


class TestMakeReflector:
    def test_annihilates_tail(self):
        x = np.array([3.0, 4.0])
        r = make_reflector(x)
        hx = r.matrix() @ x
        assert abs(hx[0]) == pytest.approx(5.0)
        assert abs(hx[1]) < 1e-12

    def test_beta_magnitude_is_norm(self):
        x = np.array([1.0, 2.0, 2.0])
        r = make_reflector(x)
        assert abs(r.beta) == pytest.approx(3.0)

    def test_beta_sign_opposes_head(self):
        r = make_reflector(np.array([2.0, 1.0]))
        assert r.beta < 0
        r = make_reflector(np.array([-2.0, 1.0]))
        assert r.beta > 0

    def test_unit_head(self):
        r = make_reflector(np.array([5.0, 1.0, -2.0]))
        assert r.v[0] == 1.0

    def test_zero_tail_gives_identity(self):
        r = make_reflector(np.array([7.0, 0.0, 0.0]))
        assert r.tau == 0.0
        assert r.beta == 7.0

    def test_single_element(self):
        r = make_reflector(np.array([42.0]))
        assert r.tau == 0.0
        assert r.beta == 42.0

    def test_all_zero_vector(self):
        r = make_reflector(np.zeros(4))
        assert r.tau == 0.0
        assert r.beta == 0.0

    def test_zero_head_nonzero_tail(self):
        x = np.array([0.0, 3.0, 4.0])
        r = make_reflector(x)
        hx = r.matrix() @ x
        assert abs(hx[0]) == pytest.approx(5.0)
        assert np.linalg.norm(hx[1:]) < 1e-12

    def test_rejects_2d_input(self):
        with pytest.raises(KernelError):
            make_reflector(np.zeros((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(KernelError):
            make_reflector(np.array([]))

    def test_integer_input_promoted(self):
        r = make_reflector(np.array([3, 4]))
        assert r.v.dtype.kind == "f"

    @given(vectors(min_size=2, max_size=24))
    @settings(max_examples=60, deadline=None)
    def test_property_reflection(self, x):
        r = make_reflector(x)
        h = r.matrix()
        hx = h @ x
        # Householder matrices are orthogonal and symmetric.
        np.testing.assert_allclose(h @ h.T, np.eye(len(x)), atol=1e-8)
        np.testing.assert_allclose(h, h.T, atol=1e-12)
        # Tail annihilated, norm preserved.
        scale = max(np.linalg.norm(x), 1.0)
        assert np.linalg.norm(hx[1:]) <= 1e-8 * scale
        assert np.linalg.norm(hx) == pytest.approx(np.linalg.norm(x), rel=1e-8, abs=1e-12)


class TestApplyReflector:
    def test_matches_dense_multiply(self, rng):
        x = rng.standard_normal(8)
        r = make_reflector(x)
        c = rng.standard_normal((8, 5))
        expected = r.matrix() @ c
        got = apply_reflector(r, c.copy())
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_in_place(self, rng):
        r = make_reflector(rng.standard_normal(6))
        c = rng.standard_normal((6, 3))
        out = apply_reflector(r, c)
        assert out is c

    def test_identity_when_tau_zero(self, rng):
        r = HouseholderReflector(v=np.array([1.0, 0.0]), tau=0.0, beta=1.0)
        c = rng.standard_normal((2, 2))
        before = c.copy()
        apply_reflector(r, c)
        np.testing.assert_array_equal(c, before)

    def test_shape_mismatch_raises(self, rng):
        r = make_reflector(rng.standard_normal(4))
        with pytest.raises(KernelError):
            apply_reflector(r, rng.standard_normal((5, 2)))


class TestHouseholderQR:
    @pytest.mark.parametrize("shape", [(4, 4), (8, 5), (16, 16), (20, 3), (1, 1)])
    def test_reconstruction(self, rng, shape):
        a = rng.standard_normal(shape)
        q, r = householder_qr(a)
        np.testing.assert_allclose(q @ r, a, atol=1e-10)
        np.testing.assert_allclose(q.T @ q, np.eye(shape[0]), atol=1e-10)
        assert np.allclose(np.tril(r, -1), 0.0)

    def test_rejects_wide_matrix(self, rng):
        with pytest.raises(KernelError):
            householder_qr(rng.standard_normal((3, 5)))

    def test_rejects_1d(self):
        with pytest.raises(KernelError):
            householder_qr(np.zeros(4))

    def test_matches_numpy_r_up_to_sign(self, rng):
        a = rng.standard_normal((12, 12))
        _q, r = householder_qr(a)
        r_np = np.linalg.qr(a, mode="r")
        np.testing.assert_allclose(np.abs(np.diag(r)), np.abs(np.diag(r_np)), rtol=1e-10)

    def test_singular_matrix_still_factors(self):
        a = np.ones((6, 6))
        q, r = householder_qr(a)
        np.testing.assert_allclose(q @ r, a, atol=1e-10)

    @given(st.integers(1, 12), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_property_square_qr(self, n, seed):
        a = np.random.default_rng(seed).standard_normal((n, n))
        q, r = householder_qr(a)
        assert np.linalg.norm(q @ r - a) <= 1e-9 * max(np.linalg.norm(a), 1.0)
