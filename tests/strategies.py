"""Shared hypothesis strategies and random-tile builders for kernel tests.

The kernel test modules all property-test over the same axes — tile
edge ``b``, an RNG seed, and (for batched kernels) a tile count — and
all build inputs the same way, via ``np.random.default_rng(seed)``.
This module is the single home for those strategies and builders so the
per-kernel test files and the cross-backend conformance harness draw
from identical distributions.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

#: Tile edges for single-tile kernel properties (GEQRT and friends).
tile_sizes = st.integers(min_value=1, max_value=20)

#: Smaller edge range for the pricier stacked-tile kernels (TSQRT).
small_tile_sizes = st.integers(min_value=1, max_value=12)

#: Tile edges for batched row-panel kernels.
batch_tile_sizes = st.integers(min_value=2, max_value=8)

#: How many tiles a batched row panel spans.
batch_widths = st.integers(min_value=1, max_value=5)

#: RNG seeds.  ``seeds`` keeps the shrunk examples small and readable;
#: ``wide_seeds`` covers the full 31-bit space for end-to-end sweeps.
seeds = st.integers(min_value=0, max_value=500)
wide_seeds = st.integers(min_value=0, max_value=2**31 - 1)

#: dtypes the kernels accept; float64 is the reference precision.
DTYPES = (np.float64, np.float32)


def make_rng(seed_or_rng) -> np.random.Generator:
    """Coerce a seed (or pass through a Generator) to an RNG."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def random_tile(seed_or_rng, shape, dtype=np.float64) -> np.ndarray:
    """A standard-normal tile of ``shape``, seeded or from a live RNG."""
    arr = make_rng(seed_or_rng).standard_normal(shape)
    return arr.astype(dtype) if arr.dtype != dtype else arr


def random_triangular(seed_or_rng, b, dtype=np.float64) -> np.ndarray:
    """An upper-triangular ``b x b`` tile, as TSQRT/TTQRT inputs expect."""
    return np.triu(random_tile(seed_or_rng, (b, b), dtype))


def _all_tree_names() -> list:
    from repro.dag.trees import tree_names

    return list(tree_names())


#: Every registered elimination tree, by canonical name.  Tests that
#: must hold for *any* within-panel annihilation order parametrize (or
#: draw) over this so a newly registered tree is covered automatically.
ALL_TREES = _all_tree_names()

#: Hypothesis strategy over canonical elimination-tree names.
trees = st.sampled_from(ALL_TREES)

#: Tile-grid shapes (p rows x q cols, p >= q) small enough for
#: closure-style DAG properties yet tall enough that flat / binary /
#: fibonacci / greedy panels genuinely differ.
grids = st.tuples(
    st.integers(min_value=1, max_value=7), st.integers(min_value=1, max_value=4)
).map(lambda pq: (max(pq), min(pq)))
