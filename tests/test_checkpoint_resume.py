"""Mid-run checkpoint / resume tests (format-2 partial snapshots).

The acceptance property: a run interrupted after a checkpoint, resumed
from that snapshot, produces the same R the uninterrupted run would have
(bit-identical for the deterministic per-tile path).  Plus the metadata
validation both load paths must do before touching any numbers.
"""

import numpy as np
import pytest

from repro.observability import MetricsRegistry
from repro.resilience import ChaosEngine, FaultKind, FaultPlan, FaultSpec, NO_RETRY, RetryPolicy
from repro.errors import RetryExhaustedError
from repro.runtime import tiled_qr
from repro.runtime.checkpoint import (
    CheckpointError,
    load_factorization,
    load_partial_factorization,
    resume_factorization,
    save_factorization,
)
from repro.runtime.multiprocess import MultiprocessRuntime
from repro.runtime.serial import SerialRuntime
from repro.runtime.threaded import ThreadedRuntime

N = 96
B = 16


@pytest.fixture(scope="module")
def matrix():
    return np.random.default_rng(31337).standard_normal((N, N))


@pytest.fixture(scope="module")
def clean_r(matrix):
    return tiled_qr(matrix, B).r_dense()


def _interrupt_serial(matrix, path, **runtime_kw):
    """Run serially with checkpoints until an unrecoverable injected
    fault aborts the run mid-DAG; returns the surviving snapshot path."""
    plan = FaultPlan(specs=(
        FaultSpec(FaultKind.EXCEPTION, task_kind="GEQRT", k=3, times=99),
    ))
    runtime = SerialRuntime(
        chaos=ChaosEngine(plan), retry_policy=NO_RETRY,
        checkpoint_every=10, checkpoint_path=path, **runtime_kw,
    )
    with pytest.raises(RetryExhaustedError):
        runtime.factorize(matrix.copy(), B)
    assert path.exists(), "a checkpoint must have been written before the crash"
    return path


class TestSerialResume:
    def test_interrupted_run_resumes_to_identical_r(self, matrix, clean_r, tmp_path):
        path = _interrupt_serial(matrix, tmp_path / "snap.npz")
        state = load_partial_factorization(path)
        assert 0 < len(state.completed) < len(clean_r)  # genuinely mid-run
        fact = resume_factorization(path)
        assert np.array_equal(fact.r_dense(), clean_r)
        assert np.allclose(fact.r_dense(), clean_r, atol=1e-12)
        assert fact.reconstruction_error(matrix) <= 1e-10

    def test_q_survives_the_resume(self, matrix, tmp_path):
        """The reflector log crosses the snapshot too: Q R must still
        reconstruct A after a resume, not just R match."""
        path = _interrupt_serial(matrix, tmp_path / "snap.npz")
        fact = resume_factorization(path)
        assert np.allclose(fact.apply_q(fact.r_dense()), matrix, atol=1e-10)

    def test_checkpoint_counter_and_cadence(self, matrix, tmp_path):
        metrics = MetricsRegistry()
        path = tmp_path / "snap.npz"
        SerialRuntime(
            checkpoint_every=25, checkpoint_path=path, metrics=metrics
        ).factorize(matrix.copy(), B)
        total = 91  # 6x6 TS grid task count
        assert metrics.snapshot()["counters"]["resilience.checkpoints"] == total // 25

    def test_resume_batched_run(self, matrix, tmp_path):
        path = tmp_path / "snap.npz"
        clean = SerialRuntime(batch_updates=True).factorize(matrix.copy(), B)
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.EXCEPTION, task_kind="GEQRT", k=3, times=99),
        ))
        runtime = SerialRuntime(
            batch_updates=True, chaos=ChaosEngine(plan), retry_policy=NO_RETRY,
            checkpoint_every=5, checkpoint_path=path,
        )
        with pytest.raises(RetryExhaustedError):
            runtime.factorize(matrix.copy(), B)
        state = load_partial_factorization(path)
        assert state.batch_updates
        fact = resume_factorization(path)
        assert np.array_equal(fact.r_dense(), clean.r_dense())


class TestThreadedResume:
    def test_threaded_checkpoint_resumed_on_serial(self, matrix, clean_r, tmp_path):
        """A stop-the-world snapshot from the threaded runtime is a
        quiescent frontier any runtime can finish."""
        path = tmp_path / "snap.npz"
        ThreadedRuntime(
            num_workers=4, checkpoint_every=20, checkpoint_path=path
        ).factorize(matrix.copy(), B)
        state = load_partial_factorization(path)
        assert len(state.completed) >= 20
        fact = resume_factorization(path)
        assert np.array_equal(fact.r_dense(), clean_r)

    def test_threaded_resume_of_serial_snapshot(self, matrix, clean_r, tmp_path):
        path = _interrupt_serial(matrix, tmp_path / "snap.npz")
        fact = resume_factorization(path, runtime=ThreadedRuntime(num_workers=4))
        assert np.array_equal(fact.r_dense(), clean_r)


class TestMultiprocessResume:
    def test_mp_checkpoint_resumes_everywhere(self, matrix, clean_r, tmp_path, optimizer):
        """Multiprocess snapshots are panel-aligned per-tile states: the
        serial, threaded, and multiprocess runtimes can all finish one."""
        dist = optimizer.plan(matrix_size=N, num_devices=3)
        path = tmp_path / "mp.npz"
        fact = MultiprocessRuntime(
            dist, checkpoint_every=2, checkpoint_path=path
        ).factorize(matrix.copy(), B)
        assert np.array_equal(fact.r_dense(), clean_r)

        state = load_partial_factorization(path)
        ks = {t.k for t in state.completed}
        assert ks == set(range(max(ks) + 1))  # whole panels, in order

        serial = resume_factorization(path)
        assert np.array_equal(serial.r_dense(), clean_r)
        mp = MultiprocessRuntime(dist).factorize(None, resume=state)
        assert np.array_equal(mp.r_dense(), clean_r)

    def test_mp_rejects_partial_panel_snapshot(self, matrix, tmp_path, optimizer):
        """A mid-panel (task-granular) snapshot cannot be resumed on the
        panel-granular multiprocess runtime — clear error, no garbage."""
        path = _interrupt_serial(matrix, tmp_path / "snap.npz")
        state = load_partial_factorization(path)
        assert len(state.completed) % 16 != 0 or True  # mid-panel by construction
        dist = optimizer.plan(matrix_size=N, num_devices=2)
        with pytest.raises(CheckpointError, match="serial or threaded"):
            MultiprocessRuntime(dist).factorize(None, resume=state)


class TestValidation:
    """Satellite: CheckpointError on metadata that does not match."""

    def test_completed_load_rejects_wrong_shape(self, matrix, tmp_path):
        path = tmp_path / "full.npz"
        save_factorization(tiled_qr(matrix, B), path)
        with pytest.raises(CheckpointError, match=r"96x96.*target is 128x128"):
            load_factorization(path, expect_shape=(128, 128))
        with pytest.raises(CheckpointError, match=r"tile size 16.*expects 32"):
            load_factorization(path, expect_tile_size=32)
        # Matching expectations load fine.
        fact = load_factorization(path, expect_shape=(N, N), expect_tile_size=B)
        assert np.allclose(fact.r_dense(), tiled_qr(matrix, B).r_dense())

    def test_format_cross_loading_is_rejected(self, matrix, tmp_path):
        full = tmp_path / "full.npz"
        save_factorization(tiled_qr(matrix, B), full)
        with pytest.raises(CheckpointError, match="completed factorization"):
            load_partial_factorization(full)

        partial = _interrupt_serial(matrix, tmp_path / "snap.npz")
        with pytest.raises(CheckpointError, match="resume_factorization"):
            load_factorization(partial)

    def test_missing_and_garbage_files(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_partial_factorization(tmp_path / "nope.npz")
        junk = tmp_path / "junk.npz"
        junk.write_bytes(b"this is not an npz archive")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_partial_factorization(junk)

    def test_resume_config_mismatch(self, matrix, tmp_path):
        """Resuming a TS snapshot under a TT (or batched) DAG would
        silently replay applied work — must be rejected up front."""
        path = _interrupt_serial(matrix, tmp_path / "snap.npz")
        with pytest.raises(CheckpointError, match="elimination"):
            resume_factorization(path, runtime=SerialRuntime(elimination="TT"))
        with pytest.raises(CheckpointError, match="batch_updates"):
            resume_factorization(path, runtime=SerialRuntime(batch_updates=True))

    def test_resume_grid_mismatch(self, matrix, tmp_path):
        path = _interrupt_serial(matrix, tmp_path / "snap.npz")
        state = load_partial_factorization(path)
        other = np.random.default_rng(0).standard_normal((128, 128))
        with pytest.raises(CheckpointError, match="grid"):
            SerialRuntime().factorize(other, 16, resume=state)
