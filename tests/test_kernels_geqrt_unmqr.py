"""Tests for the GEQRT (triangulation) and UNMQR (update) kernels."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import KernelError
from repro.kernels import geqrt, unmqr
from tests.strategies import random_tile, seeds, tile_sizes


class TestGEQRT:
    @pytest.mark.parametrize("b", [1, 2, 4, 8, 16, 17, 32])
    def test_square_reconstruction(self, rng, b):
        a = rng.standard_normal((b, b))
        f = geqrt(a)
        q = f.q_dense()
        np.testing.assert_allclose(q @ f.r, a, atol=1e-10 * max(b, 1))
        np.testing.assert_allclose(q.T @ q, np.eye(b), atol=1e-10 * max(b, 1))

    def test_rectangular_tall(self, rng):
        a = rng.standard_normal((20, 8))
        f = geqrt(a)
        np.testing.assert_allclose(f.q_dense() @ f.r, a, atol=1e-10)

    def test_r_upper_triangular_exact_zeros(self, rng):
        f = geqrt(rng.standard_normal((8, 8)))
        assert not np.any(np.tril(f.r, -1))

    def test_v_unit_lower(self, rng):
        f = geqrt(rng.standard_normal((8, 8)))
        np.testing.assert_array_equal(np.diag(f.v), np.ones(8))
        assert np.allclose(np.triu(f.v, 1), 0.0)

    def test_input_not_modified(self, rng):
        a = rng.standard_normal((8, 8))
        before = a.copy()
        geqrt(a)
        np.testing.assert_array_equal(a, before)

    def test_rejects_wide(self, rng):
        with pytest.raises(KernelError):
            geqrt(rng.standard_normal((4, 6)))

    def test_rejects_1d(self):
        with pytest.raises(KernelError):
            geqrt(np.zeros(5))

    def test_diagonal_matrix(self):
        a = np.diag([3.0, -2.0, 5.0])
        f = geqrt(a)
        np.testing.assert_allclose(np.abs(np.diag(f.r)), [3.0, 2.0, 5.0], atol=1e-12)

    def test_zero_tile(self):
        f = geqrt(np.zeros((6, 6)))
        assert np.allclose(f.r, 0.0)
        assert np.allclose(f.taus, 0.0)

    def test_tile_shape_property(self, rng):
        f = geqrt(rng.standard_normal((10, 4)))
        assert f.tile_shape == (10, 4)

    @given(tile_sizes, seeds)
    @settings(max_examples=25, deadline=None)
    def test_property_orthogonal_factor(self, b, seed):
        a = random_tile(seed, (b, b))
        f = geqrt(a)
        q = f.q_dense()
        assert np.linalg.norm(q.T @ q - np.eye(b)) < 1e-9 * b


class TestUNMQR:
    def test_applies_qt(self, rng):
        a = rng.standard_normal((16, 16))
        f = geqrt(a)
        c = a.copy()
        unmqr(f, c)
        # Q^T A == R by construction.
        np.testing.assert_allclose(c, f.r, atol=1e-10)

    def test_forward_inverse_pair(self, rng):
        f = geqrt(rng.standard_normal((8, 8)))
        c0 = rng.standard_normal((8, 5))
        c = c0.copy()
        unmqr(f, c, transpose=True)
        unmqr(f, c, transpose=False)
        np.testing.assert_allclose(c, c0, atol=1e-10)

    def test_in_place_and_returned(self, rng):
        f = geqrt(rng.standard_normal((6, 6)))
        c = rng.standard_normal((6, 6))
        assert unmqr(f, c) is c

    def test_rectangular_target(self, rng):
        f = geqrt(rng.standard_normal((8, 8)))
        c = rng.standard_normal((8, 3))
        expected = f.q_dense().T @ c
        np.testing.assert_allclose(unmqr(f, c.copy()), expected, atol=1e-10)

    def test_row_mismatch_raises(self, rng):
        f = geqrt(rng.standard_normal((8, 8)))
        with pytest.raises(KernelError):
            unmqr(f, rng.standard_normal((7, 3)))


class TestBlockedGEQRT:
    """The panel-blocked variant must be bit-compatible with unblocked."""

    @pytest.mark.parametrize("shape", [(16, 16), (64, 64), (96, 64), (50, 33)])
    def test_identical_factors(self, rng, shape):
        a = rng.standard_normal(shape)
        unblocked = geqrt(a, inner_block=1)
        blocked = geqrt(a, inner_block=16)
        np.testing.assert_allclose(blocked.r, unblocked.r, atol=1e-12)
        np.testing.assert_allclose(blocked.v, unblocked.v, atol=1e-12)
        np.testing.assert_allclose(blocked.taus, unblocked.taus, atol=1e-12)

    def test_auto_threshold(self, rng):
        # Narrow tiles stay unblocked, wide ones block; both correct.
        for b in (16, 128):
            a = rng.standard_normal((b, b))
            f = geqrt(a)
            q = f.q_dense()
            assert np.linalg.norm(q @ f.r - a) < 1e-9 * b

    def test_odd_panel_sizes(self, rng):
        a = rng.standard_normal((70, 70))
        f = geqrt(a, inner_block=13)
        np.testing.assert_allclose(f.r, geqrt(a, inner_block=1).r, atol=1e-12)

    def test_invalid_inner_block(self, rng):
        with pytest.raises(KernelError):
            geqrt(rng.standard_normal((8, 8)), inner_block=0)
