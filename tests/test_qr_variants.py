"""Tests for Cholesky-family QR baselines and TSQR."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.cholesky_qr import (
    cholesky_factor,
    cholesky_qr,
    cholesky_qr2,
    modified_gram_schmidt,
)
from repro.errors import KernelError
from repro.kernels.tsqr import tsqr


class TestCholeskyFactor:
    def test_reconstruction(self, rng):
        a = rng.standard_normal((8, 8))
        g = a.T @ a + 8 * np.eye(8)
        r = cholesky_factor(g)
        np.testing.assert_allclose(r.T @ r, g, atol=1e-10)
        assert np.allclose(np.tril(r, -1), 0.0)

    def test_matches_numpy(self, rng):
        a = rng.standard_normal((6, 6))
        g = a @ a.T + 6 * np.eye(6)
        r = cholesky_factor(g)
        r_np = np.linalg.cholesky(g).T
        np.testing.assert_allclose(np.abs(r), np.abs(r_np), atol=1e-10)

    def test_rejects_indefinite(self):
        g = np.diag([1.0, -1.0, 1.0])
        with pytest.raises(np.linalg.LinAlgError):
            cholesky_factor(g)

    def test_rejects_rectangular(self, rng):
        with pytest.raises(KernelError):
            cholesky_factor(rng.standard_normal((3, 4)))

    def test_identity(self):
        np.testing.assert_allclose(cholesky_factor(np.eye(5)), np.eye(5))


class TestCholeskyQR:
    def test_well_conditioned_factors(self, rng):
        a = rng.standard_normal((40, 10))
        q, r = cholesky_qr(a)
        np.testing.assert_allclose(q @ r, a, atol=1e-10)
        np.testing.assert_allclose(q.T @ q, np.eye(10), atol=1e-8)
        assert np.allclose(np.tril(r, -1), 0.0)

    def test_qr2_improves_orthogonality(self):
        from repro.experiments.stability import matrix_with_condition

        a = matrix_with_condition(80, 16, 1e6, seed=1)
        _q1, _ = cholesky_qr(a)
        q2, r2 = cholesky_qr2(a)
        e1 = np.linalg.norm(_q1.T @ _q1 - np.eye(16))
        e2 = np.linalg.norm(q2.T @ q2 - np.eye(16))
        assert e2 < e1 / 10
        np.testing.assert_allclose(q2 @ r2, a, atol=1e-8 * np.linalg.norm(a))

    def test_fails_on_extreme_conditioning(self):
        from repro.experiments.stability import matrix_with_condition

        a = matrix_with_condition(60, 12, 1e12, seed=2)
        with pytest.raises(np.linalg.LinAlgError):
            q, _ = cholesky_qr(a)
            # Some BLAS roundings let the factorization squeak through;
            # then the orthogonality itself must be garbage.
            if np.linalg.norm(q.T @ q - np.eye(12)) < 1e-3:
                raise AssertionError("unexpectedly accurate")
            raise np.linalg.LinAlgError("degenerate as expected")

    def test_rejects_wide(self, rng):
        with pytest.raises(KernelError):
            cholesky_qr(rng.standard_normal((4, 8)))


class TestMGS:
    def test_factors(self, rng):
        a = rng.standard_normal((30, 8))
        q, r = modified_gram_schmidt(a)
        np.testing.assert_allclose(q @ r, a, atol=1e-10)
        np.testing.assert_allclose(q.T @ q, np.eye(8), atol=1e-8)

    def test_rank_deficient_detected(self):
        a = np.ones((10, 3))
        with pytest.raises(np.linalg.LinAlgError):
            modified_gram_schmidt(a)


class TestTSQR:
    @pytest.mark.parametrize("m,n,p", [(64, 8, 4), (100, 10, 3), (200, 16, 8), (48, 16, 1)])
    def test_reconstruction(self, rng, m, n, p):
        a = rng.standard_normal((m, n))
        f = tsqr(a, num_blocks=p)
        q = f.q_dense()
        np.testing.assert_allclose(q @ f.r, a, atol=1e-9)
        np.testing.assert_allclose(q.T @ q, np.eye(n), atol=1e-9)

    def test_r_matches_flat_qr_up_to_signs(self, rng):
        a = rng.standard_normal((128, 12))
        f = tsqr(a, num_blocks=4)
        r_ref = np.linalg.qr(a, mode="r")
        np.testing.assert_allclose(np.abs(f.r), np.abs(r_ref), atol=1e-9)

    def test_block_count_clipped(self, rng):
        a = rng.standard_normal((40, 16))  # at most 2 blocks of >= 16 rows
        f = tsqr(a, num_blocks=10)
        assert len(f.row_blocks) <= 2

    def test_blocks_partition_rows(self, rng):
        f = tsqr(rng.standard_normal((97, 8)), num_blocks=5)
        spans = f.row_blocks
        assert spans[0][0] == 0
        assert spans[-1][1] == 97
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 == s2

    def test_tree_is_binary_reduction(self, rng):
        f = tsqr(rng.standard_normal((64, 8)), num_blocks=4)
        assert len(f.tree) == 3  # p - 1 merges
        assert f.tree[-1][0] == 0  # everything folds into block 0

    def test_apply_roundtrip(self, rng):
        a = rng.standard_normal((80, 10))
        f = tsqr(a, num_blocks=4)
        x = rng.standard_normal((80, 3))
        np.testing.assert_allclose(f.apply_q(f.apply_qt(x)), x, atol=1e-9)

    def test_input_validation(self, rng):
        with pytest.raises(KernelError):
            tsqr(rng.standard_normal((4, 8)))
        with pytest.raises(KernelError):
            tsqr(np.zeros(5))
        with pytest.raises(KernelError):
            tsqr(rng.standard_normal((8, 4)), num_blocks=0)
        with pytest.raises(KernelError):
            tsqr(rng.standard_normal((8, 4)).T[:, :0].reshape(8, 0))

    def test_shape_check_on_apply(self, rng):
        f = tsqr(rng.standard_normal((40, 8)), num_blocks=2)
        with pytest.raises(KernelError):
            f.apply_qt(np.zeros(39))

    @given(st.integers(16, 120), st.integers(2, 12), st.integers(1, 6), st.integers(0, 40))
    @settings(max_examples=20, deadline=None)
    def test_property_tsqr_invariants(self, m, n, p, seed):
        if m < n:
            m = n
        a = np.random.default_rng(seed).standard_normal((m, n))
        f = tsqr(a, num_blocks=p)
        q = f.q_dense()
        scale = max(np.linalg.norm(a), 1.0)
        assert np.linalg.norm(q @ f.r - a) < 1e-9 * scale
        assert np.max(np.abs(np.tril(f.r, -1))) < 1e-9 * scale
