"""Unit tests for the fault-injection and retry layers.

End-to-end chaos coverage (every runtime x every fault kind) lives in
``test_chaos_matrix.py``; failover in ``test_failover.py``; snapshots in
``test_checkpoint_resume.py``.  This file tests the building blocks:
fault specs/plans, retry policies, the chaos engine's determinism, the
resilient task envelope, and the threaded runtime's prompt cancellation.
"""

import threading
import time

import numpy as np
import pytest

from repro.dag import build_dag
from repro.dag.tasks import Task, TaskKind
from repro.errors import (
    FaultInjectionError,
    NumericalHealthError,
    ResilienceError,
    RetryExhaustedError,
    TaskTimeoutError,
)
from repro.observability import MetricsRegistry, Tracer
from repro.resilience import (
    ChaosEngine,
    FaultKind,
    FaultPlan,
    FaultSpec,
    NO_RETRY,
    RetryPolicy,
    check_finite,
    check_task_outputs,
)
from repro.runtime.core_exec import apply_task, apply_task_resilient
from repro.runtime.serial import SerialRuntime
from repro.runtime.threaded import ThreadedRuntime
from repro.tiles import TiledMatrix


# ---------------------------------------------------------------------------
# FaultSpec / FaultPlan
# ---------------------------------------------------------------------------


class TestFaultSpec:
    def test_wildcards_match_everything(self):
        spec = FaultSpec(FaultKind.EXCEPTION)
        assert spec.matches(Task(TaskKind.GEQRT, 0, 0, 0, 0), "dev-a")
        assert spec.matches(Task(TaskKind.TSMQR, 1, 3, 1, 2), None)

    def test_field_matching(self):
        spec = FaultSpec(FaultKind.EXCEPTION, task_kind="TSMQR", k=1, row=3, col=2)
        assert spec.matches(Task(TaskKind.TSMQR, 1, 3, 1, 2), None)
        assert not spec.matches(Task(TaskKind.TSMQR, 1, 3, 1, 3), None)
        assert not spec.matches(Task(TaskKind.TSQRT, 1, 3, 1, 1), None)

    def test_batch_col_range_matching(self):
        spec = FaultSpec(FaultKind.EXCEPTION, col=3)
        batch = Task(TaskKind.TSMQR_BATCH, 0, 2, 0, 1, 5)  # cols [1, 5)
        assert spec.matches(batch, None)
        outside = Task(TaskKind.TSMQR_BATCH, 0, 2, 0, 4, 6)
        assert not outside.col <= 3 < outside.col_end
        assert not spec.matches(outside, None)

    def test_device_matching(self):
        spec = FaultSpec(FaultKind.EXCEPTION, device="dev-b")
        t = Task(TaskKind.GEQRT, 0, 0, 0, 0)
        assert spec.matches(t, "dev-b")
        assert not spec.matches(t, "dev-a")
        # Unknown executing device: the device filter cannot veto.
        assert spec.matches(t, None)

    def test_validation(self):
        with pytest.raises(ResilienceError):
            FaultSpec(FaultKind.EXCEPTION, times=0)
        with pytest.raises(ResilienceError):
            FaultSpec(FaultKind.DELAY, seconds=-1.0)

    def test_dict_round_trip(self):
        spec = FaultSpec(
            FaultKind.DELAY, task_kind="GEQRT", k=2, device="d0", times=3, seconds=0.5
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_bad_kind_and_unknown_fields(self):
        with pytest.raises(ResilienceError, match="valid 'kind'"):
            FaultSpec.from_dict({"kind": "segfault"})
        with pytest.raises(ResilienceError, match="unknown fault spec fields"):
            FaultSpec.from_dict({"kind": "exception", "panel": 3})


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            specs=(
                FaultSpec(FaultKind.EXCEPTION, task_kind="GEQRT", k=1),
                FaultSpec(FaultKind.CORRUPT_NAN, row=2, times=2),
            ),
            seed=99,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_load_errors(self, tmp_path):
        with pytest.raises(ResilienceError, match="no fault plan"):
            FaultPlan.load(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ResilienceError, match="not valid JSON"):
            FaultPlan.load(bad)
        nolist = tmp_path / "nolist.json"
        nolist.write_text('{"seed": 1}')
        with pytest.raises(ResilienceError, match="'faults' list"):
            FaultPlan.load(nolist)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ResilienceError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ResilienceError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ResilienceError):
            RetryPolicy(deadline=0.0)

    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(FaultInjectionError("x"))
        assert policy.is_retryable(NumericalHealthError("x"))
        assert policy.is_retryable(TaskTimeoutError("x"))
        assert not policy.is_retryable(KeyError("x"))
        assert not policy.is_retryable(KeyboardInterrupt())

    def test_backoff_deterministic_and_growing(self):
        policy = RetryPolicy(backoff=0.01, factor=2.0, jitter=0.5, seed=7)
        key = (1, 2, 3)
        a = policy.backoff_seconds(2, key=key)
        b = policy.backoff_seconds(2, key=key)
        assert a == b  # same seed/key/attempt -> same sleep
        assert policy.backoff_seconds(2, key=(9,)) != a  # key-dependent
        # Exponential growth holds despite jitter (factor 2, jitter 0.5).
        assert policy.backoff_seconds(4, key=key) > policy.backoff_seconds(2, key=key)
        assert policy.backoff_seconds(1, key=key) == 0.0

    def test_no_jitter_is_exact(self):
        policy = RetryPolicy(backoff=0.25, factor=3.0, jitter=0.0)
        assert policy.backoff_seconds(2) == 0.25
        assert policy.backoff_seconds(3) == 0.75


# ---------------------------------------------------------------------------
# ChaosEngine
# ---------------------------------------------------------------------------


class TestChaosEngine:
    def test_fires_exactly_times(self):
        plan = FaultPlan(specs=(FaultSpec(FaultKind.EXCEPTION, task_kind="GEQRT", times=2),))
        engine = ChaosEngine(plan)
        t = Task(TaskKind.GEQRT, 0, 0, 0, 0)
        for _ in range(2):
            with pytest.raises(FaultInjectionError):
                engine.before_task(t)
        engine.before_task(t)  # spec exhausted: no-op
        assert engine.fire_counts() == [2]
        assert engine.faults_injected == 2

    def test_corruption_poisons_written_tiles(self):
        plan = FaultPlan(specs=(FaultSpec(FaultKind.CORRUPT_INF),))
        engine = ChaosEngine(plan)
        tile = np.ones((4, 4))
        fired = engine.corrupt_outputs(Task(TaskKind.GEQRT, 0, 0, 0, 0), [tile])
        assert fired
        assert np.all(np.isinf(tile))
        with pytest.raises(NumericalHealthError, match="non-finite"):
            check_task_outputs(Task(TaskKind.GEQRT, 0, 0, 0, 0), [tile])

    def test_counts_on_metrics_and_tracer(self):
        metrics = MetricsRegistry()
        tracer = Tracer(metrics=metrics)
        plan = FaultPlan(specs=(FaultSpec(FaultKind.EXCEPTION),))
        engine = ChaosEngine(plan, metrics=metrics, tracer=tracer, device="dev-x")
        with pytest.raises(FaultInjectionError):
            engine.before_task(Task(TaskKind.GEQRT, 0, 0, 0, 0))
        assert metrics.snapshot()["counters"]["resilience.faults_injected"] == 1
        recs = tracer.annotation_records()
        assert len(recs) == 1 and recs[0].kind == "fault" and recs[0].device == "dev-x"


def test_check_finite():
    check_finite(np.ones(3), "ok")
    with pytest.raises(NumericalHealthError, match="nan"):
        check_finite(np.array([1.0, np.nan]), "bad")
    with pytest.raises(NumericalHealthError, match="inf"):
        check_finite(np.array([np.inf]), "bad")


# ---------------------------------------------------------------------------
# apply_task_resilient
# ---------------------------------------------------------------------------


def _run_dag_resilient(a, b, chaos=None, policy=None, **kw):
    tiled = TiledMatrix.from_dense(a.copy(), b)
    dag = build_dag(tiled.grid_rows, tiled.grid_cols, "TS", False)
    factors = {}
    for task in dag.tasks:
        apply_task_resilient(
            task, tiled, factors, policy=policy or RetryPolicy(backoff=0.0),
            chaos=chaos, **kw,
        )
    return tiled.to_dense()


class TestApplyTaskResilient:
    def test_retry_masks_fault_bit_identically(self, rng):
        a = rng.standard_normal((64, 64))
        tiled = TiledMatrix.from_dense(a.copy(), 16)
        dag = build_dag(4, 4, "TS", False)
        factors = {}
        for task in dag.tasks:
            apply_task(task, tiled, factors)
        clean = tiled.to_dense()

        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.EXCEPTION, task_kind="TSQRT", k=1, times=1),
            FaultSpec(FaultKind.CORRUPT_NAN, task_kind="TSMQR", k=0, row=2, times=1),
        ))
        metrics = MetricsRegistry()
        chaotic = _run_dag_resilient(
            a, 16, chaos=ChaosEngine(plan, metrics=metrics),
            health=True, metrics=metrics,
        )
        assert np.array_equal(chaotic, clean)
        counters = metrics.snapshot()["counters"]
        assert counters["resilience.retries"] == 2
        assert counters["resilience.faults_injected"] == 2

    def test_exhausted_retries_raise_with_cause(self, rng):
        a = rng.standard_normal((32, 32))
        plan = FaultPlan(specs=(FaultSpec(FaultKind.EXCEPTION, task_kind="GEQRT", times=99),))
        with pytest.raises(RetryExhaustedError) as info:
            _run_dag_resilient(a, 16, chaos=ChaosEngine(plan),
                               policy=RetryPolicy(max_attempts=2, backoff=0.0))
        assert isinstance(info.value.__cause__, FaultInjectionError)

    def test_no_retry_policy_fails_immediately(self, rng):
        a = rng.standard_normal((32, 32))
        plan = FaultPlan(specs=(FaultSpec(FaultKind.EXCEPTION, times=1),))
        engine = ChaosEngine(plan)
        with pytest.raises(RetryExhaustedError):
            _run_dag_resilient(a, 16, chaos=engine, policy=NO_RETRY)
        assert engine.faults_injected == 1  # single attempt, no second chance

    def test_unretryable_error_propagates(self, rng):
        a = rng.standard_normal((32, 32))
        tiled = TiledMatrix.from_dense(a, 16)
        # UNMQR before its GEQRT: the missing factor is a programming
        # error (KeyError), which must not be retried or wrapped.
        with pytest.raises(KeyError):
            apply_task_resilient(
                Task(TaskKind.UNMQR, 0, 0, 0, 1), tiled, {},
                policy=RetryPolicy(backoff=0.0),
            )

    def test_hang_trips_deadline(self, rng):
        a = rng.standard_normal((32, 32))
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.HANG, task_kind="GEQRT", k=0, times=1, seconds=0.2),
        ))
        metrics = MetricsRegistry()
        clean = _run_dag_resilient(a, 16)
        hung = _run_dag_resilient(
            a, 16, chaos=ChaosEngine(plan, metrics=metrics),
            policy=RetryPolicy(backoff=0.0, deadline=0.05), metrics=metrics,
        )
        assert np.array_equal(hung, clean)
        counters = metrics.snapshot()["counters"]
        assert counters["resilience.timeouts"] == 1
        assert counters["resilience.retries"] == 1


# ---------------------------------------------------------------------------
# Threaded runtime: prompt cancellation (no queue draining)
# ---------------------------------------------------------------------------


class _RecordingChaos(ChaosEngine):
    """Chaos engine that also records every task start it observes."""

    def __init__(self, plan):
        super().__init__(plan)
        self.started: list[tuple[float, Task]] = []
        self.fatal_at: float | None = None
        self._rec_lock = threading.Lock()

    def before_task(self, task, device=None):
        now = time.monotonic()
        with self._rec_lock:
            self.started.append((now, task))
        try:
            super().before_task(task, device)
        except FaultInjectionError:
            with self._rec_lock:
                self.fatal_at = time.monotonic()
            raise


class TestThreadedCancellation:
    def test_no_task_starts_after_fatal_error_single_worker(self, rng):
        """With one worker the check is deterministic: after the fatal
        failure the queue still holds ready tasks, and none may run."""
        a = rng.standard_normal((96, 96))
        # Fail an early task more times than the retry budget -> fatal.
        plan = FaultPlan(specs=(FaultSpec(FaultKind.EXCEPTION, task_kind="GEQRT", k=0, times=99),))
        chaos = _RecordingChaos(plan)
        runtime = ThreadedRuntime(
            num_workers=1, chaos=chaos, retry_policy=RetryPolicy(max_attempts=2, backoff=0.0),
        )
        with pytest.raises(RetryExhaustedError):
            runtime.factorize(a, 16)
        # Only GEQRT(0,0) ever started (twice, for its two attempts);
        # nothing was drained from the ready queue after the failure.
        assert [t.kind for _, t in chaos.started] == [TaskKind.GEQRT, TaskKind.GEQRT]

    def test_cancellation_is_prompt_with_many_workers(self, rng):
        a = rng.standard_normal((128, 128))
        total_tasks = len(build_dag(8, 8, "TS", False).tasks)
        # The panel-1 factorization fails fatally while panel-0 updates
        # (delayed to keep several in flight) are still queued.
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.EXCEPTION, task_kind="GEQRT", k=1, times=99),
            FaultSpec(FaultKind.DELAY, task_kind="TSMQR", k=0, times=20, seconds=0.01),
        ))
        chaos = _RecordingChaos(plan)
        runtime = ThreadedRuntime(
            num_workers=4, chaos=chaos, retry_policy=RetryPolicy(max_attempts=1, backoff=0.0),
        )
        with pytest.raises(RetryExhaustedError):
            runtime.factorize(a, 16)
        assert chaos.fatal_at is not None
        # Anything observed starting after the fatal instant can only be
        # a task that was already past the cancellation check (at most
        # one per other worker) — the dozens of queued panel-0 updates
        # must have been dropped, not drained.
        late = [t for ts, t in chaos.started if ts > chaos.fatal_at]
        assert len(late) <= runtime.num_workers - 1
        assert len(chaos.started) < total_tasks // 2


# ---------------------------------------------------------------------------
# Runtime wiring details
# ---------------------------------------------------------------------------


class TestRuntimeWiring:
    def test_chaos_without_policy_gets_default_retries(self, rng):
        """A chaos run without an explicit policy must still mask faults
        (the default policy kicks in) — not crash on the first injection."""
        a = rng.standard_normal((64, 64))
        plan = FaultPlan(specs=(FaultSpec(FaultKind.EXCEPTION, task_kind="TSQRT", times=1),))
        clean = SerialRuntime().factorize(a.copy(), 16)
        fact = SerialRuntime(chaos=ChaosEngine(plan)).factorize(a.copy(), 16)
        assert np.array_equal(fact.r_dense(), clean.r_dense())

    def test_health_checks_flag_alone_enables_envelope(self, rng):
        a = rng.standard_normal((64, 64))
        fact = SerialRuntime(health_checks=True).factorize(a, 16)
        assert fact.reconstruction_error(a) < 1e-12

    def test_default_path_has_no_resilience_objects(self, rng):
        from repro.runtime.serial import resolve_policy

        assert resolve_policy(None, None, False) is None
        policy = RetryPolicy(max_attempts=5)
        assert resolve_policy(policy, None, False) is policy
