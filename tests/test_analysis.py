"""Tests for metrics and reporting helpers."""

import pytest

from repro.analysis import (
    achieved_gflops,
    amdahl_bound,
    ascii_chart,
    format_series,
    format_table,
    parallel_efficiency,
    speedup,
    weak_scaling_efficiency,
)


class TestMetrics:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_parallel_efficiency(self):
        assert parallel_efficiency(8.0, 2.0, 4) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 1.0, 0)

    def test_achieved_gflops(self):
        g = achieved_gflops(3200, 16, 1.0)
        assert g > 0
        # Twice as fast -> twice the rate.
        assert achieved_gflops(3200, 16, 0.5) == pytest.approx(2 * g)
        with pytest.raises(ValueError):
            achieved_gflops(100, 16, 0.0)

    def test_weak_scaling(self):
        # Perfect: 8x work on 8x workers in the same time.
        eff = weak_scaling_efficiency(1.0, 100, 1.0, 200, 8.0)
        assert eff == pytest.approx(1.0)
        with pytest.raises(ValueError):
            weak_scaling_efficiency(0, 1, 1, 1, 1)

    def test_amdahl(self):
        assert amdahl_bound(0.0, 10) == pytest.approx(10.0)
        assert amdahl_bound(1.0, 10) == pytest.approx(1.0)
        assert amdahl_bound(0.1, 1e9) == pytest.approx(10.0, rel=1e-6)
        with pytest.raises(ValueError):
            amdahl_bound(1.5, 2)
        with pytest.raises(ValueError):
            amdahl_bound(0.5, 0)


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out

    def test_format_series(self):
        out = format_series("timing", [1, 2], [0.5, 1.5], unit="s")
        assert "timing [s]" in out
        assert "1 2" in out

    def test_ascii_chart_contains_marks(self):
        out = ascii_chart({"alpha": ([1, 2, 3], [1.0, 2.0, 3.0])})
        assert "A" in out
        assert "alpha" in out

    def test_ascii_chart_log(self):
        out = ascii_chart({"x": ([1, 2], [1.0, 100.0])}, logy=True)
        assert "log y" in out

    def test_ascii_chart_empty(self):
        assert ascii_chart({}) == "(empty chart)"


class TestRoofline:
    def test_intensity_linear_in_b(self):
        from repro.analysis import arithmetic_intensity
        from repro.dag.tasks import Step

        a16 = arithmetic_intensity(Step.UE, 16)
        a32 = arithmetic_intensity(Step.UE, 32)
        assert a32 == pytest.approx(2 * a16)
        with pytest.raises(ValueError):
            arithmetic_intensity(Step.UE, 0)

    def test_kernel_bytes_ordering(self):
        from repro.analysis import kernel_bytes
        from repro.dag.tasks import Step

        # Pair kernels touch more data than single-tile ones.
        assert kernel_bytes(Step.UE, 16) > kernel_bytes(Step.UT, 16)
        assert kernel_bytes(Step.E, 16) > kernel_bytes(Step.T, 16)

    def test_roofline_regimes(self):
        from repro.analysis import roofline
        from repro.dag.tasks import Step
        from repro.devices import paper_gtx580

        dev = paper_gtx580()
        # Starved bandwidth: bandwidth-bound even at large tiles.
        starved = roofline(dev, Step.UE, 16, mem_bandwidth=1e6)
        assert not starved.compute_bound
        assert starved.attainable_flops < dev.timing.rates_flops[Step.UE]
        # Generous bandwidth: compute-bound.
        rich = roofline(dev, Step.UE, 64, mem_bandwidth=1e12)
        assert rich.compute_bound
        with pytest.raises(ValueError):
            roofline(dev, Step.UE, 16, mem_bandwidth=0)

    def test_ridge_tile_size(self):
        from repro.analysis import ridge_tile_size
        from repro.dag.tasks import Step
        from repro.devices import paper_gtx580

        dev = paper_gtx580()
        # Low bandwidth pushes the ridge to larger tiles.
        b_low = ridge_tile_size(dev, Step.UE, mem_bandwidth=1e9)
        b_high = ridge_tile_size(dev, Step.UE, mem_bandwidth=1e11)
        assert b_low is not None and b_high is not None
        assert b_low >= b_high
        # Hopeless bandwidth: never compute-bound.
        assert ridge_tile_size(dev, Step.UE, mem_bandwidth=1.0, max_b=64) is None


class TestEnergy:
    def _report(self, makespan=2.0, busy=None):
        from repro.sim.trace import SimulationReport

        return SimulationReport(
            makespan=makespan,
            compute_busy=busy or {"gtx580-0": 16.0, "cpu-0": 4.0},
            comm_time=0.0,
        )

    def test_full_utilization_draws_tdp(self, system):
        from repro.analysis import energy_report

        # gtx580 busy = slots * makespan -> 100% utilization.
        rep = self._report(makespan=1.0, busy={"gtx580-0": 16.0})
        e = energy_report(rep, system, idle_fraction=0.0)
        assert e.total_joules == pytest.approx(244.0)
        assert e.average_watts == pytest.approx(244.0)

    def test_idle_fraction_adds_floor(self, system):
        from repro.analysis import energy_report

        rep = self._report(makespan=1.0, busy={"gtx580-0": 0.0})
        e = energy_report(rep, system, idle_fraction=0.5)
        assert e.active_joules == 0.0
        assert e.idle_joules == pytest.approx(122.0)

    def test_unknown_device_gets_fallback(self):
        from repro.analysis import device_power
        from repro.devices import synthetic_system

        sys_ = synthetic_system(num_gpus=1, num_cpus=0)
        assert device_power(sys_, "gpu-0") == 150.0

    def test_invalid_idle_fraction(self, system):
        from repro.analysis import energy_report

        with pytest.raises(ValueError):
            energy_report(self._report(), system, idle_fraction=2.0)

    def test_energy_experiment_shape(self):
        from repro.experiments import energy_to_solution

        res = energy_to_solution.run(quick=True)
        # Energy optimum never uses MORE devices than the time optimum.
        for row in res.rows:
            assert int(row[-1][0]) <= int(row[-2][0])
