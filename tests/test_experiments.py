"""Smoke + shape tests for every experiment driver (quick mode)."""

import pytest

from repro.experiments import ALL_EXPERIMENTS


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_experiment_runs_and_formats(name):
    result = ALL_EXPERIMENTS[name].run(quick=True)
    assert result.rows, f"{name} produced no rows"
    assert len(result.headers) == len(result.rows[0])
    text = result.to_text()
    assert result.title.split(":")[0] in text


class TestTable1:
    def test_paper_vs_exact_relationship(self):
        res = ALL_EXPERIMENTS["table1"].run(quick=True)
        for row in res.rows:
            _panel, t, e, ut, ue, t_x, e_x, ut_x, ue_x = row
            assert t >= t_x and e >= e_x
            assert ut_x + ue_x == ut  # update totals agree


class TestFig4:
    def test_model_orderings(self):
        res = ALL_EXPERIMENTS["fig4"].run(quick=True)
        by_dev = {}
        for dev, b, t, e, ut, ue, *_ in res.rows:
            by_dev.setdefault(dev, {})[b] = (t, e, ut, ue)
        for dev, per_b in by_dev.items():
            for b, (t, e, ut, ue) in per_b.items():
                assert t > ut and e > ue, f"{dev} b={b}"
        # 580 faster per tile than 680 at b=16.
        assert by_dev["gtx580"][16][0] < by_dev["gtx680"][16][0]


class TestFig5:
    def test_comm_share_decreases(self):
        res = ALL_EXPERIMENTS["fig5"].run(quick=True)
        shares = [row[2] for row in res.rows]
        assert shares[0] > shares[-1]


class TestFig6AndTable3:
    def test_small_sizes_prefer_one_gpu(self):
        res = ALL_EXPERIMENTS["fig6"].run(quick=True)
        assert res.rows[0][-1] == "1G"
        assert res.rows[-1][-1] == "3G"

    def test_table3_full_agreement(self):
        res = ALL_EXPERIMENTS["table3"].run(quick=True)
        assert res.extra["agreements"] == res.extra["total"]


class TestFig8:
    def test_monotone(self):
        res = ALL_EXPERIMENTS["fig8"].run(quick=True)
        assert res.extra["monotone"]


class TestFig9:
    def test_gtx580_selected_and_fastest(self):
        res = ALL_EXPERIMENTS["fig9"].run(quick=True)
        assert res.extra["selected_main"] == "gtx580-0"
        for row in res.rows:
            _n, t580, t680, _tnone, tcpu, *_ = row
            assert t580 < t680 < tcpu


class TestFig10:
    def test_guide_beats_even(self):
        res = ALL_EXPERIMENTS["fig10"].run(quick=True)
        for row in res.rows:
            even_over_guide = row[4]
            assert even_over_guide > 1.05


class TestAblations:
    def test_elimination_numeric_equivalence(self):
        res = ALL_EXPERIMENTS["ablation-elimination"].run(quick=True)
        assert res.extra["r_equivalence_max_diff"] < 1e-8

    def test_lookahead_never_slower(self):
        res = ALL_EXPERIMENTS["ablation-lookahead"].run(quick=True)
        for row in res.rows:
            assert row[4] >= 0.95  # paper-iter >= lookahead (within noise)

    def test_fig3_dag_stats(self):
        res = ALL_EXPERIMENTS["fig3"].run(quick=True)
        assert "digraph" in res.extra["dot_3x3"]
