"""Tests for device models, calibration and system registry."""

import pytest

from repro.dag.tasks import Step
from repro.devices import (
    DeviceKind,
    DeviceSpec,
    KernelTimingModel,
    fig4_reference_points,
    make_system,
    paper_cpu_i7_3820,
    paper_gtx580,
    paper_gtx680,
    paper_testbed,
    synthetic_system,
)
from repro.errors import DeviceError


class TestTimingModel:
    def test_time_is_affine_in_flops(self):
        dev = paper_gtx580()
        t8 = dev.time(Step.UE, 8)
        t16 = dev.time(Step.UE, 16)
        t32 = dev.time(Step.UE, 32)
        # After removing the overhead the cost is cubic.
        oh = dev.timing.overheads_s[Step.UE]
        assert (t32 - oh) / (t16 - oh) == pytest.approx(8.0, rel=0.01)
        assert t8 < t16 < t32

    def test_missing_step_rejected(self):
        with pytest.raises(DeviceError):
            KernelTimingModel(overheads_s={}, rates_flops={})

    def test_negative_overhead_rejected(self):
        with pytest.raises(DeviceError):
            KernelTimingModel(
                overheads_s={s: -1.0 for s in Step},
                rates_flops={s: 1e9 for s in Step},
            )

    def test_zero_rate_rejected(self):
        with pytest.raises(DeviceError):
            KernelTimingModel(
                overheads_s={s: 0.0 for s in Step},
                rates_flops={s: 0.0 for s in Step},
            )

    def test_invalid_tile_size(self):
        with pytest.raises(DeviceError):
            paper_gtx580().time(Step.T, 0)


class TestDeviceSpec:
    def test_update_throughput_inverse_of_effective_time(self):
        dev = paper_gtx680()
        assert dev.update_throughput(16) == pytest.approx(
            1.0 / dev.effective_update_time(16)
        )

    def test_panel_chain_time(self):
        dev = paper_gtx580()
        one = dev.panel_chain_time(1, 16)
        ten = dev.panel_chain_time(10, 16)
        assert one == pytest.approx(dev.time(Step.T, 16))
        assert ten == pytest.approx(one + 9 * dev.time(Step.E, 16))

    def test_panel_chain_rejects_zero_rows(self):
        with pytest.raises(DeviceError):
            paper_gtx580().panel_chain_time(0, 16)

    def test_rename(self):
        dev = paper_gtx680().rename("x")
        assert dev.device_id == "x"
        assert dev.cores == 1536

    def test_invalid_cores_slots(self):
        with pytest.raises(DeviceError):
            DeviceSpec("a", "A", DeviceKind.GPU, 0, 1, paper_gtx580().timing)
        with pytest.raises(DeviceError):
            DeviceSpec("a", "A", DeviceKind.GPU, 1, 0, paper_gtx580().timing)


class TestCalibration:
    """The orderings the paper's Fig. 4 and Sec. III-B establish."""

    def test_per_tile_ordering_across_devices(self):
        # Holds from the paper's working point (b=16) upward; at tiny
        # tiles GPU launch overhead dominates and the CPU wins, exactly
        # as Fig. 4c's low-b points show.
        g580, g680, cpu = paper_gtx580(), paper_gtx680(), paper_cpu_i7_3820()
        for step in Step:
            for b in (16, 24, 32):
                assert g580.time(step, b) < g680.time(step, b) < cpu.time(step, b)

    def test_cpu_beats_gpus_at_tiny_tiles(self):
        # Fig. 4's small-tile regime: kernel-launch overhead dominates.
        g580, cpu = paper_gtx580(), paper_cpu_i7_3820()
        assert cpu.time(Step.T, 4) < g580.time(Step.T, 4)

    def test_step_ordering_within_device(self):
        for dev in (paper_gtx580(), paper_gtx680(), paper_cpu_i7_3820()):
            for b in (8, 16, 24):
                assert dev.time(Step.T, b) > dev.time(Step.UT, b)
                assert dev.time(Step.E, b) > dev.time(Step.UE, b)

    def test_update_throughput_ordering(self):
        # The GTX680 has more parallelism: better update throughput even
        # though each kernel is slower (paper Sec. VI-B).
        assert (
            paper_gtx680().update_throughput(16)
            > paper_gtx580().update_throughput(16)
            > paper_cpu_i7_3820().update_throughput(16)
        )

    def test_core_counts_match_table2(self):
        assert paper_gtx580().cores == 512
        assert paper_gtx680().cores == 1536
        assert paper_cpu_i7_3820().cores == 4

    def test_fig4_reference_structure(self):
        ref = fig4_reference_points()
        assert set(ref) == {"gtx580", "gtx680", "cpu"}
        for dev in ref.values():
            n = len(dev["tile_sizes"])
            assert len(dev["T"]) == len(dev["E"]) == len(dev["U"]) == n
            # Digitized curves are increasing in tile size.
            for key in ("T", "E", "U"):
                assert all(a <= b for a, b in zip(dev[key], dev[key][1:]))


class TestSystemSpec:
    def test_paper_testbed_composition(self):
        sys_ = paper_testbed()
        assert len(sys_) == 4
        assert sys_.total_cores == 4 + 512 + 1536 + 1536 == 3588
        assert len(sys_.gpus()) == 3
        assert len(sys_.cpus()) == 1

    def test_lookup(self):
        sys_ = paper_testbed()
        assert sys_.device("gtx580-0").name == "GeForce GTX 580"
        with pytest.raises(DeviceError):
            sys_.device("nope")

    def test_subset(self):
        sub = paper_testbed().subset(["cpu-0", "gtx580-0"])
        assert sub.device_ids == ["cpu-0", "gtx580-0"]
        assert sub.total_cores == 516

    def test_duplicate_ids_rejected(self):
        d = paper_gtx580()
        with pytest.raises(DeviceError):
            make_system("bad", [d, d])

    def test_empty_rejected(self):
        with pytest.raises(DeviceError):
            make_system("bad", [])

    def test_synthetic_system(self):
        sys_ = synthetic_system(num_gpus=3, num_cpus=2, gpu_speedup=2.0)
        assert len(sys_) == 5
        fast = sys_.device("gpu-0")
        base = paper_gtx580()
        assert fast.time(Step.UE, 16) < base.time(Step.UE, 16)

    def test_synthetic_needs_devices(self):
        with pytest.raises(DeviceError):
            synthetic_system(num_gpus=0, num_cpus=0)
