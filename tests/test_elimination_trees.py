"""Pluggable elimination trees: DAG properties, scheduling, end-to-end.

Everything here is parametrized over *every* registered tree (via
``tests.strategies.ALL_TREES``) so the legality / completeness /
soundness guarantees the TS/TT pair enjoyed extend to flat-tt,
fibonacci, and greedy — and to any tree registered later:

* DAG structural laws: every subdiagonal tile annihilated exactly once
  per panel, the panel survivor is row ``k``, ``validate()`` passes,
  and the fused (``batch_updates=True``) DAG is a correctness-equivalent
  collapse of the unfused one (transitive-closure argument, same as
  ``test_kernels_batched``).
* Priority scheduling: bottom-level ranks are strictly monotone along
  every DAG edge, for unit and flop-model weights, batched or not.
* End-to-end: serial / threaded / multiprocess runs of the same matrix
  produce bit-identical R per tree, and reconstruct A.
* Checkpointing: a greedy run's snapshot round-trips its tree name, and
  resuming it under a different tree fails with ``CheckpointError``.
* Planning: the critical-path ordering the optimizer exploits on tall
  grids (greedy <= binary <= flat under flop weights, arXiv:1104.4475)
  holds analytically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import (
    TaskKind,
    build_dag,
    bottom_level_ranks,
    canonical_tree,
    critical_path_length,
    resolve_tree,
    task_weight_model,
    tree_names,
)
from repro.errors import DAGError
from repro.runtime.checkpoint import CheckpointError, load_partial_factorization
from repro.runtime.serial import SerialRuntime
from repro.runtime.threaded import ThreadedRuntime

from .strategies import ALL_TREES, grids, trees

MERGE_KINDS = (TaskKind.TSQRT, TaskKind.TTQRT)


# ---------------------------------------------------------------------------
# Registry


class TestRegistry:
    def test_five_trees_registered(self):
        assert set(tree_names()) == {"flat", "flat-tt", "binary", "fibonacci", "greedy"}

    def test_legacy_aliases_resolve(self):
        assert canonical_tree("TS") == "flat"
        assert canonical_tree("tt") == "binary"
        assert canonical_tree("GREEDY") == "greedy"

    def test_unknown_tree_lists_registry(self):
        with pytest.raises(DAGError, match="flat.*greedy|greedy.*flat"):
            canonical_tree("XX")

    @pytest.mark.parametrize("tree", ALL_TREES)
    def test_pairs_annihilate_each_row_once(self, tree):
        t = resolve_tree(tree)
        for p in range(1, 12):
            for k in range(p):
                pairs = t.pairs(k, p)
                bots = [b for b, _ in pairs]
                assert sorted(bots) == list(range(k + 1, p)), (tree, p, k)
                for bot, top in pairs:
                    assert k <= top < bot, (tree, p, k, bot, top)

    @pytest.mark.parametrize("tree", ALL_TREES)
    def test_survivor_is_row_k(self, tree):
        """After replaying the pair list, only row k remains live."""
        t = resolve_tree(tree)
        for p in range(1, 12):
            for k in range(p):
                live = set(range(k, p))
                for bot, top in t.pairs(k, p):
                    assert bot in live and top in live, (tree, p, k, bot, top)
                    live.discard(bot)
                assert live == {k}, (tree, p, k)


# ---------------------------------------------------------------------------
# DAG structural laws, all trees


@settings(max_examples=40, deadline=None)
@given(grid=grids, tree=trees, batch=st.booleans())
def test_dag_validates_for_every_tree(grid, tree, batch):
    p, q = grid
    dag = build_dag(p, q, tree, batch_updates=batch)
    dag.validate()
    merges = [t for t in dag.tasks if t.kind in MERGE_KINDS]
    panels = min(p, q)
    expected = sum(p - k - 1 for k in range(panels))
    assert len(merges) == expected


@settings(max_examples=25, deadline=None)
@given(grid=grids, tree=trees)
def test_ts_trees_use_tsqrt_tt_trees_use_ttqrt(grid, tree):
    p, q = grid
    dag = build_dag(p, q, tree)
    kinds = {t.kind for t in dag.tasks if t.kind in MERGE_KINDS}
    expected = {TaskKind.TTQRT} if resolve_tree(tree).uses_tt else {TaskKind.TSQRT}
    assert kinds == expected or not kinds  # empty when the grid has no merges


def _per_tile_parent(fused_dag):
    parent = {}
    for t in fused_dag.tasks:
        for e in t.expand() if t.is_batch else [t]:
            parent[e] = t
    return parent


@pytest.mark.parametrize("tree", ALL_TREES)
@pytest.mark.parametrize("grid", [(4, 3), (5, 2)])
class TestFusedEquivalenceAllTrees:
    """Legality / completeness / soundness of batched coarsening, per tree."""

    def test_expansion_matches_unfused_task_multiset(self, grid, tree):
        p, q = grid
        unfused = build_dag(p, q, tree)
        fused = build_dag(p, q, tree, batch_updates=True)
        expanded = sorted(
            e for t in fused.tasks for e in (t.expand() if t.is_batch else [t])
        )
        assert expanded == sorted(unfused.tasks)

    def test_dependencies_are_equivalent(self, grid, tree):
        nx = pytest.importorskip("networkx")
        p, q = grid
        unfused = build_dag(p, q, tree)
        fused = build_dag(p, q, tree, batch_updates=True)
        parent = _per_tile_parent(fused)

        def closure(dag):
            g = nx.DiGraph()
            g.add_nodes_from(dag.tasks)
            for t in dag.tasks:
                for s in dag.succs[t]:
                    g.add_edge(t, s)
            return nx.transitive_closure_dag(g)

        un_c, fu_c = closure(unfused), closure(fused)
        tasks = list(unfused.tasks)
        for u in tasks:
            for v in tasks:
                if u == v:
                    continue
                if parent[u] == parent[v]:
                    assert not un_c.has_edge(u, v), (u, v)  # legality
                elif un_c.has_edge(u, v):
                    assert fu_c.has_edge(parent[u], parent[v]), (u, v)  # completeness
        for a_task in fused.tasks:
            ea = a_task.expand() if a_task.is_batch else [a_task]
            for b_task in fused.succs[a_task]:
                eb = b_task.expand() if b_task.is_batch else [b_task]
                assert any(
                    un_c.has_edge(x, y) for x in ea for y in eb
                ), (a_task, b_task)  # soundness


# ---------------------------------------------------------------------------
# Priority scheduling


@settings(max_examples=40, deadline=None)
@given(grid=grids, tree=trees, batch=st.booleans(), flop_weights=st.booleans())
def test_bottom_level_ranks_monotone_along_every_edge(grid, tree, batch, flop_weights):
    """rank(pred) > rank(succ) on every edge — the invariant that makes
    highest-rank-first dispatch a critical-path schedule."""
    p, q = grid
    dag = build_dag(p, q, tree, batch_updates=batch)
    weight = task_weight_model(8) if flop_weights else None
    ranks = bottom_level_ranks(dag, weight)
    assert set(ranks) == set(dag.tasks)
    for t in dag.tasks:
        for s in dag.succs[t]:
            assert ranks[t] > ranks[s], (t, s)
    # A sink's rank is exactly its own weight; every rank is positive.
    w = weight or (lambda _t: 1.0)
    for t in dag.tasks:
        assert ranks[t] > 0.0
        if not dag.succs[t]:
            assert ranks[t] == pytest.approx(w(t))


def test_weighted_critical_path_ordering_tall_grid():
    """arXiv:1104.4475 Table: on tall grids, under the flop weight
    model, greedy <= binary <= flat critical path."""
    w = task_weight_model(16)
    cp = {
        name: critical_path_length(build_dag(16, 4, name), weight=w)
        for name in tree_names()
    }
    assert cp["greedy"] <= cp["binary"] <= cp["flat"]
    assert cp["greedy"] < cp["flat"]  # strict win somewhere


# ---------------------------------------------------------------------------
# End-to-end: 3 runtimes bit-identical per tree


N, B = 96, 16


@pytest.fixture(scope="module")
def matrix():
    return np.random.default_rng(4475).standard_normal((N, N))


@pytest.fixture(scope="module")
def mp_plan():
    from repro.core.optimizer import Optimizer
    from repro.devices.registry import paper_testbed

    return Optimizer(paper_testbed()).plan(matrix_size=N, tile_size=B)


@pytest.mark.parametrize("tree", ALL_TREES)
class TestRuntimesBitIdentical:
    def test_three_runtimes_agree_and_reconstruct(self, tree, matrix, mp_plan):
        from repro.runtime.multiprocess import MultiprocessRuntime

        serial = SerialRuntime(tree).factorize(matrix.copy(), B)
        threaded = ThreadedRuntime(4, tree).factorize(matrix.copy(), B)
        mp = MultiprocessRuntime(mp_plan, elimination=tree).factorize(matrix, B)
        r = serial.r_dense()
        np.testing.assert_array_equal(threaded.r_dense(), r)
        np.testing.assert_array_equal(mp.r_dense(), r)
        q = serial.q_dense()
        err = np.linalg.norm(q @ r - matrix) / np.linalg.norm(matrix)
        assert err < 1e-12
        assert np.allclose(q.T @ q, np.eye(N), atol=1e-12)

    def test_batched_matches_per_tile(self, tree, matrix):
        ref = SerialRuntime(tree).factorize(matrix.copy(), B)
        bat = SerialRuntime(tree, batch_updates=True).factorize(matrix.copy(), B)
        np.testing.assert_array_equal(bat.r_dense(), ref.r_dense())


# ---------------------------------------------------------------------------
# Checkpoint round-trip and mismatch


class TestCheckpointTreeValidation:
    def _interrupt(self, matrix, path, tree):
        from repro.resilience import ChaosEngine, FaultKind, FaultPlan, FaultSpec, NO_RETRY
        from repro.errors import RetryExhaustedError

        plan = FaultPlan(
            specs=(FaultSpec(FaultKind.EXCEPTION, task_kind="GEQRT", k=3, times=99),)
        )
        runtime = SerialRuntime(
            tree,
            chaos=ChaosEngine(plan),
            retry_policy=NO_RETRY,
            checkpoint_every=10,
            checkpoint_path=path,
        )
        with pytest.raises(RetryExhaustedError):
            runtime.factorize(matrix.copy(), B)
        assert path.exists()
        return path

    def test_snapshot_roundtrips_canonical_tree(self, matrix, tmp_path):
        path = self._interrupt(matrix, tmp_path / "snap.npz", "greedy")
        state = load_partial_factorization(path)
        assert canonical_tree(state.elimination) == "greedy"

    def test_resume_with_matching_tree_finishes_identically(self, matrix, tmp_path):
        from repro.runtime.checkpoint import resume_factorization

        clean = SerialRuntime("greedy").factorize(matrix.copy(), B)
        path = self._interrupt(matrix, tmp_path / "snap.npz", "greedy")
        fact = resume_factorization(path)  # adopts the snapshot's tree
        np.testing.assert_array_equal(fact.r_dense(), clean.r_dense())

    @pytest.mark.parametrize("wrong", ["flat", "fibonacci", "TT"])
    def test_resume_with_mismatched_tree_raises(self, matrix, tmp_path, wrong):
        path = self._interrupt(matrix, tmp_path / "snap.npz", "greedy")
        state = load_partial_factorization(path)
        with pytest.raises(CheckpointError, match="greedy"):
            SerialRuntime(wrong).factorize(state.tiled, B, resume=state)


# ---------------------------------------------------------------------------
# Trace provenance + diff refusal


class TestTraceProvenance:
    def test_jsonl_roundtrips_tree_meta(self, matrix):
        from repro.observability import Tracer, MetricsRegistry, dump_jsonl, load_jsonl

        tracer = Tracer(metrics=MetricsRegistry())
        SerialRuntime("fibonacci", tracer=tracer).factorize(matrix.copy(), B)
        trace = tracer.to_trace()
        trace.meta["elimination"] = "fibonacci"
        loaded = load_jsonl(dump_jsonl(trace).splitlines())
        assert loaded.meta["elimination"] == "fibonacci"

    def test_diff_refuses_mismatched_trees(self, matrix):
        from repro.errors import ObservabilityError
        from repro.observability import Tracer, MetricsRegistry, diff_traces

        t1 = Tracer(metrics=MetricsRegistry())
        SerialRuntime("greedy", tracer=t1).factorize(matrix.copy(), B)
        a = t1.to_trace()
        a.meta["elimination"] = "greedy"
        t2 = Tracer(metrics=MetricsRegistry())
        SerialRuntime("flat", tracer=t2).factorize(matrix.copy(), B)
        b = t2.to_trace()
        b.meta["elimination"] = "TS"
        with pytest.raises(ObservabilityError, match="different elimination"):
            diff_traces(a, b)
        # Aliases of the SAME tree must still compare fine.
        b.meta["elimination"] = "greedy"
        diff_traces(a, b)

    def test_diff_tolerates_missing_meta(self, matrix):
        from repro.observability import Tracer, MetricsRegistry, diff_traces

        t1 = Tracer(metrics=MetricsRegistry())
        SerialRuntime("greedy", tracer=t1).factorize(matrix.copy(), B)
        a = t1.to_trace()
        diff_traces(a, a)  # no meta on either side: legacy behavior


# ---------------------------------------------------------------------------
# Planner STAGE_TREE audit


class TestPlannerTreeSelection:
    def test_plan_records_stage_tree_audit(self):
        from repro.core.optimizer import Optimizer
        from repro.devices.registry import paper_testbed
        from repro.observability.decisions import DecisionAudit, STAGE_TREE

        audit = DecisionAudit()
        opt = Optimizer(paper_testbed())
        plan = opt.plan(matrix_size=128, tile_size=16, tree="auto", audit=audit)
        recs = [r for r in audit.records if r.stage == STAGE_TREE]
        assert len(recs) == 1
        rec = recs[0]
        assert rec.chosen == plan.notes["tree"]
        assert {c.name for c in rec.candidates} == set(tree_names())

    def test_forced_tree_is_honored_but_still_scored(self):
        from repro.core.optimizer import Optimizer
        from repro.devices.registry import paper_testbed
        from repro.observability.decisions import DecisionAudit, STAGE_TREE

        audit = DecisionAudit()
        opt = Optimizer(paper_testbed())
        plan = opt.plan(matrix_size=128, tile_size=16, tree="greedy", audit=audit)
        assert plan.notes["tree"] == "greedy"
        (rec,) = [r for r in audit.records if r.stage == STAGE_TREE]
        assert rec.chosen == "greedy"
        assert len(rec.candidates) == len(tree_names())

    def test_executor_tree_kwarg_end_to_end(self, matrix):
        from repro.core.executor import TiledQR
        from repro.devices.registry import paper_testbed

        qr = TiledQR(paper_testbed())
        result = qr.factorize(matrix.copy(), B, tree="greedy")
        ref = SerialRuntime("greedy").factorize(matrix.copy(), B)
        np.testing.assert_array_equal(result.factorization.r_dense(), ref.r_dense())
