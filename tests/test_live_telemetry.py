"""Live telemetry tests: bus, progress, stragglers, sinks, heartbeats.

Covers the in-run pipeline end to end: TelemetryBus pub/sub semantics
(async dispatch + drain), ProgressTracker folding and ETA, straggler
detection on both prediction sources, the streaming JSONL sink's
crash-safety contract, the dashboard renderer, and the acceptance
scenarios — a chaos ``hang`` producing ``heartbeat.missed`` before the
retry (threaded) / failover (multiprocess) reacts, with bit-identical
results throughout.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.dag import build_dag
from repro.dag.tasks import Task, TaskKind
from repro.errors import ObservabilityError
from repro.observability import MetricsRegistry
from repro.observability.live import (
    LIVE_SCHEMA_VERSION,
    HeartbeatMonitor,
    JsonlStreamSink,
    LiveEvent,
    ProgressTracker,
    StragglerDetector,
    TelemetryBus,
    read_live_events,
    render_dashboard,
    task_payload,
)
from repro.resilience import ChaosEngine, FaultKind, FaultPlan, FaultSpec, RetryPolicy
from repro.runtime import tiled_qr
from repro.runtime.multiprocess import MultiprocessRuntime
from repro.runtime.threaded import ThreadedRuntime

N = 96
B = 16


@pytest.fixture(scope="module")
def matrix():
    return np.random.default_rng(777).standard_normal((N, N))


@pytest.fixture(scope="module")
def clean_r(matrix):
    return tiled_qr(matrix, B).r_dense()


def _collector(bus):
    seen = []
    bus.subscribe(seen.append)
    return seen


def _finish_event(bus, task, device="dev0", duration=1e-3):
    data = task_payload(task)
    data["start"] = 0.0
    data["end"] = duration
    data["duration"] = duration
    return bus.publish("task.finish", device, data)


# ---------------------------------------------------------------------------
# TelemetryBus


class TestBus:
    def test_publish_sequences_and_ring_bound(self):
        bus = TelemetryBus(capacity=4)
        for _ in range(10):
            bus.publish("heartbeat")
        assert bus.last_seq == 10
        assert len(bus) == 4
        assert [e.seq for e in bus.events()] == [7, 8, 9, 10]
        assert [e.seq for e in bus.events(since_seq=9)] == [10]

    def test_subscribers_see_every_event_after_drain(self):
        bus = TelemetryBus()
        seen = _collector(bus)
        for i in range(5):
            bus.publish("task.start", "d", {"i": i})
        assert bus.drain()
        assert [e.seq for e in seen] == [1, 2, 3, 4, 5]
        bus.close()

    def test_late_subscriber_gets_no_replay(self):
        bus = TelemetryBus()
        bus.publish("run.start")
        bus.publish("heartbeat")
        seen = _collector(bus)
        bus.publish("run.finish")
        assert bus.drain()
        assert [e.type for e in seen] == ["run.finish"]
        bus.close()

    def test_failing_subscriber_is_detached_not_fatal(self):
        bus = TelemetryBus()

        def bomb(event):
            raise RuntimeError("subscriber bug")

        bus.subscribe(bomb)
        seen = _collector(bus)
        for _ in range(3):
            bus.publish("heartbeat")
        assert bus.drain()
        assert bus.dropped_subscribers == 1
        assert len(seen) == 3  # the healthy subscriber was unaffected
        bus.close()

    def test_close_is_idempotent_and_drains(self):
        bus = TelemetryBus()
        seen = _collector(bus)
        bus.publish("run.finish")
        bus.close()
        bus.close()
        assert [e.type for e in seen] == ["run.finish"]

    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetryBus(capacity=0)
        with pytest.raises(ValueError):
            TelemetryBus(heartbeat_interval=0.0)

    def test_injected_clock_stamps_events(self):
        bus = TelemetryBus(clock=lambda: 42.0)
        assert bus.publish("heartbeat").t == 42.0
        assert bus.publish("heartbeat", t=7.0).t == 7.0

    def test_event_round_trips_through_dict(self):
        task = Task(TaskKind.TSMQR, 1, 3, 1, 2)
        bus = TelemetryBus()
        bus.task_start(task, "gpu0", t=1.0)
        bus.task_finish(task, "gpu0", start=1.0, end=1.5)
        start, finish = bus.events()
        for e in (start, finish):
            assert LiveEvent.from_dict(e.to_dict()) == e
        assert finish.data["duration"] == pytest.approx(0.5)
        assert finish.data["kind"] == "TSMQR"


# ---------------------------------------------------------------------------
# JsonlStreamSink


class TestSink:
    def _stream(self, tmp_path, publish):
        bus = TelemetryBus()
        sink = JsonlStreamSink(tmp_path / "live.jsonl", flush_seconds=0.0).attach(bus)
        publish(bus)
        bus.drain()
        sink.close()
        bus.close()
        return tmp_path / "live.jsonl"

    def test_round_trip(self, tmp_path):
        task = Task(TaskKind.GEQRT, 0, 0, 0, 0)

        def publish(bus):
            bus.publish("run.start", "manager", {"total_units": 1})
            _finish_event(bus, task)
            bus.publish("run.finish", "manager")

        path = self._stream(tmp_path, publish)
        meta, events = read_live_events(path)
        assert meta["schema"] == LIVE_SCHEMA_VERSION
        assert [e.type for e in events] == ["run.start", "task.finish", "run.finish"]
        assert events[1].data["kind"] == "GEQRT"

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = self._stream(
            tmp_path, lambda bus: bus.publish("run.start", "manager", {})
        )
        with open(path, "a") as fh:
            fh.write('{"type": "task.fin')  # killed mid-write
        _meta, events = read_live_events(path)
        assert [e.type for e in events] == ["run.start"]

    def test_malformed_interior_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "live.meta", "schema": LIVE_SCHEMA_VERSION})
            + "\nnot json\n"
            + json.dumps({"type": "heartbeat", "seq": 1})
            + "\n"
            + json.dumps({"type": "heartbeat", "seq": 2})
            + "\n"
        )
        with pytest.raises(ObservabilityError, match="malformed"):
            read_live_events(path)

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"type": "live.meta", "schema": 999}) + "\n")
        with pytest.raises(ObservabilityError, match="schema"):
            read_live_events(path)

    def test_concurrent_reader_sees_monotonic_prefixes(self, tmp_path):
        """A reader polling the stream while the sink is mid-write (the
        `tiledqr watch --attach` scenario) only ever observes clean,
        growing prefixes — never a parse error, never a shrink."""
        import threading

        path = tmp_path / "live.jsonl"
        bus = TelemetryBus()
        sink = JsonlStreamSink(path, flush_seconds=0.0).attach(bus)
        stop = threading.Event()
        seen_counts: list[int] = []
        reader_errors: list[BaseException] = []

        def reader():
            while not stop.is_set():
                try:
                    _meta, events = read_live_events(path)
                except BaseException as exc:  # any raise fails the test
                    reader_errors.append(exc)
                    return
                seen_counts.append(len(events))

        t = threading.Thread(target=reader)
        t.start()
        for i in range(300):
            bus.publish("heartbeat", f"dev{i % 3}", {"tick": i})
        bus.drain()
        sink.flush()
        stop.set()
        t.join()
        sink.close()
        bus.close()
        assert not reader_errors
        assert seen_counts == sorted(seen_counts)  # prefixes only grow
        _meta, events = read_live_events(path)
        assert len(events) == 300  # final read sees everything

    def test_torn_write_interleaved_with_reader(self, tmp_path):
        """A raw writer that leaves the final line torn between reads:
        each poll parses every complete line and skips the torn tail;
        completing the line later surfaces the event."""
        path = tmp_path / "live.jsonl"
        with open(path, "w") as fh:
            fh.write(
                json.dumps({"type": "live.meta", "schema": LIVE_SCHEMA_VERSION}) + "\n"
            )
            fh.flush()
            line = json.dumps(
                {"type": "heartbeat", "seq": 1, "t": 0.0, "device": "d", "data": {}}
            )
            fh.write(line + "\n")
            half = json.dumps(
                {"type": "heartbeat", "seq": 2, "t": 1.0, "device": "d", "data": {}}
            )
            fh.write(half[: len(half) // 2])
            fh.flush()
            _meta, events = read_live_events(path)  # reader races the torn tail
            assert [e.seq for e in events] == [1]
            fh.write(half[len(half) // 2 :] + "\n")
            fh.flush()
            _meta, events = read_live_events(path)
            assert [e.seq for e in events] == [1, 2]


# ---------------------------------------------------------------------------
# ProgressTracker


class TestProgress:
    def test_unit_counting_is_batching_independent(self):
        per_tile = ProgressTracker()
        batched = ProgressTracker()
        bus = TelemetryBus()
        for col in (1, 2, 3):
            per_tile.feed(_finish_event(bus, Task(TaskKind.UNMQR, 0, 0, 0, col)))
        batched.feed(
            _finish_event(bus, Task(TaskKind.UNMQR_BATCH, 0, 0, 0, 1, col_end=4))
        )
        assert per_tile.done_units == batched.done_units == 3
        assert per_tile._covered == batched._covered

    def test_dag_eta_converges_to_zero(self):
        dag = build_dag(3, 3, "TS")
        tracker = ProgressTracker(dag)
        bus = TelemetryBus(clock=lambda: 0.0)
        tracker.feed(bus.publish("run.start", "manager", {"devices": ["d0"]}))
        tasks = list(dag.tasks)
        half = len(tasks) // 2
        for task in tasks[:half]:
            tracker.feed(_finish_event(bus, task))
        mid = tracker.snapshot(now=1.0)
        assert 0.0 < mid.progress < 1.0
        assert mid.eta_seconds is not None and mid.eta_seconds > 0.0
        assert mid.calibration is not None and mid.calibration > 0.0
        for task in tasks[half:]:
            tracker.feed(_finish_event(bus, task))
        tracker.feed(bus.publish("run.finish", "manager"))
        done = tracker.snapshot(now=2.0)
        assert done.progress == 1.0
        assert done.eta_seconds == 0.0
        assert done.ready_tasks == 0
        assert done.finished

    def test_total_units_from_run_start_payload(self):
        tracker = ProgressTracker()
        bus = TelemetryBus(clock=lambda: 0.0)
        tracker.feed(bus.publish("run.start", "manager", {"total_units": 10}))
        for col in range(4):
            tracker.feed(_finish_event(bus, Task(TaskKind.UNMQR, 0, 0, 0, col)))
        snap = tracker.snapshot(now=2.0)
        assert snap.total_units == 10
        assert snap.progress == pytest.approx(0.4)
        # Rate fallback: 4 units in 2s -> 6 more units in ~3s.
        assert snap.eta_seconds == pytest.approx(3.0)

    def test_incident_events_tally_and_annotate(self):
        tracker = ProgressTracker()
        bus = TelemetryBus()
        tracker.feed(bus.publish("retry", "gpu1", {"task": "GEQRT[0,0]k0"}))
        tracker.feed(bus.publish("failover", "gpu1", {"died": True, "detail": "gpu1 died"}))
        tracker.feed(bus.publish("heartbeat.missed", "gpu2", {"silent_seconds": 1.5}))
        tracker.feed(bus.publish("straggler", "gpu2", {"task": "x", "ratio": 4.0}))
        tracker.feed(bus.publish("checkpoint", "manager", {"panel": 1}))
        snap = tracker.snapshot()
        assert snap.retries == 1
        assert snap.failovers == 1
        assert snap.missed_heartbeats == 1
        assert snap.stragglers == 1
        assert snap.checkpoints == 1
        assert any("gpu1 died" in note for note in snap.recent)
        dead = next(d for d in snap.devices if d["device"] == "gpu1")
        assert dead["dead"]
        frame = render_dashboard(snap)
        assert "tiledqr live" in frame
        assert "gpu1" in frame and "DEAD" in frame
        assert "stragglers 1" in frame


# ---------------------------------------------------------------------------
# StragglerDetector


class TestStraggler:
    def test_profile_prediction_flags_straggler(self):
        bus = TelemetryBus()
        metrics = MetricsRegistry()
        detector = StragglerDetector(
            predicted={"GEQRT": 0.01}, factor=2.0, metrics=metrics
        ).attach(bus)
        detector.bus = bus
        _finish_event(bus, Task(TaskKind.GEQRT, 0, 0, 0, 0), "gpu0", duration=0.05)
        bus.drain()
        assert len(detector.records) == 1
        rec = detector.records[0]
        assert rec.source == "profile"
        assert rec.ratio == pytest.approx(5.0)
        assert any(e.type == "straggler" for e in bus.events())
        counters = metrics.snapshot()["counters"]
        assert counters["live.straggler.events"] == 1
        bus.close()

    def test_noise_floor_suppresses_fast_kernels(self):
        bus = TelemetryBus()
        detector = StragglerDetector(predicted={"GEQRT": 1e-6}, factor=2.0).attach(bus)
        _finish_event(bus, Task(TaskKind.GEQRT, 0, 0, 0, 0), duration=5e-6)
        bus.drain()
        assert detector.records == []  # x5 but under the absolute floor
        bus.close()

    def test_fleet_ewma_fallback_and_drift(self):
        bus = TelemetryBus()
        detector = StragglerDetector(factor=2.0).attach(bus)
        detector.bus = bus
        for i in range(4):
            _finish_event(
                bus, Task(TaskKind.TSQRT, 0, i + 1, 0, 0), "fast", duration=1e-3
            )
        _finish_event(bus, Task(TaskKind.TSQRT, 0, 9, 0, 0), "slow", duration=0.1)
        bus.drain()
        assert len(detector.records) == 1
        assert detector.records[0].source == "fleet-ewma"
        assert detector.records[0].device == "slow"
        assert detector.device_drift["slow"] > detector.device_drift["fast"]
        assert any(e.type == "drift" and e.device == "slow" for e in bus.events())
        bus.close()


# ---------------------------------------------------------------------------
# HeartbeatMonitor (deterministic ticks)


class TestHeartbeat:
    def test_hung_task_flags_missed_heartbeat(self):
        bus = TelemetryBus(heartbeat_interval=10.0)  # ticks driven manually
        monitor = HeartbeatMonitor(bus, interval=1.0)
        bus.subscribe(monitor.on_event)
        task = Task(TaskKind.GEQRT, 0, 0, 0, 0)
        bus.task_start(task, "gpu0", t=0.0)
        bus.drain()
        monitor.tick(now=1.0)  # age 1.0 < miss_factor * interval
        monitor.tick(now=2.5)  # age 2.5 >= 2.0 -> miss
        monitor.tick(now=2.9)  # throttled: < interval since last miss
        monitor.tick(now=4.0)  # second miss
        bus.drain()
        missed = [e for e in bus.events() if e.type == "heartbeat.missed"]
        assert len(missed) == 2
        assert missed[0].device == "gpu0"
        assert missed[0].data["silent_seconds"] >= 2.0
        assert monitor.misses == 2
        bus.task_finish(task, "gpu0", start=0.0, end=5.0, t=5.0)
        bus.drain()
        monitor.tick(now=8.0)  # task finished: no further misses
        bus.drain()
        assert monitor.misses == 2
        bus.close()


# ---------------------------------------------------------------------------
# Runtime integration


class TestRuntimes:
    def test_threaded_stream_is_complete_and_bit_identical(
        self, tmp_path, matrix, clean_r
    ):
        bus = TelemetryBus()
        tracker = ProgressTracker().attach(bus)
        sink = JsonlStreamSink(tmp_path / "run.jsonl").attach(bus)
        fact = ThreadedRuntime(4, bus=bus).factorize(matrix.copy(), B)
        sink.close()
        bus.close()
        assert np.array_equal(fact.r_dense(), clean_r)
        assert tracker.finished
        snap = tracker.snapshot()
        assert snap.progress == 1.0
        assert snap.total_units == tracker.done_units
        _meta, events = read_live_events(tmp_path / "run.jsonl")
        types = [e.type for e in events]
        assert types[0] == "run.start" and types[-1] == "run.finish"
        assert sum(1 for t in types if t == "task.finish") == tracker.done_units

    def test_threaded_hang_misses_heartbeat_before_retry(self, matrix, clean_r):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    FaultKind.HANG, task_kind="GEQRT", k=0, times=1, seconds=0.6
                ),
            )
        )
        bus = TelemetryBus(heartbeat_interval=0.1)
        seen = _collector(bus)
        fact = ThreadedRuntime(
            2,
            chaos=ChaosEngine(plan, bus=bus),
            retry_policy=RetryPolicy(
                max_attempts=2, backoff=0.0, jitter=0.0, deadline=0.2
            ),
            bus=bus,
        ).factorize(matrix.copy(), B)
        bus.close()
        assert np.array_equal(fact.r_dense(), clean_r)
        missed = [e for e in seen if e.type == "heartbeat.missed"]
        retries = [e for e in seen if e.type == "retry"]
        assert missed, "hang never tripped the heartbeat monitor"
        assert retries, "deadline never classified the hang as a timeout"
        # Liveness first, recovery second: the miss streams while the
        # task is still hung, before the retry replays it.
        assert missed[0].seq < retries[0].seq

    def test_multiprocess_hang_misses_heartbeat_before_failover(
        self, matrix, clean_r, optimizer
    ):
        dist = optimizer.plan(matrix_size=N, num_devices=3)
        victim = next(d for d in dist.participants if d != dist.main_device)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    FaultKind.HANG,
                    task_kind="TSMQR",
                    k=1,
                    device=victim,
                    times=1,
                    seconds=30.0,
                ),
            )
        )
        bus = TelemetryBus(heartbeat_interval=0.02)
        seen = _collector(bus)
        fact = MultiprocessRuntime(
            dist,
            retry_policy=RetryPolicy(
                max_attempts=2, backoff=0.0, jitter=0.0, deadline=0.05
            ),
            chaos_plan=plan,
            bus=bus,
        ).factorize(matrix.copy(), B)
        bus.close()
        assert np.array_equal(fact.r_dense(), clean_r)
        missed = [e for e in seen if e.type == "heartbeat.missed"]
        failovers = [e for e in seen if e.type == "failover"]
        assert missed and missed[0].device == victim
        assert failovers
        assert missed[0].seq < failovers[0].seq
        # The victim's pre-hang kernel events were flushed to the bus
        # before it was declared dead — its work is not lost telemetry.
        assert any(e.type == "task.finish" and e.device == victim for e in seen)


# ---------------------------------------------------------------------------
# CLI


class TestCli:
    def test_top_once_serial(self, capsys):
        assert main(["top", "64", "--once", "--runtime", "serial",
                     "--tile-size", "16"]) == 0
        out = capsys.readouterr().out
        assert "tiledqr live" in out
        assert "stragglers" in out

    def test_top_stream_and_watch(self, tmp_path, capsys):
        stream = tmp_path / "live.jsonl"
        assert main(["top", "64", "--once", "--tile-size", "16",
                     "--stream-out", str(stream)]) == 0
        assert main(["watch", "--attach", str(stream), "--once"]) == 0
        out = capsys.readouterr().out
        assert "units" in out

    def test_metrics_from_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["trace", "64", "--runtime", "threaded", "--tile-size", "16",
                     "--out", str(trace)]) == 0
        assert main(["metrics", "--from-trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "tiledqr_kernel_GEQRT_seconds" in out
        assert "_total" in out
