"""Tests for the QR-based linear algebra operations layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import workloads
from repro.errors import ShapeError
from repro.linalg import (
    condition_estimate,
    det,
    inv,
    lstsq,
    orth_basis,
    qr_solve,
    slogdet,
    solve_triangular,
)


class TestQrSolve:
    def test_matches_numpy(self, rng):
        a = rng.standard_normal((48, 48)) + 6 * np.eye(48)
        b = rng.standard_normal(48)
        np.testing.assert_allclose(qr_solve(a, b), np.linalg.solve(a, b), atol=1e-8)

    def test_multiple_rhs(self, rng):
        a = rng.standard_normal((32, 32)) + 5 * np.eye(32)
        b = rng.standard_normal((32, 3))
        x = qr_solve(a, b)
        np.testing.assert_allclose(a @ x, b, atol=1e-8)

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ShapeError):
            qr_solve(rng.standard_normal((10, 5)), np.zeros(10))

    def test_singular_raises(self):
        a = workloads.near_singular(20, rank=5, noise=0.0)
        with pytest.raises(np.linalg.LinAlgError):
            qr_solve(a, np.ones(20))


class TestLstsq:
    def test_matches_numpy(self, rng):
        a = rng.standard_normal((80, 12))
        b = rng.standard_normal(80)
        x, res = lstsq(a, b)
        x_ref, res_ref, *_ = np.linalg.lstsq(a, b, rcond=None)
        np.testing.assert_allclose(x, x_ref, atol=1e-8)
        np.testing.assert_allclose(res**2, res_ref if res_ref.size else 0.0, atol=1e-8)

    def test_square_system_zero_residual(self, rng):
        a = rng.standard_normal((24, 24)) + 5 * np.eye(24)
        b = rng.standard_normal(24)
        x, res = lstsq(a, b)
        assert res == pytest.approx(0.0, abs=1e-10)
        np.testing.assert_allclose(a @ x, b, atol=1e-8)

    def test_vandermonde_workload(self):
        v = workloads.vandermonde(120, 5)
        y = v @ np.arange(6, dtype=float)
        x, res = lstsq(v, y)
        np.testing.assert_allclose(x, np.arange(6), atol=1e-8)
        assert res < 1e-9

    def test_multiple_rhs_shapes(self, rng):
        a = rng.standard_normal((40, 8))
        b = rng.standard_normal((40, 2))
        x, res = lstsq(a, b)
        assert x.shape == (8, 2)
        assert res.shape == (2,)

    def test_rejects_wide(self, rng):
        with pytest.raises(ShapeError):
            lstsq(rng.standard_normal((5, 10)), np.zeros(5))

    def test_b_row_mismatch(self, rng):
        with pytest.raises(ShapeError):
            lstsq(rng.standard_normal((10, 4)), np.zeros(9))


class TestInvDet:
    def test_inv_matches_numpy(self, rng):
        a = rng.standard_normal((24, 24)) + 5 * np.eye(24)
        np.testing.assert_allclose(inv(a), np.linalg.inv(a), atol=1e-8)

    def test_inv_roundtrip(self, rng):
        a = rng.standard_normal((32, 32)) + 6 * np.eye(32)
        np.testing.assert_allclose(a @ inv(a), np.eye(32), atol=1e-8)

    def test_det_matches_numpy(self, rng):
        a = rng.standard_normal((16, 16))
        assert det(a) == pytest.approx(np.linalg.det(a), rel=1e-8)

    def test_slogdet_matches_numpy(self, rng):
        for seed in range(5):
            a = np.random.default_rng(seed).standard_normal((20, 20))
            s, l = slogdet(a)
            s_ref, l_ref = np.linalg.slogdet(a)
            assert s == pytest.approx(s_ref)
            assert l == pytest.approx(l_ref, rel=1e-9)

    def test_det_identity(self):
        assert det(np.eye(10)) == pytest.approx(1.0)

    def test_det_singular(self):
        a = workloads.near_singular(12, rank=6, noise=0.0)
        s, l = slogdet(a)
        assert s == 0.0 and l == float("-inf")
        assert det(a) == 0.0

    @given(st.integers(2, 16), st.integers(0, 30))
    @settings(max_examples=20, deadline=None)
    def test_property_det_sign(self, n, seed):
        a = np.random.default_rng(seed).standard_normal((n, n))
        s, _ = slogdet(a)
        s_ref, _ = np.linalg.slogdet(a)
        assert s == pytest.approx(s_ref)


class TestOrthAndCondition:
    def test_orth_basis_spans_range(self, rng):
        a = rng.standard_normal((48, 8))
        q = orth_basis(a)
        assert q.shape == (48, 8)
        np.testing.assert_allclose(q.T @ q, np.eye(8), atol=1e-9)
        # Projection of A onto the basis reproduces A.
        np.testing.assert_allclose(q @ (q.T @ a), a, atol=1e-8)

    def test_condition_estimate_orders_of_magnitude(self):
        from repro.experiments.stability import matrix_with_condition

        easy = matrix_with_condition(64, 16, 1e1, seed=1)
        hard = matrix_with_condition(64, 16, 1e8, seed=1)
        assert condition_estimate(hard) > 1e4 * condition_estimate(easy) / 1e2

    def test_condition_identity(self):
        assert condition_estimate(np.eye(20)) == pytest.approx(1.0)

    def test_condition_singular(self):
        assert condition_estimate(workloads.near_singular(12, 4, noise=0.0)) == float("inf")


class TestSolveTriangular:
    def test_upper(self, rng):
        r = np.triu(rng.standard_normal((10, 10))) + 5 * np.eye(10)
        b = rng.standard_normal(10)
        np.testing.assert_allclose(r @ solve_triangular(r, b), b, atol=1e-10)

    def test_lower(self, rng):
        l = np.tril(rng.standard_normal((10, 10))) + 5 * np.eye(10)
        b = rng.standard_normal((10, 2))
        np.testing.assert_allclose(l @ solve_triangular(l, b, lower=True), b, atol=1e-10)


class TestWorkloads:
    def test_shapes_and_reproducibility(self):
        a1 = workloads.random_gaussian(10, 6, seed=3)
        a2 = workloads.random_gaussian(10, 6, seed=3)
        np.testing.assert_array_equal(a1, a2)
        assert workloads.random_uniform(5).shape == (5, 5)

    def test_graded_scales_decay(self):
        a = workloads.graded(50, 10, decay=0.5, seed=0)
        norms = np.linalg.norm(a, axis=0)
        assert norms[0] > norms[-1] * 100

    def test_spd_is_positive_definite(self):
        g = workloads.spd(12, seed=1)
        assert np.all(np.linalg.eigvalsh(g) > 0)
        np.testing.assert_allclose(g, g.T)

    def test_orthogonal_is_orthogonal(self):
        q = workloads.orthogonal(16, seed=2)
        np.testing.assert_allclose(q.T @ q, np.eye(16), atol=1e-10)

    def test_near_singular_rank(self):
        a = workloads.near_singular(16, rank=4, noise=0.0)
        assert np.linalg.matrix_rank(a) == 4

    def test_validation(self):
        with pytest.raises(ShapeError):
            workloads.random_gaussian(0)
        with pytest.raises(ValueError):
            workloads.graded(5, decay=0.0)
        with pytest.raises(ValueError):
            workloads.near_singular(5, rank=9)
        with pytest.raises(ShapeError):
            workloads.vandermonde(3, 5)


class TestLQ:
    def test_wide_reconstruction(self, rng):
        from repro.linalg import lq

        a = rng.standard_normal((8, 24))
        l, q = lq(a)
        np.testing.assert_allclose(l @ q, a, atol=1e-10)
        assert np.allclose(np.triu(l, 1), 0.0)
        np.testing.assert_allclose(q @ q.T, np.eye(8), atol=1e-10)

    def test_square(self, rng):
        from repro.linalg import lq

        a = rng.standard_normal((16, 16))
        l, q = lq(a)
        np.testing.assert_allclose(l @ q, a, atol=1e-10)

    def test_rejects_tall(self, rng):
        from repro.linalg import lq

        with pytest.raises(ShapeError):
            lq(rng.standard_normal((20, 5)))

    def test_underdetermined_min_norm_solve(self, rng):
        """LQ gives the minimum-norm solution of a wide system."""
        from repro.linalg import lq, solve_triangular

        a = rng.standard_normal((6, 15))
        b = rng.standard_normal(6)
        l, q = lq(a)
        y = solve_triangular(l, b, lower=True)
        x = q.T @ y
        np.testing.assert_allclose(a @ x, b, atol=1e-9)
        x_ref = np.linalg.pinv(a) @ b  # the min-norm solution
        np.testing.assert_allclose(x, x_ref, atol=1e-8)
