"""Property-based tests for the observability layer (tracer + metrics).

Uses hypothesis when available; a parametrized fallback covers the same
properties on fixed cases so the file passes without it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dag.tasks import Task, TaskKind
from repro.errors import ObservabilityError
from repro.kernels import flops as flops_mod
from repro.observability import (
    KERNEL_FLOPS,
    Counter,
    Histogram,
    MetricsRegistry,
    Tracer,
    kernel_flops,
)
from repro.observability.tracer import NULL_SPAN

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")

#: flops.py reference, by kernel name — the formulas the metrics layer
#: must agree with exactly.
FLOPS_REFERENCE = {
    "GEQRT": flops_mod.flops_geqrt,
    "UNMQR": flops_mod.flops_unmqr,
    "TSQRT": flops_mod.flops_tsqrt,
    "TSMQR": flops_mod.flops_tsmqr,
    "TTQRT": flops_mod.flops_ttqrt,
    "TTMQR": flops_mod.flops_ttmqr,
}


def make_clock(times: list[float]):
    """Deterministic clock yielding the given timestamps in order."""
    it = iter(times)
    return lambda: next(it)


class TestSpanNesting:
    def test_simple_span_records_task(self):
        tracer = Tracer(clock=make_clock([1.0, 2.5]))
        with tracer.span("GEQRT", k=0, i=0, device="d"):
            pass
        recs = tracer.task_records()
        assert len(recs) == 1
        assert recs[0].task == Task(TaskKind.GEQRT, 0, 0, 0, 0)
        assert recs[0].device_id == "d"
        assert recs[0].duration == pytest.approx(1.5)

    def test_span_coordinate_defaults(self):
        tracer = Tracer()
        with tracer.span("TSQRT", k=1, i=3):
            pass  # row2/col default to k for eliminations
        with tracer.span("UNMQR", k=1, i=1, j=4):
            pass  # row2 follows row for single-tile kernels
        tasks = [r.task for r in tracer.task_records()]
        assert Task(TaskKind.TSQRT, 1, 3, 1, 1) in tasks
        assert Task(TaskKind.UNMQR, 1, 1, 1, 4) in tasks

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ObservabilityError):
            Tracer().span("DGEMM", k=0)

    def test_nested_spans_unwind_lifo(self):
        tracer = Tracer()
        with tracer.span("GEQRT", k=0, i=0):
            with tracer.span("UNMQR", k=0, i=0, j=1):
                assert tracer.open_spans == 2
            assert tracer.open_spans == 1
        assert tracer.open_spans == 0
        assert len(tracer.task_records()) == 2

    def test_mis_nested_exit_raises(self):
        tracer = Tracer()
        outer = tracer.span("GEQRT", k=0, i=0)
        inner = tracer.span("UNMQR", k=0, i=0, j=1)
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(ObservabilityError):
            outer.__exit__(None, None, None)  # inner is still open

    def test_failed_span_is_not_a_completed_kernel(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("GEQRT", k=0, i=0):
                raise RuntimeError("kernel blew up")
        assert tracer.open_spans == 0
        assert tracer.task_records() == []

    @pytest.mark.parametrize("depths", [[1], [3], [1, 2, 1], [4, 1, 4]])
    def test_balanced_nesting_is_well_formed(self, depths):
        tracer = Tracer()
        expected = 0
        for depth in depths:
            spans = [tracer.span("TSMQR", k=0, i=d + 1, j=1) for d in range(depth)]
            for s in spans:
                s.__enter__()
            for s in reversed(spans):
                s.__exit__(None, None, None)
            expected += depth
            assert tracer.open_spans == 0
        assert len(tracer.task_records()) == expected

    if HAVE_HYPOTHESIS:

        @given(depths=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=10))
        @settings(max_examples=30, deadline=None)
        def test_property_balanced_nesting(self, depths):
            tracer = Tracer()
            for depth in depths:
                spans = [tracer.span("TSMQR", k=0, i=d + 1, j=1) for d in range(depth)]
                for s in spans:
                    s.__enter__()
                for s in reversed(spans):
                    s.__exit__(None, None, None)
                assert tracer.open_spans == 0
            assert len(tracer.task_records()) == sum(depths)


class TestDisabledTracer:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        s1 = tracer.span("GEQRT", k=0, i=0)
        s2 = tracer.task_span(Task(TaskKind.GEQRT, 0, 0, 0, 0))
        assert s1 is NULL_SPAN and s2 is NULL_SPAN

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("GEQRT", k=0, i=0):
            pass
        tracer.record_task(Task(TaskKind.GEQRT, 0, 0, 0, 0), "d", 0.0, 1.0)
        tracer.record_transfer("a", "b", 8.0, 0.0, 1.0)
        assert len(tracer) == 0
        assert tracer.to_trace().tasks == []
        assert tracer.to_trace().transfers == []

    def test_disabled_tracer_in_runtime_adds_no_events(self, rng):
        from repro.runtime.serial import SerialRuntime

        tracer = Tracer(enabled=False)
        a = rng.standard_normal((48, 48))
        f = SerialRuntime(tracer=tracer).factorize(a, 16)
        assert len(tracer) == 0
        assert f.reconstruction_error(a) < 1e-12


class TestHistogramQuantiles:
    @pytest.mark.parametrize(
        "values",
        [[1.0], [1.0, 2.0, 3.0], [5.0, -1.0, 5.0, 0.0], list(np.linspace(0, 1, 37))],
    )
    def test_quantiles_monotone(self, values):
        h = Histogram("h")
        for v in values:
            h.observe(v)
        qs = np.linspace(0.0, 1.0, 21)
        out = [h.quantile(q) for q in qs]
        assert out == sorted(out)
        assert out[0] == h.min and out[-1] == h.max
        assert h.p50 <= h.p95 <= h.p99

    if HAVE_HYPOTHESIS:

        @given(
            values=st.lists(
                st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
                min_size=1,
                max_size=200,
            ),
            qs=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=20),
        )
        @settings(max_examples=60, deadline=None)
        def test_property_quantiles_monotone(self, values, qs):
            h = Histogram("h")
            for v in values:
                h.observe(v)
            qs = sorted(qs)
            out = [h.quantile(q) for q in qs]
            assert out == sorted(out)
            assert h.min <= out[0] and out[-1] <= h.max

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.count == 0 and h.quantile(0.5) == 0.0 and h.mean == 0.0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_summary_fields(self):
        h = Histogram("h")
        for v in (1.0, 3.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 2 and s["total"] == 4.0 and s["mean"] == 2.0
        assert s["min"] == 1.0 and s["max"] == 3.0 and s["p50"] == 2.0


class TestKernelFlopsAccounting:
    @pytest.mark.parametrize("name", sorted(FLOPS_REFERENCE))
    @pytest.mark.parametrize("b", [4, 16, 48])
    def test_kernel_flops_match_formulas(self, name, b):
        kind = TaskKind[name]
        assert kernel_flops(kind, b) == FLOPS_REFERENCE[name](b)
        assert kernel_flops(name, b) == FLOPS_REFERENCE[name](b)
        assert KERNEL_FLOPS[kind](b) == FLOPS_REFERENCE[name](b)

    if HAVE_HYPOTHESIS:

        @given(b=st.integers(min_value=1, max_value=512))
        @settings(max_examples=40, deadline=None)
        def test_property_registry_flops_counters(self, b):
            reg = MetricsRegistry()
            for name, ref in FLOPS_REFERENCE.items():
                reg.observe_kernel(TaskKind[name], b, seconds=0.5)
                assert reg.counter(f"kernel.{name}.flops").value == pytest.approx(ref(b))

    def test_observe_kernel_wires_all_instruments(self):
        reg = MetricsRegistry()
        reg.observe_kernel(TaskKind.GEQRT, 16, seconds=0.001)
        snap = reg.snapshot()
        assert snap["counters"]["kernel.GEQRT.calls"] == 1
        assert snap["counters"]["kernel.GEQRT.flops"] == pytest.approx(
            flops_mod.flops_geqrt(16)
        )
        assert snap["histograms"]["kernel.GEQRT.seconds"]["count"] == 1
        gflops = snap["histograms"]["kernel.GEQRT.gflops"]["p50"]
        assert gflops == pytest.approx(flops_mod.flops_geqrt(16) / 0.001 / 1e9)

    def test_traced_run_flop_totals_match_model(self, rng):
        """End to end: trace a real run, check total flops == closed form."""
        from repro.kernels.flops import flops_tiled_qr
        from repro.runtime.serial import SerialRuntime

        reg = MetricsRegistry()
        tracer = Tracer(metrics=reg)
        SerialRuntime(tracer=tracer).factorize(rng.standard_normal((80, 80)), 16)
        snap = reg.snapshot()
        total = sum(
            v for name, v in snap["counters"].items() if name.endswith(".flops")
        )
        assert total == pytest.approx(flops_tiled_qr(5, 5, 16))

    def test_counter_monotone(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_registry_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("y") is reg.histogram("y")
        reg.gauge("g").set(7)
        assert reg.gauge("g").value == 7.0


class TestTracerMerging:
    def test_thread_buffers_merge_sorted(self):
        import threading

        tracer = Tracer()

        def emit(worker: int):
            with tracer.span("TSMQR", k=0, i=worker + 1, j=1, device=f"w{worker}"):
                pass

        threads = [threading.Thread(target=emit, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        recs = tracer.task_records()
        assert len(recs) == 8
        assert [r.start for r in recs] == sorted(r.start for r in recs)
        assert {r.device_id for r in recs} == {f"w{i}" for i in range(8)}

    def test_to_trace_rebases_to_zero(self):
        tracer = Tracer(clock=make_clock([100.0, 101.0, 102.0, 104.0]))
        with tracer.span("GEQRT", k=0, i=0):
            pass
        with tracer.span("UNMQR", k=0, i=0, j=1):
            pass
        trace = tracer.to_trace()
        assert min(r.start for r in trace.tasks) == 0.0
        assert trace.makespan == pytest.approx(4.0)
        raw = tracer.to_trace(rebase=False)
        assert min(r.start for r in raw.tasks) == 100.0

    def test_clear_drops_events(self):
        tracer = Tracer()
        with tracer.span("GEQRT", k=0, i=0):
            pass
        tracer.record_transfer("a", "b", 1.0, 0.0, 1.0)
        assert len(tracer) == 2
        tracer.clear()
        assert len(tracer) == 0


class TestTraceDiffRendering:
    """`to_text` must render one-sided kernels as n/a and name them."""

    def _one_sided_diff(self):
        from repro.observability import diff_traces
        from repro.sim.trace import ExecutionTrace, TaskRecord

        real = ExecutionTrace(
            tasks=[
                TaskRecord(
                    task=Task(TaskKind.GEQRT, 0, 0, 0, 0),
                    device_id="d", start=0.0, end=0.5,
                )
            ],
            transfers=[],
        )
        sim = ExecutionTrace(
            tasks=[
                TaskRecord(
                    task=Task(TaskKind.GEQRT, 0, 0, 0, 0),
                    device_id="d", start=0.0, end=0.4,
                ),
                TaskRecord(
                    task=Task(TaskKind.TSQRT, 0, 1, 0, 0),
                    device_id="d", start=0.4, end=0.6,
                ),
            ],
            transfers=[],
        )
        return diff_traces(real, sim)

    def test_one_sided_kernel_renders_na(self):
        diff = self._one_sided_diff()
        text = diff.to_text()
        assert "inf" not in text
        assert "n/a" in text

    def test_missing_kernel_names_reported(self):
        diff = self._one_sided_diff()
        assert diff.only_in_sim == ["TSQRT"]
        assert diff.only_in_real == []
        assert "kernels only in sim trace" in diff.to_text()
        assert "TSQRT" in diff.to_text()

    def test_relative_error_still_inf_for_programmatic_use(self):
        from repro.observability import KernelDiff

        kd = KernelDiff(
            kernel="TSQRT", real_seconds=0.0, sim_seconds=0.1,
            real_calls=0, sim_calls=1,
        )
        assert kd.relative_error == float("inf")

    def test_two_sided_diff_keeps_percentages(self):
        from repro.observability import KernelDiff

        kd = KernelDiff(
            kernel="GEQRT", real_seconds=0.5, sim_seconds=0.4,
            real_calls=1, sim_calls=1,
        )
        assert kd.relative_error == pytest.approx(-0.2)


class TestGanttBatchHandling:
    def _batched_trace(self):
        from repro.sim.trace import ExecutionTrace, TaskRecord

        return ExecutionTrace(
            tasks=[
                TaskRecord(
                    task=Task(TaskKind.GEQRT, 0, 0, 0, 0),
                    device_id="d", start=0.0, end=0.2,
                ),
                TaskRecord(
                    task=Task(TaskKind.UNMQR_BATCH, 0, 0, 0, 1, col_end=4),
                    device_id="d", start=0.2, end=0.6,
                ),
                TaskRecord(
                    task=Task(TaskKind.TSMQR_BATCH, 0, 1, 0, 1, col_end=4),
                    device_id="d", start=0.6, end=1.0,
                ),
            ],
            transfers=[],
        )

    def test_ascii_gantt_batch_chars_and_legend(self):
        from repro.sim.gantt import ascii_gantt

        text = ascii_gantt(self._batched_trace(), width=40)
        assert "U" in text and "X" in text
        assert "U=UT batch" in text and "X=UE batch" in text

    def test_ascii_gantt_unbatched_legend_unchanged(self):
        from repro.sim.gantt import ascii_gantt
        from repro.sim.trace import ExecutionTrace, TaskRecord

        trace = ExecutionTrace(
            tasks=[
                TaskRecord(
                    task=Task(TaskKind.GEQRT, 0, 0, 0, 0),
                    device_id="d", start=0.0, end=0.2,
                )
            ],
            transfers=[],
        )
        assert "UT batch" not in ascii_gantt(trace, width=40)

    def test_chrome_trace_batch_args(self):
        import json

        from repro.sim.gantt import to_chrome_trace

        doc = json.loads(to_chrome_trace(self._batched_trace()))
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        batch = by_name["UT[0,1:4]k0"]
        assert batch["args"]["col_end"] == 4
        assert batch["args"]["tiles"] == 3
        plain = by_name["T[0,0]"]
        assert "col_end" not in plain["args"]
