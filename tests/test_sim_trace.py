"""Tests for trace records and simulation reports."""

import pytest

from repro.dag.tasks import Step, Task, TaskKind
from repro.errors import SimulationError
from repro.sim.trace import ExecutionTrace, SimulationReport, TaskRecord, TransferRecord


def rec(kind, k, row, row2, col, dev, start, end):
    return TaskRecord(task=Task(kind, k, row, row2, col), device_id=dev, start=start, end=end)


class TestRecords:
    def test_durations(self):
        r = rec(TaskKind.GEQRT, 0, 0, 0, 0, "d", 1.0, 3.5)
        assert r.duration == 2.5
        t = TransferRecord(src="a", dst="b", num_bytes=10, start=0.0, end=0.1)
        assert t.duration == pytest.approx(0.1)


class TestSimulationReport:
    def test_comm_fraction(self):
        rep = SimulationReport(makespan=1.0, compute_busy={"a": 3.0}, comm_time=1.0)
        assert rep.comm_fraction == pytest.approx(0.25)
        assert rep.total_compute == 3.0

    def test_comm_fraction_empty(self):
        rep = SimulationReport(makespan=0.0, compute_busy={}, comm_time=0.0)
        assert rep.comm_fraction == 0.0

    def test_utilization(self):
        rep = SimulationReport(makespan=2.0, compute_busy={"a": 2.0, "b": 1.0}, comm_time=0.0)
        util = rep.utilization({"a": 1, "b": 2})
        assert util["a"] == pytest.approx(1.0)
        assert util["b"] == pytest.approx(0.25)


class TestExecutionTrace:
    def test_makespan_includes_transfers(self):
        tr = ExecutionTrace(
            tasks=[rec(TaskKind.GEQRT, 0, 0, 0, 0, "d", 0.0, 1.0)],
            transfers=[TransferRecord("a", "b", 8, 0.5, 2.0)],
        )
        assert tr.makespan == 2.0

    def test_busy_and_comm_accounting(self):
        tr = ExecutionTrace(
            tasks=[
                rec(TaskKind.GEQRT, 0, 0, 0, 0, "d", 0.0, 1.0),
                rec(TaskKind.UNMQR, 0, 0, 0, 1, "d", 1.0, 1.5),
                rec(TaskKind.UNMQR, 0, 0, 0, 2, "e", 0.0, 2.0),
            ],
            transfers=[TransferRecord("d", "e", 8, 0.0, 0.25)],
        )
        assert tr.compute_busy() == {"d": 1.5, "e": 2.0}
        assert tr.comm_time() == 0.25
        by_step = tr.step_time()
        assert by_step[Step.T] == 1.0
        assert by_step[Step.UT] == 2.5

    def test_report_conversion(self):
        tr = ExecutionTrace(tasks=[rec(TaskKind.GEQRT, 0, 0, 0, 0, "d", 0.0, 1.0)])
        rep = tr.report(extra_key=1)
        assert rep.makespan == 1.0
        assert rep.num_tasks == 1
        assert rep.meta["fidelity"] == "task-level"

    def test_overlap_validation_passes_at_capacity(self):
        tr = ExecutionTrace(
            tasks=[
                rec(TaskKind.UNMQR, 0, 0, 0, 1, "d", 0.0, 1.0),
                rec(TaskKind.UNMQR, 0, 0, 0, 2, "d", 0.0, 1.0),
            ]
        )
        tr.validate_no_overlap({"d": 2})

    def test_overlap_validation_detects_overcommit(self):
        tr = ExecutionTrace(
            tasks=[
                rec(TaskKind.UNMQR, 0, 0, 0, 1, "d", 0.0, 1.0),
                rec(TaskKind.UNMQR, 0, 0, 0, 2, "d", 0.5, 1.5),
            ]
        )
        with pytest.raises(SimulationError):
            tr.validate_no_overlap({"d": 1})

    def test_panel_unit_checked_separately(self):
        # One panel task + one update task may overlap even with 1 slot.
        tr = ExecutionTrace(
            tasks=[
                rec(TaskKind.GEQRT, 0, 0, 0, 0, "d", 0.0, 1.0),
                rec(TaskKind.UNMQR, 0, 0, 0, 1, "d", 0.0, 1.0),
            ]
        )
        tr.validate_no_overlap({"d": 1}, panel_unit=True)
        with pytest.raises(SimulationError):
            tr.validate_no_overlap({"d": 1}, panel_unit=False)

    def test_two_panel_tasks_cannot_overlap(self):
        tr = ExecutionTrace(
            tasks=[
                rec(TaskKind.GEQRT, 0, 0, 0, 0, "d", 0.0, 1.0),
                rec(TaskKind.TSQRT, 0, 1, 0, 0, "d", 0.5, 1.5),
            ]
        )
        with pytest.raises(SimulationError):
            tr.validate_no_overlap({"d": 4}, panel_unit=True)

    def test_gantt_rows_sorted(self):
        tr = ExecutionTrace(
            tasks=[
                rec(TaskKind.UNMQR, 0, 0, 0, 2, "d", 1.0, 2.0),
                rec(TaskKind.GEQRT, 0, 0, 0, 0, "d", 0.0, 1.0),
            ]
        )
        rows = tr.gantt_rows()
        assert rows[0][2] <= rows[1][2]


class TestTraceSchemaRoundTrip:
    """The shared trace schema: export to JSONL, reload, equal aggregates.

    This is the contract that lets real-runtime traces and simulator
    traces flow through the same exporters and the ``trace`` CLI.
    """

    def trace(self):
        return ExecutionTrace(
            tasks=[
                rec(TaskKind.GEQRT, 0, 0, 0, 0, "d", 0.0, 1.0),
                rec(TaskKind.TSQRT, 0, 1, 0, 0, "d", 1.0, 2.5),
                rec(TaskKind.TSMQR, 0, 1, 0, 1, "e", 2.5, 3.25),
            ],
            transfers=[
                TransferRecord("d", "e", 2048.0, 0.5, 0.75, tag="bcast0"),
                TransferRecord("e", "d", 64.0, 3.25, 3.5),
            ],
        )

    def test_string_round_trip_preserves_aggregates(self):
        from repro.observability import dump_jsonl, load_jsonl

        original = self.trace()
        reloaded = load_jsonl(dump_jsonl(original, meta={"source": "test"}))
        assert reloaded.tasks == original.tasks
        assert reloaded.transfers == original.transfers
        r0, r1 = original.report(), reloaded.report()
        assert r1.makespan == r0.makespan
        assert r1.compute_busy == r0.compute_busy
        assert r1.comm_time == r0.comm_time
        assert r1.num_tasks == r0.num_tasks
        assert r1.num_transfers == r0.num_transfers
        assert reloaded.step_time() == original.step_time()

    def test_file_round_trip(self, tmp_path):
        from repro.observability import load_jsonl, write_jsonl

        original = self.trace()
        path = write_jsonl(original, tmp_path / "trace.jsonl")
        reloaded = load_jsonl(path)
        assert reloaded.tasks == original.tasks
        assert reloaded.transfers == original.transfers

    def test_simulator_trace_round_trips(self, system, topology, optimizer):
        """A real discrete-event simulator trace survives the round trip."""
        from repro.dag import build_dag
        from repro.observability import dump_jsonl, load_jsonl
        from repro.sim.engine import simulate_task_level

        plan = optimizer.plan(matrix_size=96)
        trace = simulate_task_level(build_dag(6, 6), plan, system, topology)
        reloaded = load_jsonl(dump_jsonl(trace))
        assert reloaded.tasks == trace.tasks
        assert reloaded.report().makespan == trace.report().makespan
        assert reloaded.report().compute_busy == trace.report().compute_busy

    def test_malformed_lines_rejected(self):
        from repro.errors import ObservabilityError
        from repro.observability import load_jsonl

        with pytest.raises(ObservabilityError):
            load_jsonl('{"type": "meta", "schema": 99}\n')
        with pytest.raises(ObservabilityError):
            load_jsonl('{"type": "mystery"}\n')
        with pytest.raises(ObservabilityError):
            load_jsonl("not json at all\n{}\n")
