"""Cross-runtime trace parity: serial, threaded, and multiprocess
executions of the same matrix must trace the same task multiset, and
tracing must not perturb numerics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.observability import MetricsRegistry, Tracer, diff_traces
from repro.runtime.multiprocess import MultiprocessRuntime
from repro.runtime.serial import SerialRuntime
from repro.runtime.threaded import ThreadedRuntime

N = 96
B = 16


def task_multiset(trace):
    """The ``(kernel, k, row, row2, col)`` multiset of a trace."""
    return sorted(
        (r.task.kind.value, r.task.k, r.task.row, r.task.row2, r.task.col)
        for r in trace.tasks
    )


@pytest.fixture(scope="module")
def matrix():
    return np.random.default_rng(777).standard_normal((N, N))


@pytest.fixture(scope="module")
def traced_runs(matrix, optimizer):
    """Factorize the same matrix under all three traced runtimes."""
    runs = {}
    for name, make in (
        ("serial", lambda tr: SerialRuntime(tracer=tr)),
        ("threaded", lambda tr: ThreadedRuntime(num_workers=4, tracer=tr)),
        (
            "multiprocess",
            lambda tr: MultiprocessRuntime(
                optimizer.plan(matrix_size=N, num_devices=3), tracer=tr
            ),
        ),
    ):
        tracer = Tracer(metrics=MetricsRegistry())
        fact = make(tracer).factorize(matrix.copy(), B)
        runs[name] = (fact, tracer.to_trace())
    return runs


class TestTraceParity:
    def test_all_runtimes_trace_identical_task_multisets(self, traced_runs):
        serial = task_multiset(traced_runs["serial"][1])
        assert serial  # non-empty
        assert task_multiset(traced_runs["threaded"][1]) == serial
        assert task_multiset(traced_runs["multiprocess"][1]) == serial

    def test_trace_covers_the_whole_dag(self, traced_runs):
        from repro.dag import build_dag

        dag = build_dag(N // B, N // B, "TS")
        expected = sorted(
            (t.kind.value, t.k, t.row, t.row2, t.col) for t in dag.tasks
        )
        assert task_multiset(traced_runs["serial"][1]) == expected

    @pytest.mark.parametrize("runtime", ["serial", "threaded", "multiprocess"])
    def test_traced_runs_still_reconstruct(self, traced_runs, matrix, runtime):
        fact, _trace = traced_runs[runtime]
        assert fact.reconstruction_error(matrix) < 1e-10

    @pytest.mark.parametrize("runtime", ["serial", "threaded", "multiprocess"])
    def test_every_record_has_positive_duration_and_device(self, traced_runs, runtime):
        trace = traced_runs[runtime][1]
        for rec in trace.tasks:
            assert rec.end >= rec.start >= 0.0
            assert rec.device_id

    def test_diff_between_real_runtimes_matches(self, traced_runs):
        d = diff_traces(traced_runs["serial"][1], traced_runs["threaded"][1])
        assert d.task_sets_match
        assert {kd.kernel for kd in d.kernels} == {"GEQRT", "UNMQR", "TSQRT", "TSMQR"}
        for kd in d.kernels:
            assert kd.real_calls == kd.sim_calls

    def test_multiprocess_trace_records_transfers(self, traced_runs):
        trace = traced_runs["multiprocess"][1]
        assert trace.transfers  # factor broadcasts at minimum
        for t in trace.transfers:
            assert t.num_bytes > 0 and t.end >= t.start

    def test_real_trace_diffs_against_simulated(self, matrix, system, topology):
        """The model-validation loop: same problem, sim vs traced real."""
        from repro.core.executor import TiledQR

        tracer = Tracer()
        qr = TiledQR(system, topology)
        run = qr.factorize(matrix.copy(), tile_size=B, tracer=tracer)
        real = run.report.meta["real_trace"]
        sim = run.report.meta["trace"]
        d = diff_traces(real, sim)
        assert d.task_sets_match
        assert d.real_makespan > 0.0 and d.sim_makespan > 0.0
        assert all(np.isfinite(kd.relative_error) for kd in d.kernels)


class TestThreadedExceptionPropagation:
    def test_poisoned_tile_raises_in_factorize(self, rng):
        """A kernel failure in a worker must surface to the caller, not
        silently kill the worker (the factorize call would then hang or
        return an incomplete factorization)."""
        from repro.errors import ReproError
        from repro.tiles import TiledMatrix

        a = rng.standard_normal((96, 96))
        tiled = TiledMatrix.from_dense(a, 16)
        tiled._tiles[3][3] = np.ones((16, 7))  # poison: non-square tile
        with pytest.raises(ReproError):
            ThreadedRuntime(num_workers=4).factorize(tiled)

    def test_poison_error_is_annotated_with_task(self, rng):
        a = rng.standard_normal((64, 64))
        from repro.tiles import TiledMatrix

        tiled = TiledMatrix.from_dense(a, 16)
        tiled._tiles[2][2] = np.ones((16, 5))
        with pytest.raises(Exception) as excinfo:
            ThreadedRuntime(num_workers=2).factorize(tiled)
        notes = getattr(excinfo.value, "__notes__", [])
        if hasattr(excinfo.value, "add_note"):  # 3.11+
            assert any("worker-" in n for n in notes)

    def test_traced_failed_run_keeps_completed_spans_only(self, rng):
        from repro.tiles import TiledMatrix

        a = rng.standard_normal((96, 96))
        tiled = TiledMatrix.from_dense(a, 16)
        tiled._tiles[5][5] = np.ones((16, 3))
        tracer = Tracer()
        with pytest.raises(Exception):
            ThreadedRuntime(num_workers=4, tracer=tracer).factorize(tiled)
        trace = tracer.to_trace()
        full = len(task_multiset(trace))
        assert 0 < full < 91  # some kernels ran, the failed one is absent
