"""Legacy setup shim.

The execution environment for this reproduction has no network access and
no ``wheel`` package, so PEP 660 editable installs (``pip install -e .``)
cannot build. ``python setup.py develop`` installs an egg-link instead,
which needs nothing beyond setuptools. Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
