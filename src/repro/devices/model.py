"""Device specification and per-kernel timing models.

A device is characterized by (paper Sec. III-B):

* per-step, per-tile kernel times — an overhead-plus-flops model
  reproducing the Fig. 4 curve shapes (GPU curves are launch-overhead
  dominated at small tiles, cubic at large ones);
* a *slot* count: how many tile kernels the device executes concurrently
  (the paper's "parallelism"; CPU cores, or GPU multiprocessor groups).

The low-parallelism steps T and E execute as a sequential chain on one
slot; the update steps UT/UE fill all slots — which is exactly the
heterogeneity the paper's Sec. III-A motivates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..dag.tasks import Step
from ..errors import DeviceError
from ..kernels.flops import flops_geqrt, flops_tsqrt, flops_unmqr, flops_tsmqr


class DeviceKind(enum.Enum):
    CPU = "cpu"
    GPU = "gpu"
    ACCELERATOR = "accelerator"  # Xeon-Phi-style devices (paper Sec. VIII)


#: flops of one tile kernel per step, used by the timing model.
_STEP_FLOPS = {
    Step.T: flops_geqrt,
    Step.E: flops_tsqrt,
    Step.UT: flops_unmqr,
    Step.UE: flops_tsmqr,
}


@dataclass(frozen=True)
class KernelTimingModel:
    """``t(step, b) = overhead[step] + flops(step, b) / rate[step]``.

    Parameters
    ----------
    overheads_s:
        Per-step fixed cost per kernel invocation (launch latency,
        synchronization) in seconds.
    rates_flops:
        Per-step sustained execution rate of one slot, in flop/s.
    """

    overheads_s: dict[Step, float]
    rates_flops: dict[Step, float]

    def __post_init__(self):
        for step in Step:
            if step not in self.overheads_s or step not in self.rates_flops:
                raise DeviceError(f"timing model missing step {step}")
            if self.overheads_s[step] < 0:
                raise DeviceError(f"negative overhead for {step}")
            if self.rates_flops[step] <= 0:
                raise DeviceError(f"non-positive rate for {step}")

    def time(self, step: Step, tile_size: int) -> float:
        """Seconds for one tile kernel of ``step`` at tile edge ``b``."""
        if tile_size < 1:
            raise DeviceError(f"tile size must be >= 1, got {tile_size}")
        return self.overheads_s[step] + _STEP_FLOPS[step](tile_size) / self.rates_flops[step]


@dataclass(frozen=True)
class DeviceSpec:
    """One computing device of the heterogeneous system.

    Attributes
    ----------
    device_id:
        Stable identifier used in plans and traces (e.g. ``"gtx580-0"``).
    name:
        Human-readable model name.
    kind:
        CPU / GPU / accelerator.
    cores:
        Physical parallel cores (the x-axis of the paper's Fig. 8).
    slots:
        Concurrent tile-kernel capacity for update steps.
    timing:
        The per-kernel timing model.
    memory_bytes:
        Device-local memory capacity, or ``None`` for unconstrained —
        used by the out-of-core extension (paper Sec. VIII notes "a lack
        of memory problem can occur for very large matrix sizes").
    """

    device_id: str
    name: str
    kind: DeviceKind
    cores: int
    slots: int
    timing: KernelTimingModel = field(repr=False)
    memory_bytes: int | None = None

    def __post_init__(self):
        if self.cores < 1:
            raise DeviceError(f"device {self.device_id}: cores must be >= 1")
        if self.slots < 1:
            raise DeviceError(f"device {self.device_id}: slots must be >= 1")

    # -- per-tile times ---------------------------------------------------

    def time(self, step: Step, tile_size: int) -> float:
        """Per-tile kernel time ``time_i(op)`` (paper Eq. 10)."""
        return self.timing.time(step, tile_size)

    def effective_update_time(self, tile_size: int) -> float:
        """Amortized seconds per updated tile with all slots busy.

        The paper's Eq. 10 charges each distributed tile
        ``time_i(UT) + time_i(UE)``; dividing by the slot count converts
        the per-kernel time into the device's achieved per-tile time.
        """
        return (self.time(Step.UT, tile_size) + self.time(Step.UE, tile_size)) / self.slots

    def update_throughput(self, tile_size: int) -> float:
        """Tiles updated per second — Alg. 4's "number of tile update on
        unit time" that seeds the distribution guide array."""
        return 1.0 / self.effective_update_time(tile_size)

    def panel_chain_time(self, num_rows: int, tile_size: int) -> float:
        """Sequential T + (M-1) eliminations of one panel on this device.

        The flat-tree elimination chain cannot parallelize (each TSQRT
        rewrites the diagonal tile), so it runs on one slot.
        """
        if num_rows < 1:
            raise DeviceError(f"panel needs at least one row, got {num_rows}")
        return self.time(Step.T, tile_size) + (num_rows - 1) * self.time(Step.E, tile_size)

    def rename(self, device_id: str) -> "DeviceSpec":
        """Copy of this spec under a new id (for multi-GPU systems)."""
        return DeviceSpec(
            device_id=device_id,
            name=self.name,
            kind=self.kind,
            cores=self.cores,
            slots=self.slots,
            timing=self.timing,
            memory_bytes=self.memory_bytes,
        )
