"""Calibrated models of the paper's testbed devices (Table II).

Calibration strategy
--------------------
The paper gives two sets of numbers: per-kernel profiles (Fig. 4) and
end-to-end results (Figs. 5-10, Table III).  These are not mutually
consistent — e.g. Fig. 4's elimination time on the GTX580 (~150 us at
b=16) times the per-panel elimination chain length already exceeds the
0.28 s the paper reports for a full 3200x3200 factorization.  We
therefore calibrate to the *end-to-end structure*, which is what the
paper's contributions are evaluated on:

* crossover 1 GPU -> 2 GPUs near matrix size ~560 and 2 -> 3 near ~2650
  (Table III) — these pin the ratio of the main device's elimination
  chain time to the aggregate update throughputs;
* GTX580 preferred as main device, GTX680 preferred for updates (Fig. 9)
  — per-kernel times 580 < 680, update throughput 680 > 580;
* CPU hopeless as main (Fig. 9's 430 s curve) but a useful update helper;
* CPU-only 3200x3200 around ~20 s (Fig. 8).

Fig. 4's *shape* (per-tile time orderings T > E > UT/UE on every device,
GPU curves overhead-flat at small tiles, CPU steeper) is preserved; its
absolute microseconds are not, and `fig4_reference_points` records the
paper's (digitized, approximate) values so the Fig. 4 bench can report
both side by side.
"""

from __future__ import annotations

from ..dag.tasks import Step
from .model import DeviceKind, DeviceSpec, KernelTimingModel

_US = 1e-6
_GF = 1e9


def _timing(
    t_overhead_us: float,
    e_overhead_us: float,
    u_overhead_us: float,
    rate_t_gf: float,
    rate_e_gf: float,
    rate_ut_gf: float,
    rate_ue_gf: float,
) -> KernelTimingModel:
    return KernelTimingModel(
        overheads_s={
            Step.T: t_overhead_us * _US,
            Step.E: e_overhead_us * _US,
            Step.UT: u_overhead_us * _US,
            Step.UE: u_overhead_us * _US,
        },
        rates_flops={
            Step.T: rate_t_gf * _GF,
            Step.E: rate_e_gf * _GF,
            Step.UT: rate_ut_gf * _GF,
            Step.UE: rate_ue_gf * _GF,
        },
    )


def paper_gtx580(device_id: str = "gtx580-0") -> DeviceSpec:
    """NVIDIA GTX 580 (512 cores, 16 SMs) — the selected main device.

    Anchors at b=16: T ~ 150 us, E ~ 85 us, UT ~ 11 us, UE ~ 13 us;
    16 update slots -> ~0.67 M tiles/s update throughput.
    """
    return DeviceSpec(
        device_id=device_id,
        name="GeForce GTX 580",
        kind=DeviceKind.GPU,
        cores=512,
        slots=16,
        memory_bytes=1536 * 1024**2,  # 1.5 GB GDDR5 (GTX 580)
        timing=_timing(
            t_overhead_us=30.0,
            e_overhead_us=30.0,
            u_overhead_us=3.0,
            rate_t_gf=0.0569,
            rate_e_gf=0.1738,
            rate_ut_gf=2.048,
            rate_ue_gf=2.458,
        ),
    )


def paper_gtx680(device_id: str = "gtx680-0") -> DeviceSpec:
    """NVIDIA GTX 680 (1536 cores, 8 SMX exposing wide parallelism).

    Per-tile *slower* than the GTX580 (lower per-SM clocks for these
    small latency-bound kernels) but with twice the update slots, so its
    update *throughput* is higher — exactly the paper's observation that
    the GTX680 is better spent on updates than as the main device.

    Anchors at b=16: T ~ 210 us, E ~ 100 us, UT ~ 16 us, UE ~ 20 us;
    32 slots -> ~0.89 M tiles/s update throughput.
    """
    return DeviceSpec(
        device_id=device_id,
        name="GeForce GTX 680",
        kind=DeviceKind.GPU,
        cores=1536,
        slots=32,
        memory_bytes=2048 * 1024**2,  # 2 GB GDDR5 (GTX 680)
        timing=_timing(
            t_overhead_us=40.0,
            e_overhead_us=40.0,
            u_overhead_us=4.0,
            rate_t_gf=0.0402,
            rate_e_gf=0.1593,
            rate_ut_gf=1.365,
            rate_ue_gf=1.536,
        ),
    )


def paper_cpu_i7_3820(device_id: str = "cpu-0") -> DeviceSpec:
    """Intel i7-3820 (quad core, 3.6 GHz) running PLASMA tile kernels.

    Anchors at b=16: T ~ 1000 us, E ~ 850 us, UT ~ 25 us, UE ~ 35 us;
    4 slots -> ~0.067 M tiles/s update throughput.  The panel steps are
    far slower than either GPU, which is why Alg. 2 never selects the
    CPU as the main device (paper Fig. 9's 430 s curve).
    """
    return DeviceSpec(
        device_id=device_id,
        name="Intel Core i7-3820",
        kind=DeviceKind.CPU,
        cores=4,
        slots=4,
        memory_bytes=32 * 1024**3,  # Table II: 32 GB main memory
        timing=_timing(
            t_overhead_us=1.0,
            e_overhead_us=1.0,
            u_overhead_us=1.0,
            rate_t_gf=0.00683,
            rate_e_gf=0.01126,
            rate_ut_gf=0.6827,
            rate_ue_gf=0.7228,
        ),
    )


def xeon_phi_like(device_id: str = "phi-0") -> DeviceSpec:
    """A Xeon-Phi-style coprocessor (paper Sec. I names it as the third
    device class).  61 in-order cores: mid per-tile speed, very wide
    update parallelism, weak single-thread panel work — an extension
    device for the Sec. VIII 'other computing devices' direction.
    """
    return DeviceSpec(
        device_id=device_id,
        name="Xeon-Phi-class coprocessor",
        kind=DeviceKind.ACCELERATOR,
        cores=61,
        slots=61,
        memory_bytes=8 * 1024**3,
        timing=_timing(
            t_overhead_us=15.0,
            e_overhead_us=15.0,
            u_overhead_us=2.0,
            rate_t_gf=0.012,
            rate_e_gf=0.022,
            rate_ut_gf=0.9,
            rate_ue_gf=1.0,
        ),
    )


def tesla_k20_like(device_id: str = "k20-0") -> DeviceSpec:
    """A compute-class 2013 GPU (Tesla K20-ish): GTX680-generation
    silicon with ECC GDDR5, slightly lower clocks, more memory — for
    what-if planning on server parts the paper's lab didn't have.
    """
    return DeviceSpec(
        device_id=device_id,
        name="Tesla-K20-class GPU",
        kind=DeviceKind.GPU,
        cores=2496,
        slots=40,
        memory_bytes=5 * 1024**3,
        timing=_timing(
            t_overhead_us=38.0,
            e_overhead_us=38.0,
            u_overhead_us=4.0,
            rate_t_gf=0.045,
            rate_e_gf=0.17,
            rate_ut_gf=1.5,
            rate_ue_gf=1.7,
        ),
    )


def fig4_reference_points() -> dict[str, dict[str, list[float]]]:
    """Approximate digitization of the paper's Fig. 4 (microseconds).

    Keys: device -> {"tile_sizes": [...], "T": [...], "E": [...],
    "U": [...]} with "U" the overlapping UT/UE curve.  Values are read
    off the printed charts and are accurate to perhaps +-15%; they are
    reference data for the Fig. 4 bench's paper-vs-model comparison, not
    inputs to any model.
    """
    sizes = [4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0]
    return {
        "gtx580": {
            "tile_sizes": sizes,
            "T": [90.0, 110.0, 150.0, 210.0, 280.0, 360.0, 450.0],
            "E": [75.0, 90.0, 120.0, 165.0, 220.0, 290.0, 370.0],
            "U": [50.0, 60.0, 75.0, 100.0, 140.0, 190.0, 255.0],
        },
        "gtx680": {
            "tile_sizes": sizes,
            "T": [130.0, 160.0, 220.0, 310.0, 420.0, 550.0, 690.0],
            "E": [110.0, 130.0, 175.0, 245.0, 330.0, 440.0, 560.0],
            "U": [70.0, 85.0, 110.0, 150.0, 210.0, 290.0, 390.0],
        },
        "cpu": {
            "tile_sizes": sizes,
            "T": [60.0, 180.0, 520.0, 1100.0, 1700.0, 2400.0, 3000.0],
            "E": [50.0, 150.0, 420.0, 900.0, 1400.0, 1950.0, 2500.0],
            "U": [15.0, 45.0, 130.0, 290.0, 480.0, 750.0, 1050.0],
        },
    }
