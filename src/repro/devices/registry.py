"""System specifications: named collections of devices.

A :class:`SystemSpec` is the "given system" the paper's optimizer takes
as input — an ordered set of devices plus lookup helpers.  The default
is the paper's Table II testbed (one i7-3820 + one GTX580 + two GTX680).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceError
from .calibration import paper_cpu_i7_3820, paper_gtx580, paper_gtx680
from .model import DeviceKind, DeviceSpec, KernelTimingModel
from ..dag.tasks import Step


@dataclass(frozen=True)
class SystemSpec:
    """An ordered, immutable collection of devices.

    Attributes
    ----------
    name:
        Label used in reports.
    devices:
        Tuple of :class:`DeviceSpec`; ids must be unique.
    """

    name: str
    devices: tuple[DeviceSpec, ...]

    def __post_init__(self):
        if not self.devices:
            raise DeviceError("a system needs at least one device")
        ids = [d.device_id for d in self.devices]
        if len(set(ids)) != len(ids):
            raise DeviceError(f"duplicate device ids in system {self.name!r}: {ids}")

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self):
        return iter(self.devices)

    def device(self, device_id: str) -> DeviceSpec:
        """Look up a device by id."""
        for d in self.devices:
            if d.device_id == device_id:
                return d
        raise DeviceError(f"no device {device_id!r} in system {self.name!r}")

    @property
    def device_ids(self) -> list[str]:
        return [d.device_id for d in self.devices]

    @property
    def total_cores(self) -> int:
        """Total parallel cores — the x-axis of the paper's Fig. 8."""
        return sum(d.cores for d in self.devices)

    def gpus(self) -> list[DeviceSpec]:
        return [d for d in self.devices if d.kind is DeviceKind.GPU]

    def cpus(self) -> list[DeviceSpec]:
        return [d for d in self.devices if d.kind is DeviceKind.CPU]

    def subset(self, device_ids: list[str], name: str | None = None) -> "SystemSpec":
        """A sub-system containing only the named devices, in order."""
        devs = tuple(self.device(i) for i in device_ids)
        return SystemSpec(name=name or f"{self.name}[{','.join(device_ids)}]", devices=devs)

    def describe(self, tile_size: int = 16) -> str:
        """Multi-line human-readable summary (used by the CLI)."""
        lines = [f"system {self.name!r}: {len(self)} devices, {self.total_cores} cores"]
        for d in self.devices:
            from ..dag.tasks import Step

            lines.append(
                f"  {d.device_id:12s} {d.name:28s} {d.cores:5d} cores "
                f"{d.slots:3d} slots  T={d.time(Step.T, tile_size)*1e6:6.0f}us "
                f"UE={d.time(Step.UE, tile_size)*1e6:5.1f}us "
                f"-> {d.update_throughput(tile_size)/1e6:5.2f} Mtiles/s"
            )
        return "\n".join(lines)


def paper_testbed() -> SystemSpec:
    """The paper's Table II single-node system.

    One quad-core i7-3820, one GTX580 (512 cores) and two GTX680
    (1536 cores each) — 3588 parallel cores in total, matching the
    rightmost point of Fig. 8.
    """
    return SystemSpec(
        name="icpp13-testbed",
        devices=(
            paper_cpu_i7_3820("cpu-0"),
            paper_gtx580("gtx580-0"),
            paper_gtx680("gtx680-0"),
            paper_gtx680("gtx680-1"),
        ),
    )


def make_system(name: str, devices: list[DeviceSpec]) -> SystemSpec:
    """Build a system from explicit device specs."""
    return SystemSpec(name=name, devices=tuple(devices))


def synthetic_system(
    name: str = "synthetic",
    num_gpus: int = 2,
    num_cpus: int = 1,
    gpu_slots: int = 16,
    cpu_slots: int = 4,
    gpu_speedup: float = 1.0,
) -> SystemSpec:
    """A parameterized homogeneous-GPU system for extension experiments.

    Parameters
    ----------
    num_gpus, num_cpus:
        Device counts.
    gpu_slots, cpu_slots:
        Update-slot counts per device.
    gpu_speedup:
        Scales every GPU kernel rate (1.0 reproduces GTX580-class GPUs).
    """
    if num_gpus < 0 or num_cpus < 0 or num_gpus + num_cpus == 0:
        raise DeviceError("system needs at least one device")
    devices: list[DeviceSpec] = []
    for i in range(num_cpus):
        base = paper_cpu_i7_3820(f"cpu-{i}")
        devices.append(
            DeviceSpec(
                device_id=base.device_id,
                name=base.name,
                kind=base.kind,
                cores=base.cores,
                slots=cpu_slots,
                timing=base.timing,
            )
        )
    for i in range(num_gpus):
        base = paper_gtx580(f"gpu-{i}")
        timing = KernelTimingModel(
            overheads_s=dict(base.timing.overheads_s),
            rates_flops={s: r * gpu_speedup for s, r in base.timing.rates_flops.items()},
        )
        devices.append(
            DeviceSpec(
                device_id=base.device_id,
                name=f"Synthetic GPU x{gpu_speedup:g}",
                kind=DeviceKind.GPU,
                cores=base.cores,
                slots=gpu_slots,
                timing=timing,
            )
        )
    return SystemSpec(name=name, devices=tuple(devices))
