"""Autotuning: build a device model by measuring real kernels.

The paper contrasts its "mathematical" optimization with Song et al.'s
auto-tuning [7], which profiles a small run to pick parameters.  Both
need the same inputs — per-step kernel times — and this module closes
the loop for the machine the library runs on: it times the real NumPy
tile kernels across tile sizes, fits the ``overhead + flops/rate`` model
of :class:`repro.devices.model.KernelTimingModel` by linear least
squares (solved with this library's own tiled QR), and returns a
:class:`~repro.devices.model.DeviceSpec` usable everywhere a calibrated
paper device is.
"""

from __future__ import annotations

import os
import time
from typing import Callable

import numpy as np

from ..dag.tasks import Step
from ..errors import DeviceError
from ..kernels import geqrt, tsmqr, tsqrt, unmqr
from ..kernels.flops import flops_geqrt, flops_tsmqr, flops_tsqrt, flops_unmqr
from .model import DeviceKind, DeviceSpec, KernelTimingModel

_STEP_FLOPS = {
    Step.T: flops_geqrt,
    Step.E: flops_tsqrt,
    Step.UT: flops_unmqr,
    Step.UE: flops_tsmqr,
}


def measure_host_kernels(
    tile_sizes: list[int],
    repeats: int = 9,
    seed: int = 0,
    timer: Callable[[], float] = time.perf_counter,
) -> dict[Step, dict[int, float]]:
    """Median wall-clock seconds of each real tile kernel per tile size.

    Parameters
    ----------
    tile_sizes:
        Tile edges to profile.
    repeats:
        Samples per point.  The *minimum* is taken: timing noise on a
        shared machine is strictly additive, so min is the standard
        robust estimator for kernel cost.
    timer:
        Clock function; injectable for deterministic tests.
    """
    if not tile_sizes or any(b < 2 for b in tile_sizes):
        raise DeviceError("need tile sizes >= 2 to profile")
    rng = np.random.default_rng(seed)
    out: dict[Step, dict[int, float]] = {s: {} for s in Step}
    for b in tile_sizes:
        a = rng.standard_normal((b, b))
        r1 = np.triu(rng.standard_normal((b, b)))
        a2 = rng.standard_normal((b, b))
        c = rng.standard_normal((b, b))
        fg = geqrt(a)
        fe = tsqrt(r1, a2)
        runs = {
            Step.T: lambda: geqrt(a),
            Step.E: lambda: tsqrt(r1, a2),
            Step.UT: lambda: unmqr(fg, c.copy()),
            Step.UE: lambda: tsmqr(fe, c.copy(), c.copy()),
        }
        for step, fn in runs.items():
            fn()  # warm caches and allocator before timing
            best = float("inf")
            for _ in range(repeats):
                t0 = timer()
                fn()
                best = min(best, timer() - t0)
            out[step][b] = best
    return out


def fit_timing_model(measurements: dict[Step, dict[int, float]]) -> KernelTimingModel:
    """Least-squares fit of ``t = overhead + flops / rate`` per step.

    The 2-parameter linear system is solved with this library's *own*
    tiled QR (``min || [1, flops] x - t ||``); negative intercepts are
    clipped to zero and the rate re-fit through the origin.
    """
    from ..runtime import tiled_qr
    from ..runtime.factorization import back_substitution

    overheads: dict[Step, float] = {}
    rates: dict[Step, float] = {}
    for step, points in measurements.items():
        if len(points) < 2:
            raise DeviceError(f"need >= 2 tile sizes to fit step {step}")
        bs = sorted(points)
        t = np.array([points[b] for b in bs])
        f = np.array([_STEP_FLOPS[step](b) for b in bs], dtype=np.float64)
        # Weight rows by 1/t: minimizes *relative* error so microsecond
        # and millisecond points count equally.
        design = np.column_stack([np.ones_like(f), f]) / t[:, None]
        target = np.ones_like(t)
        # Normalize columns so the tiny tile-QR stays well conditioned.
        scale = np.linalg.norm(design, axis=0)
        fac = tiled_qr(design / scale, tile_size=max(2, len(bs) // 2))
        qtb = fac.apply_qt(target)
        coeff = back_substitution(fac.r_dense()[:2, :2], qtb[:2, None])[:, 0] / scale
        c0, c1 = float(coeff[0]), float(coeff[1])
        if c1 <= 0.0:
            # Degenerate timing (all overhead): flat model, huge rate.
            c1 = 1.0 / 1e15
        if c0 < 0.0:
            c0 = 0.0
            w = f / t
            c1 = float(w.sum() / (w @ w))  # weighted re-fit through origin
        overheads[step] = c0
        rates[step] = 1.0 / c1
    return KernelTimingModel(overheads_s=overheads, rates_flops=rates)


def autotune_host_device(
    device_id: str = "host-cpu",
    tile_sizes: list[int] | None = None,
    repeats: int = 9,
    slots: int | None = None,
    timer: Callable[[], float] = time.perf_counter,
) -> DeviceSpec:
    """Profile this host's kernels and return a fitted DeviceSpec."""
    sizes = tile_sizes if tile_sizes is not None else [8, 16, 24, 32, 48, 64]
    meas = measure_host_kernels(sizes, repeats=repeats, timer=timer)
    timing = fit_timing_model(meas)
    cores = os.cpu_count() or 1
    return DeviceSpec(
        device_id=device_id,
        name="Autotuned host CPU",
        kind=DeviceKind.CPU,
        cores=cores,
        slots=slots if slots is not None else cores,
        timing=timing,
    )


def tuned_tile_size(
    system,
    matrix_size: int,
    candidates: list[int] | None = None,
) -> int:
    """Song-et-al-style tuning: pick the tile size minimizing simulated
    time for the given system and matrix size."""
    from ..core.optimizer import Optimizer
    from ..sim.iteration import simulate_iteration_level

    cands = candidates if candidates is not None else [8, 12, 16, 20, 24, 32]
    opt = Optimizer(system)
    best_b, best_t = None, float("inf")
    for b in cands:
        g = -(-matrix_size // b)
        plan = opt.plan(matrix_size=matrix_size, tile_size=b)
        t = simulate_iteration_level(plan, g, g, system, opt.topology).makespan
        if t < best_t:
            best_b, best_t = b, t
    return best_b
