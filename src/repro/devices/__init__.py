"""Device performance models: the simulated CPU/GPU substrate.

The paper's policies consume three things per device: per-step kernel
times ``time_i(op)`` (its Fig. 4 profiles), a parallelism level (how many
tiles a device updates concurrently), and link speeds.  This package
provides calibrated analytic models of the paper's testbed (Table II)
plus synthetic devices for extension experiments.
"""

from .model import DeviceKind, KernelTimingModel, DeviceSpec
from .calibration import (
    paper_gtx580,
    paper_gtx680,
    paper_cpu_i7_3820,
    xeon_phi_like,
    tesla_k20_like,
    fig4_reference_points,
)
from .registry import SystemSpec, paper_testbed, make_system, synthetic_system

__all__ = [
    "DeviceKind",
    "KernelTimingModel",
    "DeviceSpec",
    "paper_gtx580",
    "paper_gtx680",
    "paper_cpu_i7_3820",
    "xeon_phi_like",
    "tesla_k20_like",
    "fig4_reference_points",
    "SystemSpec",
    "paper_testbed",
    "make_system",
    "synthetic_system",
]
