"""Retry semantics for tile kernels: bounded attempts, backoff, deadlines.

The tiled-DAG formulation makes retry tractable at task granularity:
every task's inputs and outputs are explicit tiles, so a failed attempt
can restore the written tiles from a snapshot and replay the kernel —
a retry-masked fault leaves the factorization bit-identical to a clean
run.  :class:`RetryPolicy` is pure configuration (picklable, so the
multiprocess runtime ships it to workers); the execution loop lives in
:func:`repro.runtime.core_exec.apply_task_resilient` and in the
multiprocess worker body.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import (
    FaultInjectionError,
    KernelError,
    NumericalHealthError,
    ResilienceError,
    TaskTimeoutError,
)

#: Exception classes an attempt may be retried after.  Anything else
#: (ShapeError, programming errors, KeyboardInterrupt) propagates
#: immediately — retrying cannot fix a structurally wrong call.
RETRYABLE = (
    FaultInjectionError,
    NumericalHealthError,
    TaskTimeoutError,
    KernelError,
    FloatingPointError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How often, how patiently, and how long a task may be retried.

    Attributes
    ----------
    max_attempts:
        Total attempts per task (1 = no retry).
    backoff:
        Base sleep before attempt 2, in seconds; attempt ``n`` waits
        ``backoff * factor**(n-2)``, scaled by jitter.
    factor:
        Exponential growth of the backoff.
    jitter:
        Relative jitter width: the sleep is scaled by a deterministic
        uniform draw from ``[1-jitter, 1+jitter]`` (seeded per task and
        attempt, so runs are reproducible).
    deadline:
        Per-task wall-clock budget in seconds; an attempt that takes
        longer is classified as a hang and counted as a failure
        (:class:`~repro.errors.TaskTimeoutError`).  ``None`` disables.
        In the multiprocess runtime the manager additionally enforces
        this preemptively per message round-trip (a genuinely hung
        worker is killed and failed over).
    seed:
        Seed for the jitter stream.
    """

    max_attempts: int = 3
    backoff: float = 0.01
    factor: float = 2.0
    jitter: float = 0.5
    deadline: float | None = None
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ResilienceError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff < 0.0 or self.factor < 1.0:
            raise ResilienceError(
                f"backoff must be >= 0 and factor >= 1, got {self.backoff}/{self.factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ResilienceError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0.0:
            raise ResilienceError(f"deadline must be positive, got {self.deadline}")

    def is_retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, RETRYABLE)

    def to_dict(self) -> dict:
        """JSON view (failure bundles record the policy a dead run used)."""
        return {
            "max_attempts": self.max_attempts,
            "backoff": self.backoff,
            "factor": self.factor,
            "jitter": self.jitter,
            "deadline": self.deadline,
            "seed": self.seed,
        }

    def backoff_seconds(self, attempt: int, key: tuple = ()) -> float:
        """Deterministic jittered backoff before ``attempt`` (2-based).

        ``key`` disambiguates concurrent tasks: the draw is seeded from
        ``(seed, key, attempt)`` so identical runs sleep identically.
        """
        if attempt <= 1 or self.backoff == 0.0:
            return 0.0
        base = self.backoff * self.factor ** (attempt - 2)
        if self.jitter == 0.0:
            return base
        # str seed: deterministic across runs and workers (tuple seeds
        # are unsupported in 3.11+, and hash() of a tuple is not stable
        # enough to document as reproducible).
        rng = random.Random(repr((self.seed, key, attempt)))
        return base * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)


#: Policy used when resilience features are enabled without an explicit
#: policy (chaos or health checks requested, no RetryPolicy given).
DEFAULT_RETRY_POLICY = RetryPolicy()

#: Policy that disables retry entirely (single attempt, no deadline).
NO_RETRY = RetryPolicy(max_attempts=1, backoff=0.0, jitter=0.0)
