"""Fault-tolerant execution: chaos injection, retry, health, failover.

The tiled-DAG formulation (Buttari et al.; Bouwmeester et al.) makes
fault tolerance tractable at task granularity: every task's inputs and
outputs are explicit tiles, so failed work can be replayed (retry),
recomputed (failover reconstruction) or resumed (checkpoint frontier)
without touching unrelated state.  This package holds the pieces the
runtimes compose:

* :class:`FaultPlan` / :class:`ChaosEngine` — deterministic, seeded
  fault injection (kernel exceptions, delays, hangs, worker death,
  NaN/Inf corruption) for testing the machinery below;
* :class:`RetryPolicy` — bounded attempts with exponential backoff,
  deterministic jitter, and per-task deadlines that classify hangs as
  failures;
* NaN/Inf sentinels and the per-panel residual probe
  (:func:`check_task_outputs`, :func:`panel_residual_probe`), raising
  :class:`~repro.errors.NumericalHealthError` through the retry layer;
* :class:`ResilienceReport` — the ``tiledqr chaos`` summary.

Device failover lives in :mod:`repro.runtime.multiprocess` (it is
inseparable from the manager loop) and mid-run checkpointing in
:mod:`repro.runtime.checkpoint`; see ``docs/RELIABILITY.md`` for the
full fault model.
"""

from .faults import ChaosEngine, FaultKind, FaultPlan, FaultSpec
from .health import check_finite, check_task_outputs, panel_residual_probe
from .report import (
    COUNTERS,
    ResilienceReport,
    counters_from_snapshot,
    resilience_counters,
)
from .retry import DEFAULT_RETRY_POLICY, NO_RETRY, RETRYABLE, RetryPolicy

__all__ = [
    "ChaosEngine",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "NO_RETRY",
    "RETRYABLE",
    "check_finite",
    "check_task_outputs",
    "panel_residual_probe",
    "ResilienceReport",
    "resilience_counters",
    "counters_from_snapshot",
    "COUNTERS",
]
