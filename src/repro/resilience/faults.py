"""Deterministic fault injection for the numeric runtimes.

A :class:`FaultPlan` is a declarative, JSON-serializable list of
:class:`FaultSpec` entries — *which* task coordinates to sabotage, *how*
(kernel exception, artificial delay, hang, worker death, NaN/Inf tile
corruption) and *how many times*.  A :class:`ChaosEngine` executes the
plan at runtime: the retry/failover layers under test never see the
engine, only the failures it manufactures.

Determinism is the point: the same plan against the same DAG injects
the same faults at the same tasks on every run (fire counts are keyed
by spec, not wall clock), so chaos tests are reproducible and a
retry-masked run can be compared bit-for-bit with a fault-free one.
"""

from __future__ import annotations

import enum
import json
import os
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from ..dag.tasks import Task
from ..errors import FaultInjectionError, ResilienceError


class FaultKind(enum.Enum):
    """What the chaos engine does to a matching task.

    ==============  =====================================================
    EXCEPTION       raise :class:`FaultInjectionError` before the kernel
    DELAY           sleep ``seconds`` before the kernel (slow task)
    HANG            sleep ``seconds`` *inside* the kernel slot — long
                    enough to trip per-task deadlines / worker heartbeats
    CORRUPT_NAN     overwrite the kernel's output tiles with NaN
    CORRUPT_INF     overwrite the kernel's output tiles with +inf
    KILL_WORKER     hard-kill the executing worker process
                    (``os._exit``; multiprocess runtime only)
    ==============  =====================================================
    """

    EXCEPTION = "exception"
    DELAY = "delay"
    HANG = "hang"
    CORRUPT_NAN = "corrupt_nan"
    CORRUPT_INF = "corrupt_inf"
    KILL_WORKER = "kill_worker"


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: where it matches and what it does.

    Matching fields (``task_kind``, ``k``, ``row``, ``col``, ``device``)
    are wildcards when ``None``.  ``col`` matches batched tasks when it
    falls inside their ``[col, col_end)`` range.  ``times`` bounds how
    many matching invocations actually fire (after which the spec is
    inert), which is what lets a retry attempt of the same task succeed.
    """

    kind: FaultKind
    task_kind: str | None = None
    k: int | None = None
    row: int | None = None
    col: int | None = None
    device: str | None = None
    times: int = 1
    seconds: float = 0.0

    def __post_init__(self):
        if self.times < 1:
            raise ResilienceError(f"fault must fire at least once, got times={self.times}")
        if self.seconds < 0.0:
            raise ResilienceError(f"negative fault duration {self.seconds}")

    def matches(self, task: Task, device: str | None) -> bool:
        if self.task_kind is not None and task.kind.name != self.task_kind:
            return False
        if self.k is not None and task.k != self.k:
            return False
        if self.row is not None and task.row != self.row:
            return False
        if self.col is not None:
            if task.is_batch:
                if not (task.col <= self.col < task.col_end):
                    return False
            elif task.col != self.col:
                return False
        if self.device is not None and device is not None and device != self.device:
            return False
        return True

    def to_dict(self) -> dict:
        d = {"kind": self.kind.value, "times": self.times}
        for name in ("task_kind", "k", "row", "col", "device"):
            v = getattr(self, name)
            if v is not None:
                d[name] = v
        if self.seconds:
            d["seconds"] = self.seconds
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        try:
            kind = FaultKind(d["kind"])
        except (KeyError, ValueError) as exc:
            raise ResilienceError(
                f"fault spec needs a valid 'kind' "
                f"({[k.value for k in FaultKind]}), got {d!r}"
            ) from exc
        known = {"kind", "task_kind", "k", "row", "col", "device", "times", "seconds"}
        unknown = set(d) - known
        if unknown:
            raise ResilienceError(f"unknown fault spec fields {sorted(unknown)}")
        return cls(
            kind=kind,
            task_kind=d.get("task_kind"),
            k=d.get("k"),
            row=d.get("row"),
            col=d.get("col"),
            device=d.get("device"),
            times=int(d.get("times", 1)),
            seconds=float(d.get("seconds", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable set of fault rules.

    The seed feeds the retry layer's jitter and any randomized choices a
    chaos run makes, so an entire chaos experiment is one reproducible
    artifact (``tiledqr chaos --plan faults.json``).
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def with_spec(self, spec: FaultSpec) -> "FaultPlan":
        return replace(self, specs=(*self.specs, spec))

    def to_dict(self) -> dict:
        return {"seed": self.seed, "faults": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        if not isinstance(d, dict) or "faults" not in d:
            raise ResilienceError(
                "fault plan JSON must be an object with a 'faults' list"
            )
        faults = d["faults"]
        if not isinstance(faults, list):
            raise ResilienceError(f"'faults' must be a list, got {type(faults).__name__}")
        return cls(
            specs=tuple(FaultSpec.from_dict(s) for s in faults),
            seed=int(d.get("seed", 0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise ResilienceError(f"fault plan is not valid JSON: {exc}") from None

    def save(self, path) -> Path:
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(self.to_json())
        return p

    @classmethod
    def load(cls, path) -> "FaultPlan":
        p = Path(path)
        if not p.is_file():
            raise ResilienceError(f"no fault plan at {p}")
        return cls.from_json(p.read_text())


class ChaosEngine:
    """Executes a :class:`FaultPlan` against a running factorization.

    The runtimes call :meth:`before_task` ahead of each kernel and
    :meth:`corrupt_outputs` after it; both are no-ops unless a spec
    matches and still has fires left.  Fire counting is thread-safe (one
    engine may be shared by all worker threads) and deterministic: a
    spec fires on its first ``times`` matching invocations in execution
    order, independent of wall clock.
    """

    def __init__(
        self,
        plan: FaultPlan,
        metrics=None,
        tracer=None,
        device: str | None = None,
        bus=None,
    ):
        self.plan = plan
        self.metrics = metrics
        self.tracer = tracer
        self.device = device
        self.bus = bus
        self._fired = [0] * len(plan.specs)
        self._lock = threading.Lock()
        self.faults_injected = 0

    # -- bookkeeping ------------------------------------------------------

    def _claim(self, task: Task, device: str | None, kinds: tuple[FaultKind, ...]) -> FaultSpec | None:
        """Atomically consume one fire of the first matching live spec."""
        dev = device if device is not None else self.device
        with self._lock:
            for idx, spec in enumerate(self.plan.specs):
                if spec.kind not in kinds:
                    continue
                if self._fired[idx] >= spec.times:
                    continue
                if spec.matches(task, dev):
                    self._fired[idx] += 1
                    self.faults_injected += 1
                    self._note(spec, task, dev)
                    return spec
        return None

    def _note(self, spec: FaultSpec, task: Task, device: str | None) -> None:
        if self.metrics is not None:
            self.metrics.counter("resilience.faults_injected").inc()
        if self.tracer is not None:
            self.tracer.record_annotation(
                "fault", f"{spec.kind.value}:{task.label()}", device or "local"
            )
        if self.bus is not None:
            self.bus.publish(
                "fault",
                device or "local",
                {"fault": spec.kind.value, "task": task.label()},
            )

    def fire_counts(self) -> list[int]:
        with self._lock:
            return list(self._fired)

    # -- injection points -------------------------------------------------

    def before_task(self, task: Task, device: str | None = None) -> None:
        """Pre-kernel injection: exceptions, delays, hangs, worker kills."""
        spec = self._claim(
            task,
            device,
            (FaultKind.EXCEPTION, FaultKind.DELAY, FaultKind.HANG, FaultKind.KILL_WORKER),
        )
        if spec is None:
            return
        if spec.kind is FaultKind.EXCEPTION:
            raise FaultInjectionError(
                f"injected kernel failure at {task.label()}"
                + (f" on {device}" if device else "")
            )
        if spec.kind in (FaultKind.DELAY, FaultKind.HANG):
            time.sleep(spec.seconds)
            return
        # KILL_WORKER: die the hard way — no cleanup, no goodbye message.
        # Only meaningful inside a multiprocess worker; the manager sees
        # EOF on the pipe, exactly like a crashed or OOM-killed device.
        os._exit(17)

    def corrupt_outputs(self, task: Task, written_tiles, device: str | None = None) -> bool:
        """Post-kernel injection: poison the task's output tiles.

        ``written_tiles`` is an iterable of ndarrays the task wrote.
        Returns True when a corruption fired (so callers can assert the
        sentinels caught it).
        """
        spec = self._claim(task, device, (FaultKind.CORRUPT_NAN, FaultKind.CORRUPT_INF))
        if spec is None:
            return False
        poison = np.nan if spec.kind is FaultKind.CORRUPT_NAN else np.inf
        for tile in written_tiles:
            tile[...] = poison
        return True
