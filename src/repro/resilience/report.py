"""Resilience reporting: what the fault tolerance machinery did.

:class:`ResilienceReport` aggregates the ``resilience.*`` counters a
chaos run produced, next to a clean-run baseline, into the summary the
``tiledqr chaos`` CLI prints: faults injected, retries spent, failovers
executed, checkpoints written, and the wall-clock overhead the
resilience machinery cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Counter names the runtimes maintain (all under ``resilience.``).
COUNTERS = (
    "resilience.faults_injected",
    "resilience.retries",
    "resilience.timeouts",
    "resilience.failovers",
    "resilience.worker_deaths",
    "resilience.checkpoints",
)


def counters_from_snapshot(snapshot: dict) -> dict[str, float]:
    """The ``resilience.*`` counters from a ``MetricsRegistry.snapshot()``
    dict — the form failure bundles embed, where no live registry exists."""
    counters = snapshot.get("counters", {}) if isinstance(snapshot, dict) else {}
    return {name: counters.get(name, 0.0) for name in COUNTERS}


def resilience_counters(metrics) -> dict[str, float]:
    """The ``resilience.*`` counter values in a metrics snapshot."""
    return counters_from_snapshot(metrics.snapshot())


@dataclass
class ResilienceReport:
    """Outcome of one factorization under a fault plan."""

    n: int
    runtime: str
    residual: float
    wall_seconds: float
    clean_seconds: float | None = None
    counters: dict[str, float] = field(default_factory=dict)
    events: list[str] = field(default_factory=list)
    identical_to_clean: bool | None = None

    @property
    def overhead_fraction(self) -> float | None:
        """Wall-clock overhead relative to the clean run (None if unknown)."""
        if self.clean_seconds is None or self.clean_seconds <= 0.0:
            return None
        return self.wall_seconds / self.clean_seconds - 1.0

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "runtime": self.runtime,
            "residual": self.residual,
            "wall_seconds": self.wall_seconds,
            "clean_seconds": self.clean_seconds,
            "overhead_fraction": self.overhead_fraction,
            "counters": dict(self.counters),
            "events": list(self.events),
            "identical_to_clean": self.identical_to_clean,
        }

    def to_text(self) -> str:
        lines = [
            f"resilience report: {self.runtime} runtime, n={self.n}",
            f"  reconstruction residual : {self.residual:.3e}",
            f"  wall clock              : {self.wall_seconds*1e3:.1f} ms",
        ]
        if self.clean_seconds is not None:
            over = self.overhead_fraction
            lines.append(
                f"  clean-run wall clock    : {self.clean_seconds*1e3:.1f} ms"
                + (f"  (overhead {over*100:+.1f}%)" if over is not None else "")
            )
        if self.identical_to_clean is not None:
            lines.append(
                "  result vs clean run     : "
                + ("bit-identical" if self.identical_to_clean else "differs (within tolerance)")
            )
        for name in COUNTERS:
            short = name.split(".", 1)[1]
            lines.append(f"  {short:24s}: {int(self.counters.get(name, 0))}")
        if self.events:
            lines.append("  events:")
            lines.extend(f"    {e}" for e in self.events)
        return "\n".join(lines)
