"""Numerical health checks: NaN/Inf sentinels and panel residual probes.

Householder QR is unconditionally stable, so non-finite values in a
tile are *always* evidence of corruption (bad memory, a broken kernel,
an injected fault) — never legitimate intermediate state.  The checks
here are opt-in because they cost a pass over each written tile; when
enabled they raise :class:`~repro.errors.NumericalHealthError`, which
the retry layer treats as a retryable kernel failure (restore inputs,
replay).
"""

from __future__ import annotations

import numpy as np

from ..dag.tasks import Task
from ..errors import NumericalHealthError

#: A panel R tile whose norm exceeds the pre-factorization column norm
#: by this factor is numerically implausible for an orthogonal
#: transformation (which preserves column norms exactly).
RESIDUAL_NORM_FACTOR = 1e3


def check_finite(arr: np.ndarray, what: str) -> None:
    """Raise :class:`NumericalHealthError` unless ``arr`` is all-finite."""
    if not np.all(np.isfinite(arr)):
        bad = "nan" if np.any(np.isnan(arr)) else "inf"
        raise NumericalHealthError(f"non-finite ({bad}) values in {what}")


def check_task_outputs(task: Task, written_tiles) -> None:
    """NaN/Inf sentinel over the tiles a task wrote.

    ``written_tiles`` is an iterable of ndarrays; the task label is
    included in the error so traces/retries identify the culprit.
    """
    for idx, tile in enumerate(written_tiles):
        if not np.all(np.isfinite(tile)):
            bad = "nan" if np.any(np.isnan(tile)) else "inf"
            raise NumericalHealthError(
                f"non-finite ({bad}) output tile #{idx} after {task.label()}"
            )


def tiled_frobenius_norm(tiled) -> float:
    """Frobenius norm of a :class:`~repro.tiles.TiledMatrix`, tile-wise.

    The reference magnitude for :func:`panel_residual_probe` — computed
    once before factorization starts (orthogonal updates preserve it).
    """
    total = 0.0
    for _i, _j, tile in tiled.iter_tiles():
        v = float(np.linalg.norm(tile))
        total += v * v
    return total ** 0.5


def panel_residual_probe(r_tile: np.ndarray, ref_norm: float, k: int) -> None:
    """Cheap plausibility probe after panel ``k`` is factorized.

    Orthogonal transformations preserve Frobenius norms, so the R tile
    on the diagonal can never legitimately dwarf the pre-factorization
    panel norm.  The probe is O(b^2) — negligible next to the O(b^3)
    panel chain — and catches silent corruption that produced *finite*
    but garbage values, which the NaN sentinels cannot.
    """
    check_finite(r_tile, f"panel {k} R tile")
    norm = float(np.linalg.norm(r_tile))
    bound = RESIDUAL_NORM_FACTOR * max(ref_norm, 1.0)
    if norm > bound:
        raise NumericalHealthError(
            f"panel {k} residual probe failed: ||R_kk|| = {norm:.3e} exceeds "
            f"{RESIDUAL_NORM_FACTOR:.0e} x panel norm {ref_norm:.3e}"
        )
