"""Multi-node extension (paper Sec. VIII future work).

The paper's policies consume only device kernel-time models and link
speeds, so extending them to "a multi node environment" is a topology
exercise: a cluster is nodes of devices joined by a network link, and
the flattened system feeds the unchanged Optimizer — Alg. 3's
``Tcomm`` then decides for itself whether remote devices pay off.
"""

from .spec import NodeSpec, ClusterSpec
from .topology import cluster_topology

__all__ = ["NodeSpec", "ClusterSpec", "cluster_topology"]
