"""Hierarchical cluster topology: PCIe inside nodes, a network between.

Intra-node pairs follow the paper's Fig. 1 star (see
:func:`repro.comm.topology.pcie_star`); inter-node pairs pay the
network, staged through both hosts (device -> host -> NIC -> host ->
device), which adds the PCIe hop latencies on top of the wire.
"""

from __future__ import annotations

from ..comm.link import Link
from ..comm.topology import (
    DEFAULT_PCIE_BANDWIDTH,
    DEFAULT_PCIE_LATENCY,
    Topology,
    pcie_star,
)
from ..devices.model import DeviceKind
from .spec import ClusterSpec

#: 2012-era cluster interconnect defaults (QDR InfiniBand-ish).
DEFAULT_NETWORK_BANDWIDTH = 3.0e9  # bytes/s
DEFAULT_NETWORK_LATENCY = 120.0e-6  # seconds per message, end to end


def cluster_topology(
    cluster: ClusterSpec,
    pcie_bandwidth: float = DEFAULT_PCIE_BANDWIDTH,
    pcie_latency: float = DEFAULT_PCIE_LATENCY,
    network_bandwidth: float = DEFAULT_NETWORK_BANDWIDTH,
    network_latency: float = DEFAULT_NETWORK_LATENCY,
) -> Topology:
    """Build the full pairwise topology for a cluster."""
    links = {}
    node_devs = {n.name: n.namespaced_devices() for n in cluster.nodes}

    # Intra-node: reuse the paper's PCIe star per node.
    for devs in node_devs.values():
        links.update(pcie_star(devs, pcie_bandwidth, pcie_latency).links)

    # Inter-node: wire + the PCIe hops on both ends for non-CPU devices.
    eff_bw = min(network_bandwidth, pcie_bandwidth)
    for src_node, src_devs in node_devs.items():
        for dst_node, dst_devs in node_devs.items():
            if src_node == dst_node:
                continue
            for a in src_devs:
                for b in dst_devs:
                    hops = 1
                    hops += a.kind is not DeviceKind.CPU
                    hops += b.kind is not DeviceKind.CPU
                    links[(a.device_id, b.device_id)] = Link(
                        bandwidth_bytes_per_s=eff_bw,
                        latency_s=network_latency
                        + (hops - 1) * pcie_latency,
                    )
    return Topology(links=links)
