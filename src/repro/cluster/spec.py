"""Cluster specifications: nodes of devices."""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.model import DeviceSpec
from ..devices.registry import SystemSpec
from ..errors import DeviceError


@dataclass(frozen=True)
class NodeSpec:
    """One machine: a named collection of devices sharing a PCIe root.

    Device ids are namespaced as ``<node>/<device>`` when the cluster is
    flattened, so identical nodes can coexist.
    """

    name: str
    devices: tuple[DeviceSpec, ...]

    def __post_init__(self):
        if not self.devices:
            raise DeviceError(f"node {self.name!r} needs at least one device")
        if "/" in self.name:
            raise DeviceError(f"node name {self.name!r} may not contain '/'")

    def namespaced_devices(self) -> list[DeviceSpec]:
        return [d.rename(f"{self.name}/{d.device_id}") for d in self.devices]


@dataclass(frozen=True)
class ClusterSpec:
    """A set of nodes joined by a network.

    Attributes
    ----------
    name:
        Cluster label.
    nodes:
        The member nodes; names must be unique.
    """

    name: str
    nodes: tuple[NodeSpec, ...]

    def __post_init__(self):
        if not self.nodes:
            raise DeviceError("cluster needs at least one node")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise DeviceError(f"duplicate node names in cluster: {names}")

    def flatten(self) -> SystemSpec:
        """All devices as one SystemSpec with node-prefixed ids."""
        devices: list[DeviceSpec] = []
        for node in self.nodes:
            devices.extend(node.namespaced_devices())
        return SystemSpec(name=self.name, devices=tuple(devices))

    def node_of(self, device_id: str) -> str:
        """Node name owning a namespaced device id."""
        if "/" not in device_id:
            raise DeviceError(f"device id {device_id!r} is not node-namespaced")
        node = device_id.split("/", 1)[0]
        if node not in [n.name for n in self.nodes]:
            raise DeviceError(f"unknown node {node!r} in cluster {self.name!r}")
        return node

    @property
    def total_cores(self) -> int:
        return sum(sum(d.cores for d in n.devices) for n in self.nodes)
