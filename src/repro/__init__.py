"""repro — Tiled QR decomposition on a CPU+GPU heterogeneous system.

A full reproduction of Kim & Park, "Tiled QR Decomposition and Its
Optimization on CPU and GPU Computing System" (ICPP 2013):

* from-scratch NumPy Householder tile kernels (GEQRT / UNMQR / TSQRT /
  TSMQR and the TT variants) — :mod:`repro.kernels`;
* the tiled-matrix layout and the task DAG of Fig. 3 —
  :mod:`repro.tiles`, :mod:`repro.dag`;
* calibrated performance models of the paper's testbed (Table II) and
  its PCIe interconnect — :mod:`repro.devices`, :mod:`repro.comm`;
* the paper's three scheduling policies (main-device selection,
  device-count optimization, distribution guide array) —
  :mod:`repro.core`;
* two execution paths: real numeric runtimes (:mod:`repro.runtime`) and
  simulated heterogeneous execution (:mod:`repro.sim`);
* fault-tolerant execution — deterministic chaos injection, task retry,
  device failover, mid-run checkpoint/resume — :mod:`repro.resilience`
  (see ``docs/RELIABILITY.md``);
* baselines, analysis utilities, and one experiment driver per paper
  table/figure — :mod:`repro.baselines`, :mod:`repro.analysis`,
  :mod:`repro.experiments`.

Quickstart
----------
>>> import numpy as np
>>> from repro import tiled_qr
>>> a = np.random.default_rng(0).standard_normal((128, 128))
>>> f = tiled_qr(a, tile_size=16)
>>> bool(np.allclose(f.apply_q(f.r_dense()), a))
True

Planning for the paper's heterogeneous testbed:

>>> from repro import TiledQR, paper_testbed
>>> qr = TiledQR(paper_testbed())
>>> run = qr.simulate(matrix_size=3200)
>>> run.plan.main_device
'gtx580-0'
"""

from . import linalg, observability, resilience, workloads
from .config import DEFAULT_TILE_SIZE
from .observability import MetricsRegistry, Tracer
from .core.executor import TiledQR, TiledQRRun
from .core.optimizer import Optimizer
from .core.plan import DistributionPlan
from .devices.registry import SystemSpec, paper_testbed, synthetic_system
from .resilience import ChaosEngine, FaultKind, FaultPlan, FaultSpec, RetryPolicy
from .runtime.serial import SerialRuntime, tiled_qr
from .runtime.threaded import ThreadedRuntime
from .runtime.checkpoint import resume_factorization
from .runtime.factorization import TiledQRFactorization
from .tiles.layout import TiledMatrix

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_TILE_SIZE",
    "TiledQR",
    "TiledQRRun",
    "Optimizer",
    "DistributionPlan",
    "SystemSpec",
    "paper_testbed",
    "synthetic_system",
    "SerialRuntime",
    "ThreadedRuntime",
    "TiledQRFactorization",
    "TiledMatrix",
    "tiled_qr",
    "resume_factorization",
    "ChaosEngine",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "Tracer",
    "MetricsRegistry",
    "linalg",
    "observability",
    "resilience",
    "workloads",
    "__version__",
]
