"""System interconnect topology.

The paper's node (Fig. 1) is a host-centric star: every GPU hangs off
PCI express; CPUs share main memory (infinite-speed "link" to
themselves and each other), and GPU-to-GPU traffic is staged through
host memory (two hops — the paper's manager thread "migrates dependent
data among the devices", Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math

from ..errors import TopologyError
from ..devices.model import DeviceKind, DeviceSpec
from .link import Link

#: Defaults for a 2012-era PCIe 2.0 x16 node with pinned-memory copies.
DEFAULT_PCIE_BANDWIDTH = 6.0e9  # bytes/s
DEFAULT_PCIE_LATENCY = 50.0e-6  # seconds per message


@dataclass(frozen=True)
class Topology:
    """Pairwise link lookup over a set of device ids.

    Attributes
    ----------
    links:
        ``(src, dst) -> Link``.  Missing same-device pairs are treated as
        infinite-speed local moves (the paper's ``speed(x, y) = inf`` if
        ``x == y``).
    """

    links: dict[tuple[str, str], Link] = field(default_factory=dict)

    def link(self, src: str, dst: str) -> Link | None:
        """The link for ``src -> dst``; ``None`` means a free local move."""
        if src == dst:
            return None
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise TopologyError(f"no link from {src!r} to {dst!r}") from None

    def transfer_time(self, src: str, dst: str, num_bytes: float, messages: int = 1) -> float:
        """Seconds to move ``num_bytes``; zero for a same-device move."""
        lk = self.link(src, dst)
        if lk is None:
            return 0.0
        return lk.transfer_time(num_bytes, messages)

    def speed(self, src: str, dst: str, payload_bytes: float | None = None) -> float:
        """The paper's ``speed(x, y)``: bytes/s, ``inf`` when ``x == y``.

        For an affine link the achieved speed depends on the payload;
        pass ``payload_bytes`` for the latency-inclusive value or omit it
        for the raw bandwidth.
        """
        lk = self.link(src, dst)
        if lk is None:
            return math.inf
        if payload_bytes is None:
            return lk.bandwidth_bytes_per_s
        return lk.effective_speed(payload_bytes)


def pcie_star(
    devices: list[DeviceSpec] | tuple[DeviceSpec, ...],
    bandwidth: float = DEFAULT_PCIE_BANDWIDTH,
    latency: float = DEFAULT_PCIE_LATENCY,
) -> Topology:
    """Build the paper's Fig. 1 host-centric star for the given devices.

    * CPU <-> CPU: shared main memory, modelled as a negligible-latency,
      very-high-bandwidth link.
    * CPU <-> GPU: one PCIe hop.
    * GPU <-> GPU: staged through the host — double latency, half
      effective bandwidth.
    """
    links: dict[tuple[str, str], Link] = {}
    host_link = Link(bandwidth_bytes_per_s=50.0e9, latency_s=1.0e-6)
    pcie = Link(bandwidth_bytes_per_s=bandwidth, latency_s=latency)
    via_host = Link(bandwidth_bytes_per_s=bandwidth / 2.0, latency_s=2.0 * latency)
    for a in devices:
        for b in devices:
            if a.device_id == b.device_id:
                continue
            if a.kind is DeviceKind.CPU and b.kind is DeviceKind.CPU:
                lk = host_link
            elif a.kind is DeviceKind.CPU or b.kind is DeviceKind.CPU:
                lk = pcie
            else:
                lk = via_host
            links[(a.device_id, b.device_id)] = lk
    return Topology(links=links)
