"""Point-to-point link model: latency + bandwidth.

The paper's Eq. 11 uses a scalar ``speed(x, y)``; real PCIe transfers of
the small per-tile payloads involved here are latency dominated, so the
model is affine: ``t(bytes) = latency + bytes / bandwidth``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TopologyError


@dataclass(frozen=True)
class Link:
    """A directed link between two devices.

    Attributes
    ----------
    bandwidth_bytes_per_s:
        Sustained transfer bandwidth.
    latency_s:
        Fixed per-message cost (driver call, DMA setup, sync).
    """

    bandwidth_bytes_per_s: float
    latency_s: float = 0.0

    def __post_init__(self):
        if self.bandwidth_bytes_per_s <= 0:
            raise TopologyError("link bandwidth must be positive")
        if self.latency_s < 0:
            raise TopologyError("link latency must be non-negative")

    def transfer_time(self, num_bytes: float, messages: int = 1) -> float:
        """Seconds to move ``num_bytes`` in ``messages`` transfers."""
        if num_bytes < 0:
            raise TopologyError(f"negative byte count {num_bytes}")
        if messages < 1:
            raise TopologyError(f"need at least one message, got {messages}")
        return messages * self.latency_s + num_bytes / self.bandwidth_bytes_per_s

    def effective_speed(self, num_bytes: float) -> float:
        """Achieved bytes/s for one message of ``num_bytes`` — the
        paper's ``speed(x, y)`` for a given payload."""
        if num_bytes <= 0:
            raise TopologyError("effective speed needs a positive payload")
        return num_bytes / self.transfer_time(num_bytes)
