"""Communication model: PCIe links and the host-centric topology."""

from .link import Link
from .topology import Topology, pcie_star

__all__ = ["Link", "Topology", "pcie_star"]
