"""Thread-pool execution of the tiled-QR DAG.

Implements the manager/computing-thread structure of the paper's Fig. 7
in-process: a dependency-counting dispatcher releases tasks as their
predecessors complete, and a pool of worker threads executes them.
NumPy's BLAS releases the GIL inside the tile GEMMs, so workers genuinely
overlap on multicore hosts; on a single-core host the runtime still
exercises the full concurrency-control path.

Correctness under reordering: any two factorization tasks left unordered
by the DAG act on disjoint tile-row sets (otherwise they would conflict
on a panel tile and be ordered), so their block reflectors commute and
logging them in *completion* order still yields a valid ``Q``.

Dispatch order: the ready set is a heap keyed by *bottom-level rank*
(:func:`repro.dag.analysis.bottom_level_ranks`) — workers always pop
the ready task with the longest weighted path to a sink, so the panel
chain that bounds makespan is never starved by trailing updates.  FIFO
dispatch made tall grids latency-bound: every ready update of panel
``k`` drained before the panel ``k+1`` factorization task at the head
of the critical path got a worker.

With ``batch_updates=True`` the DAG carries coarsened row-panel update
tasks.  To keep the update-phase parallelism the per-tile DAG had, a
ready batch is *split into contiguous column chunks* — one per worker —
that execute concurrently (they write disjoint column ranges of the same
tile row, so no synchronization is needed); the batch's successors are
released only when every chunk has finished.

Failure semantics: the first unrecovered error sets a shared cancel
flag.  Workers check it *before* starting any task, so no further kernel
begins after the failure — already-queued tasks are dropped, not
drained.  With a retry policy, retryable failures are absorbed inside
:func:`~repro.runtime.core_exec.apply_task_resilient` and only
exhausted/unretryable errors cancel the run.

Mid-run checkpoints use a stop-the-world drain: the worker that crosses
the checkpoint threshold pauses dispatch, waits for in-flight kernels to
finish, snapshots the quiescent state, and resumes — so every snapshot
is a downward-closed frontier the resume path can trust.
"""

from __future__ import annotations

import itertools
import threading
from heapq import heappop, heappush

import numpy as np

from ..config import DEFAULT_TILE_SIZE
from ..dag import build_dag
from ..dag.analysis import bottom_level_ranks, task_weight_model
from ..dag.tasks import Task
from ..dag.trees import canonical_tree
from ..errors import ShapeError, SimulationError
from ..kernels.backends import resolve_backend
from ..kernels.workspace import Workspace, drain_fallbacks
from ..tiles import TiledMatrix
from .core_exec import Factors, apply_task, apply_task_resilient
from .factorization import TiledQRFactorization
from .serial import (
    _CheckpointWriter,
    check_resume_state,
    coerce_input,
    health_ref_norm,
    resolve_policy,
    run_with_bundle_capture,
)


def split_batch(task: Task, parts: int) -> list[Task]:
    """Split a batched update into ``<= parts`` contiguous column chunks.

    Chunks are valid batched tasks over sub-ranges of ``[col, col_end)``
    whose expansions partition the parent's expansion.  Returns
    ``[task]`` unchanged when splitting is pointless.
    """
    n = task.ncols
    parts = max(1, min(parts, n))
    if not task.is_batch or parts == 1:
        return [task]
    bounds = [task.col + (n * i) // parts for i in range(parts + 1)]
    return [
        Task(task.kind, task.k, task.row, task.row2, j0, j1)
        for j0, j1 in zip(bounds[:-1], bounds[1:])
    ]


class ThreadedRuntime:
    """Dependency-driven thread-pool executor.

    Parameters
    ----------
    num_workers:
        Worker thread count (the paper's "computing threads").
    elimination:
        Elimination-tree name or alias (``"flat"``/``"TS"``,
        ``"flat-tt"``, ``"binary"``/``"TT"``, ``"fibonacci"``,
        ``"greedy"`` — see :mod:`repro.dag.trees`).
    tracer:
        Optional :class:`repro.observability.Tracer`; each worker emits
        kernel spans under device id ``"worker-<i>"`` into its own
        thread-local buffer (no hot-path contention).
    batch_updates:
        Coarsen the update phase into row-panel tasks (see module
        docstring); each worker owns a private
        :class:`~repro.kernels.workspace.Workspace` arena so the hot
        path's GEMMs never allocate.
    retry_policy, chaos, health_checks, metrics:
        Resilience controls, identical to
        :class:`~repro.runtime.serial.SerialRuntime`'s.
    bus:
        Optional :class:`repro.observability.TelemetryBus`.  Workers
        publish ``task.start``/``task.finish`` (plus retries and
        checkpoints) live, and when the bus carries a
        ``heartbeat_interval`` a
        :class:`~repro.observability.live.heartbeat.HeartbeatMonitor`
        runs for the duration of the factorization — a kernel that
        stalls (e.g. a chaos ``hang``) raises ``heartbeat.missed``
        events well before the retry-policy deadline classifies it.
    checkpoint_every / checkpoint_path:
        Periodic quiescent-point snapshots (see module docstring).
    bundle_out:
        Optional failure-bundle path, identical to
        :class:`~repro.runtime.serial.SerialRuntime`'s.
    backend:
        Kernel backend (name, object, or ``None`` for ``reference``),
        shared by every worker — backend objects must therefore be
        thread-safe for concurrent kernel calls (the shipped ones are
        stateless).

    A kernel exception in any worker aborts the factorization and
    re-raises in the calling thread, annotated with the failing task;
    queued tasks are cancelled immediately — no task starts after the
    first fatal error.
    """

    def __init__(
        self,
        num_workers: int = 4,
        elimination: str = "TS",
        tracer=None,
        batch_updates: bool = False,
        retry_policy=None,
        chaos=None,
        health_checks: bool = False,
        metrics=None,
        checkpoint_every: int | None = None,
        checkpoint_path=None,
        backend=None,
        bus=None,
        bundle_out=None,
    ):
        if num_workers < 1:
            raise ValueError(f"need at least one worker, got {num_workers}")
        self.num_workers = num_workers
        self.elimination = canonical_tree(elimination)
        self.tracer = tracer
        self.batch_updates = batch_updates
        self.retry_policy = retry_policy
        self.chaos = chaos
        self.health_checks = health_checks
        self.metrics = metrics
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.backend = resolve_backend(backend)
        self.bus = bus
        self.bundle_out = bundle_out

    def factorize(
        self, a, tile_size: int = DEFAULT_TILE_SIZE, resume=None
    ) -> TiledQRFactorization:
        """Factorize ``a``; same contract as :meth:`SerialRuntime.factorize`."""
        if self.bundle_out is None:
            return self._factorize(a, tile_size, resume)
        meta = {
            "runtime": "threaded",
            "workers": self.num_workers,
            "elimination": self.elimination,
            "batch_updates": self.batch_updates,
            "backend": self.backend.name,
            "tile_size": tile_size,
        }
        if self.retry_policy is not None:
            meta["retry_policy"] = self.retry_policy.to_dict()
        return run_with_bundle_capture(
            self,
            lambda: self._factorize(a, tile_size, resume),
            fault_plan=self.chaos.plan if self.chaos is not None else None,
            meta=meta,
        )

    def _factorize(self, a, tile_size: int, resume=None) -> TiledQRFactorization:
        tiled, shape = coerce_input(a, tile_size, self.batch_updates)

        dag = build_dag(
            tiled.grid_rows, tiled.grid_cols, self.elimination, self.batch_updates
        )
        factors: dict[tuple, Factors] = {}
        log: list[tuple[Task, Factors]] = []
        completed_set: set[Task] = set()
        completed_order: list[Task] = []
        if resume is not None:
            completed_set = check_resume_state(
                resume, dag, tiled, self.elimination, self.batch_updates
            )
            completed_order = list(resume.completed)
            log = list(resume.log)
            for task, f in log:
                key = (
                    ("Vg", task.row, task.k)
                    if task.kind.name == "GEQRT"
                    else ("Ve", task.row, task.k)
                )
                factors[key] = f

        remaining = {
            t: sum(1 for d in dag.preds[t] if d not in completed_set)
            for t in dag.tasks
            if t not in completed_set
        }
        # Heap-backed ready queue: entries are (-rank, emission position,
        # sequence, task) so pops are highest-bottom-level-rank first
        # with a fully deterministic tie-break (the sequence also keeps
        # the heap from ever comparing Task objects).  Chunks of a split
        # batch inherit their parent's priority.
        ranks = bottom_level_ranks(dag, task_weight_model(tiled.tile_size))
        position = {t: n for n, t in enumerate(dag.tasks)}
        ready_heap: list[tuple[float, int, int, Task]] = []
        seq = itertools.count()

        lock = threading.Lock()
        cond = threading.Condition(lock)
        done_count = [len(completed_set)]
        total = len(dag.tasks)
        errors: list[BaseException] = []
        all_done = threading.Event()
        cancel = threading.Event()
        stop = [False]
        # Stop-the-world checkpoint state, all guarded by `cond`:
        inflight = [0]
        paused = [False]
        if done_count[0] == total:
            all_done.set()

        # Chunked batch bookkeeping: chunk task -> parent DAG task, and
        # parent -> number of chunks still running.  Mutated under `lock`
        # except for the initial seeding below (workers not started yet).
        chunk_parent: dict[Task, Task] = {}
        chunk_left: dict[Task, int] = {}

        def enqueue(task: Task) -> None:
            """Push a DAG task, splitting ready batches across workers.

            Caller holds ``cond`` (or no worker is running yet); waiters
            are woken by the caller's ``notify_all``.
            """
            pri, pos = -ranks[task], position[task]
            if task.is_batch and self.num_workers > 1:
                chunks = split_batch(task, self.num_workers)
                if len(chunks) > 1:
                    chunk_left[task] = len(chunks)
                    for c in chunks:
                        chunk_parent[c] = task
                        heappush(ready_heap, (pri, pos, next(seq), c))
                    return
            heappush(ready_heap, (pri, pos, next(seq), task))

        for t in dag.tasks:
            if t not in completed_set and remaining[t] == 0:
                enqueue(t)

        tracer = self.tracer if self.tracer is not None and self.tracer.enabled else None
        b = tiled.tile_size
        policy = resolve_policy(self.retry_policy, self.chaos, self.health_checks)
        ref_norm = health_ref_norm(tiled) if self.health_checks else None
        bus = self.bus
        if bus is not None:
            bus.publish(
                "run.start",
                "manager",
                {
                    "runtime": "threaded",
                    "total_tasks": total,
                    "total_units": sum(t.ncols for t in dag.tasks),
                    "grid": [tiled.grid_rows, tiled.grid_cols],
                    "tile_size": b,
                    "workers": self.num_workers,
                    "completed": done_count[0],
                },
            )
        ckpt = _CheckpointWriter(
            self.checkpoint_every, self.checkpoint_path, dag, tiled, shape,
            self.metrics, tracer, bus,
        )

        def fail(exc: BaseException) -> None:
            """First-error path: record, cancel all pending work, wake everyone."""
            with cond:
                errors.append(exc)
                # A pauser waiting for quiescence must not deadlock on a
                # worker that died instead of decrementing inflight.
                paused[0] = False
                cond.notify_all()
            cancel.set()
            all_done.set()

        workspaces = [Workspace() for _ in range(self.num_workers)]

        def pop_task() -> Task | None:
            """Highest-rank ready task; None when the run is over.

            Blocks while the heap is empty or dispatch is paused for a
            checkpoint; increments ``inflight`` atomically with the pop
            so the pauser's quiescence wait is race-free.
            """
            with cond:
                while True:
                    if cancel.is_set() or stop[0]:
                        return None
                    if ready_heap and not paused[0]:
                        _, _, _, task = heappop(ready_heap)
                        inflight[0] += 1
                        return task
                    cond.wait()

        def worker(index: int) -> None:
            device = f"worker-{index}"
            workspace = workspaces[index]
            while True:
                task = pop_task()
                if task is None:
                    return
                def run_one(t: Task):
                    if policy is not None:
                        return apply_task_resilient(
                            t, tiled, factors, workspace,
                            policy=policy, backend=self.backend, chaos=self.chaos,
                            health=self.health_checks, health_ref_norm=ref_norm,
                            metrics=self.metrics,
                            tracer=tracer, device=device, bus=bus,
                        )
                    return apply_task(t, tiled, factors, workspace, backend=self.backend)

                try:
                    if bus is not None:
                        t0 = bus.clock()
                        bus.task_start(task, device, t=t0)
                    if tracer is not None:
                        with tracer.task_span(task, device=device, tile_size=b):
                            produced = run_one(task)
                    else:
                        produced = run_one(task)
                    if bus is not None:
                        bus.task_finish(task, device, start=t0, end=bus.clock())
                except BaseException as exc:  # propagate to the caller
                    with cond:
                        inflight[0] -= 1
                        cond.notify_all()
                    if hasattr(exc, "add_note"):  # 3.11+
                        exc.add_note(f"while executing task {task.label()} on {device}")
                    fail(exc)
                    return
                with cond:
                    inflight[0] -= 1
                    parent = chunk_parent.pop(task, None)
                    if parent is not None:
                        chunk_left[parent] -= 1
                        if chunk_left[parent] > 0:
                            cond.notify_all()
                            continue  # siblings still running; not done yet
                        del chunk_left[parent]
                        task = parent  # the DAG-level task just completed
                    if produced is not None:
                        log.append((task, produced))
                    completed_order.append(task)
                    done_count[0] += 1
                    finished = done_count[0] == total
                    newly_ready = []
                    for succ in dag.succs[task]:
                        remaining[succ] -= 1
                        if remaining[succ] == 0:
                            newly_ready.append(succ)
                    for s in newly_ready:
                        enqueue(s)
                    if ckpt.task_done() and not finished and not cancel.is_set():
                        # Stop the world: block new dispatch, drain
                        # in-flight kernels, snapshot, resume.
                        paused[0] = True
                        while inflight[0] > 0 and not cancel.is_set():
                            cond.wait()
                        if not cancel.is_set():
                            try:
                                ckpt.write(completed_order, log, device=device)
                            except BaseException as exc:
                                paused[0] = False
                                cond.notify_all()
                                fail(exc)
                                return
                        paused[0] = False
                    cond.notify_all()
                if finished:
                    all_done.set()

        threads = [
            threading.Thread(
                target=worker, args=(i,), name=f"tiledqr-worker-{i}", daemon=True
            )
            for i in range(self.num_workers)
        ]
        monitor = None
        if bus is not None and bus.heartbeat_interval:
            from ..observability.live.heartbeat import HeartbeatMonitor

            monitor = HeartbeatMonitor(bus).start()
        try:
            for th in threads:
                th.start()
            all_done.wait()
            with cond:
                stop[0] = True
                cond.notify_all()
            for th in threads:
                th.join()
        finally:
            if monitor is not None:
                monitor.stop()
        drain_fallbacks(self.metrics, *workspaces)

        if errors:
            raise errors[0]
        if done_count[0] != total:
            raise SimulationError(
                f"threaded runtime finished {done_count[0]}/{total} tasks"
            )
        if bus is not None:
            bus.publish("run.finish", "manager", {"tasks": done_count[0]})
            bus.drain()  # subscribers have seen everything when we return
        return TiledQRFactorization(r=tiled, log=log, shape=shape)
