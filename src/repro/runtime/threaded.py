"""Thread-pool execution of the tiled-QR DAG.

Implements the manager/computing-thread structure of the paper's Fig. 7
in-process: a dependency-counting dispatcher releases tasks as their
predecessors complete, and a pool of worker threads executes them.
NumPy's BLAS releases the GIL inside the tile GEMMs, so workers genuinely
overlap on multicore hosts; on a single-core host the runtime still
exercises the full concurrency-control path.

Correctness under reordering: any two factorization tasks left unordered
by the DAG act on disjoint tile-row sets (otherwise they would conflict
on a panel tile and be ordered), so their block reflectors commute and
logging them in *completion* order still yields a valid ``Q``.
"""

from __future__ import annotations

import queue
import threading

import numpy as np

from ..config import DEFAULT_TILE_SIZE
from ..dag import build_dag
from ..dag.tasks import Task
from ..errors import ShapeError, SimulationError
from ..tiles import TiledMatrix
from .core_exec import Factors, apply_task
from .factorization import TiledQRFactorization


class ThreadedRuntime:
    """Dependency-driven thread-pool executor.

    Parameters
    ----------
    num_workers:
        Worker thread count (the paper's "computing threads").
    elimination:
        ``"TS"`` or ``"TT"`` DAG flavour.
    tracer:
        Optional :class:`repro.observability.Tracer`; each worker emits
        kernel spans under device id ``"worker-<i>"`` into its own
        thread-local buffer (no hot-path contention).

    A kernel exception in any worker aborts the factorization and
    re-raises in the calling thread, annotated with the failing task;
    remaining workers drain and exit rather than hanging.
    """

    def __init__(self, num_workers: int = 4, elimination: str = "TS", tracer=None):
        if num_workers < 1:
            raise ValueError(f"need at least one worker, got {num_workers}")
        self.num_workers = num_workers
        self.elimination = elimination
        self.tracer = tracer

    def factorize(self, a, tile_size: int = DEFAULT_TILE_SIZE) -> TiledQRFactorization:
        """Factorize ``a``; same contract as :meth:`SerialRuntime.factorize`."""
        if isinstance(a, TiledMatrix):
            tiled = a
            shape = tiled.shape
        else:
            arr = np.asarray(a)
            if arr.ndim != 2:
                raise ShapeError(f"expected a 2-D matrix, got ndim={arr.ndim}")
            if arr.shape[0] < arr.shape[1]:
                raise ShapeError(f"QR requires m >= n, got shape {arr.shape}")
            tiled = TiledMatrix.from_dense(arr, tile_size)
            shape = arr.shape

        dag = build_dag(tiled.grid_rows, tiled.grid_cols, self.elimination)
        remaining = {t: len(dag.preds[t]) for t in dag.tasks}
        ready: "queue.Queue[Task | None]" = queue.Queue()
        for t in dag.tasks:
            if remaining[t] == 0:
                ready.put(t)

        factors: dict[tuple, Factors] = {}
        log: list[tuple[Task, Factors]] = []
        lock = threading.Lock()
        done_count = [0]
        total = len(dag.tasks)
        errors: list[BaseException] = []
        all_done = threading.Event()
        if total == 0:
            all_done.set()

        tracer = self.tracer if self.tracer is not None and self.tracer.enabled else None
        b = tiled.tile_size

        def worker(index: int) -> None:
            device = f"worker-{index}"
            while True:
                task = ready.get()
                if task is None:
                    return
                try:
                    if tracer is not None:
                        with tracer.task_span(task, device=device, tile_size=b):
                            produced = apply_task(task, tiled, factors)
                    else:
                        produced = apply_task(task, tiled, factors)
                except BaseException as exc:  # propagate to the caller
                    if hasattr(exc, "add_note"):  # 3.11+
                        exc.add_note(f"while executing task {task.label()} on {device}")
                    with lock:
                        errors.append(exc)
                    all_done.set()
                    return
                with lock:
                    if produced is not None:
                        log.append((task, produced))
                    done_count[0] += 1
                    finished = done_count[0] == total
                    newly_ready = []
                    for succ in dag.succs[task]:
                        remaining[succ] -= 1
                        if remaining[succ] == 0:
                            newly_ready.append(succ)
                for s in newly_ready:
                    ready.put(s)
                if finished:
                    all_done.set()

        threads = [
            threading.Thread(
                target=worker, args=(i,), name=f"tiledqr-worker-{i}", daemon=True
            )
            for i in range(self.num_workers)
        ]
        for th in threads:
            th.start()
        all_done.wait()
        for _ in threads:
            ready.put(None)
        for th in threads:
            th.join()

        if errors:
            raise errors[0]
        if done_count[0] != total:
            raise SimulationError(
                f"threaded runtime finished {done_count[0]}/{total} tasks"
            )
        return TiledQRFactorization(r=tiled, log=log, shape=shape)
