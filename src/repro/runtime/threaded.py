"""Thread-pool execution of the tiled-QR DAG.

Implements the manager/computing-thread structure of the paper's Fig. 7
in-process: a dependency-counting dispatcher releases tasks as their
predecessors complete, and a pool of worker threads executes them.
NumPy's BLAS releases the GIL inside the tile GEMMs, so workers genuinely
overlap on multicore hosts; on a single-core host the runtime still
exercises the full concurrency-control path.

Correctness under reordering: any two factorization tasks left unordered
by the DAG act on disjoint tile-row sets (otherwise they would conflict
on a panel tile and be ordered), so their block reflectors commute and
logging them in *completion* order still yields a valid ``Q``.

With ``batch_updates=True`` the DAG carries coarsened row-panel update
tasks.  To keep the update-phase parallelism the per-tile DAG had, a
ready batch is *split into contiguous column chunks* — one per worker —
that execute concurrently (they write disjoint column ranges of the same
tile row, so no synchronization is needed); the batch's successors are
released only when every chunk has finished.
"""

from __future__ import annotations

import queue
import threading

import numpy as np

from ..config import DEFAULT_TILE_SIZE
from ..dag import build_dag
from ..dag.tasks import Task
from ..errors import ShapeError, SimulationError
from ..kernels.workspace import Workspace
from ..tiles import TiledMatrix
from .core_exec import Factors, apply_task
from .factorization import TiledQRFactorization


def split_batch(task: Task, parts: int) -> list[Task]:
    """Split a batched update into ``<= parts`` contiguous column chunks.

    Chunks are valid batched tasks over sub-ranges of ``[col, col_end)``
    whose expansions partition the parent's expansion.  Returns
    ``[task]`` unchanged when splitting is pointless.
    """
    n = task.ncols
    parts = max(1, min(parts, n))
    if not task.is_batch or parts == 1:
        return [task]
    bounds = [task.col + (n * i) // parts for i in range(parts + 1)]
    return [
        Task(task.kind, task.k, task.row, task.row2, j0, j1)
        for j0, j1 in zip(bounds[:-1], bounds[1:])
    ]


class ThreadedRuntime:
    """Dependency-driven thread-pool executor.

    Parameters
    ----------
    num_workers:
        Worker thread count (the paper's "computing threads").
    elimination:
        ``"TS"`` or ``"TT"`` DAG flavour.
    tracer:
        Optional :class:`repro.observability.Tracer`; each worker emits
        kernel spans under device id ``"worker-<i>"`` into its own
        thread-local buffer (no hot-path contention).
    batch_updates:
        Coarsen the update phase into row-panel tasks (see module
        docstring); each worker owns a private
        :class:`~repro.kernels.workspace.Workspace` arena so the hot
        path's GEMMs never allocate.

    A kernel exception in any worker aborts the factorization and
    re-raises in the calling thread, annotated with the failing task;
    remaining workers drain and exit rather than hanging.
    """

    def __init__(
        self,
        num_workers: int = 4,
        elimination: str = "TS",
        tracer=None,
        batch_updates: bool = False,
    ):
        if num_workers < 1:
            raise ValueError(f"need at least one worker, got {num_workers}")
        self.num_workers = num_workers
        self.elimination = elimination
        self.tracer = tracer
        self.batch_updates = batch_updates

    def factorize(self, a, tile_size: int = DEFAULT_TILE_SIZE) -> TiledQRFactorization:
        """Factorize ``a``; same contract as :meth:`SerialRuntime.factorize`."""
        if isinstance(a, TiledMatrix):
            tiled = a
            shape = tiled.shape
        else:
            arr = np.asarray(a)
            if arr.ndim != 2:
                raise ShapeError(f"expected a 2-D matrix, got ndim={arr.ndim}")
            if arr.shape[0] < arr.shape[1]:
                raise ShapeError(f"QR requires m >= n, got shape {arr.shape}")
            tiled = TiledMatrix.from_dense(
                arr, tile_size, storage="rowmajor" if self.batch_updates else "tiles"
            )
            shape = arr.shape

        dag = build_dag(
            tiled.grid_rows, tiled.grid_cols, self.elimination, self.batch_updates
        )
        remaining = {t: len(dag.preds[t]) for t in dag.tasks}
        ready: "queue.Queue[Task | None]" = queue.Queue()

        factors: dict[tuple, Factors] = {}
        log: list[tuple[Task, Factors]] = []
        lock = threading.Lock()
        done_count = [0]
        total = len(dag.tasks)
        errors: list[BaseException] = []
        all_done = threading.Event()
        if total == 0:
            all_done.set()

        # Chunked batch bookkeeping: chunk task -> parent DAG task, and
        # parent -> number of chunks still running.  Mutated under `lock`
        # except for the initial seeding below (workers not started yet).
        chunk_parent: dict[Task, Task] = {}
        chunk_left: dict[Task, int] = {}

        def enqueue(task: Task) -> None:
            """Queue a DAG task, splitting ready batches across workers."""
            if task.is_batch and self.num_workers > 1:
                chunks = split_batch(task, self.num_workers)
                if len(chunks) > 1:
                    chunk_left[task] = len(chunks)
                    for c in chunks:
                        chunk_parent[c] = task
                    for c in chunks:
                        ready.put(c)
                    return
            ready.put(task)

        for t in dag.tasks:
            if remaining[t] == 0:
                enqueue(t)

        tracer = self.tracer if self.tracer is not None and self.tracer.enabled else None
        b = tiled.tile_size

        def worker(index: int) -> None:
            device = f"worker-{index}"
            workspace = Workspace()
            while True:
                task = ready.get()
                if task is None:
                    return
                try:
                    if tracer is not None:
                        with tracer.task_span(task, device=device, tile_size=b):
                            produced = apply_task(task, tiled, factors, workspace)
                    else:
                        produced = apply_task(task, tiled, factors, workspace)
                except BaseException as exc:  # propagate to the caller
                    if hasattr(exc, "add_note"):  # 3.11+
                        exc.add_note(f"while executing task {task.label()} on {device}")
                    with lock:
                        errors.append(exc)
                    all_done.set()
                    return
                with lock:
                    parent = chunk_parent.pop(task, None)
                    if parent is not None:
                        chunk_left[parent] -= 1
                        if chunk_left[parent] > 0:
                            continue  # siblings still running; not done yet
                        del chunk_left[parent]
                        task = parent  # the DAG-level task just completed
                    if produced is not None:
                        log.append((task, produced))
                    done_count[0] += 1
                    finished = done_count[0] == total
                    newly_ready = []
                    for succ in dag.succs[task]:
                        remaining[succ] -= 1
                        if remaining[succ] == 0:
                            newly_ready.append(succ)
                    for s in newly_ready:
                        enqueue(s)
                if finished:
                    all_done.set()

        threads = [
            threading.Thread(
                target=worker, args=(i,), name=f"tiledqr-worker-{i}", daemon=True
            )
            for i in range(self.num_workers)
        ]
        for th in threads:
            th.start()
        all_done.wait()
        for _ in threads:
            ready.put(None)
        for th in threads:
            th.join()

        if errors:
            raise errors[0]
        if done_count[0] != total:
            raise SimulationError(
                f"threaded runtime finished {done_count[0]}/{total} tasks"
            )
        return TiledQRFactorization(r=tiled, log=log, shape=shape)
