"""Distributed-memory execution: the paper's Fig. 7 as real processes.

The paper's runtime is a manager thread plus one computing thread per
device, with explicit data movement between device memories.  This
module realizes that structure with OS processes and pipes — the
closest single-machine analog of the paper's system that Python can
express honestly:

* every *worker process* owns the tiles of the columns its device is
  assigned (nothing else — there is no shared matrix);
* the *manager* drives the panel loop: tells the panel owner to
  factorize, routes the reflector factors to the devices that need them
  (the Eq. 11 broadcasts), and migrates the next panel column to the
  panel owner — every byte that the simulators price is a real pickled
  message here;
* workers update their own columns with the real NumPy kernels.

This runtime exists to *validate the distribution logic end to end*
(ownership, broadcast, column migration) rather than for speed: with
CPython process overheads, small matrices dominate on IPC.  Results are
bit-identical to the serial runtime.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..core.plan import DistributionPlan
from ..errors import ShapeError, SimulationError
from ..kernels import geqrt, tsmqr, tsmqr_batch, tsqrt, unmqr, unmqr_batch
from ..kernels.workspace import Workspace
from ..tiles import TiledMatrix
from .factorization import TiledQRFactorization
from ..dag.tasks import Task, TaskKind


class _NullTimer:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_TIMER = _NullTimer()


class _EventTimer:
    """Times one worker-side kernel call into the event buffer."""

    __slots__ = ("events", "key", "clock", "start")

    def __init__(self, events, kind, k, row, row2, col, col_end, clock):
        self.events = events
        self.key = (kind, k, row, row2, col, col_end)
        self.clock = clock
        self.start = 0.0

    def __enter__(self):
        self.start = self.clock()
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.events.append(self.key + (self.start, self.clock()))
        return False


# ---------------------------------------------------------------------------
# Messages (manager -> worker); workers answer with ("ok", payload) tuples.
# ---------------------------------------------------------------------------

@dataclass
class LoadColumns:
    """Seed the worker with its owned columns."""

    columns: dict[int, list[np.ndarray]]  # col -> tiles top..bottom


@dataclass
class FactorPanel:
    """Run T + the elimination chain on panel ``k`` (worker owns col k).

    Replies with the serialized factors (one GEQRT + per-row TSQRT).
    """

    k: int


@dataclass
class ReceiveColumn:
    """Install a migrated column (ownership transfer)."""

    col: int
    tiles: list[np.ndarray]


@dataclass
class SendColumn:
    """Ship a column back to the manager (for migration)."""

    col: int


@dataclass
class Update:
    """Apply broadcast panel factors to the worker's columns > k."""

    k: int
    factors: list  # [(task_tuple, kind, payload-arrays...)]


@dataclass
class Collect:
    """Return every owned column (end of factorization)."""


@dataclass
class CollectEvents:
    """Return the worker's kernel-event buffer (traced runs only).

    Events are ``(kind, k, row, row2, col, col_end, start, end)``
    tuples (``col_end`` is ``-1`` for per-tile kernels) stamped
    with the worker's ``perf_counter``.  Under the fork start method
    the clock is shared with the manager (CLOCK_MONOTONIC), so buffers
    merge directly; under spawn ``perf_counter`` epochs differ per
    process, so the manager rebases each buffer with the offset
    measured by :class:`ClockSync` at worker startup.
    """


@dataclass
class ClockSync:
    """Reply with the worker's current ``perf_counter`` reading.

    The manager brackets the round-trip with its own clock and takes
    the midpoint as the exchange instant, yielding a manager-minus-
    worker offset accurate to about half the pipe round-trip — plenty
    for millisecond-scale kernel timelines.
    """


@dataclass
class Shutdown:
    pass


def _contiguous_runs(cols: list[int]) -> list[tuple[int, int]]:
    """Group a sorted column list into half-open contiguous runs."""
    runs: list[tuple[int, int]] = []
    for j in cols:
        if runs and runs[-1][1] == j:
            runs[-1] = (runs[-1][0], j + 1)
        else:
            runs.append((j, j + 1))
    return runs


def _worker_main(
    conn,
    grid_rows: int,
    grid_cols: int,
    trace: bool = False,
    batch_updates: bool = False,
) -> None:
    """Worker process body: owns columns, executes kernels on demand."""
    columns: dict[int, list[np.ndarray]] = {}
    events: list[tuple] = []
    workspace = Workspace()

    def timed(kind: str, k: int, row: int, row2: int, col: int, col_end: int = -1):
        if not trace:
            return _NULL_TIMER
        return _EventTimer(events, kind, k, row, row2, col, col_end, perf_counter)

    def gather(j0: int, j1: int, row: int) -> np.ndarray:
        """Row panel over owned columns ``[j0, j1)`` (zero-copy if single)."""
        if j1 - j0 == 1:
            return columns[j0][row]
        return np.hstack([columns[j][row] for j in range(j0, j1)])

    def scatter(j0: int, j1: int, row: int, panel: np.ndarray) -> None:
        if j1 - j0 == 1:
            return  # kernel operated on the tile in place
        off = 0
        for j in range(j0, j1):
            w = columns[j][row].shape[1]
            columns[j][row][...] = panel[:, off : off + w]
            off += w

    try:
        while True:
            msg = conn.recv()
            if isinstance(msg, Shutdown):
                conn.send(("ok", None))
                return
            if isinstance(msg, LoadColumns):
                columns.update(msg.columns)
                conn.send(("ok", None))
            elif isinstance(msg, ClockSync):
                conn.send(("ok", perf_counter()))
            elif isinstance(msg, ReceiveColumn):
                columns[msg.col] = msg.tiles
                conn.send(("ok", None))
            elif isinstance(msg, SendColumn):
                conn.send(("ok", columns.pop(msg.col)))
            elif isinstance(msg, FactorPanel):
                k = msg.k
                col = columns[k]
                out = []
                with timed("GEQRT", k, k, k, k):
                    fg = geqrt(col[k])
                col[k] = fg.r.copy()
                out.append((("G", k, k), fg.v, fg.tf, fg.taus))
                for i in range(k + 1, grid_rows):
                    with timed("TSQRT", k, i, k, k):
                        fe = tsqrt(col[k], col[i])
                    col[k] = fe.r.copy()
                    col[i][...] = 0.0
                    out.append((("E", k, i), fe.v2, fe.tf, fe.taus))
                conn.send(("ok", out))
            elif isinstance(msg, Update):
                k = msg.k
                from ..kernels.geqrt import GEQRTResult
                from ..kernels.tsqrt import TSQRTResult

                runs = _contiguous_runs(sorted(j for j in columns if j > k))
                for key, v, tf, taus in msg.factors:
                    kind, kk, row = key
                    if kind == "G":
                        f = GEQRTResult(r=np.empty(0), v=v, tf=tf, taus=taus)
                        if batch_updates:
                            # One wide panel per contiguous run of owned
                            # columns: fewer, larger GEMMs (see
                            # docs/PERFORMANCE.md).
                            for j0, j1 in runs:
                                panel = gather(j0, j1, row)
                                with timed("UNMQR_BATCH", kk, row, row, j0, j1):
                                    unmqr_batch(f, panel, workspace=workspace)
                                scatter(j0, j1, row, panel)
                        else:
                            for col_idx, col in columns.items():
                                if col_idx <= k:
                                    continue
                                with timed("UNMQR", kk, row, row, col_idx):
                                    unmqr(f, col[row], workspace=workspace)
                    else:
                        f = TSQRTResult(
                            r=np.empty((v.shape[1], v.shape[1])),
                            v2=v, tf=tf, taus=taus,
                        )
                        if batch_updates:
                            for j0, j1 in runs:
                                top = gather(j0, j1, kk)
                                bot = gather(j0, j1, row)
                                with timed("TSMQR_BATCH", kk, row, kk, j0, j1):
                                    tsmqr_batch(f, top, bot, workspace=workspace)
                                scatter(j0, j1, kk, top)
                                scatter(j0, j1, row, bot)
                        else:
                            for col_idx, col in columns.items():
                                if col_idx <= k:
                                    continue
                                with timed("TSMQR", kk, row, kk, col_idx):
                                    tsmqr(f, col[kk], col[row], workspace=workspace)
                conn.send(("ok", None))
            elif isinstance(msg, Collect):
                conn.send(("ok", columns))
            elif isinstance(msg, CollectEvents):
                conn.send(("ok", events))
            else:  # pragma: no cover - protocol guard
                conn.send(("error", f"unknown message {type(msg).__name__}"))
                return
    except EOFError:  # manager died; exit quietly
        return
    except Exception as exc:  # surface kernel errors to the manager
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass


class MultiprocessRuntime:
    """Execute tiled QR across worker processes per a distribution plan.

    Parameters
    ----------
    plan:
        Column/panel ownership (one worker is spawned per participant).
    tracer:
        Optional :class:`repro.observability.Tracer`.  Workers buffer
        per-kernel events locally (zero IPC on the hot path) and the
        manager merges the buffers at join, under each worker's device
        id; column migrations and factor broadcasts are recorded as
        transfers with their real pickled byte counts.

    Notes
    -----
    The manager follows the paper's Sec. IV-D loop exactly: factor panel
    on the panel owner, broadcast factors to every participant with
    remaining columns, migrate column ``k+1`` to the next panel owner.
    """

    def __init__(self, plan: DistributionPlan, tracer=None, batch_updates: bool = False):
        self.plan = plan
        self.tracer = tracer
        self.batch_updates = batch_updates

    def factorize(self, a: np.ndarray, tile_size: int | None = None) -> TiledQRFactorization:
        arr = np.asarray(a, dtype=np.float64)
        if arr.ndim != 2:
            raise ShapeError(f"expected a 2-D matrix, got ndim={arr.ndim}")
        if arr.shape[0] < arr.shape[1]:
            raise ShapeError(f"QR requires m >= n, got shape {arr.shape}")
        b = tile_size if tile_size is not None else self.plan.tile_size
        tiled = TiledMatrix.from_dense(arr, b)
        p, q = tiled.grid_rows, tiled.grid_cols

        tracer = self.tracer if self.tracer is not None and self.tracer.enabled else None
        # fork keeps worker startup cheap and the perf_counter clock
        # shared; elsewhere (Windows, macOS default) fall back to spawn
        # and rebase worker timestamps via a ClockSync handshake.
        start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(start_method)
        workers: dict[str, tuple] = {}
        clock_offset: dict[str, float] = {}
        try:
            for dev in self.plan.participants:
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child, p, q, tracer is not None, self.batch_updates),
                    daemon=True,
                )
                proc.start()
                child.close()
                workers[dev] = (parent, proc)

            def ask(dev: str, msg, xfer: tuple[str, float, str] | None = None):
                """Round-trip one message; ``xfer=(src, bytes, tag)`` records
                the send leg (pickle + pipe write) as a transfer."""
                conn = workers[dev][0]
                t0 = perf_counter()
                conn.send(msg)
                if tracer is not None and xfer is not None:
                    src, nbytes, tag = xfer
                    tracer.record_transfer(
                        src=src, dst=dev, num_bytes=nbytes,
                        start=t0, end=perf_counter(), tag=tag,
                    )
                status, payload = conn.recv()
                if status != "ok":
                    raise SimulationError(f"worker {dev} failed: {payload}")
                return payload

            # --- clock handshake (traced spawn runs only) ----------------
            if tracer is not None:
                for dev in self.plan.participants:
                    if start_method == "fork":
                        clock_offset[dev] = 0.0  # shared CLOCK_MONOTONIC
                    else:
                        t0 = perf_counter()
                        worker_now = ask(dev, ClockSync())
                        t1 = perf_counter()
                        clock_offset[dev] = 0.5 * (t0 + t1) - worker_now

            # --- initial distribution (owned columns per device) --------
            per_dev: dict[str, dict[int, list[np.ndarray]]] = {
                d: {} for d in self.plan.participants
            }
            for j in range(q):
                owner = self.plan.column_owner(j)
                per_dev[owner][j] = [tiled.tile(i, j).copy() for i in range(p)]
            for dev, cols in per_dev.items():
                ask(dev, LoadColumns(columns=cols))

            # --- panel loop (paper Sec. IV-D) ----------------------------
            col_home = {j: self.plan.column_owner(j) for j in range(q)}
            log: list[tuple[Task, object]] = []
            n_panels = min(p, q)
            for k in range(n_panels):
                owner_p = self.plan.panel_owner(k)
                if col_home[k] != owner_p:
                    t0 = perf_counter()
                    tiles = ask(col_home[k], SendColumn(col=k))
                    ask(owner_p, ReceiveColumn(col=k, tiles=tiles))
                    if tracer is not None:
                        tracer.record_transfer(
                            src=col_home[k], dst=owner_p,
                            num_bytes=float(sum(t.nbytes for t in tiles)),
                            start=t0, end=perf_counter(), tag=f"col{k}",
                        )
                    col_home[k] = owner_p
                factors = ask(owner_p, FactorPanel(k=k))
                bcast_bytes = float(sum(a.nbytes for f in factors for a in f[1:]))
                # Broadcast to every device still holding columns > k.
                for dev in self.plan.participants:
                    if any(j > k and col_home[j] == dev for j in range(q)):
                        xfer = (owner_p, bcast_bytes, f"bcast{k}") if dev != owner_p else None
                        ask(dev, Update(k=k, factors=factors), xfer=xfer)
                log.extend(_deserialize_log(factors, b))

            # --- gather the R factor (and traced worker event buffers) ----
            for dev in self.plan.participants:
                cols = ask(dev, Collect())
                for j, tiles in cols.items():
                    for i in range(p):
                        tiled.set_tile(i, j, tiles[i])
                if tracer is not None:
                    off = clock_offset.get(dev, 0.0)
                    for kind, k, row, row2, col, col_end, start, end in ask(
                        dev, CollectEvents()
                    ):
                        tracer.record_task(
                            Task(TaskKind[kind], k, row, row2, col, col_end),
                            device=dev, start=start + off, end=end + off, tile_size=b,
                        )
                ask(dev, Shutdown())
        finally:
            for parent, proc in workers.values():
                try:
                    parent.close()
                except OSError:
                    pass
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - hygiene
                    proc.terminate()

        return TiledQRFactorization(r=tiled, log=log, shape=arr.shape)


def _deserialize_log(factors, b: int):
    """Rebuild kernel-result objects from a worker's factor payload."""
    from ..kernels.geqrt import GEQRTResult
    from ..kernels.tsqrt import TSQRTResult

    out = []
    for key, v, tf, taus in factors:
        kind, k, row = key
        if kind == "G":
            task = Task(TaskKind.GEQRT, k, row, row, k)
            out.append((task, GEQRTResult(r=np.empty(0), v=v, tf=tf, taus=taus)))
        else:
            task = Task(TaskKind.TSQRT, k, row, k, k)
            out.append(
                (task, TSQRTResult(r=np.empty((b, b)), v2=v, tf=tf, taus=taus))
            )
    return out
