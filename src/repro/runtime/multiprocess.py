"""Distributed-memory execution: the paper's Fig. 7 as real processes.

The paper's runtime is a manager thread plus one computing thread per
device, with explicit data movement between device memories.  This
module realizes that structure with OS processes and pipes — the
closest single-machine analog of the paper's system that Python can
express honestly:

* every *worker process* owns the tiles of the columns its device is
  assigned (nothing else — there is no shared matrix);
* the *manager* drives the panel loop: tells the panel owner to
  factorize, routes the reflector factors to the devices that need them
  (the Eq. 11 broadcasts), and migrates the next panel column to the
  panel owner — every byte that the simulators price is a real pickled
  message here;
* workers update their own columns with the real NumPy kernels.

This runtime exists to *validate the distribution logic end to end*
(ownership, broadcast, column migration) rather than for speed: with
CPython process overheads, small matrices dominate on IPC.  Results are
bit-identical to the serial runtime.

Fault tolerance
---------------
With a :class:`~repro.resilience.RetryPolicy` (or a fault plan) the
manager runs each panel as a *transaction* that survives device loss:

* **detection** — a worker that closes its pipe, reports a persistent
  (retry-exhausted) kernel failure, or misses its reply deadline is
  declared dead and its process reaped;
* **failover** — the survivors are re-planned by re-invoking the guide
  array construction (paper Alg. 4) over the remaining devices, and the
  dead device's tile columns migrate to them: finished R columns are
  restored from the manager's shadow copies (captured at each
  ``FactorPanel`` reply), trailing columns are *reconstructed* by
  replaying the logged reflector factors against the pristine input
  column — the factor log the manager already keeps for building ``Q``
  doubles as the redundancy that makes every column recoverable;
* **replay** — the interrupted panel then re-runs from its frontier:
  the per-column ``applied`` watermark ensures re-broadcast updates are
  sent only to columns that have not absorbed them, so no update is
  ever applied twice.

Workers additionally run their kernels under the same retry envelope as
the in-process runtimes (snapshot written tiles, replay on retryable
failure), with optional chaos injection and NaN/Inf health sentinels;
``resilience.*`` counter increments are piggybacked on every reply and
folded into the manager's metrics registry.

Mid-run checkpoints are panel-aligned: after every ``checkpoint_every``
panels the manager gathers the live columns and writes a format-2
snapshot (see :mod:`repro.runtime.checkpoint`) whose completed set is
exactly the per-tile DAG tasks of the finished panels; such snapshots
resume on any runtime.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..core.plan import DistributionPlan
from ..errors import ShapeError, SimulationError, WorkerFailoverError
from ..kernels.backends import resolve_backend
from ..kernels.workspace import Workspace
from ..tiles import TiledMatrix
from .factorization import TiledQRFactorization
from ..dag.tasks import Task, TaskKind
from ..dag.trees import canonical_tree, resolve_tree


class _NullTimer:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_TIMER = _NullTimer()


class _EventTimer:
    """Times one worker-side kernel call into the event buffer."""

    __slots__ = ("events", "key", "clock", "start")

    def __init__(self, events, kind, k, row, row2, col, col_end, clock):
        self.events = events
        self.key = (kind, k, row, row2, col, col_end)
        self.clock = clock
        self.start = 0.0

    def __enter__(self):
        self.start = self.clock()
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.events.append(self.key + (self.start, self.clock()))
        return False


class _WorkerDied(Exception):
    """Internal: a worker is dead or unresponsive (device + reason)."""

    def __init__(self, device: str, reason: str):
        super().__init__(f"worker {device} failed: {reason}")
        self.device = device
        self.reason = reason


# ---------------------------------------------------------------------------
# Messages (manager -> worker); workers answer ("ok"|"error", payload, stats).
# ---------------------------------------------------------------------------

@dataclass
class LoadColumns:
    """Seed the worker with its owned columns."""

    columns: dict[int, list[np.ndarray]]  # col -> tiles top..bottom


@dataclass
class FactorPanel:
    """Run the panel reduction on panel ``k`` (worker owns col k).

    ``ops`` is the elimination tree's ordered op list — ``("G", row)``
    for a GEQRT, ``("TS", bot, top)`` / ``("TT", bot, top)`` for a
    merge — computed manager-side from :mod:`repro.dag.trees` so the
    worker stays tree-agnostic.  Replies with ``(factors,
    column_tiles)``: the serialized factors (keys ``(op_kind, k, row,
    top)``) and a copy of the finished column — the manager's shadow R
    column for failover.
    """

    k: int
    ops: list


@dataclass
class ReceiveColumn:
    """Install a migrated column (ownership transfer)."""

    col: int
    tiles: list[np.ndarray]


@dataclass
class SendColumn:
    """Ship a column back to the manager (for migration)."""

    col: int


@dataclass
class Update:
    """Apply broadcast panel factors to the worker's columns > k.

    ``cols`` restricts the update to an explicit column list (failover
    re-broadcasts use it so a column never absorbs the same panel's
    update twice); ``None`` means every owned column right of ``k``.
    """

    k: int
    factors: list  # [(task_tuple, kind, payload-arrays...)]
    cols: list[int] | None = None


@dataclass
class Collect:
    """Return every owned column (non-destructive)."""


@dataclass
class CollectEvents:
    """Return any residual kernel events (traced/live runs only).

    Events are ``(kind, k, row, row2, col, col_end, start, end)``
    tuples (``col_end`` is ``-1`` for per-tile kernels) stamped with
    the worker's ``perf_counter``.  Workers piggyback the buffer on
    every reply (see ``reply``), so this end-of-run sweep normally
    returns an empty list — it exists as a backstop for events recorded
    after the last message's reply was built.  Under the fork start
    method the clock is shared with the manager (CLOCK_MONOTONIC), so
    timestamps merge directly; under spawn ``perf_counter`` epochs
    differ per process, so the manager rebases each buffer with the
    offset measured by :class:`ClockSync` at worker startup.
    """


@dataclass
class ClockSync:
    """Reply with the worker's current ``perf_counter`` reading.

    The manager brackets the round-trip with its own clock and takes
    the midpoint as the exchange instant, yielding a manager-minus-
    worker offset accurate to about half the pipe round-trip — plenty
    for millisecond-scale kernel timelines.
    """


@dataclass
class Shutdown:
    pass


def _contiguous_runs(cols: list[int]) -> list[tuple[int, int]]:
    """Group a sorted column list into half-open contiguous runs."""
    runs: list[tuple[int, int]] = []
    for j in cols:
        if runs and runs[-1][1] == j:
            runs[-1] = (runs[-1][0], j + 1)
        else:
            runs.append((j, j + 1))
    return runs


#: Task kinds whose first written tile is an R tile — the targets of the
#: per-panel residual probe in health-checked runs.
_FACTOR_KINDS = (TaskKind.GEQRT, TaskKind.TSQRT, TaskKind.TTQRT)


def _worker_main(
    conn,
    grid_rows: int,
    grid_cols: int,
    trace: bool = False,
    batch_updates: bool = False,
    device_id: str = "worker",
    fault_plan=None,
    retry_policy=None,
    health: bool = False,
    backend_name: str = "reference",
) -> None:
    """Worker process body: owns columns, executes kernels on demand."""
    columns: dict[int, list[np.ndarray]] = {}
    events: list[tuple] = []
    workspace = Workspace()
    # Backends travel by *name* (registered in every process at import),
    # not by pickled object, so spawn and fork behave identically.
    kern = resolve_backend(backend_name)
    stats = {"retries": 0, "faults_injected": 0, "workspace_fallbacks": 0}
    chaos = None
    if fault_plan is not None:
        from ..resilience import ChaosEngine

        chaos = ChaosEngine(fault_plan, device=device_id)
    policy = retry_policy
    if policy is None and (chaos is not None or health):
        from ..resilience import DEFAULT_RETRY_POLICY

        policy = DEFAULT_RETRY_POLICY

    def reply(status: str, payload) -> None:
        stats["workspace_fallbacks"] += workspace.fallbacks
        workspace.fallbacks = 0
        delta = dict(stats)
        for key in stats:
            stats[key] = 0
        if events:
            # Piggyback buffered kernel events on every reply instead of
            # holding them for the end-of-run CollectEvents: the manager
            # folds them immediately, so a worker that later dies (kill,
            # hang, crash) has already delivered everything up to its
            # last reply — partial activity survives failover, and live
            # telemetry sees kernels as each message completes.
            delta["events"] = events[:]
            events.clear()
        conn.send((status, payload, delta))

    # Per-column squared norms of the data this worker holds, maintained
    # on column arrival/departure — the reference magnitude for the
    # per-panel residual probes (health checks only).
    col_norm_sq: dict[int, float] = {}

    def note_columns(cols: dict) -> None:
        if not health:
            return
        for j, tiles in cols.items():
            col_norm_sq[j] = sum(float(np.linalg.norm(t)) ** 2 for t in tiles)

    def run_kernel(task: Task, written_refs, fn):
        """The worker-side retry envelope around one kernel call.

        ``written_refs`` is a list of zero-arg callables returning the
        *current* tiles the kernel writes (rebinding-safe); ``fn`` runs
        the kernel and returns its result.  Mirrors
        :func:`~repro.runtime.core_exec.apply_task_resilient`.
        """
        if policy is None:
            return fn()
        from ..resilience import RETRYABLE
        from ..resilience.health import check_task_outputs, panel_residual_probe

        last = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                stats["retries"] += 1
                import time as _t

                pause = policy.backoff_seconds(attempt, key=task.sort_key())
                if pause > 0.0:
                    _t.sleep(pause)
            written = [ref() for ref in written_refs]
            snapshot = [w.copy() for w in written]
            try:
                stall = 0.0
                if chaos is not None:
                    fired_before = chaos.faults_injected
                    inj0 = perf_counter()
                    chaos.before_task(task, device_id)
                    stall = perf_counter() - inj0
                out = fn()
                written = [ref() for ref in written_refs]
                if chaos is not None:
                    chaos.corrupt_outputs(task, written, device_id)
                    stats["faults_injected"] += chaos.faults_injected - fired_before
                    if trace and stall > 0.0 and events:
                        # Fold an injected delay/hang into the task's
                        # timed slot: the threaded runtime times around
                        # the injection point, so the trace (and live
                        # straggler detection) must see the slow task
                        # here too.
                        *key, t0, t1 = events[-1]
                        events[-1] = (*key, t0 - stall, t1)
                if health:
                    check_task_outputs(task, written)
                    if task.kind in _FACTOR_KINDS and col_norm_sq:
                        # Residual probe against the norm of the columns
                        # this worker holds (orthogonal updates preserve
                        # it, so the reference stays valid mid-run).
                        panel_residual_probe(
                            written[0], sum(col_norm_sq.values()) ** 0.5, task.k
                        )
                return out
            except RETRYABLE as exc:
                if chaos is not None:
                    stats["faults_injected"] += chaos.faults_injected - fired_before
                # Restore *through the refs*: kernels may have rebound the
                # column slot to a fresh array, and the live one is what
                # the retry will read.
                for ref, s in zip(written_refs, snapshot):
                    ref()[...] = s
                last = exc
                if attempt == policy.max_attempts:
                    raise
        raise last  # pragma: no cover - unreachable

    def timed(kind: str, k: int, row: int, row2: int, col: int, col_end: int = -1):
        if not trace:
            return _NULL_TIMER
        return _EventTimer(events, kind, k, row, row2, col, col_end, perf_counter)

    def gather(j0: int, j1: int, row: int) -> np.ndarray:
        """Row panel over owned columns ``[j0, j1)`` (zero-copy if single)."""
        if j1 - j0 == 1:
            return columns[j0][row]
        return np.hstack([columns[j][row] for j in range(j0, j1)])

    def scatter(j0: int, j1: int, row: int, panel: np.ndarray) -> None:
        if j1 - j0 == 1:
            return  # kernel operated on the tile in place
        off = 0
        for j in range(j0, j1):
            w = columns[j][row].shape[1]
            columns[j][row][...] = panel[:, off : off + w]
            off += w

    try:
        while True:
            msg = conn.recv()
            if isinstance(msg, Shutdown):
                reply("ok", None)
                return
            if isinstance(msg, LoadColumns):
                columns.update(msg.columns)
                note_columns(msg.columns)
                reply("ok", None)
            elif isinstance(msg, ClockSync):
                reply("ok", perf_counter())
            elif isinstance(msg, ReceiveColumn):
                columns[msg.col] = msg.tiles
                note_columns({msg.col: msg.tiles})
                reply("ok", None)
            elif isinstance(msg, SendColumn):
                col_norm_sq.pop(msg.col, None)
                reply("ok", columns.pop(msg.col))
            elif isinstance(msg, FactorPanel):
                k = msg.k
                col = columns[k]
                out = []
                for op in msg.ops:
                    if op[0] == "G":
                        row = op[1]

                        def do_geqrt(row=row):
                            with timed("GEQRT", k, row, row, k):
                                fg = kern.geqrt(col[row])
                            col[row] = fg.r.copy()
                            return fg

                        task = Task(TaskKind.GEQRT, k, row, row, k)
                        fg = run_kernel(task, [lambda row=row: col[row]], do_geqrt)
                        out.append((("G", k, row, row), fg.v, fg.tf, fg.taus))
                    else:
                        op_kind, bot, top = op
                        tt = op_kind == "TT"

                        def do_merge(bot=bot, top=top, tt=tt):
                            with timed("TTQRT" if tt else "TSQRT", k, bot, top, k):
                                fe = (kern.ttqrt if tt else kern.tsqrt)(
                                    col[top], col[bot]
                                )
                            col[top] = fe.r.copy()
                            col[bot][...] = 0.0
                            return fe

                        task = Task(
                            TaskKind.TTQRT if tt else TaskKind.TSQRT, k, bot, top, k
                        )
                        fe = run_kernel(
                            task,
                            [lambda r=top: col[r], lambda r=bot: col[r]],
                            do_merge,
                        )
                        out.append(((op_kind, k, bot, top), fe.v2, fe.tf, fe.taus))
                reply("ok", (out, [t.copy() for t in col]))
            elif isinstance(msg, Update):
                k = msg.k
                from ..kernels.geqrt import GEQRTResult
                from ..kernels.tsqrt import TSQRTResult

                if msg.cols is None:
                    targets = sorted(j for j in columns if j > k)
                else:
                    # Preserve the manager's order: columns arrive sorted
                    # by critical-path rank (most critical first).
                    targets = [j for j in msg.cols if j in columns and j > k]
                runs = _contiguous_runs(sorted(targets))
                if targets:
                    order = {j: n for n, j in enumerate(targets)}
                    runs.sort(key=lambda r: min(order[j] for j in range(r[0], r[1])))
                for key, v, tf, taus in msg.factors:
                    kind, kk, row, top = key
                    if kind == "G":
                        f = GEQRTResult(r=np.empty(0), v=v, tf=tf, taus=taus)
                        if batch_updates:
                            # One wide panel per contiguous run of owned
                            # columns: fewer, larger GEMMs (see
                            # docs/PERFORMANCE.md).
                            for j0, j1 in runs:

                                def do_batch(j0=j0, j1=j1, f=f, kk=kk, row=row):
                                    panel = gather(j0, j1, row)
                                    with timed("UNMQR_BATCH", kk, row, row, j0, j1):
                                        kern.unmqr_batch(f, panel, workspace=workspace)
                                    scatter(j0, j1, row, panel)

                                task = Task(TaskKind.UNMQR_BATCH, kk, row, row, j0, j1)
                                run_kernel(
                                    task,
                                    [
                                        (lambda j=j, row=row: columns[j][row])
                                        for j in range(j0, j1)
                                    ],
                                    do_batch,
                                )
                        else:
                            for col_idx in targets:

                                def do_unmqr(col_idx=col_idx, f=f, kk=kk, row=row):
                                    with timed("UNMQR", kk, row, row, col_idx):
                                        kern.unmqr(f, columns[col_idx][row], workspace=workspace)

                                task = Task(TaskKind.UNMQR, kk, row, row, col_idx)
                                run_kernel(
                                    task,
                                    [lambda j=col_idx, row=row: columns[j][row]],
                                    do_unmqr,
                                )
                    else:
                        tt = kind == "TT"
                        f = TSQRTResult(
                            r=np.empty((v.shape[1], v.shape[1])),
                            v2=v, tf=tf, taus=taus,
                            kind="TT" if tt else "TS",
                        )
                        pair_batch = kern.ttmqr_batch if tt else kern.tsmqr_batch
                        pair_tile = kern.ttmqr if tt else kern.tsmqr
                        batch_kind = (
                            TaskKind.TTMQR_BATCH if tt else TaskKind.TSMQR_BATCH
                        )
                        tile_kind = TaskKind.TTMQR if tt else TaskKind.TSMQR
                        if batch_updates:
                            for j0, j1 in runs:

                                def do_batch(
                                    j0=j0, j1=j1, f=f, kk=kk, row=row, top=top,
                                    fn=pair_batch, label=batch_kind.name,
                                ):
                                    tpan = gather(j0, j1, top)
                                    bpan = gather(j0, j1, row)
                                    with timed(label, kk, row, top, j0, j1):
                                        fn(f, tpan, bpan, workspace=workspace)
                                    scatter(j0, j1, top, tpan)
                                    scatter(j0, j1, row, bpan)

                                task = Task(batch_kind, kk, row, top, j0, j1)
                                refs = [
                                    (lambda j=j, r=r: columns[j][r])
                                    for j in range(j0, j1)
                                    for r in (top, row)
                                ]
                                run_kernel(task, refs, do_batch)
                        else:
                            for col_idx in targets:

                                def do_pair(
                                    col_idx=col_idx, f=f, kk=kk, row=row, top=top,
                                    fn=pair_tile, label=tile_kind.name,
                                ):
                                    with timed(label, kk, row, top, col_idx):
                                        fn(
                                            f,
                                            columns[col_idx][top],
                                            columns[col_idx][row],
                                            workspace=workspace,
                                        )

                                task = Task(tile_kind, kk, row, top, col_idx)
                                refs = [
                                    lambda j=col_idx, r=top: columns[j][r],
                                    lambda j=col_idx, r=row: columns[j][r],
                                ]
                                run_kernel(task, refs, do_pair)
                reply("ok", None)
            elif isinstance(msg, Collect):
                reply("ok", columns)
            elif isinstance(msg, CollectEvents):
                reply("ok", events)
            else:  # pragma: no cover - protocol guard
                reply("error", f"unknown message {type(msg).__name__}")
                return
    except EOFError:  # manager died; exit quietly
        return
    except Exception as exc:  # surface kernel errors to the manager
        try:
            reply("error", f"{type(exc).__name__}: {exc}")
        except (BrokenPipeError, OSError):
            pass


class MultiprocessRuntime:
    """Execute tiled QR across worker processes per a distribution plan.

    Parameters
    ----------
    plan:
        Column/panel ownership (one worker is spawned per participant).
    elimination:
        Elimination-tree name or alias (see :mod:`repro.dag.trees`);
        the manager computes each panel's op list from the tree and
        ships it to the panel owner, so every registered tree runs
        distributed.  Checkpoints record the canonical tree name and
        resume only on a runtime configured with the same tree.
    tracer:
        Optional :class:`repro.observability.Tracer`.  Workers buffer
        per-kernel events locally (zero IPC on the hot path) and the
        manager merges the buffers at join, under each worker's device
        id; column migrations and factor broadcasts are recorded as
        transfers with their real pickled byte counts.
    retry_policy:
        Optional :class:`~repro.resilience.RetryPolicy`.  Enables the
        fault-tolerant path: workers retry kernels per the policy, and
        the manager classifies pipe EOF / persistent failure / missed
        reply deadlines as device death and fails over (see module
        docstring).  ``policy.deadline`` is the per-kernel budget; the
        manager scales it by the kernel count of each message to get
        the reply deadline.
    chaos_plan:
        Optional :class:`~repro.resilience.FaultPlan` shipped to every
        worker (specs select workers via their ``device`` field).
        Implies the fault-tolerant path.
    health_checks:
        NaN/Inf-check kernel outputs worker-side (retryable failures).
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; receives
        the ``resilience.*`` counters (worker-side increments are
        piggybacked on replies and folded in here).
    checkpoint_every / checkpoint_path:
        Write a panel-aligned format-2 snapshot every
        ``checkpoint_every`` *panels* (see module docstring).
    backend:
        Kernel backend *name* (or backend object carrying a registered
        name).  Workers resolve the name in their own process — the
        backend must therefore be registered at import time in every
        interpreter, which all shipped backends are.  The manager's
        failover replay uses the same backend, so reconstructed columns
        match the lost ones bit for bit when the backend is
        deterministic.
    bus:
        Optional :class:`repro.observability.TelemetryBus`.  Worker
        kernel events ride each reply and are published (ClockSync-
        rebased) as ``task.finish`` the moment the reply folds; every
        reply also publishes a per-device ``heartbeat``, and with a
        ``heartbeat_interval`` on the bus the manager slices its reply-
        deadline poll so a silent worker raises ``heartbeat.missed``
        events *before* the deadline failover fires.  Failovers,
        checkpoints, and run start/finish publish too.
    bundle_out:
        Optional failure-bundle path, identical to
        :class:`~repro.runtime.serial.SerialRuntime`'s; the bundle
        additionally embeds the distribution plan and its decision
        audit.

    Notes
    -----
    The manager follows the paper's Sec. IV-D loop exactly: factor panel
    on the panel owner, broadcast factors to every participant with
    remaining columns, migrate column ``k+1`` to the next panel owner.
    """

    def __init__(
        self,
        plan: DistributionPlan,
        tracer=None,
        batch_updates: bool = False,
        elimination: str = "TS",
        retry_policy=None,
        chaos_plan=None,
        health_checks: bool = False,
        metrics=None,
        checkpoint_every: int | None = None,
        checkpoint_path=None,
        backend=None,
        bus=None,
        bundle_out=None,
    ):
        self.plan = plan
        self.tracer = tracer
        self.batch_updates = batch_updates
        self.elimination = canonical_tree(elimination)
        self.retry_policy = retry_policy
        self.chaos_plan = chaos_plan
        self.health_checks = health_checks
        self.metrics = metrics
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.backend = resolve_backend(backend)
        self.bus = bus
        self.bundle_out = bundle_out

    @property
    def resilient(self) -> bool:
        return (
            self.retry_policy is not None
            or self.chaos_plan is not None
            or self.health_checks
        )

    def factorize(
        self, a: np.ndarray, tile_size: int | None = None, resume=None
    ) -> TiledQRFactorization:
        if self.bundle_out is None:
            return self._factorize(a, tile_size, resume)
        from .serial import run_with_bundle_capture

        meta = {
            "runtime": "multiprocess",
            "elimination": self.elimination,
            "batch_updates": self.batch_updates,
            "backend": self.backend.name,
            "participants": list(self.plan.participants),
        }
        if self.retry_policy is not None:
            meta["retry_policy"] = self.retry_policy.to_dict()
        return run_with_bundle_capture(
            self,
            lambda: self._factorize(a, tile_size, resume),
            fault_plan=self.chaos_plan,
            plan=self.plan,
            meta=meta,
        )

    def _factorize(
        self, a: np.ndarray, tile_size: int | None = None, resume=None
    ) -> TiledQRFactorization:
        if resume is not None:
            tiled, k0, log0 = self._resume_state(resume)
            arr_shape = resume.shape
        else:
            arr = np.asarray(a, dtype=np.float64)
            if arr.ndim != 2:
                raise ShapeError(f"expected a 2-D matrix, got ndim={arr.ndim}")
            if arr.shape[0] < arr.shape[1]:
                raise ShapeError(f"QR requires m >= n, got shape {arr.shape}")
            b0 = tile_size if tile_size is not None else self.plan.tile_size
            tiled = TiledMatrix.from_dense(arr, b0)
            arr_shape = arr.shape
            k0, log0 = 0, []
        b = tiled.tile_size
        p, q = tiled.grid_rows, tiled.grid_cols
        tree = resolve_tree(self.elimination)

        # Critical-path column priorities (see docs/PERFORMANCE.md):
        # rank each trailing column of each panel by the highest
        # bottom-level rank among its update tasks, so broadcasts hit
        # the most critical columns — the upcoming panels — first.
        from ..dag import build_dag
        from ..dag.analysis import bottom_level_ranks, task_weight_model

        ref_dag = build_dag(p, q, tree, batch_updates=False)
        col_rank: dict[tuple[int, int], float] = {}
        for t, r in bottom_level_ranks(ref_dag, task_weight_model(b)).items():
            key = (t.k, t.col)
            if r > col_rank.get(key, -1.0):
                col_rank[key] = r

        def panel_ops(k: int) -> list:
            ops: list = [("G", i) for i in tree.geqrt_rows(k, p)]
            merge = "TT" if tree.uses_tt else "TS"
            ops += [(merge, bot, top) for bot, top in tree.pairs(k, p)]
            return ops

        tracer = self.tracer if self.tracer is not None and self.tracer.enabled else None
        metrics = self.metrics
        bus = self.bus
        policy = self.retry_policy
        if policy is None and self.resilient:
            from ..resilience import DEFAULT_RETRY_POLICY

            policy = DEFAULT_RETRY_POLICY
        resilient = self.resilient

        # fork keeps worker startup cheap and the perf_counter clock
        # shared; elsewhere (Windows, macOS default) fall back to spawn
        # and rebase worker timestamps via a ClockSync handshake.
        start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(start_method)
        workers: dict[str, tuple] = {}
        dead: set[str] = set()
        clock_offset: dict[str, float] = {}

        def spawn(dev: str) -> None:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child, p, q, tracer is not None or bus is not None,
                    self.batch_updates,
                    dev, self.chaos_plan, self.retry_policy, self.health_checks,
                    self.backend.name,
                ),
                daemon=True,
            )
            proc.start()
            child.close()
            workers[dev] = (parent, proc)

        def reap(dev: str) -> None:
            """Declare a worker dead and reclaim its process."""
            dead.add(dev)
            parent, proc = workers[dev]
            try:
                parent.close()
            except OSError:
                pass
            proc.join(timeout=0.5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)

        def alive() -> list[str]:
            return [d for d in self.plan.participants if d not in dead]

        def fold_events(dev: str, evts) -> None:
            """Merge one worker's kernel-event batch (ClockSync-rebased)."""
            off = clock_offset.get(dev, 0.0)
            for kind, kk, row, row2, col, col_end, start, end in evts:
                task = Task(TaskKind[kind], kk, row, row2, col, col_end)
                if tracer is not None:
                    tracer.record_task(
                        task, device=dev, start=start + off, end=end + off,
                        tile_size=b,
                    )
                if bus is not None:
                    bus.task_finish(task, dev, start=start + off, end=end + off)

        def fold_stats(dev: str, delta: dict) -> None:
            if not delta:
                return
            evts = delta.pop("events", None)
            if evts:
                fold_events(dev, evts)
            if metrics is None:
                return
            for name, n in delta.items():
                if not n:
                    continue
                if name == "workspace_fallbacks":
                    metrics.counter("kernel.workspace.fallbacks").inc(n)
                else:
                    metrics.counter(f"resilience.{name}").inc(n)

        def ask(dev: str, msg, xfer=None, n_kernels: int = 1):
            """Round-trip one message; ``xfer=(src, bytes, tag)`` records
            the send leg (pickle + pipe write) as a transfer.

            In resilient mode every failure mode — EOF, error status,
            missed deadline — surfaces as :class:`_WorkerDied` so the
            panel transaction can fail over; otherwise failures raise
            :class:`SimulationError` as before.  With a live bus whose
            ``heartbeat_interval`` is set, the deadline wait is sliced
            into heartbeat intervals: each silent slice publishes a
            ``heartbeat.missed`` event, so a hung worker is visible well
            before the deadline expires and the failover fires.
            """
            if dev in dead:
                raise _WorkerDied(dev, "already declared dead")
            conn = workers[dev][0]
            try:
                t0 = perf_counter()
                conn.send(msg)
                if tracer is not None and xfer is not None:
                    src, nbytes, tag = xfer
                    tracer.record_transfer(
                        src=src, dst=dev, num_bytes=nbytes,
                        start=t0, end=perf_counter(), tag=tag,
                    )
                if policy is not None and policy.deadline is not None:
                    budget = policy.deadline * max(1, n_kernels) + 1.0
                    hb = bus.heartbeat_interval if bus is not None else None
                    got = True
                    if hb is not None and hb < budget:
                        waited = 0.0
                        got = False
                        while waited < budget:
                            step = min(hb, budget - waited)
                            if conn.poll(step):
                                got = True
                                break
                            waited += step
                            if waited < budget:
                                bus.publish(
                                    "heartbeat.missed",
                                    dev,
                                    {
                                        "silent_seconds": waited,
                                        "budget": budget,
                                        "message": type(msg).__name__,
                                    },
                                )
                    else:
                        got = conn.poll(budget)
                    if not got:
                        if metrics is not None:
                            metrics.counter("resilience.timeouts").inc()
                        raise _WorkerDied(
                            dev, f"no reply within {budget:.1f}s (hung?)"
                        )
                status, payload, stats = conn.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
                err = _WorkerDied(dev, f"pipe closed ({type(exc).__name__})")
                if resilient:
                    raise err from None
                raise SimulationError(str(err)) from None
            fold_stats(dev, stats)
            if bus is not None:
                bus.publish("heartbeat", dev, {"message": type(msg).__name__})
            if status != "ok":
                if resilient:
                    raise _WorkerDied(dev, str(payload))
                raise SimulationError(f"worker {dev} failed: {payload}")
            return payload

        # -- manager-side redundancy for failover -------------------------
        # Pristine input columns + per-column base replay level.  A lost
        # trailing column j is rebuilt by replaying panel factors
        # base_level[j]+1 .. applied[j] against base[j].
        base: dict[int, list[np.ndarray]] = {}
        base_level: dict[int, int] = {}
        applied: dict[int, int] = {}
        panel_factors: dict[int, list] = {}
        shadow_r: dict[int, list[np.ndarray]] = {}
        panel_done: dict[int, bool] = {}
        current_main = self.plan.main_device

        def replay_column(j: int) -> list[np.ndarray]:
            """Reconstruct trailing column ``j`` manager-side.

            Replays the logged per-tile update kernels for panels
            ``base_level[j]+1 .. applied[j]`` against the pristine base
            column — the same kernels in the same order a per-tile
            worker would have run, so the rebuilt column is
            bit-identical to the lost one (see docs/RELIABILITY.md for
            the batched-update caveat).
            """
            from ..kernels.geqrt import GEQRTResult
            from ..kernels.tsqrt import TSQRTResult

            col = [t.copy() for t in base[j]]
            for kk in range(base_level[j] + 1, applied[j] + 1):
                for key, v, tf, taus in panel_factors[kk]:
                    kind, kp, row, top = key
                    if kind == "G":
                        f = GEQRTResult(r=np.empty(0), v=v, tf=tf, taus=taus)
                        self.backend.unmqr(f, col[row])
                    else:
                        tt = kind == "TT"
                        f = TSQRTResult(
                            r=np.empty((v.shape[1], v.shape[1])),
                            v2=v, tf=tf, taus=taus, kind="TT" if tt else "TS",
                        )
                        fn = self.backend.ttmqr if tt else self.backend.tsmqr
                        fn(f, col[top], col[row])
            return col

        def recover_column(j: int) -> list[np.ndarray]:
            if panel_done.get(j):
                return [t.copy() for t in shadow_r[j]]
            return replay_column(j)

        n_panels = min(p, q)
        col_home = {j: self.plan.column_owner(j) for j in range(q)}
        log: list[tuple[Task, object]] = list(log0)

        def panel_owner(k: int) -> str:
            if self.plan.panel_follows_column:
                owner = col_home[k]
                return owner if owner not in dead else current_main
            return current_main

        def note_death(dev: str, k: int, reason: str) -> None:
            """Record one device death: reap it and re-elect the main.

            Never raises — the recovery work (column migration) happens in
            :func:`rehome_stranded`, which the panel transaction re-enters
            until it succeeds even if further devices die during it.
            """
            nonlocal current_main
            if dev in dead:
                return
            reap(dev)
            if metrics is not None:
                metrics.counter("resilience.worker_deaths").inc()
                metrics.counter("resilience.failovers").inc()
            survivors = alive()
            if current_main == dev and survivors:
                current_main = max(
                    survivors,
                    key=lambda d: self.plan.system.device(d).update_throughput(b),
                )
            if tracer is not None:
                tracer.record_annotation(
                    "failover",
                    f"{dev} died at panel {k} ({reason}); main={current_main}",
                    dev,
                )
            if bus is not None:
                bus.publish(
                    "failover",
                    dev,
                    {
                        "died": True,
                        "panel": k,
                        "reason": reason,
                        "main": current_main,
                        "detail": f"{dev} died at panel {k} ({reason})",
                    },
                )

        def rehome_stranded(k: int) -> None:
            """Migrate every column stranded on a dead device to survivors.

            Re-invokes the guide-array construction (paper Alg. 4) over
            the surviving devices to decide the new homes; stranded
            columns are rebuilt manager-side (shadow R / factor replay)
            and installed with ``ReceiveColumn``.  May raise
            :class:`_WorkerDied` if a survivor dies mid-migration — the
            panel transaction loops back through :func:`note_death`.
            """
            from ..core.distribution import guide_for_participants
            from ..errors import PlanError, ReproError

            stranded = sorted(j for j in range(q) if col_home[j] in dead)
            if not stranded:
                return
            survivors = alive()
            if not survivors:
                raise WorkerFailoverError(
                    f"no surviving devices to fail over to at panel {k}; "
                    f"columns {stranded} are unrecoverable in-flight"
                )
            try:
                _ratio, guide = guide_for_participants(
                    self.plan.system, survivors, current_main, p, q, b
                )
            except (PlanError, ReproError):
                guide = list(survivors)
            if not guide:
                guide = list(survivors)
            moved_to = []
            for idx, j in enumerate(stranded):
                new_owner = guide[idx % len(guide)]
                tiles = recover_column(j)
                ask(new_owner, ReceiveColumn(col=j, tiles=tiles))
                col_home[j] = new_owner
                moved_to.append(new_owner)
            if tracer is not None:
                tracer.record_annotation(
                    "failover",
                    f"migrated column(s) {stranded} -> "
                    f"{{{', '.join(sorted(set(moved_to)))}}}",
                    "manager",
                )
            if bus is not None:
                bus.publish(
                    "failover",
                    "manager",
                    {
                        "died": False,
                        "panel": k,
                        "columns": stranded,
                        "to": sorted(set(moved_to)),
                        "detail": f"migrated column(s) {stranded}",
                    },
                )

        def run_panel(k: int) -> None:
            owner_p = panel_owner(k)
            if col_home[k] != owner_p:
                t0 = perf_counter()
                tiles = ask(col_home[k], SendColumn(col=k))
                ask(owner_p, ReceiveColumn(col=k, tiles=tiles))
                if tracer is not None:
                    tracer.record_transfer(
                        src=col_home[k], dst=owner_p,
                        num_bytes=float(sum(t.nbytes for t in tiles)),
                        start=t0, end=perf_counter(), tag=f"col{k}",
                    )
                col_home[k] = owner_p
            if not panel_done.get(k):
                ops = panel_ops(k)
                factors, r_col = ask(
                    owner_p, FactorPanel(k=k, ops=ops), n_kernels=max(1, len(ops))
                )
                panel_factors[k] = factors
                shadow_r[k] = r_col
                panel_done[k] = True
                log.extend(_deserialize_log(factors, b))
            factors = panel_factors[k]
            bcast_bytes = float(sum(x.nbytes for f in factors for x in f[1:]))

            def crit(j: int) -> float:
                return col_rank.get((k, j), 0.0)

            # Broadcast to every device holding columns that have not yet
            # absorbed this panel's update — devices and columns ordered
            # by critical-path rank so the next panels' columns (and the
            # devices holding them) update first.
            pending: dict[str, list[int]] = {}
            for j in range(k + 1, q):
                dev = col_home[j]
                if dev in dead or applied.get(j, -1) >= k:
                    continue
                pending.setdefault(dev, []).append(j)
            for dev, cols in sorted(
                pending.items(), key=lambda item: -max(crit(j) for j in item[1])
            ):
                cols.sort(key=lambda j: (-crit(j), j))
                xfer = (owner_p, bcast_bytes, f"bcast{k}") if dev != owner_p else None
                ask(
                    dev,
                    Update(k=k, factors=factors, cols=cols),
                    xfer=xfer,
                    n_kernels=len(cols) * max(1, p - k),
                )
                for j in cols:
                    applied[j] = k
            applied[k] = n_panels  # finished R column; never a replay target

        def write_checkpoint(k: int) -> None:
            """Panel-aligned format-2 snapshot after panel ``k``."""
            from ..dag import build_dag
            from .checkpoint import save_partial_factorization

            # Gather live columns; fall back to manager-side recovery for
            # any device that dies mid-gather (its columns are rebuilt at
            # their last applied watermark, which a panel boundary makes
            # exact; the stranded columns re-home at the next panel).
            cols_by_j: dict[int, list[np.ndarray]] = {}
            for dev in alive():
                try:
                    owned = ask(dev, Collect())
                except _WorkerDied as exc:
                    note_death(exc.device, k, f"died during checkpoint: {exc.reason}")
                    continue
                cols_by_j.update(owned)
            for j in range(q):
                if j not in cols_by_j:
                    cols_by_j[j] = recover_column(j)
            for j, tiles in cols_by_j.items():
                for i in range(p):
                    tiled.set_tile(i, j, tiles[i])
            dag = build_dag(p, q, self.elimination, batch_updates=False)
            completed = [t for t in dag.tasks if t.k <= k]
            save_partial_factorization(
                self.checkpoint_path, tiled, completed, log, arr_shape,
                elimination=self.elimination, batch_updates=False,
            )
            if metrics is not None:
                metrics.counter("resilience.checkpoints").inc()
            if tracer is not None:
                tracer.record_annotation(
                    "checkpoint",
                    f"panel {k + 1}/{n_panels} -> {self.checkpoint_path}",
                    "manager",
                )
            if bus is not None:
                bus.publish(
                    "checkpoint",
                    "manager",
                    {
                        "panel": k + 1,
                        "panels": n_panels,
                        "path": str(self.checkpoint_path),
                    },
                )

        try:
            if bus is not None:
                bus.publish(
                    "run.start",
                    "manager",
                    {
                        "runtime": "multiprocess",
                        "total_tasks": len(ref_dag.tasks),
                        "total_units": sum(t.ncols for t in ref_dag.tasks),
                        "grid": [p, q],
                        "tile_size": b,
                        "devices": list(self.plan.participants),
                        "panels": n_panels - k0,
                    },
                )
            for dev in self.plan.participants:
                spawn(dev)

            # --- clock handshake (traced or live-telemetry runs) ---------
            if tracer is not None or bus is not None:
                for dev in self.plan.participants:
                    if start_method == "fork":
                        clock_offset[dev] = 0.0  # shared CLOCK_MONOTONIC
                    else:
                        t0 = perf_counter()
                        worker_now = ask(dev, ClockSync())
                        t1 = perf_counter()
                        clock_offset[dev] = 0.5 * (t0 + t1) - worker_now

            # --- initial distribution (owned columns per device) --------
            per_dev: dict[str, dict[int, list[np.ndarray]]] = {
                d: {} for d in self.plan.participants
            }
            for j in range(q):
                owner = col_home[j]
                tiles = [tiled.tile(i, j).copy() for i in range(p)]
                per_dev[owner][j] = tiles
                if resilient:
                    base[j] = [t.copy() for t in tiles]
                    base_level[j] = k0 - 1
                    applied[j] = k0 - 1
            for j in range(k0):  # resumed runs: finished R columns
                panel_done[j] = True
                shadow_r[j] = base.get(j, [tiled.tile(i, j).copy() for i in range(p)])
                applied[j] = n_panels
            for dev, cols in per_dev.items():
                ask(dev, LoadColumns(columns=cols))

            # --- panel loop (paper Sec. IV-D) ----------------------------
            since_ckpt = 0
            for k in range(k0, n_panels):
                if resilient:
                    # Panel-as-transaction: any device death rolls the
                    # loop back to re-home stranded columns and replay
                    # the panel from its frontier.  The applied/
                    # panel_done watermarks make the replay exact.
                    while True:
                        try:
                            rehome_stranded(k)
                            run_panel(k)
                            break
                        except _WorkerDied as exc:
                            note_death(exc.device, k, exc.reason)
                else:
                    run_panel(k)
                since_ckpt += 1
                if (
                    self.checkpoint_every is not None
                    and self.checkpoint_path is not None
                    and since_ckpt >= self.checkpoint_every
                    and k + 1 < n_panels
                ):
                    write_checkpoint(k)
                    since_ckpt = 0

            # --- gather the R factor (and any residual worker events) ----
            gathered: set[int] = set()
            for dev in list(alive()):
                try:
                    cols = ask(dev, Collect())
                    for j, tiles in cols.items():
                        for i in range(p):
                            tiled.set_tile(i, j, tiles[i])
                        gathered.add(j)
                    if tracer is not None or bus is not None:
                        # Normally empty: events ride each reply's stats
                        # delta and are folded there; this sweeps any
                        # recorded after the last reply was built.
                        fold_events(dev, ask(dev, CollectEvents()))
                    ask(dev, Shutdown())
                except _WorkerDied as exc:
                    note_death(exc.device, n_panels, f"died at gather: {exc.reason}")
            for j in range(q):  # columns lost between last panel and gather
                if j not in gathered:
                    if not resilient:
                        raise SimulationError(f"column {j} lost at gather")
                    tiles = recover_column(j)
                    for i in range(p):
                        tiled.set_tile(i, j, tiles[i])
        finally:
            for parent, proc in workers.values():
                try:
                    parent.close()
                except OSError:
                    pass
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - hygiene
                    proc.terminate()

        if bus is not None:
            bus.publish(
                "run.finish",
                "manager",
                {"panels": n_panels - k0, "deaths": len(dead)},
            )
            bus.drain()  # subscribers have seen everything when we return
        return TiledQRFactorization(r=tiled, log=log, shape=arr_shape)

    def _resume_state(self, resume):
        """Validate a panel-aligned partial snapshot for this runtime."""
        from ..dag import build_dag
        from .checkpoint import CheckpointError

        snap_tree = canonical_tree(resume.elimination)
        if snap_tree != self.elimination or resume.batch_updates:
            raise CheckpointError(
                "multiprocess resume requires a per-tile snapshot of this "
                f"runtime's elimination tree (snapshot tree={snap_tree!r}, "
                f"runtime tree={self.elimination!r}, "
                f"batch_updates={resume.batch_updates})"
            )
        tiled = resume.tiled
        p, q = tiled.grid_rows, tiled.grid_cols
        dag = build_dag(p, q, self.elimination, batch_updates=False)
        completed = set(resume.completed)
        dag.validate_completed(completed)
        done_panels = 0
        for k in range(min(p, q)):
            panel = dag.panel_tasks(k)
            n_done = sum(1 for t in panel if t in completed)
            if n_done == len(panel):
                done_panels = k + 1
            elif n_done == 0:
                break
            else:
                raise CheckpointError(
                    f"multiprocess resume requires panel-aligned snapshots; "
                    f"panel {k} is only partially complete ({n_done}/{len(panel)} "
                    f"tasks) — resume it with the serial or threaded runtime"
                )
        if len(completed) != sum(
            len(dag.panel_tasks(k)) for k in range(done_panels)
        ):
            raise CheckpointError(
                "multiprocess resume requires panel-aligned snapshots — "
                "resume this one with the serial or threaded runtime"
            )
        return tiled, done_panels, list(resume.log)


def _deserialize_log(factors, b: int):
    """Rebuild kernel-result objects from a worker's factor payload."""
    from ..kernels.geqrt import GEQRTResult
    from ..kernels.tsqrt import TSQRTResult

    out = []
    for key, v, tf, taus in factors:
        kind, k, row, top = key
        if kind == "G":
            task = Task(TaskKind.GEQRT, k, row, row, k)
            out.append((task, GEQRTResult(r=np.empty(0), v=v, tf=tf, taus=taus)))
        else:
            tt = kind == "TT"
            task = Task(TaskKind.TTQRT if tt else TaskKind.TSQRT, k, row, top, k)
            out.append(
                (
                    task,
                    TSQRTResult(
                        r=np.empty((b, b)), v2=v, tf=tf, taus=taus,
                        kind="TT" if tt else "TS",
                    ),
                )
            )
    return out
