"""Distributed-memory execution: the paper's Fig. 7 as real processes.

The paper's runtime is a manager thread plus one computing thread per
device, with explicit data movement between device memories.  This
module realizes that structure with OS processes and pipes — the
closest single-machine analog of the paper's system that Python can
express honestly:

* every *worker process* owns the tiles of the columns its device is
  assigned (nothing else — there is no shared matrix);
* the *manager* drives the panel loop: tells the panel owner to
  factorize, routes the reflector factors to the devices that need them
  (the Eq. 11 broadcasts), and migrates the next panel column to the
  panel owner — every byte that the simulators price is a real pickled
  message here;
* workers update their own columns with the real NumPy kernels.

This runtime exists to *validate the distribution logic end to end*
(ownership, broadcast, column migration) rather than for speed: with
CPython process overheads, small matrices dominate on IPC.  Results are
bit-identical to the serial runtime.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

import numpy as np

from ..core.plan import DistributionPlan
from ..errors import ShapeError, SimulationError
from ..kernels import geqrt, tsmqr, tsqrt, unmqr
from ..tiles import TiledMatrix
from .factorization import TiledQRFactorization
from ..dag.tasks import Task, TaskKind


# ---------------------------------------------------------------------------
# Messages (manager -> worker); workers answer with ("ok", payload) tuples.
# ---------------------------------------------------------------------------

@dataclass
class LoadColumns:
    """Seed the worker with its owned columns."""

    columns: dict[int, list[np.ndarray]]  # col -> tiles top..bottom


@dataclass
class FactorPanel:
    """Run T + the elimination chain on panel ``k`` (worker owns col k).

    Replies with the serialized factors (one GEQRT + per-row TSQRT).
    """

    k: int


@dataclass
class ReceiveColumn:
    """Install a migrated column (ownership transfer)."""

    col: int
    tiles: list[np.ndarray]


@dataclass
class SendColumn:
    """Ship a column back to the manager (for migration)."""

    col: int


@dataclass
class Update:
    """Apply broadcast panel factors to the worker's columns > k."""

    k: int
    factors: list  # [(task_tuple, kind, payload-arrays...)]


@dataclass
class Collect:
    """Return every owned column (end of factorization)."""


@dataclass
class Shutdown:
    pass


def _worker_main(conn, grid_rows: int, grid_cols: int) -> None:
    """Worker process body: owns columns, executes kernels on demand."""
    columns: dict[int, list[np.ndarray]] = {}
    try:
        while True:
            msg = conn.recv()
            if isinstance(msg, Shutdown):
                conn.send(("ok", None))
                return
            if isinstance(msg, LoadColumns):
                columns.update(msg.columns)
                conn.send(("ok", None))
            elif isinstance(msg, ReceiveColumn):
                columns[msg.col] = msg.tiles
                conn.send(("ok", None))
            elif isinstance(msg, SendColumn):
                conn.send(("ok", columns.pop(msg.col)))
            elif isinstance(msg, FactorPanel):
                k = msg.k
                col = columns[k]
                out = []
                fg = geqrt(col[k])
                col[k] = fg.r.copy()
                out.append((("G", k, k), fg.v, fg.tf, fg.taus))
                for i in range(k + 1, grid_rows):
                    fe = tsqrt(col[k], col[i])
                    col[k] = fe.r.copy()
                    col[i][...] = 0.0
                    out.append((("E", k, i), fe.v2, fe.tf, fe.taus))
                conn.send(("ok", out))
            elif isinstance(msg, Update):
                k = msg.k
                for key, v, tf, taus in msg.factors:
                    kind, kk, row = key
                    for col_idx, col in columns.items():
                        if col_idx <= k:
                            continue
                        if kind == "G":
                            from ..kernels.geqrt import GEQRTResult

                            f = GEQRTResult(r=np.empty(0), v=v, tf=tf, taus=taus)
                            unmqr(f, col[row])
                        else:
                            from ..kernels.tsqrt import TSQRTResult

                            f = TSQRTResult(
                                r=np.empty((v.shape[1], v.shape[1])),
                                v2=v, tf=tf, taus=taus,
                            )
                            tsmqr(f, col[kk], col[row])
                conn.send(("ok", None))
            elif isinstance(msg, Collect):
                conn.send(("ok", columns))
            else:  # pragma: no cover - protocol guard
                conn.send(("error", f"unknown message {type(msg).__name__}"))
                return
    except EOFError:  # manager died; exit quietly
        return
    except Exception as exc:  # surface kernel errors to the manager
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass


class MultiprocessRuntime:
    """Execute tiled QR across worker processes per a distribution plan.

    Parameters
    ----------
    plan:
        Column/panel ownership (one worker is spawned per participant).

    Notes
    -----
    The manager follows the paper's Sec. IV-D loop exactly: factor panel
    on the panel owner, broadcast factors to every participant with
    remaining columns, migrate column ``k+1`` to the next panel owner.
    """

    def __init__(self, plan: DistributionPlan):
        self.plan = plan

    def factorize(self, a: np.ndarray, tile_size: int | None = None) -> TiledQRFactorization:
        arr = np.asarray(a, dtype=np.float64)
        if arr.ndim != 2:
            raise ShapeError(f"expected a 2-D matrix, got ndim={arr.ndim}")
        if arr.shape[0] < arr.shape[1]:
            raise ShapeError(f"QR requires m >= n, got shape {arr.shape}")
        b = tile_size if tile_size is not None else self.plan.tile_size
        tiled = TiledMatrix.from_dense(arr, b)
        p, q = tiled.grid_rows, tiled.grid_cols

        ctx = mp.get_context("fork" if hasattr(mp, "get_context") else None)
        workers: dict[str, tuple] = {}
        try:
            for dev in self.plan.participants:
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main, args=(child, p, q), daemon=True
                )
                proc.start()
                child.close()
                workers[dev] = (parent, proc)

            def ask(dev: str, msg):
                conn = workers[dev][0]
                conn.send(msg)
                status, payload = conn.recv()
                if status != "ok":
                    raise SimulationError(f"worker {dev} failed: {payload}")
                return payload

            # --- initial distribution (owned columns per device) --------
            per_dev: dict[str, dict[int, list[np.ndarray]]] = {
                d: {} for d in self.plan.participants
            }
            for j in range(q):
                owner = self.plan.column_owner(j)
                per_dev[owner][j] = [tiled.tile(i, j).copy() for i in range(p)]
            for dev, cols in per_dev.items():
                ask(dev, LoadColumns(columns=cols))

            # --- panel loop (paper Sec. IV-D) ----------------------------
            col_home = {j: self.plan.column_owner(j) for j in range(q)}
            log: list[tuple[Task, object]] = []
            n_panels = min(p, q)
            for k in range(n_panels):
                owner_p = self.plan.panel_owner(k)
                if col_home[k] != owner_p:
                    tiles = ask(col_home[k], SendColumn(col=k))
                    ask(owner_p, ReceiveColumn(col=k, tiles=tiles))
                    col_home[k] = owner_p
                factors = ask(owner_p, FactorPanel(k=k))
                # Broadcast to every device still holding columns > k.
                for dev in self.plan.participants:
                    if any(j > k and col_home[j] == dev for j in range(q)):
                        ask(dev, Update(k=k, factors=factors))
                log.extend(_deserialize_log(factors, b))

            # --- gather the R factor --------------------------------------
            for dev in self.plan.participants:
                cols = ask(dev, Collect())
                for j, tiles in cols.items():
                    for i in range(p):
                        tiled.set_tile(i, j, tiles[i])
                ask(dev, Shutdown())
        finally:
            for parent, proc in workers.values():
                try:
                    parent.close()
                except OSError:
                    pass
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - hygiene
                    proc.terminate()

        return TiledQRFactorization(r=tiled, log=log, shape=arr.shape)


def _deserialize_log(factors, b: int):
    """Rebuild kernel-result objects from a worker's factor payload."""
    from ..kernels.geqrt import GEQRTResult
    from ..kernels.tsqrt import TSQRTResult

    out = []
    for key, v, tf, taus in factors:
        kind, k, row = key
        if kind == "G":
            task = Task(TaskKind.GEQRT, k, row, row, k)
            out.append((task, GEQRTResult(r=np.empty(0), v=v, tf=tf, taus=taus)))
        else:
            task = Task(TaskKind.TSQRT, k, row, k, k)
            out.append(
                (task, TSQRTResult(r=np.empty((b, b)), v2=v, tf=tf, taus=taus))
            )
    return out
