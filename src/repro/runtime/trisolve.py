"""Tiled triangular solve — the solve phase of the paper's Eqs. 2-3.

After tiled QR, ``R x = Q^T b`` remains; on a tiled layout that solve is
itself a tiled algorithm (PLASMA's TRSM/GEMM pattern): proceed bottom-up
over tile rows, solving the diagonal tile against the accumulated
right-hand side and substituting the result into every tile row above.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..tiles import TiledMatrix
from .factorization import back_substitution


def tiled_back_substitution(r: TiledMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``R x = b`` where ``R`` is an upper-triangular tiled matrix.

    Parameters
    ----------
    r:
        Square :class:`~repro.tiles.TiledMatrix` holding an upper
        triangular matrix (e.g. the R factor of a square tiled QR).
    b:
        Right-hand side(s), shape ``(n,)`` or ``(n, k)``.

    Returns
    -------
    numpy.ndarray
        The solution with ``b``'s shape.

    Notes
    -----
    Per tile row ``i`` (bottom-up): ``x_i = R_ii^{-1} (b_i - sum_{j>i}
    R_ij x_j)``, a small dense back-substitution plus one GEMM per tile
    to the right — the tiled TRSM a heterogeneous runtime distributes
    the same way it distributes updates.
    """
    rows, cols = r.shape
    if rows != cols:
        raise ShapeError(f"tiled solve needs a square R, got {r.shape}")
    b_arr = np.asarray(b, dtype=np.float64)
    squeeze = b_arr.ndim == 1
    if squeeze:
        b_arr = b_arr[:, None]
    if b_arr.shape[0] != rows:
        raise ShapeError(f"rhs must have {rows} rows, got {b_arr.shape}")
    bsz = r.tile_size
    g = r.grid_rows
    nrhs = b_arr.shape[1]

    # Pad the RHS to whole tiles.
    padded = np.zeros((r.row_partition.padded_extent, nrhs))
    padded[:rows] = b_arr

    x_blocks: list[np.ndarray | None] = [None] * g
    for i in range(g - 1, -1, -1):
        acc = padded[i * bsz : (i + 1) * bsz].copy()
        for j in range(i + 1, g):
            acc -= r.tile(i, j) @ x_blocks[j]
        diag = r.tile(i, i).copy()
        r0, r1 = r.row_partition.tile_span(i)
        live = r1 - r0
        # Padded tail of the diagonal tile is zero; pin it to identity
        # so the solve stays nonsingular (padded solution entries are 0).
        for d in range(live, bsz):
            diag[d, d] = 1.0
        x_blocks[i] = back_substitution(diag, acc)
    x = np.vstack(x_blocks)[:rows]
    return x[:, 0] if squeeze else x


def solve_factorized_tiled(fact, b: np.ndarray) -> np.ndarray:
    """Full tiled solve path: ``x = R^{-1} (Q^T b)`` with the tiled TRSM.

    Equivalent to :meth:`TiledQRFactorization.solve` but keeps the
    back-substitution at tile granularity.
    """
    m, n = fact.shape
    if m != n:
        raise ShapeError(f"solve requires a square system, shape is {fact.shape}")
    rhs = fact.apply_qt(b)
    return tiled_back_substitution(fact.r, rhs)
