"""In-process runtimes that execute the tiled-QR DAG numerically.

Two executors share one task-application core:

* :class:`SerialRuntime` — deterministic, single-threaded; the reference
  implementation used by tests and examples.
* :class:`ThreadedRuntime` — a worker pool with dependency-counting
  dispatch; exercises the same concurrency structure a real
  PLASMA/StarPU-style runtime uses (NumPy's BLAS releases the GIL).
* :class:`MultiprocessRuntime` — distributed-memory execution with one
  OS process per device and explicit pipe transfers (the paper's
  Fig. 7 structure made literal).
"""

from .factorization import TiledQRFactorization
from .serial import SerialRuntime, tiled_qr
from .threaded import ThreadedRuntime
from .multiprocess import MultiprocessRuntime
from .trisolve import tiled_back_substitution, solve_factorized_tiled
from .checkpoint import save_factorization, load_factorization

__all__ = [
    "TiledQRFactorization",
    "SerialRuntime",
    "ThreadedRuntime",
    "MultiprocessRuntime",
    "tiled_qr",
    "tiled_back_substitution",
    "solve_factorized_tiled",
    "save_factorization",
    "load_factorization",
]
