"""In-process runtimes that execute the tiled-QR DAG numerically.

Two executors share one task-application core:

* :class:`SerialRuntime` — deterministic, single-threaded; the reference
  implementation used by tests and examples.
* :class:`ThreadedRuntime` — a worker pool with dependency-counting
  dispatch; exercises the same concurrency structure a real
  PLASMA/StarPU-style runtime uses (NumPy's BLAS releases the GIL).
* :class:`MultiprocessRuntime` — distributed-memory execution with one
  OS process per device and explicit pipe transfers (the paper's
  Fig. 7 structure made literal).

All three accept resilience controls (retry policy, chaos engine,
health checks, periodic checkpoints — see :mod:`repro.resilience` and
``docs/RELIABILITY.md``); :func:`resume_factorization` finishes an
interrupted checkpointed run.
"""

from .factorization import TiledQRFactorization
from .serial import SerialRuntime, tiled_qr
from .threaded import ThreadedRuntime
from .multiprocess import MultiprocessRuntime
from .trisolve import tiled_back_substitution, solve_factorized_tiled
from .checkpoint import (
    CheckpointError,
    PartialState,
    save_factorization,
    load_factorization,
    save_partial_factorization,
    load_partial_factorization,
    resume_factorization,
)

__all__ = [
    "TiledQRFactorization",
    "SerialRuntime",
    "ThreadedRuntime",
    "MultiprocessRuntime",
    "tiled_qr",
    "tiled_back_substitution",
    "solve_factorized_tiled",
    "save_factorization",
    "load_factorization",
    "CheckpointError",
    "PartialState",
    "save_partial_factorization",
    "load_partial_factorization",
    "resume_factorization",
]
