"""The result object of a tiled QR factorization.

Holds the R factor in tiled form plus the ordered log of orthogonal
transformations, from which ``Q`` can be rebuilt or applied implicitly
(the memory-efficient path — building ``Q`` densely is ``O(m^2)`` storage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from ..dag.tasks import Task, TaskKind
from ..errors import ShapeError
from ..kernels.geqrt import GEQRTResult
from ..kernels.tsqrt import TSQRTResult
from ..kernels.blockreflector import apply_block_reflector
from ..tiles import TiledMatrix

_Factors = Union[GEQRTResult, TSQRTResult]


@dataclass
class TiledQRFactorization:
    """QR factors of an ``m x n`` matrix computed tile-wise.

    Attributes
    ----------
    r:
        The R factor as a :class:`repro.tiles.TiledMatrix` (upper
        triangular as a dense matrix).
    log:
        Chronological list of ``(task, kernel_factors)`` pairs — the
        sequence of orthogonal transformations whose product (transposed)
        is ``Q``.
    shape:
        Logical shape of the factored matrix.
    """

    r: TiledMatrix
    log: list[tuple[Task, _Factors]] = field(default_factory=list)
    shape: tuple[int, int] = (0, 0)

    @property
    def tile_size(self) -> int:
        return self.r.tile_size

    # -- implicit application -------------------------------------------

    def _apply_op(
        self, task: Task, factors: _Factors, target: np.ndarray, transpose: bool
    ) -> None:
        """Apply one logged transformation to padded dense rows of ``target``."""
        b = self.tile_size
        if task.kind is TaskKind.GEQRT:
            rows = slice(task.row * b, task.row * b + b)
            apply_block_reflector(factors.v, factors.tf, target[rows], transpose=transpose)
            return
        # Elimination: stacked pair of tile rows.
        top = slice(task.row2 * b, task.row2 * b + b)
        bot = slice(task.row * b, task.row * b + b)
        v2 = factors.v2
        tf = factors.tf.T if transpose else factors.tf
        w = target[top] + v2.T @ target[bot]
        w = tf @ w
        target[top] -= w
        target[bot] -= v2 @ w

    def _padded(self, x: np.ndarray) -> tuple[np.ndarray, int]:
        """Zero-pad ``x``'s rows up to the tiled row extent."""
        x = np.asarray(x, dtype=self.r.dtype)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        if x.ndim != 2 or x.shape[0] != self.shape[0]:
            raise ShapeError(
                f"expected {self.shape[0]} rows, got array of shape {x.shape}"
            )
        padded_rows = self.r.row_partition.padded_extent
        if padded_rows != x.shape[0]:
            pad = np.zeros((padded_rows - x.shape[0], x.shape[1]), dtype=x.dtype)
            x = np.vstack([x, pad])
        else:
            x = x.copy()
        return x, (1 if squeeze else 0)

    def apply_qt(self, x: np.ndarray) -> np.ndarray:
        """Compute ``Q^T @ x`` implicitly (never forming ``Q``)."""
        work, squeeze = self._padded(x)
        for task, factors in self.log:
            self._apply_op(task, factors, work, transpose=True)
        out = work[: self.shape[0]]
        return out[:, 0] if squeeze else out

    def apply_q(self, x: np.ndarray) -> np.ndarray:
        """Compute ``Q @ x`` implicitly (reverse-order application)."""
        work, squeeze = self._padded(x)
        for task, factors in reversed(self.log):
            self._apply_op(task, factors, work, transpose=False)
        out = work[: self.shape[0]]
        return out[:, 0] if squeeze else out

    # -- dense factors ---------------------------------------------------

    def q_dense(self) -> np.ndarray:
        """Materialize the orthogonal factor ``Q`` (``m x m``)."""
        m = self.shape[0]
        return self.apply_q(np.eye(m, dtype=self.r.dtype))

    def q_tiled(self) -> TiledMatrix:
        """Materialize ``Q`` as a :class:`~repro.tiles.TiledMatrix`.

        The tiled ORGQR: the logged block reflectors are applied
        *untransposed in reverse order* to a tiled identity, tile column
        by tile column, with the same UNMQR/TSMQR kernels the
        factorization used — so building Q is itself a tiled operation a
        heterogeneous runtime could distribute.
        """
        from ..kernels import tsmqr, unmqr

        m = self.shape[0]
        b = self.tile_size
        q = TiledMatrix.identity(m, b, dtype=self.r.dtype)
        ncols = q.grid_cols
        for task, factors in reversed(self.log):
            if task.kind is TaskKind.GEQRT:
                for j in range(ncols):
                    unmqr(factors, q.tile(task.row, j), transpose=False)
            else:
                for j in range(ncols):
                    tsmqr(
                        factors,
                        q.tile(task.row2, j),
                        q.tile(task.row, j),
                        transpose=False,
                    )
        return q

    def r_dense(self) -> np.ndarray:
        """Materialize ``R`` (``m x n``, upper triangular)."""
        return self.r.to_dense()

    # -- linear solves ----------------------------------------------------

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` via ``R x = Q^T b`` (paper Eqs. 2-3).

        Requires a square, nonsingular factored matrix.
        """
        m, n = self.shape
        if m != n:
            raise ShapeError(f"solve requires a square system, shape is {self.shape}")
        rhs = self.apply_qt(b)
        r = self.r_dense()
        squeeze = rhs.ndim == 1
        if squeeze:
            rhs = rhs[:, None]
        x = back_substitution(r, rhs)
        return x[:, 0] if squeeze else x

    def reconstruction_error(self, a: np.ndarray) -> float:
        """Relative Frobenius error of ``Q R`` against the original ``A``."""
        qr = self.apply_q(np.asarray(self.r_dense()))
        denom = float(np.linalg.norm(a)) or 1.0
        return float(np.linalg.norm(qr - np.asarray(a))) / denom


def back_substitution(r: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve the upper-triangular system ``R x = b`` column-block-wise.

    A from-scratch (BLAS-2 style, vectorized over right-hand sides)
    triangular solve — the library does not call LAPACK solvers.
    """
    r = np.asarray(r)
    b = np.asarray(b)
    n = r.shape[1]
    if r.shape[0] < n:
        raise ShapeError(f"R must have at least {n} rows, got {r.shape}")
    if b.ndim != 2 or b.shape[0] < n:
        raise ShapeError(f"rhs must be 2-D with >= {n} rows, got {b.shape}")
    diag = np.diagonal(r)[:n]
    if np.any(diag == 0.0):
        raise np.linalg.LinAlgError("R is singular (zero on the diagonal)")
    x = b[:n].astype(np.result_type(r.dtype, b.dtype), copy=True)
    for i in range(n - 1, -1, -1):
        x[i] /= r[i, i]
        if i:
            x[:i] -= np.outer(r[:i, i], x[i])
    return x
