"""Persist and restore tiled QR factorizations.

A factorization of a large matrix is expensive; saving the factors lets
solves/Q-applications resume in a later process.  The format is a
single NumPy ``.npz``: the R tiles, the reflector log (V/Tf per
factorization task), and the layout metadata.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..dag.tasks import Task, TaskKind
from ..errors import ReproError
from ..kernels.geqrt import GEQRTResult
from ..kernels.tsqrt import TSQRTResult
from ..tiles import TiledMatrix
from .factorization import TiledQRFactorization

_FORMAT = 1


class CheckpointError(ReproError):
    """Raised on malformed or incompatible checkpoint files."""


def save_factorization(fact: TiledQRFactorization, path) -> None:
    """Write a factorization to ``path`` (``.npz``)."""
    arrays: dict[str, np.ndarray] = {}
    meta = {
        "format": _FORMAT,
        "rows": fact.shape[0],
        "cols": fact.shape[1],
        "tile_size": fact.tile_size,
        "grid_rows": fact.r.grid_rows,
        "grid_cols": fact.r.grid_cols,
        "num_ops": len(fact.log),
    }
    arrays["meta"] = np.array(
        [meta["format"], meta["rows"], meta["cols"], meta["tile_size"],
         meta["grid_rows"], meta["grid_cols"], meta["num_ops"]],
        dtype=np.int64,
    )
    for i, j, tile in fact.r.iter_tiles():
        arrays[f"r_{i}_{j}"] = tile
    for idx, (task, factors) in enumerate(fact.log):
        arrays[f"op{idx}_id"] = np.array(
            [_KIND_CODE[task.kind], task.k, task.row, task.row2, task.col],
            dtype=np.int64,
        )
        if isinstance(factors, GEQRTResult):
            arrays[f"op{idx}_v"] = factors.v
            arrays[f"op{idx}_tf"] = factors.tf
            arrays[f"op{idx}_taus"] = factors.taus
        else:
            arrays[f"op{idx}_v"] = factors.v2
            arrays[f"op{idx}_tf"] = factors.tf
            arrays[f"op{idx}_taus"] = factors.taus
            arrays[f"op{idx}_r"] = factors.r
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **arrays)


_KIND_CODE = {
    TaskKind.GEQRT: 0,
    TaskKind.TSQRT: 1,
    TaskKind.TTQRT: 2,
}
_CODE_KIND = {v: k for k, v in _KIND_CODE.items()}


def load_factorization(path) -> TiledQRFactorization:
    """Read a factorization previously saved by :func:`save_factorization`."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    with np.load(path) as data:
        try:
            fmt, rows, cols, tile_size, g_rows, g_cols, num_ops = (
                int(v) for v in data["meta"]
            )
        except KeyError as exc:
            raise CheckpointError(f"missing metadata in {path}") from exc
        if fmt != _FORMAT:
            raise CheckpointError(f"unsupported checkpoint format {fmt}")
        try:
            grid = [
                [np.array(data[f"r_{i}_{j}"]) for j in range(g_cols)]
                for i in range(g_rows)
            ]
            tiled = TiledMatrix(grid, rows, cols)
            log = []
            for idx in range(num_ops):
                code, k, row, row2, col = (int(v) for v in data[f"op{idx}_id"])
                kind = _CODE_KIND[code]
                task = Task(kind, k, row, row2, col)
                if kind is TaskKind.GEQRT:
                    factors = GEQRTResult(
                        r=np.array([]),  # tile R already lives in `tiled`
                        v=np.array(data[f"op{idx}_v"]),
                        tf=np.array(data[f"op{idx}_tf"]),
                        taus=np.array(data[f"op{idx}_taus"]),
                    )
                else:
                    factors = TSQRTResult(
                        r=np.array(data[f"op{idx}_r"]),
                        v2=np.array(data[f"op{idx}_v"]),
                        tf=np.array(data[f"op{idx}_tf"]),
                        taus=np.array(data[f"op{idx}_taus"]),
                        kind="TT" if kind is TaskKind.TTQRT else "TS",
                    )
                log.append((task, factors))
        except KeyError as exc:
            raise CheckpointError(f"truncated checkpoint {path}: {exc}") from exc
    return TiledQRFactorization(r=tiled, log=log, shape=(rows, cols))
