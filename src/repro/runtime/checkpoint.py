"""Persist and restore tiled QR factorizations.

A factorization of a large matrix is expensive; saving the factors lets
solves/Q-applications resume in a later process.  Two formats share one
``.npz`` container:

* **format 1** — a *completed* factorization: the R tiles, the reflector
  log (V/Tf per factorization task), and the layout metadata
  (:func:`save_factorization` / :func:`load_factorization`).
* **format 2** — a *partial* (mid-run) snapshot: everything above plus
  the completed-task frontier and the DAG configuration, taken at a
  quiescent point of a run (:func:`save_partial_factorization`).
  :func:`resume_factorization` replays the remaining DAG from exactly
  that state — an interrupted run resumed this way produces the same R
  the uninterrupted run would have.

Checkpoints are written atomically (temp file + ``os.replace``) so a
crash mid-write never leaves a truncated snapshot where a good one was.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..dag.tasks import Task, TaskKind
from ..dag.trees import canonical_tree
from ..errors import ReproError
from ..kernels.geqrt import GEQRTResult
from ..kernels.tsqrt import TSQRTResult
from ..tiles import TiledMatrix
from .factorization import TiledQRFactorization

_FORMAT = 1
_PARTIAL_FORMAT = 2


class CheckpointError(ReproError):
    """Raised on malformed or incompatible checkpoint files."""


def _atomic_savez(path, arrays: dict) -> None:
    """Write an ``.npz`` so readers never observe a half-written file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **arrays)
    os.replace(tmp, path)


def save_factorization(fact: TiledQRFactorization, path) -> None:
    """Write a completed factorization to ``path`` (``.npz``)."""
    arrays: dict[str, np.ndarray] = {}
    arrays["meta"] = np.array(
        [_FORMAT, fact.shape[0], fact.shape[1], fact.tile_size,
         fact.r.grid_rows, fact.r.grid_cols, len(fact.log)],
        dtype=np.int64,
    )
    for i, j, tile in fact.r.iter_tiles():
        arrays[f"r_{i}_{j}"] = tile
    _pack_log(arrays, fact.log)
    _atomic_savez(path, arrays)


_KIND_CODE = {
    TaskKind.GEQRT: 0,
    TaskKind.TSQRT: 1,
    TaskKind.TTQRT: 2,
}
_CODE_KIND = {v: k for k, v in _KIND_CODE.items()}

#: Codes covering *every* task kind — partial snapshots must encode the
#: completed update tasks too, not just the factorization ops.
_ALL_KIND_CODE = {kind: code for code, kind in enumerate(TaskKind)}
_ALL_CODE_KIND = {v: k for k, v in _ALL_KIND_CODE.items()}

# Elimination-tree codes.  0/1 predate the tree registry (seed names
# "TS"/"TT") and decode to their canonical trees so old snapshots keep
# loading; new snapshots always encode the canonical name.
_ELIM_CODE = {"flat": 0, "binary": 1, "flat-tt": 2, "fibonacci": 3, "greedy": 4}
_CODE_ELIM = {v: k for k, v in _ELIM_CODE.items()}


def _pack_log(arrays: dict, log) -> None:
    for idx, (task, factors) in enumerate(log):
        arrays[f"op{idx}_id"] = np.array(
            [_KIND_CODE[task.kind], task.k, task.row, task.row2, task.col],
            dtype=np.int64,
        )
        if isinstance(factors, GEQRTResult):
            arrays[f"op{idx}_v"] = factors.v
            arrays[f"op{idx}_tf"] = factors.tf
            arrays[f"op{idx}_taus"] = factors.taus
        else:
            arrays[f"op{idx}_v"] = factors.v2
            arrays[f"op{idx}_tf"] = factors.tf
            arrays[f"op{idx}_taus"] = factors.taus
            arrays[f"op{idx}_r"] = factors.r


def _unpack_log(data, num_ops: int, path) -> list[tuple[Task, object]]:
    log = []
    try:
        for idx in range(num_ops):
            code, k, row, row2, col = (int(v) for v in data[f"op{idx}_id"])
            kind = _CODE_KIND[code]
            task = Task(kind, k, row, row2, col)
            if kind is TaskKind.GEQRT:
                factors = GEQRTResult(
                    r=np.array([]),  # tile R already lives in the R tiles
                    v=np.array(data[f"op{idx}_v"]),
                    tf=np.array(data[f"op{idx}_tf"]),
                    taus=np.array(data[f"op{idx}_taus"]),
                )
            else:
                factors = TSQRTResult(
                    r=np.array(data[f"op{idx}_r"]),
                    v2=np.array(data[f"op{idx}_v"]),
                    tf=np.array(data[f"op{idx}_tf"]),
                    taus=np.array(data[f"op{idx}_taus"]),
                    kind="TT" if kind is TaskKind.TTQRT else "TS",
                )
            log.append((task, factors))
    except KeyError as exc:
        raise CheckpointError(f"truncated checkpoint {path}: {exc}") from exc
    return log


def _load_tiles(data, g_rows: int, g_cols: int, rows: int, cols: int, path) -> TiledMatrix:
    try:
        grid = [
            [np.array(data[f"r_{i}_{j}"]) for j in range(g_cols)]
            for i in range(g_rows)
        ]
    except KeyError as exc:
        raise CheckpointError(f"truncated checkpoint {path}: {exc}") from exc
    return TiledMatrix(grid, rows, cols)


def _validate_target(
    path,
    rows: int,
    cols: int,
    tile_size: int,
    g_rows: int,
    g_cols: int,
    expect_shape: tuple[int, int] | None,
    expect_tile_size: int | None,
) -> None:
    """Reject a checkpoint that does not describe the caller's matrix.

    Loading factors of the wrong matrix is not an error NumPy would ever
    notice — the solve would just return garbage — so shape and tiling
    metadata are checked up front with messages naming both sides.
    """
    if expect_shape is not None and tuple(expect_shape) != (rows, cols):
        raise CheckpointError(
            f"checkpoint {path} factors a {rows}x{cols} matrix, but the "
            f"target is {expect_shape[0]}x{expect_shape[1]}"
        )
    if expect_tile_size is not None and expect_tile_size != tile_size:
        raise CheckpointError(
            f"checkpoint {path} uses tile size {tile_size}, but the target "
            f"expects {expect_tile_size}"
        )
    # Internal consistency: the recorded grid must tile the recorded shape.
    want_rows = -(-rows // tile_size)
    want_cols = -(-cols // tile_size)
    if (g_rows, g_cols) != (want_rows, want_cols):
        raise CheckpointError(
            f"checkpoint {path} is internally inconsistent: a {rows}x{cols} "
            f"matrix at tile size {tile_size} needs a {want_rows}x{want_cols} "
            f"grid, file says {g_rows}x{g_cols}"
        )


def _open_checkpoint(path):
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    try:
        return path, np.load(path)
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc


def load_factorization(
    path,
    expect_shape: tuple[int, int] | None = None,
    expect_tile_size: int | None = None,
) -> TiledQRFactorization:
    """Read a factorization previously saved by :func:`save_factorization`.

    Parameters
    ----------
    path:
        The ``.npz`` checkpoint file.
    expect_shape, expect_tile_size:
        When given, the checkpoint's recorded matrix shape / tile size
        must match or :class:`CheckpointError` is raised — pass the
        target system's dimensions to catch loading the wrong file
        before it silently produces a garbage solve.
    """
    path, data = _open_checkpoint(path)
    with data:
        try:
            fmt, rows, cols, tile_size, g_rows, g_cols, num_ops = (
                int(v) for v in data["meta"][:7]
            )
        except (KeyError, ValueError) as exc:
            raise CheckpointError(f"missing metadata in {path}") from exc
        if fmt == _PARTIAL_FORMAT:
            raise CheckpointError(
                f"{path} is a partial (mid-run) snapshot; finish it with "
                f"resume_factorization() instead of load_factorization()"
            )
        if fmt != _FORMAT:
            raise CheckpointError(f"unsupported checkpoint format {fmt}")
        _validate_target(
            path, rows, cols, tile_size, g_rows, g_cols, expect_shape, expect_tile_size
        )
        tiled = _load_tiles(data, g_rows, g_cols, rows, cols, path)
        log = _unpack_log(data, num_ops, path)
    return TiledQRFactorization(r=tiled, log=log, shape=(rows, cols))


# ---------------------------------------------------------------------------
# Partial (mid-run) snapshots — format 2
# ---------------------------------------------------------------------------


@dataclass
class PartialState:
    """A factorization frozen at a quiescent point of its DAG.

    ``tiled`` holds the in-progress matrix (R columns left of the
    frontier, partially updated trailing columns right of it);
    ``completed`` is the downward-closed set of finished tasks; ``log``
    the reflector factors produced so far, in application order.  The
    DAG configuration (``elimination`` — a canonical tree name from
    :mod:`repro.dag.trees` — and ``batch_updates``) is part of the
    state: resuming under a different DAG would replay tasks whose
    effects are already in the tiles, so runtimes compare canonical
    tree names and raise :class:`CheckpointError` on mismatch.
    """

    tiled: TiledMatrix
    completed: list[Task]
    log: list[tuple[Task, object]]
    shape: tuple[int, int]
    elimination: str = "TS"
    batch_updates: bool = False
    meta: dict = field(default_factory=dict)


def save_partial_factorization(
    path,
    tiled: TiledMatrix,
    completed,
    log,
    shape: tuple[int, int],
    elimination: str = "TS",
    batch_updates: bool = False,
) -> None:
    """Atomically snapshot a mid-run factorization state to ``path``.

    Must be called at a quiescent point — no task in flight — with
    ``completed`` downward-closed under the DAG's dependencies (the
    runtimes guarantee both; :func:`resume_factorization` re-validates).
    """
    completed = list(completed)
    arrays: dict[str, np.ndarray] = {}
    arrays["meta"] = np.array(
        [_PARTIAL_FORMAT, shape[0], shape[1], tiled.tile_size,
         tiled.grid_rows, tiled.grid_cols, len(log), len(completed),
         _ELIM_CODE[canonical_tree(elimination)], int(batch_updates)],
        dtype=np.int64,
    )
    if completed:
        arrays["completed"] = np.array(
            [
                [_ALL_KIND_CODE[t.kind], t.k, t.row, t.row2, t.col, t.col_end]
                for t in completed
            ],
            dtype=np.int64,
        )
    for i, j, tile in tiled.iter_tiles():
        arrays[f"r_{i}_{j}"] = tile
    _pack_log(arrays, log)
    _atomic_savez(path, arrays)


def load_partial_factorization(path) -> PartialState:
    """Read a mid-run snapshot written by :func:`save_partial_factorization`."""
    path, data = _open_checkpoint(path)
    with data:
        try:
            meta = data["meta"]
            fmt = int(meta[0])
        except (KeyError, ValueError, IndexError) as exc:
            raise CheckpointError(f"missing metadata in {path}") from exc
        if fmt == _FORMAT:
            raise CheckpointError(
                f"{path} is a completed factorization; use load_factorization()"
            )
        if fmt != _PARTIAL_FORMAT:
            raise CheckpointError(f"unsupported checkpoint format {fmt}")
        try:
            (_, rows, cols, tile_size, g_rows, g_cols, num_ops,
             num_completed, elim_code, batch_flag) = (int(v) for v in meta[:10])
        except ValueError as exc:
            raise CheckpointError(
                f"{path} has truncated partial-snapshot metadata"
            ) from exc
        _validate_target(path, rows, cols, tile_size, g_rows, g_cols, None, None)
        if elim_code not in _CODE_ELIM:
            raise CheckpointError(f"{path} has unknown elimination code {elim_code}")
        tiled = _load_tiles(data, g_rows, g_cols, rows, cols, path)
        log = _unpack_log(data, num_ops, path)
        completed: list[Task] = []
        if num_completed:
            try:
                rowsarr = np.array(data["completed"], dtype=np.int64)
            except KeyError as exc:
                raise CheckpointError(f"truncated checkpoint {path}: {exc}") from exc
            if rowsarr.shape != (num_completed, 6):
                raise CheckpointError(
                    f"{path} completed-task table has shape {rowsarr.shape}, "
                    f"expected ({num_completed}, 6)"
                )
            for code, k, row, row2, col, col_end in rowsarr.tolist():
                if code not in _ALL_CODE_KIND:
                    raise CheckpointError(f"{path} has unknown task kind code {code}")
                completed.append(Task(_ALL_CODE_KIND[code], k, row, row2, col, col_end))
    return PartialState(
        tiled=tiled,
        completed=completed,
        log=log,
        shape=(rows, cols),
        elimination=_CODE_ELIM[elim_code],
        batch_updates=bool(batch_flag),
    )


def checkpoint_info(path) -> dict:
    """Lightweight metadata for a (possibly absent) checkpoint file.

    Failure bundles embed this as the "where to resume from" pointer, so
    it must never raise: an unreadable or half-written file reports
    ``exists`` with an ``error`` note instead of failing the capture.
    """
    p = Path(path)
    info: dict = {"path": str(p), "exists": p.is_file()}
    if not info["exists"]:
        return info
    info["bytes"] = p.stat().st_size
    try:
        with np.load(p) as data:
            meta = [int(v) for v in data["meta"]]
    except Exception as exc:  # pragma: no cover - corrupt mid-write file
        info["error"] = f"unreadable: {exc}"
        return info
    if meta and meta[0] in (_FORMAT, _PARTIAL_FORMAT):
        info["format"] = meta[0]
        info["shape"] = [meta[1], meta[2]]
        info["tile_size"] = meta[3]
        if meta[0] == _PARTIAL_FORMAT and len(meta) >= 8:
            info["completed"] = meta[7]
    else:
        info["error"] = f"unknown checkpoint format {meta[:1]}"
    return info


def resume_factorization(path, runtime=None, **runtime_kwargs) -> TiledQRFactorization:
    """Finish an interrupted factorization from its last snapshot.

    Parameters
    ----------
    path:
        A partial snapshot written by :func:`save_partial_factorization`
        (e.g. via a runtime's ``checkpoint_every``).
    runtime:
        Runtime to finish on; defaults to a fresh
        :class:`~repro.runtime.SerialRuntime`.  Its DAG configuration
        (``elimination``, ``batch_updates``) must match the snapshot's —
        :class:`CheckpointError` otherwise.
    runtime_kwargs:
        Extra constructor arguments for the default runtime (ignored
        when ``runtime`` is passed).

    Returns the same :class:`TiledQRFactorization` the uninterrupted run
    would have produced.
    """
    from .serial import SerialRuntime

    state = load_partial_factorization(path)
    if runtime is None:
        runtime = SerialRuntime(
            elimination=state.elimination,
            batch_updates=state.batch_updates,
            **runtime_kwargs,
        )
    return runtime.factorize(state.tiled, resume=state)
