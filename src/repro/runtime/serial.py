"""Deterministic single-threaded execution of the tiled-QR DAG."""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_TILE_SIZE
from ..dag import build_dag
from ..errors import ShapeError
from ..kernels.workspace import Workspace
from ..tiles import TiledMatrix
from .core_exec import Factors, apply_task
from .factorization import TiledQRFactorization


class SerialRuntime:
    """Reference executor: runs tasks in the DAG's topological order.

    Parameters
    ----------
    elimination:
        ``"TS"`` (paper's flat tree, default) or ``"TT"`` (binary tree).
    progress:
        Optional callback ``(tasks_done, tasks_total, task)`` invoked
        after every kernel — hook for progress bars or cancellation
        (raise inside the callback to abort).
    tracer:
        Optional :class:`repro.observability.Tracer`; every kernel runs
        inside a span (device id ``"serial"``), so a traced run emits
        the same trace schema the simulators produce.
    batch_updates:
        Execute coarsened row-panel update tasks (``UNMQR_BATCH`` /
        ``TSMQR_BATCH``) instead of per-tile updates: one set of wide
        GEMMs per reflector factor per tile row.  Dense inputs are tiled
        in row-major storage so the panels are zero-copy views.  Results
        match the per-tile path (see ``docs/PERFORMANCE.md``).
    """

    def __init__(
        self,
        elimination: str = "TS",
        progress=None,
        tracer=None,
        batch_updates: bool = False,
    ):
        self.elimination = elimination
        self.progress = progress
        self.tracer = tracer
        self.batch_updates = batch_updates

    def factorize(self, a, tile_size: int = DEFAULT_TILE_SIZE) -> TiledQRFactorization:
        """Tiled QR factorization of a dense or tiled matrix.

        Parameters
        ----------
        a:
            Dense ``m x n`` array (``m >= n``) or a
            :class:`repro.tiles.TiledMatrix` (consumed: tiles mutated).
        tile_size:
            Tile edge when ``a`` is dense (ignored otherwise).

        Returns
        -------
        TiledQRFactorization
        """
        if isinstance(a, TiledMatrix):
            tiled = a
            shape = tiled.shape
        else:
            arr = np.asarray(a)
            if arr.ndim != 2:
                raise ShapeError(f"expected a 2-D matrix, got ndim={arr.ndim}")
            if arr.shape[0] < arr.shape[1]:
                raise ShapeError(f"QR requires m >= n, got shape {arr.shape}")
            tiled = TiledMatrix.from_dense(
                arr, tile_size, storage="rowmajor" if self.batch_updates else "tiles"
            )
            shape = arr.shape
        dag = build_dag(
            tiled.grid_rows, tiled.grid_cols, self.elimination, self.batch_updates
        )
        factors: dict[tuple, Factors] = {}
        log = []
        total = len(dag.tasks)
        tracer = self.tracer if self.tracer is not None and self.tracer.enabled else None
        b = tiled.tile_size
        workspace = Workspace()
        for done, task in enumerate(dag.tasks, start=1):
            if tracer is not None:
                with tracer.task_span(task, device="serial", tile_size=b):
                    produced = apply_task(task, tiled, factors, workspace)
            else:
                produced = apply_task(task, tiled, factors, workspace)
            if produced is not None:
                log.append((task, produced))
            if self.progress is not None:
                self.progress(done, total, task)
        return TiledQRFactorization(r=tiled, log=log, shape=shape)


def tiled_qr(
    a: np.ndarray,
    tile_size: int = DEFAULT_TILE_SIZE,
    elimination: str = "TS",
    batch_updates: bool = False,
) -> TiledQRFactorization:
    """One-call tiled QR: ``f = tiled_qr(A); Q, R = f.q_dense(), f.r_dense()``.

    This is the package's quickstart entry point.
    """
    return SerialRuntime(elimination, batch_updates=batch_updates).factorize(a, tile_size)
