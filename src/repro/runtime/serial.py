"""Deterministic single-threaded execution of the tiled-QR DAG.

Tasks run one at a time in *critical-path priority order*: ready tasks
are popped highest bottom-level rank first (see
:func:`repro.dag.analysis.bottom_level_ranks`), with the DAG emission
order as the deterministic tie-break.  Any topological order produces a
bit-identical R (unordered tasks touch disjoint tile rows), so the
priority order changes nothing numerically — but it makes the serial
runtime execute the same schedule shape the parallel runtimes and the
simulator prefer, and it keeps mid-run checkpoints frontier-shaped the
way a parallel resume expects.
"""

from __future__ import annotations

from heapq import heappop, heappush

import numpy as np

from ..config import DEFAULT_TILE_SIZE
from ..dag import build_dag
from ..dag.analysis import bottom_level_ranks, task_weight_model
from ..dag.tasks import Task
from ..dag.trees import canonical_tree
from ..errors import ShapeError, SimulationError
from ..kernels.backends import resolve_backend
from ..kernels.workspace import Workspace, drain_fallbacks
from ..tiles import TiledMatrix
from .core_exec import Factors, apply_task, apply_task_resilient
from .factorization import TiledQRFactorization


def health_ref_norm(tiled) -> float:
    """Pre-factorization Frobenius norm for the panel residual probes."""
    from ..resilience.health import tiled_frobenius_norm

    return tiled_frobenius_norm(tiled)


def resolve_policy(retry_policy, chaos, health_checks):
    """The effective retry policy, or None when the plain path suffices.

    An explicit policy always wins; chaos or health checks without one
    get the default policy (injected faults are meant to be *masked*,
    which takes retries).  With none of the three, the runtimes skip the
    resilience envelope entirely — zero overhead on the default path.
    """
    if retry_policy is not None:
        return retry_policy
    if chaos is not None or health_checks:
        from ..resilience import DEFAULT_RETRY_POLICY

        return DEFAULT_RETRY_POLICY
    return None


def run_with_bundle_capture(runtime, call, *, fault_plan=None, plan=None, meta=None):
    """Arm failure-bundle capture around one ``_factorize`` call.

    Shared by the three runtimes when ``bundle_out`` is set: attaches a
    :class:`~repro.observability.postmortem.FlightRecorder` to the
    runtime's bus (substituting a private bus when it runs without one,
    so there are task events to record), runs ``call()``, and writes an
    atomic failure bundle to ``runtime.bundle_out`` if a terminal error
    escapes — then restores the bus and re-raises.  A clean run writes
    nothing.
    """
    from ..observability.postmortem import BundleCapture

    capture = BundleCapture(
        runtime.bundle_out,
        bus=runtime.bus,
        metrics=runtime.metrics,
        plan=plan,
        fault_plan=fault_plan,
        checkpoint_path=runtime.checkpoint_path,
        meta=meta,
    )
    prev = runtime.bus
    runtime.bus = capture.bus
    try:
        return call()
    except BaseException as exc:
        capture.capture(exc)
        raise
    finally:
        runtime.bus = prev
        capture.close()


def coerce_input(a, tile_size: int, batch_updates: bool):
    """Shared dense/tiled input handling: returns ``(tiled, shape)``."""
    if isinstance(a, TiledMatrix):
        return a, a.shape
    arr = np.asarray(a)
    if arr.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got ndim={arr.ndim}")
    if arr.shape[0] < arr.shape[1]:
        raise ShapeError(f"QR requires m >= n, got shape {arr.shape}")
    tiled = TiledMatrix.from_dense(
        arr, tile_size, storage="rowmajor" if batch_updates else "tiles"
    )
    return tiled, arr.shape


def check_resume_state(resume, dag, tiled, elimination: str, batch_updates: bool):
    """Validate a :class:`~repro.runtime.checkpoint.PartialState` against
    the runtime's DAG and return its completed set.

    Raises :class:`~repro.runtime.checkpoint.CheckpointError` when the
    snapshot was taken under a different DAG configuration (resuming
    would re-apply work already in the tiles) and
    :class:`~repro.errors.DAGError` when the completed set is not a
    legal execution state.
    """
    from .checkpoint import CheckpointError

    # Canonicalize both sides so legacy "TS"/"TT" snapshots resume under
    # runtimes configured with the new tree names (and vice versa); a
    # genuine tree mismatch — e.g. resuming a GREEDY run as BINARY —
    # still fails loudly.
    snap_tree = canonical_tree(resume.elimination)
    run_tree = canonical_tree(elimination)
    if snap_tree != run_tree or resume.batch_updates != batch_updates:
        raise CheckpointError(
            f"snapshot was taken with elimination tree {snap_tree!r} "
            f"batch_updates={resume.batch_updates}, but the runtime is "
            f"configured for tree {run_tree!r} "
            f"batch_updates={batch_updates}"
        )
    snap = resume.tiled
    if (snap.grid_rows, snap.grid_cols) != (tiled.grid_rows, tiled.grid_cols):
        raise CheckpointError(
            f"snapshot grid {snap.grid_rows}x{snap.grid_cols} does not "
            f"match the target matrix grid {tiled.grid_rows}x{tiled.grid_cols}"
        )
    if tuple(resume.shape) != tuple(tiled.shape):
        raise CheckpointError(
            f"snapshot factors a {resume.shape[0]}x{resume.shape[1]} matrix, "
            f"but the target is {tiled.shape[0]}x{tiled.shape[1]}"
        )
    completed = set(resume.completed)
    dag.validate_completed(completed)
    return completed


class _CheckpointWriter:
    """Periodic partial-snapshot writer shared by the runtimes.

    Counts newly completed tasks and, every ``every`` completions,
    writes an atomic format-2 snapshot to ``path``.  Call only at
    quiescent points (the caller guarantees no task is in flight).
    """

    def __init__(
        self, every, path, dag, tiled, shape, metrics=None, tracer=None, bus=None
    ):
        if every is not None and every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {every}")
        self.every = every
        self.path = path
        self.dag = dag
        self.tiled = tiled
        self.shape = shape
        self.metrics = metrics
        self.tracer = tracer
        self.bus = bus
        self._since = 0
        self.enabled = every is not None and path is not None

    def task_done(self) -> bool:
        """Count one completion; True when a snapshot is now due."""
        if not self.enabled:
            return False
        self._since += 1
        return self._since >= self.every

    def write(self, completed, log, device: str = "local") -> None:
        from .checkpoint import save_partial_factorization

        save_partial_factorization(
            self.path,
            self.tiled,
            completed,
            log,
            self.shape,
            self.dag.elimination,
            self.dag.batch_updates,
        )
        self._since = 0
        if self.metrics is not None:
            self.metrics.counter("resilience.checkpoints").inc()
        if self.tracer is not None:
            self.tracer.record_annotation(
                "checkpoint",
                f"{len(completed)}/{len(self.dag.tasks)} tasks -> {self.path}",
                device,
            )
        if self.bus is not None:
            self.bus.publish(
                "checkpoint",
                device,
                {
                    "completed": len(completed),
                    "total": len(self.dag.tasks),
                    "path": str(self.path),
                },
            )


class SerialRuntime:
    """Reference executor: one task at a time, highest-rank-ready first.

    Parameters
    ----------
    elimination:
        Elimination-tree name or alias (see :mod:`repro.dag.trees`):
        ``"flat"``/``"TS"`` (paper default), ``"flat-tt"``,
        ``"binary"``/``"TT"``, ``"fibonacci"`` or ``"greedy"``.
    progress:
        Optional callback ``(tasks_done, tasks_total, task)`` invoked
        after every kernel — hook for progress bars or cancellation
        (raise inside the callback to abort).
    tracer:
        Optional :class:`repro.observability.Tracer`; every kernel runs
        inside a span (device id ``"serial"``), so a traced run emits
        the same trace schema the simulators produce.
    batch_updates:
        Execute coarsened row-panel update tasks (``UNMQR_BATCH`` /
        ``TSMQR_BATCH``) instead of per-tile updates: one set of wide
        GEMMs per reflector factor per tile row.  Dense inputs are tiled
        in row-major storage so the panels are zero-copy views.  Results
        match the per-tile path (see ``docs/PERFORMANCE.md``).
    retry_policy:
        Optional :class:`repro.resilience.RetryPolicy`; tasks that fail
        retryably are replayed from snapshots of their written tiles
        (see :func:`~repro.runtime.core_exec.apply_task_resilient`).
    chaos:
        Optional :class:`repro.resilience.ChaosEngine` injecting faults
        per its plan (tests and ``tiledqr chaos``).
    health_checks:
        NaN/Inf-check every task's written tiles after the kernel;
        failures raise :class:`~repro.errors.NumericalHealthError` and
        go through the retry policy.
    metrics:
        Optional :class:`repro.observability.MetricsRegistry` receiving
        the ``resilience.*`` counters.
    bus:
        Optional :class:`repro.observability.TelemetryBus`; the run
        publishes live ``run.start``/``task.start``/``task.finish``/
        ``retry``/``checkpoint``/``run.finish`` events while executing
        (see ``docs/OBSERVABILITY.md``, "Live telemetry").  ``None``
        (the default) publishes nothing and costs nothing.
    checkpoint_every / checkpoint_path:
        When both are set, write an atomic partial snapshot (format 2,
        see :mod:`repro.runtime.checkpoint`) after every
        ``checkpoint_every`` completed tasks.  ``resume_factorization``
        finishes such a run.
    bundle_out:
        Optional path: when a terminal error escapes ``factorize``, an
        atomic failure bundle (flight-recorder tail, in-flight tasks,
        metrics, fault plan, checkpoint pointer) is written there before
        the exception propagates — feed it to ``tiledqr postmortem``.
        See :mod:`repro.observability.postmortem`.
    backend:
        Kernel backend executing the tile kernels — a registered name,
        a :class:`~repro.kernels.backends.KernelBackend` object, or
        ``None`` for the ``reference`` backend.  Resolved once at
        construction (unknown names fail fast, not mid-factorization).
    """

    def __init__(
        self,
        elimination: str = "TS",
        progress=None,
        tracer=None,
        batch_updates: bool = False,
        retry_policy=None,
        chaos=None,
        health_checks: bool = False,
        metrics=None,
        checkpoint_every: int | None = None,
        checkpoint_path=None,
        backend=None,
        bus=None,
        bundle_out=None,
    ):
        self.elimination = canonical_tree(elimination)
        self.progress = progress
        self.tracer = tracer
        self.batch_updates = batch_updates
        self.retry_policy = retry_policy
        self.chaos = chaos
        self.health_checks = health_checks
        self.metrics = metrics
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.backend = resolve_backend(backend)
        self.bus = bus
        self.bundle_out = bundle_out

    def factorize(
        self, a, tile_size: int = DEFAULT_TILE_SIZE, resume=None
    ) -> TiledQRFactorization:
        """Tiled QR factorization of a dense or tiled matrix.

        Parameters
        ----------
        a:
            Dense ``m x n`` array (``m >= n``) or a
            :class:`repro.tiles.TiledMatrix` (consumed: tiles mutated).
        tile_size:
            Tile edge when ``a`` is dense (ignored otherwise).
        resume:
            Optional :class:`~repro.runtime.checkpoint.PartialState`;
            completed tasks are skipped and the reflector log is seeded
            from the snapshot (``a`` should be the snapshot's tiles —
            use :func:`~repro.runtime.checkpoint.resume_factorization`).

        Returns
        -------
        TiledQRFactorization
        """
        if self.bundle_out is None:
            return self._factorize(a, tile_size, resume)
        meta = {
            "runtime": "serial",
            "elimination": self.elimination,
            "batch_updates": self.batch_updates,
            "backend": self.backend.name,
            "tile_size": tile_size,
        }
        if self.retry_policy is not None:
            meta["retry_policy"] = self.retry_policy.to_dict()
        return run_with_bundle_capture(
            self,
            lambda: self._factorize(a, tile_size, resume),
            fault_plan=self.chaos.plan if self.chaos is not None else None,
            meta=meta,
        )

    def _factorize(self, a, tile_size: int, resume=None) -> TiledQRFactorization:
        tiled, shape = coerce_input(a, tile_size, self.batch_updates)
        dag = build_dag(
            tiled.grid_rows, tiled.grid_cols, self.elimination, self.batch_updates
        )
        factors: dict[tuple, Factors] = {}
        log: list = []
        completed: set = set()
        completed_order: list = []
        if resume is not None:
            completed = check_resume_state(
                resume, dag, tiled, self.elimination, self.batch_updates
            )
            completed_order = list(resume.completed)
            log = list(resume.log)
            for task, f in log:
                key = (
                    ("Vg", task.row, task.k)
                    if task.kind.name == "GEQRT"
                    else ("Ve", task.row, task.k)
                )
                factors[key] = f
        total = len(dag.tasks)
        tracer = self.tracer if self.tracer is not None and self.tracer.enabled else None
        b = tiled.tile_size
        workspace = Workspace()
        policy = resolve_policy(self.retry_policy, self.chaos, self.health_checks)
        ref_norm = health_ref_norm(tiled) if self.health_checks else None
        bus = self.bus
        if bus is not None:
            bus.publish(
                "run.start",
                "serial",
                {
                    "runtime": "serial",
                    "total_tasks": total,
                    "total_units": sum(t.ncols for t in dag.tasks),
                    "grid": [tiled.grid_rows, tiled.grid_cols],
                    "tile_size": b,
                    "completed": len(completed),
                },
            )
        ckpt = _CheckpointWriter(
            self.checkpoint_every, self.checkpoint_path, dag, tiled, shape,
            self.metrics, tracer, bus,
        )
        done = len(completed)
        # Critical-path priority dispatch: pop the ready task with the
        # highest bottom-level rank (emission order breaks ties).
        ranks = bottom_level_ranks(dag, task_weight_model(b))
        position = {t: n for n, t in enumerate(dag.tasks)}
        waiting = {
            t: sum(1 for d in dag.preds[t] if d not in completed)
            for t in dag.tasks
            if t not in completed
        }
        heap: list[tuple[float, int, Task]] = []
        for t in dag.tasks:
            if t not in completed and waiting[t] == 0:
                heappush(heap, (-ranks[t], position[t], t))
        while heap:
            _, _, task = heappop(heap)
            span = (
                tracer.task_span(task, device="serial", tile_size=b)
                if tracer is not None
                else None
            )
            if bus is not None:
                t0 = bus.clock()
                bus.task_start(task, "serial", t=t0)
            if policy is not None:
                with span if span is not None else _NULL_CTX:
                    produced = apply_task_resilient(
                        task, tiled, factors, workspace,
                        policy=policy, backend=self.backend, chaos=self.chaos,
                        health=self.health_checks, health_ref_norm=ref_norm,
                        metrics=self.metrics,
                        tracer=tracer, device="serial", bus=bus,
                    )
            else:
                with span if span is not None else _NULL_CTX:
                    produced = apply_task(
                        task, tiled, factors, workspace, backend=self.backend
                    )
            if bus is not None:
                bus.task_finish(task, "serial", start=t0, end=bus.clock())
            done += 1
            if produced is not None:
                log.append((task, produced))
            completed.add(task)
            completed_order.append(task)
            for succ in dag.succs[task]:
                if succ in waiting:
                    waiting[succ] -= 1
                    if waiting[succ] == 0:
                        heappush(heap, (-ranks[succ], position[succ], succ))
            if ckpt.task_done():
                ckpt.write(completed_order, log, device="serial")
            if self.progress is not None:
                self.progress(done, total, task)
        if done != total:
            raise SimulationError(f"serial runtime finished {done}/{total} tasks")
        drain_fallbacks(self.metrics, workspace)
        if bus is not None:
            bus.publish("run.finish", "serial", {"tasks": done})
            bus.drain()  # subscribers have seen everything when we return
        return TiledQRFactorization(r=tiled, log=log, shape=shape)


class _NullCtx:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_CTX = _NullCtx()


def tiled_qr(
    a: np.ndarray,
    tile_size: int = DEFAULT_TILE_SIZE,
    elimination: str = "TS",
    batch_updates: bool = False,
    backend=None,
) -> TiledQRFactorization:
    """One-call tiled QR: ``f = tiled_qr(A); Q, R = f.q_dense(), f.r_dense()``.

    This is the package's quickstart entry point.  ``backend`` names a
    registered kernel backend (``tiledqr backends`` lists them).
    """
    return SerialRuntime(
        elimination, batch_updates=batch_updates, backend=backend
    ).factorize(a, tile_size)
