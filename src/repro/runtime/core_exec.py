"""Shared task-application core for the numeric runtimes.

A single function maps one DAG task onto the tile kernels; both the
serial and the threaded runtime call it, so they cannot diverge.  The
coarsened ``*_BATCH`` update tasks route through the row-panel kernels
(:mod:`repro.kernels.batched`) — zero-copy panel views when the matrix
is in row-major storage, gather/scatter otherwise.
"""

from __future__ import annotations

from typing import Union

from ..dag.tasks import Task, TaskKind
from ..errors import DAGError
from ..kernels import geqrt, tsqrt, ttqrt, unmqr, tsmqr, unmqr_batch, tsmqr_batch
from ..kernels.geqrt import GEQRTResult
from ..kernels.tsqrt import TSQRTResult
from ..kernels.workspace import Workspace
from ..tiles import TiledMatrix

Factors = Union[GEQRTResult, TSQRTResult]


def apply_task(
    task: Task,
    a: TiledMatrix,
    factors: dict[tuple, Factors],
    workspace: Workspace | None = None,
) -> Factors | None:
    """Execute one task against the tiled matrix, in place.

    Parameters
    ----------
    task:
        The DAG task to run (per-tile or batched).
    a:
        The matrix being factorized (tiles mutated in place).
    factors:
        Shared factor store keyed by ``("Vg"|"Ve", row, k)``; factorization
        tasks insert, update tasks read.  The threaded runtime relies on
        plain-dict atomicity under the GIL plus DAG ordering for safety.
    workspace:
        Scratch arena for the update kernels' GEMMs.  Must be private to
        the calling worker; ``None`` uses the thread-local default.

    Returns
    -------
    The factors produced (for factorization tasks) or ``None`` (updates).
    """
    k = task.k
    if task.kind is TaskKind.GEQRT:
        f = geqrt(a.tile(task.row, k))
        a.set_tile(task.row, k, f.r)
        factors[("Vg", task.row, k)] = f
        return f
    if task.kind is TaskKind.UNMQR:
        f = factors[("Vg", task.row, k)]
        unmqr(f, a.tile(task.row, task.col), workspace=workspace)
        return None
    if task.kind is TaskKind.UNMQR_BATCH:
        f = factors[("Vg", task.row, k)]
        panel = a.row_panel(task.row, task.col, task.col_end)
        unmqr_batch(f, panel, workspace=workspace)
        a.scatter_row_panel(task.row, task.col, task.col_end, panel)
        return None
    if task.kind in (TaskKind.TSQRT, TaskKind.TTQRT):
        top = a.tile(task.row2, k)
        bot = a.tile(task.row, k)
        fe = tsqrt(top, bot) if task.kind is TaskKind.TSQRT else ttqrt(top, bot)
        a.set_tile(task.row2, k, fe.r)
        bot[...] = 0.0
        factors[("Ve", task.row, k)] = fe
        return fe
    if task.kind in (TaskKind.TSMQR, TaskKind.TTMQR):
        fe = factors[("Ve", task.row, k)]
        tsmqr(
            fe,
            a.tile(task.row2, task.col),
            a.tile(task.row, task.col),
            workspace=workspace,
        )
        return None
    if task.kind in (TaskKind.TSMQR_BATCH, TaskKind.TTMQR_BATCH):
        fe = factors[("Ve", task.row, k)]
        top = a.row_panel(task.row2, task.col, task.col_end)
        bot = a.row_panel(task.row, task.col, task.col_end)
        tsmqr_batch(fe, top, bot, workspace=workspace)
        a.scatter_row_panel(task.row2, task.col, task.col_end, top)
        a.scatter_row_panel(task.row, task.col, task.col_end, bot)
        return None
    raise DAGError(f"unknown task kind {task.kind!r}")  # pragma: no cover
