"""Shared task-application core for the numeric runtimes.

A single function maps one DAG task onto the tile kernels; both the
serial and the threaded runtime call it, so they cannot diverge.  The
coarsened ``*_BATCH`` update tasks route through the row-panel kernels
(:mod:`repro.kernels.batched`) — zero-copy panel views when the matrix
is in row-major storage, gather/scatter otherwise.

:func:`apply_task_resilient` wraps the same core in the fault-tolerance
envelope (see :mod:`repro.resilience`): because a task's write set is
explicit (the same access rules the DAG builder derives dependencies
from), a failed attempt can restore exactly the tiles it touched and
replay the kernel — a retry-masked fault leaves the factorization
bit-identical to a clean run.
"""

from __future__ import annotations

import time as _time
from time import perf_counter
from typing import Union

from ..dag.builder import task_accesses
from ..dag.tasks import Task, TaskKind
from ..errors import DAGError, RetryExhaustedError, TaskTimeoutError
from ..kernels.backends import KernelBackend, resolve_backend
from ..kernels.geqrt import GEQRTResult
from ..kernels.tsqrt import TSQRTResult
from ..kernels.workspace import Workspace
from ..tiles import TiledMatrix

Factors = Union[GEQRTResult, TSQRTResult]


def apply_task(
    task: Task,
    a: TiledMatrix,
    factors: dict[tuple, Factors],
    workspace: Workspace | None = None,
    backend: KernelBackend | None = None,
) -> Factors | None:
    """Execute one task against the tiled matrix, in place.

    Parameters
    ----------
    task:
        The DAG task to run (per-tile or batched).
    a:
        The matrix being factorized (tiles mutated in place).
    factors:
        Shared factor store keyed by ``("Vg"|"Ve", row, k)``; factorization
        tasks insert, update tasks read.  The threaded runtime relies on
        plain-dict atomicity under the GIL plus DAG ordering for safety.
    workspace:
        Scratch arena for the update kernels' GEMMs.  Must be private to
        the calling worker; ``None`` uses the thread-local default.
    backend:
        The :class:`~repro.kernels.backends.KernelBackend` executing the
        kernels; ``None`` means the ``reference`` backend.  Runtimes
        resolve this once per run and pass the object, so the per-task
        cost is one attribute lookup.

    Returns
    -------
    The factors produced (for factorization tasks) or ``None`` (updates).
    """
    kern = backend if backend is not None else resolve_backend(None)
    k = task.k
    if task.kind is TaskKind.GEQRT:
        f = kern.geqrt(a.tile(task.row, k))
        a.set_tile(task.row, k, f.r)
        factors[("Vg", task.row, k)] = f
        return f
    if task.kind is TaskKind.UNMQR:
        f = factors[("Vg", task.row, k)]
        kern.unmqr(f, a.tile(task.row, task.col), workspace=workspace)
        return None
    if task.kind is TaskKind.UNMQR_BATCH:
        f = factors[("Vg", task.row, k)]
        panel = a.row_panel(task.row, task.col, task.col_end)
        kern.unmqr_batch(f, panel, workspace=workspace)
        a.scatter_row_panel(task.row, task.col, task.col_end, panel)
        return None
    if task.kind in (TaskKind.TSQRT, TaskKind.TTQRT):
        top = a.tile(task.row2, k)
        bot = a.tile(task.row, k)
        fe = kern.tsqrt(top, bot) if task.kind is TaskKind.TSQRT else kern.ttqrt(top, bot)
        a.set_tile(task.row2, k, fe.r)
        bot[...] = 0.0
        factors[("Ve", task.row, k)] = fe
        return fe
    if task.kind in (TaskKind.TSMQR, TaskKind.TTMQR):
        fe = factors[("Ve", task.row, k)]
        fn = kern.tsmqr if task.kind is TaskKind.TSMQR else kern.ttmqr
        fn(
            fe,
            a.tile(task.row2, task.col),
            a.tile(task.row, task.col),
            workspace=workspace,
        )
        return None
    if task.kind in (TaskKind.TSMQR_BATCH, TaskKind.TTMQR_BATCH):
        fe = factors[("Ve", task.row, k)]
        fn = kern.tsmqr_batch if task.kind is TaskKind.TSMQR_BATCH else kern.ttmqr_batch
        top = a.row_panel(task.row2, task.col, task.col_end)
        bot = a.row_panel(task.row, task.col, task.col_end)
        fn(fe, top, bot, workspace=workspace)
        a.scatter_row_panel(task.row2, task.col, task.col_end, top)
        a.scatter_row_panel(task.row, task.col, task.col_end, bot)
        return None
    raise DAGError(f"unknown task kind {task.kind!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Fault-tolerant execution envelope
# ---------------------------------------------------------------------------


def task_written_tiles(task: Task, a: TiledMatrix):
    """The live tile views a task writes (from the DAG access rules)."""
    _reads, writes = task_accesses(task)
    return [a.tile(i, j) for key, i, j in writes if key == "t"]


def _factor_key(task: Task) -> tuple | None:
    """The factor-store key a factorization task inserts (None for updates)."""
    if task.kind is TaskKind.GEQRT:
        return ("Vg", task.row, task.k)
    if task.kind in (TaskKind.TSQRT, TaskKind.TTQRT):
        return ("Ve", task.row, task.k)
    return None


def apply_task_resilient(
    task: Task,
    a: TiledMatrix,
    factors: dict[tuple, Factors],
    workspace: Workspace | None = None,
    *,
    policy,
    backend: KernelBackend | None = None,
    chaos=None,
    health: bool = False,
    health_ref_norm: float | None = None,
    metrics=None,
    tracer=None,
    device: str = "local",
    bus=None,
) -> Factors | None:
    """Execute one task under retry/chaos/health semantics.

    Same contract as :func:`apply_task`, plus:

    * before each attempt the task's written tiles are snapshotted, so a
      failed attempt restores them exactly and the replay starts from
      pristine inputs (bit-identical masking);
    * ``chaos`` (a :class:`repro.resilience.ChaosEngine`) may inject a
      kernel exception, delay/hang, or output corruption;
    * with ``health=True`` the written tiles are NaN/Inf-checked after
      the kernel (:func:`repro.resilience.check_task_outputs`); when
      ``health_ref_norm`` (the pre-factorization Frobenius norm) is also
      given, factorization tasks additionally run the per-panel residual
      probe (:func:`repro.resilience.panel_residual_probe`) over the
      R tile they produced — catching finite-but-garbage corruption;
    * an attempt exceeding ``policy.deadline`` wall-clock seconds is
      classified as a hang (:class:`~repro.errors.TaskTimeoutError`) and
      retried like any failure;
    * retries are counted on ``metrics`` (``resilience.retries``),
      annotated on ``tracer``, and published as ``retry`` events on
      ``bus`` (a :class:`repro.observability.TelemetryBus`, when live
      telemetry is on); every failed attempt additionally publishes a
      ``task.error`` event (task, attempt, error type/message,
      retryability) — the flight recorder's raw material; exhausting
      the policy raises :class:`~repro.errors.RetryExhaustedError`
      chained to the last failure.
    """
    from ..resilience.health import check_task_outputs, panel_residual_probe

    written = task_written_tiles(task, a)
    fkey = _factor_key(task)
    last_exc: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        if attempt > 1:
            if metrics is not None:
                metrics.counter("resilience.retries").inc()
            if tracer is not None:
                tracer.record_annotation(
                    "retry",
                    f"attempt {attempt}/{policy.max_attempts} of {task.label()}: {last_exc}",
                    device,
                )
            if bus is not None:
                bus.publish(
                    "retry",
                    device,
                    {
                        "task": task.label(),
                        "attempt": attempt,
                        "max_attempts": policy.max_attempts,
                        "error": str(last_exc),
                    },
                )
            pause = policy.backoff_seconds(attempt, key=task.sort_key())
            if pause > 0.0:
                _time.sleep(pause)
        snapshot = [t.copy() for t in written]
        try:
            # The deadline clock covers the injection point too: a HANG
            # fault stalls the kernel slot and must count as a hang.
            t0 = perf_counter()
            if chaos is not None:
                chaos.before_task(task, device)
            produced = apply_task(task, a, factors, workspace, backend=backend)
            elapsed = perf_counter() - t0
            if policy.deadline is not None and elapsed > policy.deadline:
                raise TaskTimeoutError(
                    f"{task.label()} took {elapsed:.3f}s "
                    f"(deadline {policy.deadline:.3f}s); classifying as hung"
                )
            if chaos is not None:
                chaos.corrupt_outputs(task, written, device)
            if health:
                check_task_outputs(task, written)
                if health_ref_norm is not None and fkey is not None:
                    # written[0] is the R tile every factorization task
                    # rewrites (the first entry of its write set).
                    panel_residual_probe(written[0], health_ref_norm, task.k)
            return produced
        except BaseException as exc:
            if isinstance(exc, TaskTimeoutError) and metrics is not None:
                metrics.counter("resilience.timeouts").inc()
            retryable = policy.is_retryable(exc)
            if bus is not None:
                bus.publish(
                    "task.error",
                    device,
                    {
                        "task": task.label(),
                        "attempt": attempt,
                        "max_attempts": policy.max_attempts,
                        "error": type(exc).__name__,
                        "message": str(exc),
                        "retryable": retryable,
                    },
                )
            if retryable and attempt < policy.max_attempts:
                # Roll back this attempt: written tiles and any factor
                # entry the failed kernel may have inserted.
                for tile, saved in zip(written, snapshot):
                    tile[...] = saved
                if fkey is not None:
                    factors.pop(fkey, None)
                last_exc = exc
                continue
            if retryable:
                raise RetryExhaustedError(
                    f"{task.label()} failed {policy.max_attempts} attempt(s); last: {exc}"
                ) from exc
            raise
    raise AssertionError("unreachable")  # pragma: no cover
