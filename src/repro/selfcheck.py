"""Quick installation self-check: ``python -m repro selfcheck``.

Runs a small battery across every subsystem — numeric kernels, DAG
construction, simulators, planner, linalg layer — in a few seconds and
reports pass/fail per area.  Meant for users verifying an install or a
port (new NumPy/BLAS), not as a substitute for the test suite.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np


def _check_kernels() -> str:
    from .kernels import geqrt, tsmqr, tsqrt
    from .kernels.tsqr import tsqr

    rng = np.random.default_rng(0)
    a = rng.standard_normal((16, 16))
    f = geqrt(a)
    q = f.q_dense()
    err = np.linalg.norm(q @ f.r - a)
    assert err < 1e-12, f"GEQRT reconstruction error {err:.2e}"
    r1 = np.triu(rng.standard_normal((16, 16)))
    a2 = rng.standard_normal((16, 16))
    fe = tsqrt(r1, a2)
    c1, c2 = r1.copy(), a2.copy()
    tsmqr(fe, c1, c2)
    assert np.linalg.norm(c2) < 1e-10, "TSQRT failed to eliminate"
    ft = tsqr(rng.standard_normal((64, 8)), num_blocks=4)
    assert np.linalg.norm(ft.q_dense() @ ft.r - np.zeros((64, 8))) >= 0
    return "GEQRT/TSQRT/TSMQR/TSQR numerically sound"


def _check_factorization() -> str:
    from .runtime import ThreadedRuntime, tiled_qr

    rng = np.random.default_rng(1)
    a = rng.standard_normal((96, 96))
    f = tiled_qr(a, 16)
    err = f.reconstruction_error(a)
    assert err < 1e-12, f"tiled QR error {err:.2e}"
    ft = ThreadedRuntime(num_workers=2).factorize(a, 16)
    assert np.allclose(ft.r_dense(), f.r_dense()), "threaded != serial"
    x = rng.standard_normal(96)
    got = f.solve(a @ x)
    assert np.linalg.norm(got - x) < 1e-8, "solve inaccurate"
    return "serial/threaded factorization + solve agree"


def _check_dag() -> str:
    from .dag import build_dag
    from .dag.analysis import task_counts_total

    for p, q in ((5, 5), (7, 3)):
        dag = build_dag(p, q)
        dag.validate()
        assert dag.count_by_step() == task_counts_total(p, q)
    return "DAG construction and closed forms consistent"


def _check_planner() -> str:
    from .core.main_device import select_main_device
    from .core.optimizer import Optimizer
    from .devices.registry import paper_testbed

    system = paper_testbed()
    assert select_main_device(system, 200, 200, 16) == "gtx580-0"
    plan = Optimizer(system).plan(matrix_size=640)
    assert plan.num_devices >= 2
    return "planner reproduces the paper's selections"


def _check_simulators() -> str:
    from .comm.topology import pcie_star
    from .core.optimizer import Optimizer
    from .dag import build_dag
    from .devices.registry import paper_testbed
    from .sim import simulate_iteration_level, simulate_task_level

    system = paper_testbed()
    top = pcie_star(system.devices)
    plan = Optimizer(system, top).plan(matrix_size=160, num_devices=2)
    dag = build_dag(10, 10)
    t_des = simulate_task_level(dag, plan, system, top).report().makespan
    t_it = simulate_iteration_level(plan, 10, 10, system, top).makespan
    assert 0 < t_des <= t_it * 1.2, "simulator cross-check failed"
    return "task-level and iteration-level simulators agree"


def _check_linalg() -> str:
    from .linalg import StreamingLeastSquares, lstsq, numerical_rank, qr_solve

    rng = np.random.default_rng(2)
    a = rng.standard_normal((32, 32)) + 6 * np.eye(32)
    x = rng.standard_normal(32)
    assert np.linalg.norm(qr_solve(a, a @ x) - x) < 1e-8
    v = rng.standard_normal((40, 6))
    coef, _ = lstsq(v, v @ np.ones(6))
    assert np.linalg.norm(coef - 1.0) < 1e-8
    u = rng.standard_normal((20, 3))
    w = rng.standard_normal((3, 12))
    assert numerical_rank(u @ w) == 3, "rank detection failed"
    sls = StreamingLeastSquares(3)
    for _ in range(6):
        r = rng.standard_normal(3)
        sls.add(r, float(r @ [1.0, 2.0, 3.0]))
    assert np.linalg.norm(sls.coefficients() - [1, 2, 3]) < 1e-8
    return "linalg layer (solve/lstsq/rank/streaming) sound"


CHECKS: list[tuple[str, Callable[[], str]]] = [
    ("kernels", _check_kernels),
    ("factorization", _check_factorization),
    ("dag", _check_dag),
    ("planner", _check_planner),
    ("simulators", _check_simulators),
    ("linalg", _check_linalg),
]


def run_selfcheck(verbose: bool = True) -> bool:
    """Run every check; returns True when all pass."""
    ok = True
    for name, fn in CHECKS:
        t0 = time.perf_counter()
        try:
            detail = fn()
            status = "ok"
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            detail = f"{type(exc).__name__}: {exc}"
            status = "FAIL"
            ok = False
        if verbose:
            dt = (time.perf_counter() - t0) * 1e3
            print(f"  [{status:4s}] {name:14s} {detail} ({dt:.0f} ms)")
    return ok
