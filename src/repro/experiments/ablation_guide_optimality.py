"""Ablation — how close is the paper's full pipeline to the *optimal*
column assignment?

Algs. 2-4 are heuristics; the space of column-to-device assignments can
be searched.  For small grids we brute-force every assignment through
the iteration simulator (the search subsumes the device-count decision:
an assignment using one device *is* ``p = 1``).  For grids where
several devices genuinely help, exhaustive search is impossible
(3^39 assignments at n = 640), so a hill-climbing search with random
restarts provides the strong baseline.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..core.plan import DistributionPlan
from ..sim.iteration import simulate_iteration_level
from .common import ExperimentResult, default_setup


def _assignment_plan(system, main, participants, owners, tile_size=16):
    """A plan whose guide array realizes an explicit per-column owner list
    (``column_owner(j) == owners[j]`` for every column of the grid)."""
    guide = tuple(owners[j % len(owners)] for j in range(len(owners)))
    return DistributionPlan(
        system=system,
        main_device=main,
        participants=tuple(participants),
        guide_array=guide,
        tile_size=tile_size,
        notes={"assignment": tuple(owners)},
    )


def _evaluate(system, topology, main, participants, owners, g):
    plan = _assignment_plan(system, main, participants, list(owners))
    return simulate_iteration_level(plan, g, g, system, topology).makespan


def _hill_climb(system, topology, main, participants, start_owners, g, rng, iters=400):
    """Single-column reassignment moves with first-improvement accept."""
    owners = list(start_owners)
    best = _evaluate(system, topology, main, participants, owners, g)
    for _ in range(iters):
        j = int(rng.integers(1, len(owners)))
        old = owners[j]
        new = participants[int(rng.integers(len(participants)))]
        if new == old:
            continue
        owners[j] = new
        t = _evaluate(system, topology, main, participants, owners, g)
        if t < best:
            best = t
        else:
            owners[j] = old
    return best


def run(quick: bool = False) -> ExperimentResult:
    system, opt, _qr = default_setup()
    topology = opt.topology
    participants = ["gtx580-0", "gtx680-0", "gtx680-1"]
    main = "gtx580-0"
    rows = []

    # -- exhaustive regime: tiny grids ---------------------------------
    for g in [6] if quick else [6, 8]:
        pipeline = opt.plan(matrix_size=g * 16)  # Algs. 2+3+4 end to end
        t_pipe = simulate_iteration_level(pipeline, g, g, system, topology).makespan
        times = [
            _evaluate(system, topology, main, participants, [main, *combo], g)
            for combo in itertools.product(participants, repeat=g - 1)
        ]
        best, med = min(times), float(np.median(times))
        rows.append(
            [f"{g}x{g}", "exhaustive", len(times), t_pipe * 1e3, best * 1e3,
             med * 1e3, t_pipe / best]
        )

    # -- search regime: grids where several devices pay off -------------
    rng = np.random.default_rng(1)
    for g in [40] if quick else [40, 64]:
        pipeline = opt.plan(matrix_size=g * 16)
        t_pipe = simulate_iteration_level(pipeline, g, g, system, topology).makespan
        start = [pipeline.column_owner(j) if pipeline.column_owner(j) in participants
                 else main for j in range(g)]
        iters = 150 if quick else 500
        t_search = _hill_climb(
            system, topology, main, participants, start, g, rng, iters=iters
        )
        # Random baseline for scale.
        rand = min(
            _evaluate(
                system, topology, main, participants,
                [main, *rng.choice(participants, size=g - 1)], g,
            )
            for _ in range(20 if quick else 60)
        )
        rows.append(
            [f"{g}x{g}", "hill-climb", iters, t_pipe * 1e3, t_search * 1e3,
             rand * 1e3, t_pipe / t_search]
        )

    worst_gap = max(row[-1] for row in rows)
    return ExperimentResult(
        name="ablation-guide-optimality",
        title="Ablation: full pipeline (Algs. 2-4) vs searched column "
        "assignments (ms; 'median/rand' = median exhaustive or best random)",
        headers=["grid", "baseline", "evals", "pipeline", "best found",
                 "median/rand", "pipeline/best"],
        rows=rows,
        paper_expectation="(beyond the paper) the closed-form heuristics "
        "should land near what explicit search finds, at zero search "
        "cost.",
        observations=(
            f"the pipeline stays within {100*(worst_gap-1):.0f}% of the "
            f"best assignment any search found (exhaustive on small "
            f"grids, hill-climbing with hundreds of simulator calls on "
            f"larger ones) — the paper's O(1) formulas capture almost "
            f"all of the attainable schedule quality."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
