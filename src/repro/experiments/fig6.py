"""Fig. 6 — whole-decomposition time for 1, 2 and 3 participating GPUs.

Reproduces all three views of the paper's figure: the entire range plus
the two zoom bands (160-960 and 2080-4000) where the 1->2 and 2->3
crossovers are visible.
"""

from __future__ import annotations

from .common import ExperimentResult, default_setup, paper_sizes


def run(quick: bool = False) -> ExperimentResult:
    system, opt, qr = default_setup()
    sizes = paper_sizes(quick)["table3"]
    rows = []
    crossings = []
    prev_best = None
    for n in sizes:
        times = {}
        for p in (1, 2, 3):
            plan = opt.plan(matrix_size=n, num_devices=p)
            times[p] = qr.simulate(n, plan=plan, fidelity="iteration").report.makespan
        best = min(times, key=times.get)
        if prev_best is not None and best != prev_best:
            crossings.append((prev_best, best, n))
        prev_best = best
        rows.append([n, times[1] * 1e3, times[2] * 1e3, times[3] * 1e3, f"{best}G"])
    obs = "; ".join(f"{a}G->{b}G at n={n}" for a, b, n in crossings)
    return ExperimentResult(
        name="fig6",
        title="Fig. 6: QR time (ms) vs matrix size for 1/2/3 GPUs",
        headers=["matrix", "1 GPU (ms)", "2 GPUs (ms)", "3 GPUs (ms)", "best"],
        rows=rows,
        paper_expectation="1 GPU fastest for small sizes, 2 GPUs in a "
        "middle band (switch near 640), 3 GPUs for large sizes (switch "
        "near 2720).",
        observations=f"crossovers: {obs}" if obs else "no crossovers in range",
        extra={"crossings": crossings},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
