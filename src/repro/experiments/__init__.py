"""Experiment drivers reproducing every table and figure of the paper.

Each module exposes ``run(quick=False) -> ExperimentResult``; the
benchmark harness under ``benchmarks/`` and the CLI
(``python -m repro``) both call these, so the regenerating code lives in
exactly one place.

==================  ===========================================
Module              Paper artifact
==================  ===========================================
``table1``          Table I   — tiles operated per step
``fig3_dag``        Fig. 3    — the task DAG itself
``fig4``            Fig. 4    — per-step kernel time vs tile size
``fig5``            Fig. 5    — calculation vs communication share
``fig6``            Fig. 6    — time vs size for 1/2/3 GPUs
``fig8``            Fig. 8    — scalability over device subsets
``fig9``            Fig. 9    — main-device selection comparison
``fig10``           Fig. 10   — tile-distribution comparison
``table3``          Table III — predicted vs actual device count
==================  ===========================================

Plus ablations and extensions beyond the paper: ``ablation_elimination``
(TS vs TT trees), ``ablation_tilesize`` (sweeping b),
``ablation_lookahead`` (the paper's per-iteration runtime vs a fully
asynchronous scheduler), ``stability`` (Householder vs Cholesky-family
QR), ``caqr_comparison`` (column vs CA-QR row-block distribution,
Sec. VII), and ``autotune_host`` (Song et al. [7] profiling on this
machine).
"""

from .common import ExperimentResult
from . import (
    table1,
    fig3_dag,
    fig4,
    fig5,
    fig6,
    fig8,
    fig9,
    fig10,
    table3,
    ablation_elimination,
    ablation_tilesize,
    ablation_lookahead,
    stability,
    caqr_comparison,
    autotune_host,
    ablation_scheduler,
    cluster_scaling,
    memory_out_of_core,
    ablation_guide_optimality,
    precision,
    song_tuning,
    solve_pipeline,
    weak_scaling,
    energy_to_solution,
    tall_matrices,
)

ALL_EXPERIMENTS = {
    "table1": table1,
    "fig3": fig3_dag,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "table3": table3,
    "ablation-elimination": ablation_elimination,
    "ablation-tilesize": ablation_tilesize,
    "ablation-lookahead": ablation_lookahead,
    "stability": stability,
    "caqr-comparison": caqr_comparison,
    "autotune-host": autotune_host,
    "ablation-scheduler": ablation_scheduler,
    "cluster-scaling": cluster_scaling,
    "memory-out-of-core": memory_out_of_core,
    "ablation-guide-optimality": ablation_guide_optimality,
    "precision": precision,
    "song-tuning": song_tuning,
    "solve-pipeline": solve_pipeline,
    "weak-scaling": weak_scaling,
    "energy-to-solution": energy_to_solution,
    "tall-matrices": tall_matrices,
}

__all__ = ["ExperimentResult", "ALL_EXPERIMENTS"]
