"""Extension — column distribution vs CA-QR-style row blocks (Sec. VII).

The paper dismisses row-wise distribution as a multi-cluster technique
and keeps columns "since there is not much communication cost for our
system".  Running both under the same device/link models quantifies the
trade-off, including the load-balancing problem the paper alludes to:
contiguous row bands starve as panels advance, which block-row-cyclic
layouts fix.
"""

from __future__ import annotations

from ..comm.topology import pcie_star
from ..sim.iteration import simulate_iteration_level
from ..sim.rowblock import simulate_rowblock_level
from .common import ExperimentResult, default_setup


def run(quick: bool = False) -> ExperimentResult:
    system, opt, _qr = default_setup()
    sizes = [640, 1600] if quick else [640, 1600, 3200, 6400]
    link_scales = [1.0, 0.1]  # paper's PCIe node vs a 10x-worse network
    participants = [d.device_id for d in system.devices]
    rows = []
    for scale in link_scales:
        topology = pcie_star(
            system.devices, bandwidth=6e9 * scale, latency=50e-6 / scale
        )
        for n in sizes:
            g = n // 16
            plan = opt.plan(matrix_size=n, num_devices=len(system))
            t_col = simulate_iteration_level(plan, g, g, system, topology).makespan
            t_row_c = simulate_rowblock_level(
                system, participants, g, g, 16, topology, layout="cyclic"
            ).makespan
            t_row_b = simulate_rowblock_level(
                system, participants, g, g, 16, topology, layout="contiguous"
            ).makespan
            rows.append(
                [
                    "PCIe" if scale == 1.0 else "slow net",
                    n,
                    t_col, t_row_c, t_row_b,
                    t_col / t_row_c,
                    t_row_b / t_row_c,
                ]
            )
    largest_pcie = [r for r in rows if r[0] == "PCIe"][-1]
    largest_slow = [r for r in rows if r[0] == "slow net"][-1]
    obs = (
        f"at n={largest_pcie[1]} on PCIe the best row-block variant runs "
        f"{largest_pcie[5]:.2f}x the column scheme's speed (ratio > 1 means "
        f"row blocks win) because the panel tree parallelizes the chain the "
        f"main-device design serializes; on a 10x-worse network the gap "
        f"widens to {largest_slow[5]:.2f}x since the column scheme's "
        f"per-panel factor broadcast pays the degraded link on every "
        f"iteration — consistent with CA-QR targeting clusters. Contiguous "
        f"vs cyclic rows trade idle tails against extra merge exchanges "
        f"(contig/cyc = {largest_pcie[6]:.2f} at that size)."
    )
    return ExperimentResult(
        name="caqr-comparison",
        title="Extension: column distribution (paper) vs CA-QR row blocks (s)",
        headers=[
            "link", "matrix", "column", "row-cyclic", "row-contig",
            "col/row-cyc", "contig/cyc",
        ],
        rows=rows,
        paper_expectation="(paper Sec. VII argument) columns are easy to "
        "load-balance on a low-communication single node; row "
        "distribution targets clusters.  CA-QR theory: the panel tree "
        "removes the single-device chain bottleneck.",
        observations=obs,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
