"""Extension — single vs double precision tiled QR.

The paper transfers 4-byte elements (its GeForce-generation GPUs were
single-precision machines); the numeric kernels here run in either
precision.  This experiment measures what that choice costs in accuracy
and buys in (modelled) bandwidth, and demonstrates the f32 kernels end
to end.
"""

from __future__ import annotations

import numpy as np

from ..comm.topology import pcie_star
from ..runtime import tiled_qr
from ..sim.iteration import simulate_iteration_level
from ..utils import frobenius_relative_error
from .common import ExperimentResult, default_setup


def run(quick: bool = False) -> ExperimentResult:
    system, opt, _qr = default_setup()
    sizes = [96, 192] if quick else [96, 192, 384]
    rows = []
    rng = np.random.default_rng(11)
    for n in sizes:
        a64 = rng.standard_normal((n, n))
        a32 = a64.astype(np.float32)
        f64 = tiled_qr(a64, 16)
        f32 = tiled_qr(a32, 16)
        err64 = frobenius_relative_error(f64.apply_q(f64.r_dense()), a64)
        err32 = frobenius_relative_error(f32.apply_q(f32.r_dense()), a32)
        assert f32.r.dtype == np.float32
        # Modelled communication with 4- vs 8-byte elements.
        g = max(n // 16, 4)
        plan4 = opt.plan(matrix_size=g * 16, num_devices=4)
        from ..core.optimizer import Optimizer

        opt8 = Optimizer(system, pcie_star(system.devices), element_size=8)
        plan8 = opt8.plan(matrix_size=g * 16, num_devices=4)
        c4 = simulate_iteration_level(
            plan4, g, g, system, opt.topology, element_size=4
        ).comm_time
        c8 = simulate_iteration_level(
            plan8, g, g, system, opt8.topology, element_size=8
        ).comm_time
        rows.append([n, err32, err64, err64 / err32, c8 / c4])
    return ExperimentResult(
        name="precision",
        title="Extension: float32 vs float64 tiled QR "
        "(reconstruction error; comm-time ratio f64/f32)",
        headers=["matrix", "f32 error", "f64 error", "err ratio", "comm x"],
        rows=rows,
        paper_expectation="(the paper's GPUs are single-precision "
        "machines; Eq. 11 uses 4-byte elements) f32 halves transfer "
        "volume at ~1e-7 accuracy; f64 reaches ~1e-15.",
        observations="the same kernels run in both precisions; errors "
        "sit at the respective machine epsilons and the modelled "
        "communication scales with the element size (latency dilutes "
        "the ratio below 2x at small sizes).",
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
