"""Table I — the number of tiles operated per step (paper Sec. III-A).

Prints the paper's counting model next to the exact flat-tree DAG task
counts and verifies both against an actually-built DAG.
"""

from __future__ import annotations

from ..dag import build_dag
from ..dag.analysis import dag_step_counts, step_counts
from ..dag.tasks import Step
from .common import ExperimentResult


def run(quick: bool = False) -> ExperimentResult:
    shapes = [(4, 4), (8, 8)] if quick else [(4, 4), (8, 8), (16, 16), (32, 16)]
    rows = []
    for m, n in shapes:
        paper = step_counts(m, n)
        exact = dag_step_counts(m, n)
        # Cross-check the exact counts against a real first panel.
        dag = build_dag(m, n)
        built = {s: 0 for s in Step}
        for t in dag.panel_tasks(0):
            built[t.step] += 1
        assert built == exact, f"DAG disagrees with closed form for {m}x{n}"
        rows.append(
            [
                f"{m}x{n}",
                paper[Step.T], paper[Step.E], paper[Step.UT], paper[Step.UE],
                exact[Step.T], exact[Step.E], exact[Step.UT], exact[Step.UE],
            ]
        )
    return ExperimentResult(
        name="table1",
        title="Table I: tiles operated per step for an MxN panel "
        "(paper's counting | exact flat-tree DAG tasks)",
        headers=["panel", "T", "E", "UT", "UE", "T*", "E*", "UT*", "UE*"],
        rows=rows,
        paper_expectation="T: M, E: M, UT: M(N-1), UE: M(N-1) — an "
        "upper-bound accounting where every update tile is charged both "
        "update kinds.",
        observations="exact DAG counts per panel are T: 1, E: M-1, "
        "UT: N-1, UE: (M-1)(N-1); the paper's totals bound them from "
        "above and the update totals agree in the aggregate "
        "(UT*+UE* = M(N-1)).",
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
