"""Extension — equal tiles (paper) vs per-device tile sizes (Song [7]).

The paper argues for one tile size everywhere, balancing load "depending
on the number of distributed tiles, rather than the size of each tile"
(Sec. IV); Song et al. let every device run its own tuned tile size.
This experiment bounds the question with the calibrated models:

* for each device, sweep b and find its own optimal *update efficiency*
  (seconds per matrix element processed);
* compare each device's efficiency at the common b = 16 against its own
  optimum — the headroom Song-style per-device tuning could recover;
* against that, price the cost Song's scheme must pay: every factor
  transfer between devices with different tile sizes needs re-tiling
  (a repack at host-memory bandwidth).
"""

from __future__ import annotations

from ..dag.tasks import Step
from .common import ExperimentResult, default_setup


def _update_eff(dev, b: int) -> float:
    """Seconds per matrix *element* updated, amortized over slots."""
    per_tile = (dev.time(Step.UT, b) + dev.time(Step.UE, b)) / dev.slots
    return per_tile / (b * b)


def run(quick: bool = False) -> ExperimentResult:
    system, _opt, _qr = default_setup()
    candidates = [8, 16, 32] if quick else [8, 12, 16, 20, 24, 32, 48, 64]
    common_b = 16
    rows = []
    headrooms = []
    for dev in system:
        effs = {b: _update_eff(dev, b) for b in candidates}
        best_b = min(effs, key=effs.get)
        headroom = effs[common_b] / effs[best_b]
        headrooms.append(headroom)
        rows.append(
            [
                dev.device_id,
                best_b,
                effs[best_b] * 1e9,
                effs[common_b] * 1e9,
                headroom,
            ]
        )
    worst = max(headrooms)
    # Re-tiling cost estimate: repacking one panel's factor volume
    # (3 M tiles) at host bandwidth, relative to one panel's update work.
    # At n = 3200 (M = 200): repack 3*200*1KB = 600 KB @ ~20 GB/s = 30 us
    # versus per-panel update time in the hundreds of microseconds.
    return ExperimentResult(
        name="song-tuning",
        title="Extension: per-device update efficiency vs tile size "
        "(ns per element; headroom = common-b / own-best)",
        headers=["device", "best b", "eff@best", "eff@16", "headroom x"],
        rows=rows,
        paper_expectation="(paper Sec. IV vs Song et al. [7]) the paper "
        "fixes one tile size and balances by tile count; Song tunes b "
        "per device.",
        observations=(
            f"per-device tuning would recover at most {worst:.2f}x on the "
            f"slowest-fitting device at these models; the paper's "
            f"tile-count balancing already captures most of it, and "
            f"mixed sizes would add a re-tiling repack on every factor "
            f"transfer plus break the cyclic guide array's uniformity — "
            f"supporting the paper's equal-tile choice for single-node "
            f"systems."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
