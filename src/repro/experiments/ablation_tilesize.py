"""Ablation — tile-size sweep around the paper's b = 16.

The paper fixes 16x16 tiles ("because the number of cores of the CPU
and GPUs are the power of 2") and balances load by tile *count* rather
than tile size (Sec. IV, contrasting Song et al. [7]).  This ablation
sweeps b on the full system and reports where the modelled optimum sits.
"""

from __future__ import annotations

from .common import ExperimentResult, default_setup


def run(quick: bool = False) -> ExperimentResult:
    system, opt, qr = default_setup()
    sizes = [1280] if quick else [1280, 3200, 6400]
    tile_sizes = [8, 16, 32] if quick else [8, 12, 16, 20, 24, 32, 48]
    rows = []
    for n in sizes:
        times = {}
        for b in tile_sizes:
            plan = opt.plan(matrix_size=n, tile_size=b, num_devices=len(system))
            times[b] = qr.simulate(n, tile_size=b, plan=plan, fidelity="iteration").report.makespan
        best = min(times, key=times.get)
        rows.append([n, *[times[b] * 1e3 for b in tile_sizes], best])
    return ExperimentResult(
        name="ablation-tilesize",
        title="Ablation: tile-size sweep (ms per run; paper fixes b=16)",
        headers=["matrix", *[f"b={b}" for b in tile_sizes], "best b"],
        rows=rows,
        paper_expectation="(beyond the paper) small tiles expose more "
        "parallelism but pay more kernel-launch overhead and a longer "
        "panel chain; large tiles starve the update devices.",
        observations="the modelled optimum sits near the paper's choice "
        "for mid-size matrices and grows slowly with n.",
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
