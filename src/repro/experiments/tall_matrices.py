"""Extension — tall matrices: where the paper's design runs out of road.

The paper fixes square matrices (Sec. IV); least-squares workloads are
*tall*.  As the aspect ratio m/n grows, each panel's elimination chain
lengthens (M tiles) while the update pool shrinks (fewer right-hand
columns) — the worst case for a single main device, and exactly the
shape TSQR trees were invented for.  This experiment sweeps the aspect
ratio at fixed total work and watches the column scheme degrade against
the row-block tree.
"""

from __future__ import annotations

from ..sim.iteration import simulate_iteration_level
from ..sim.rowblock import simulate_rowblock_level
from .common import ExperimentResult, default_setup


def run(quick: bool = False) -> ExperimentResult:
    system, opt, _qr = default_setup()
    participants = list(system.device_ids)
    # Fixed n (columns), growing m (rows): classic least-squares panels.
    n_cols = 320 if quick else 640
    ratios = [1, 4, 16] if quick else [1, 2, 4, 8, 16, 32]
    rows = []
    for ratio in ratios:
        m = n_cols * ratio
        g_rows, g_cols = m // 16, n_cols // 16
        plan = opt.plan(grid_rows=g_rows, grid_cols=g_cols)
        t_col = simulate_iteration_level(
            plan, g_rows, g_cols, system, opt.topology
        ).makespan
        t_row = simulate_rowblock_level(
            system, participants, g_rows, g_cols, 16, opt.topology,
            layout="cyclic",
        ).makespan
        rows.append([f"{m}x{n_cols}", ratio, plan.num_devices,
                     t_col, t_row, t_col / t_row])
    ratios_adv = [row[-1] for row in rows]
    return ExperimentResult(
        name="tall-matrices",
        title="Extension: aspect-ratio sweep — column scheme vs row-block "
        "tree (s; col/row > 1 means the tree wins)",
        headers=["shape", "m/n", "p*", "column", "row-tree", "col/row"],
        rows=rows,
        paper_expectation="(beyond the paper's square focus) tall panels "
        "stretch the single-device elimination chain while starving the "
        "update pool — TSQR territory (paper refs. [12, 13]).",
        observations=(
            f"the row-block tree's advantage grows monotonically with "
            f"tallness (col/row from {ratios_adv[0]:.2f} at square to "
            f"{ratios_adv[-1]:.2f} at {rows[-1][1]}:1): with few trailing "
            f"columns there is nothing for the paper's update devices to "
            f"hide the chain behind, while the tree factors the panel in "
            f"parallel."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
