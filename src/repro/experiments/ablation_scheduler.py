"""Extension — ready-queue scheduling policies in the task-level DES.

The paper fixes its schedule (panels first, next column first); a
DAG-driven runtime has freedom in which ready task to dispatch.  This
ablation compares the critical-path-first policy against FIFO,
column-major and a deliberately pessimal reverse order — quantifying how
much the *ordering* of ready tasks matters once the distribution is
fixed.
"""

from __future__ import annotations

from ..comm.topology import pcie_star
from ..dag import build_dag
from ..sim.engine import DiscreteEventSimulator
from .common import ExperimentResult, default_setup


def run(quick: bool = False) -> ExperimentResult:
    system, opt, _qr = default_setup()
    topology = pcie_star(system.devices)
    sizes = [320, 640] if quick else [320, 640, 960]
    policies = list(DiscreteEventSimulator.POLICIES)
    rows = []
    for n in sizes:
        g = n // 16
        plan = opt.plan(matrix_size=n, num_devices=len(system))
        dag = build_dag(g, g)
        times = {}
        for pol in policies:
            sim = DiscreteEventSimulator(system, topology, policy=pol)
            times[pol] = sim.run(dag, plan).makespan
        rows.append([n, *(times[p] * 1e3 for p in policies),
                     max(times.values()) / min(times.values())])
    spread = max(row[-1] for row in rows)
    return ExperimentResult(
        name="ablation-scheduler",
        title="Ablation: DES ready-queue policies (ms per run)",
        headers=["matrix", *policies, "worst/best-ratio"],
        rows=rows,
        paper_expectation="(beyond the paper) dispatch order should "
        "matter little once the panel chain owns a dedicated engine; "
        "orders that starve the chain's feeding updates stretch the "
        "makespan.",
        observations=(
            f"policies stay within {100*(spread-1):.0f}% of each other: "
            f"the dedicated per-device panel engine already isolates the "
            f"critical chain, so update ordering only shifts pipeline "
            f"slack — evidence the paper's gains come from *distribution*, "
            f"not dispatch order."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
