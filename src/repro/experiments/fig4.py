"""Fig. 4 — per-step single-tile kernel time on each device vs tile size.

Reports three things side by side for every device and tile size:

* the calibrated device model's time (what every other experiment uses),
* the paper's digitized Fig. 4 value (approximate),
* the *real measured* NumPy kernel time on this host — the actual
  from-scratch kernels timed with ``time.perf_counter`` — demonstrating
  that the kernel-cost *shape* (T > E > UT/UE, cubic growth) is a
  property of the algorithm, not of the model.
"""

from __future__ import annotations

import time

import numpy as np

from ..dag.tasks import Step
from ..devices.calibration import (
    fig4_reference_points,
    paper_cpu_i7_3820,
    paper_gtx580,
    paper_gtx680,
)
from ..kernels import geqrt, tsqrt, tsmqr, unmqr
from .common import ExperimentResult


def _measure_host_kernels(tile_sizes: list[int], repeats: int = 5) -> dict[str, list[float]]:
    """Median wall time (us) of the real NumPy kernels on this host."""
    rng = np.random.default_rng(0)
    out = {"T": [], "E": [], "UT": [], "UE": []}
    for b in tile_sizes:
        a = rng.standard_normal((b, b))
        r1 = np.triu(rng.standard_normal((b, b)))
        a2 = rng.standard_normal((b, b))
        c = rng.standard_normal((b, b))
        f = geqrt(a)
        fe = tsqrt(r1, a2)

        def timed(fn, *args):
            samples = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn(*args)
                samples.append(time.perf_counter() - t0)
            return sorted(samples)[len(samples) // 2] * 1e6

        out["T"].append(timed(lambda: geqrt(a)))
        out["E"].append(timed(lambda: tsqrt(r1, a2)))
        out["UT"].append(timed(lambda: unmqr(f, c.copy())))
        out["UE"].append(timed(lambda: tsmqr(fe, c.copy(), c.copy())))
    return out


def run(quick: bool = False) -> ExperimentResult:
    tile_sizes = [8, 16] if quick else [4, 8, 12, 16, 20, 24, 28]
    devices = {
        "gtx580": paper_gtx580(),
        "gtx680": paper_gtx680(),
        "cpu": paper_cpu_i7_3820(),
    }
    ref = fig4_reference_points()
    host = _measure_host_kernels(tile_sizes)
    rows = []
    for dev_key, dev in devices.items():
        for i, b in enumerate(tile_sizes):
            ref_idx = ref[dev_key]["tile_sizes"].index(float(b)) if float(b) in ref[dev_key]["tile_sizes"] else None
            rows.append(
                [
                    dev_key,
                    b,
                    dev.time(Step.T, b) * 1e6,
                    dev.time(Step.E, b) * 1e6,
                    dev.time(Step.UT, b) * 1e6,
                    dev.time(Step.UE, b) * 1e6,
                    ref[dev_key]["T"][ref_idx] if ref_idx is not None else float("nan"),
                    ref[dev_key]["E"][ref_idx] if ref_idx is not None else float("nan"),
                    ref[dev_key]["U"][ref_idx] if ref_idx is not None else float("nan"),
                    host["T"][i],
                    host["UE"][i],
                ]
            )
    # Shape assertions the paper's Fig. 4 carries:
    for b in tile_sizes:
        for dev in devices.values():
            assert dev.time(Step.T, b) > dev.time(Step.UT, b), "T must exceed UT"
            assert dev.time(Step.E, b) > dev.time(Step.UE, b), "E must exceed UE"
        if b >= 16:  # at tiny tiles GPU launch overhead lets the CPU win (Fig. 4c)
            assert devices["gtx580"].time(Step.T, b) < devices["gtx680"].time(Step.T, b) < devices["cpu"].time(Step.T, b)
    return ExperimentResult(
        name="fig4",
        title="Fig. 4: per-tile kernel time vs tile size "
        "(model us | paper digitized us | host-measured us)",
        headers=[
            "device", "b", "T", "E", "UT", "UE",
            "paperT", "paperE", "paperU", "hostT", "hostUE",
        ],
        rows=rows,
        paper_expectation="per-tile times ordered GTX580 < GTX680 < CPU; "
        "T > E > UT~UE on every device; GPU curves flat at small tiles "
        "(launch overhead), CPU steeper (cubic).",
        observations="model reproduces all orderings and growth shapes; "
        "absolute microseconds are calibrated to the paper's end-to-end "
        "results (see EXPERIMENTS.md on Fig. 4's internal inconsistency); "
        "host-measured NumPy kernels show the same T>E>UT/UE ordering for "
        "the factorization-heavy steps at small tile sizes.",
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
