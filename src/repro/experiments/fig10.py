"""Fig. 10 — tile-distribution strategies compared.

Guide array (the paper's method) vs cores-proportional vs even
distribution over sizes 3200..16000.  The even baseline distributes
over the GPUs (handing a quad-core CPU a quarter of a 16000x16000
matrix would dwarf every other effect).
"""

from __future__ import annotations

from ..baselines import cores_based_plan, even_plan
from .common import ExperimentResult, default_setup, paper_sizes


def run(quick: bool = False) -> ExperimentResult:
    system, opt, qr = default_setup()
    sizes = paper_sizes(quick)["large"]
    gpu_ids = [d.device_id for d in system.gpus()]
    rows = []
    for n in sizes:
        t_guide = qr.simulate(
            n, plan=opt.plan(matrix_size=n, num_devices=len(system))
        ).report.makespan
        t_cores = qr.simulate(
            n, plan=cores_based_plan(system, "gtx580-0")
        ).report.makespan
        t_even = qr.simulate(
            n, plan=even_plan(system, "gtx580-0", participants=gpu_ids)
        ).report.makespan
        rows.append(
            [n, t_guide, t_cores, t_even, t_even / t_guide, t_cores / t_guide]
        )
    last = rows[-1]
    return ExperimentResult(
        name="fig10",
        title="Fig. 10: QR time (s) by tile-distribution strategy",
        headers=["matrix", "guide", "cores", "even", "even/guide", "cores/guide"],
        rows=rows,
        paper_expectation="at 16000 the guide array is 21% faster than "
        "even distribution and 10% faster than cores-based.",
        observations=(
            f"at n={last[0]} the guide array beats even distribution by "
            f"{(last[4]-1)*100:.0f}% (paper: 21%); cores-based lands within "
            f"{abs(last[5]-1)*100:.0f}% of the guide on our calibration "
            f"because 512:1536 happens to approximate the modelled GPU "
            f"throughput ratio — see EXPERIMENTS.md."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
