"""Fig. 9 — how the main-device choice affects total time.

Four policies on sizes 3200..16000: the Alg. 2 selection (GTX580),
forcing the GTX680, no specific main device (panels follow column
owners), and forcing the CPU (catastrophic — the paper reports 430 s at
16000).
"""

from __future__ import annotations

from ..baselines import forced_main_plan, no_main_plan
from ..core.main_device import select_main_device
from .common import ExperimentResult, default_setup, paper_sizes


def run(quick: bool = False) -> ExperimentResult:
    system, opt, qr = default_setup()
    sizes = paper_sizes(quick)["large"]
    tile = 16
    rows = []
    selected = None
    for n in sizes:
        g = -(-n // tile)
        selected = select_main_device(system, g, g, tile)
        t = {}
        t["gtx580"] = qr.simulate(
            n, plan=forced_main_plan(system, "gtx580-0", g, g, tile)
        ).report.makespan
        t["gtx680"] = qr.simulate(
            n, plan=forced_main_plan(system, "gtx680-0", g, g, tile)
        ).report.makespan
        t["none"] = qr.simulate(
            n, plan=no_main_plan(system, g, g, tile)
        ).report.makespan
        t["cpu"] = qr.simulate(
            n, plan=forced_main_plan(system, "cpu-0", g, g, tile)
        ).report.makespan
        rows.append(
            [
                n,
                t["gtx580"], t["gtx680"], t["none"], t["cpu"],
                t["gtx680"] / t["gtx580"],
                t["none"] / t["gtx580"],
            ]
        )
    last = rows[-1]
    return ExperimentResult(
        name="fig9",
        title="Fig. 9: QR time (s) by main-device policy",
        headers=["matrix", "GTX580", "GTX680", "None", "CPU", "680/580", "none/580"],
        rows=rows,
        paper_expectation="Alg. 2 selects the GTX580; at 16000 the "
        "GTX680-as-main is ~13% slower, no-main ~5% slower, and "
        "CPU-as-main is 430.6 s.",
        observations=(
            f"Alg. 2 selects {selected}; at n={last[0]} GTX680-as-main is "
            f"{(last[5]-1)*100:.0f}% slower and CPU-as-main takes "
            f"{last[4]:.0f} s (paper: 430.6 s). The no-main mode ties the "
            f"optimized plan in our model (ratio {last[6]:.2f}) — see "
            f"EXPERIMENTS.md for why the paper's 5% gap does not emerge."
        ),
        extra={"selected_main": selected},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
