"""Extension — very large matrices vs device memory (paper Sec. VIII).

The paper assumes "there is no problem about memory size".  With the
Table II capacities (1.5/2 GB GPUs), that assumption breaks between
n = 32000 and 64000; this experiment finds the break point and prices a
left-looking out-of-core schedule for the sizes beyond it.
"""

from __future__ import annotations

from ..core.memory import check_memory, out_of_core_estimate
from ..sim.iteration import simulate_iteration_level
from .common import ExperimentResult, default_setup


def run(quick: bool = False) -> ExperimentResult:
    system, opt, _qr = default_setup()
    sizes = [16000, 48000] if quick else [16000, 32000, 48000, 64000, 96000]
    rows = []
    first_infeasible = None
    for n in sizes:
        g = n // 16
        plan = opt.plan(matrix_size=n)
        report = check_memory(plan, g, g)
        tightest = report.tightest_device()
        util = report.utilization().get(tightest, 0.0) if tightest else 0.0
        in_core = simulate_iteration_level(
            plan, g, g, system, opt.topology
        ).makespan
        ooc = out_of_core_estimate(plan, g, g, in_core, opt.topology)
        if not report.feasible and first_infeasible is None:
            first_infeasible = n
        rows.append(
            [
                n,
                "yes" if report.feasible else "NO",
                f"{util * 100:.0f}%",
                tightest or "-",
                ooc.passes,
                ooc.makespan,
                f"{ooc.overhead * 100:.1f}%",
            ]
        )
    obs = (
        f"the in-core assumption first fails at n={first_infeasible} "
        f"(tightest device exceeds its GDDR5); the left-looking "
        f"super-panel schedule keeps running with the reported passes at "
        f"sub-percent re-streaming overhead — factor traffic grows as "
        f"n^2 per pass while compute grows as n^3."
        if first_infeasible
        else "every tested size fits in device memory."
    )
    return ExperimentResult(
        name="memory-out-of-core",
        title="Extension: device-memory feasibility and out-of-core passes",
        headers=["matrix", "fits", "peak util", "tightest", "passes",
                 "makespan (s)", "ooc overhead"],
        rows=rows,
        paper_expectation="(paper future work) 'a lack of memory problem "
        "can occur for very large matrix sizes'.",
        observations=obs,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
