"""Extension — the full Ax=b pipeline: factor once, solve many.

The paper motivates QR by the linear-system use case (Eqs. 1-3) but only
evaluates the factorization.  This experiment models the whole pipeline
on the testbed: factorization time (simulated) plus per-solve time
(the Q^T sweep over the reflector log and the triangular solve), and
reports the right-hand-side count at which total solve work overtakes
the factorization — the amortization the use case relies on.
"""

from __future__ import annotations

from ..dag.tasks import Step
from ..sim.iteration import simulate_iteration_level
from .common import ExperimentResult, default_setup


def _solve_time_model(system, plan, grid: int, tile_size: int, nrhs: int) -> float:
    """Modelled wall-clock seconds for one batched solve.

    Unlike the update sweep of the factorization, a solve over one RHS
    tile column is a *serial chain*: every Q^T pair-application touches
    RHS tile-row ``k``, and the back-substitution rows depend bottom-up.
    Slots only parallelize across RHS tile columns, and the reflector
    factors must travel from the main device to the RHS owner each panel
    (the latency-dominated term the DES exposes).
    """
    main = system.device(plan.main_device)
    rhs_tiles = max(1, -(-nrhs // tile_size))
    # Concurrent RHS tile columns limited by slots.
    waves = max(1, -(-rhs_tiles // main.slots))
    t_pair = main.time(Step.UE, tile_size)
    t_single = main.time(Step.UT, tile_size)
    tile_bytes = tile_size * tile_size * 4
    # Q^T sweep: per panel, the serial chain down the panel rows.
    from ..comm.topology import pcie_star

    topology = pcie_star(system.devices)
    qt_time = 0.0
    comm_time = 0.0
    rhs_owner = plan.column_owner(grid)  # first RHS column's owner
    for k in range(grid):
        m_k = grid - k
        qt_time += waves * (t_single + (m_k - 1) * t_pair)
        if rhs_owner != plan.main_device:
            comm_time += topology.transfer_time(
                plan.main_device, rhs_owner, 3 * m_k * tile_bytes, messages=2
            )
    # Back-substitution: serial TRSM chain; substitutions pipeline behind.
    tri_time = grid * waves * (t_single + t_pair)
    return qt_time + tri_time + comm_time


def run(quick: bool = False) -> ExperimentResult:
    system, opt, _qr = default_setup()
    sizes = [1600] if quick else [1600, 3200, 6400]
    rhs_counts = [1, 16, 256] if quick else [1, 16, 64, 256, 1024]
    rows = []
    # Cross-check the analytic solve model against the task-level DES on
    # a small grid (the DES replays the actual solve DAG).
    from ..dag.solve import build_solve_dag
    from ..sim.engine import simulate_task_level

    g_chk = 20
    plan_chk = opt.plan(matrix_size=g_chk * 16, num_devices=3)
    t_des = simulate_task_level(
        build_solve_dag(g_chk, 1), plan_chk, system, opt.topology
    ).makespan
    t_model = _solve_time_model(system, plan_chk, g_chk, 16, 1)
    model_vs_des = t_model / t_des
    for n in sizes:
        g = n // 16
        plan = opt.plan(matrix_size=n)
        t_factor = simulate_iteration_level(plan, g, g, system, opt.topology).makespan
        per_rhs = {
            r: _solve_time_model(system, plan, g, 16, r) for r in rhs_counts
        }
        # Amortization point: solves as cheap as the factorization.
        t1 = per_rhs[1]
        breakeven = t_factor / t1 if t1 > 0 else float("inf")
        rows.append(
            [
                n,
                t_factor,
                *[per_rhs[r] * 1e3 for r in rhs_counts],
                f"{breakeven:.0f}",
            ]
        )
    return ExperimentResult(
        name="solve-pipeline",
        title="Extension: factor-once/solve-many amortization "
        "(factor s; solve ms per batch; single-RHS solves per factor)",
        headers=["matrix", "factor (s)", *[f"rhs={r} (ms)" for r in rhs_counts],
                 "breakeven"],
        rows=rows,
        paper_expectation="(the paper's Eqs. 1-3 use case) a solve is "
        "O(n^2) against the factorization's O(n^3): one factorization "
        "amortizes over many right-hand sides.",
        observations=(
            f"a solve is a latency-bound serial chain, so it costs more "
            f"than its O(n^2) flops suggest — the breakeven column counts "
            f"how many single-RHS solves equal one factorization (growing "
            f"with n as compute scales n^3 vs the chain's n). Batches ride "
            f"along for free up to one RHS tile-column per slot. The "
            f"analytic model sits at {model_vs_des:.2f}x the task-level "
            f"DES replay of the actual solve DAG on a 20x20 grid."
        ),
        extra={"model_vs_des": model_vs_des},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
