"""Extension — weak scaling: grow the matrix with the machine.

Fig. 8 is a strong-scaling study (fixed problem, more devices).  The
complementary HPC question: if the problem grows so the *work per unit
of update throughput* stays constant, does the time stay flat?  QR work
is cubic, so ``n`` scales with the cube root of the throughput ratio.
The answer quantifies the paper's serial bottleneck: the main device's
panel chain grows as ``n^2`` regardless of how many updaters join.
"""

from __future__ import annotations

from ..comm.topology import pcie_star
from ..core.optimizer import Optimizer
from ..sim.iteration import simulate_iteration_level
from .common import ExperimentResult, default_setup

SUBSETS = [
    ["cpu-0", "gtx580-0"],
    ["cpu-0", "gtx580-0", "gtx680-0"],
    ["cpu-0", "gtx580-0", "gtx680-0", "gtx680-1"],
]


def run(quick: bool = False) -> ExperimentResult:
    system, _opt, _qr = default_setup()
    base_n = 1600 if quick else 3200
    rows = []
    base_capacity = None
    base_time = None
    for ids in SUBSETS:
        sub = system.subset(ids)
        top = pcie_star(sub.devices)
        capacity = sum(d.update_throughput(16) for d in sub)
        if base_capacity is None:
            base_capacity = capacity
        # Cubic work model: n grows with the cube root of capacity.
        n = int(round(base_n * (capacity / base_capacity) ** (1.0 / 3.0) / 16) * 16)
        g = n // 16
        plan = Optimizer(sub, top).plan(matrix_size=n, num_devices=len(ids))
        t = simulate_iteration_level(plan, g, g, sub, top).makespan
        if base_time is None:
            base_time = t
        rows.append(
            [
                "+".join(i.split("-")[0] for i in ids),
                f"{capacity / 1e6:.2f}",
                n,
                t,
                base_time / t,
            ]
        )
    worst_eff = min(row[-1] for row in rows)
    return ExperimentResult(
        name="weak-scaling",
        title="Extension: weak scaling — matrix grown with update capacity "
        "(Mtiles/s; efficiency = t_base / t)",
        headers=["devices", "capacity", "matrix", "time (s)", "efficiency"],
        rows=rows,
        paper_expectation="(beyond Fig. 8's strong scaling) perfect weak "
        "scaling keeps time flat; the main device's n^2 panel chain and "
        "the n^2 communication erode it.",
        observations=(
            f"weak-scaling efficiency falls to {worst_eff:.2f} at the full "
            f"machine: the added GPUs absorb the n^3 update growth, but "
            f"the serial elimination chain (n^2, all on the GTX580) takes "
            f"a growing share — Amdahl acting on the paper's design."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
