"""Extension — energy-optimal vs time-optimal device counts.

The paper's Alg. 3 minimizes time; a 2013 GeForce board draws ~200 W, so
the joules-optimal configuration can use *fewer* devices: a GPU that
trims the makespan a few percent still burns board power for the whole
run.  This experiment reruns the Table III sweep scoring both ways.
"""

from __future__ import annotations

from ..analysis.energy import energy_report
from ..sim.iteration import simulate_iteration_level
from .common import ExperimentResult, default_setup


def run(quick: bool = False) -> ExperimentResult:
    system, opt, _qr = default_setup()
    sizes = [320, 1600, 3200] if quick else [320, 800, 1600, 2400, 3200, 4000]
    rows = []
    disagreements = 0
    for n in sizes:
        g = n // 16
        per_p = {}
        for p in (1, 2, 3):
            plan = opt.plan(matrix_size=n, num_devices=p)
            rep = simulate_iteration_level(plan, g, g, system, opt.topology)
            per_p[p] = (rep.makespan, energy_report(rep, system).total_joules)
        best_t = min(per_p, key=lambda p: per_p[p][0])
        best_e = min(per_p, key=lambda p: per_p[p][1])
        disagreements += best_t != best_e
        rows.append(
            [
                n,
                *(f"{per_p[p][0]*1e3:.1f}" for p in (1, 2, 3)),
                *(f"{per_p[p][1]:.1f}" for p in (1, 2, 3)),
                f"{best_t}G",
                f"{best_e}G",
            ]
        )
    return ExperimentResult(
        name="energy-to-solution",
        title="Extension: time vs energy optimal GPU count "
        "(time ms | energy J per configuration)",
        headers=["matrix", "t1G", "t2G", "t3G", "e1G", "e2G", "e3G",
                 "best-time", "best-energy"],
        rows=rows,
        paper_expectation="(beyond the paper) Alg. 3 optimizes time; "
        "board power makes marginal devices costly in joules.",
        observations=(
            f"the energy optimum uses fewer (or equal) GPUs than the time "
            f"optimum at {disagreements}/{len(sizes)} sizes — a marginal "
            f"device must buy enough speedup to pay for its own board "
            f"power, a stricter bar than buying any speedup at all."
        ),
        extra={"disagreements": disagreements},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
