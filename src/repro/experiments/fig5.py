"""Fig. 5 — proportion of calculation vs communication time.

The paper runs the four-core CPU plus all three GPUs over matrix sizes
160..3840 and shows communication taking > 20% of the time for small
matrices and < 10% for large ones (compute grows cubically, transfers
quadratically).
"""

from __future__ import annotations

from .common import ExperimentResult, default_setup, paper_sizes


def run(quick: bool = False) -> ExperimentResult:
    system, opt, qr = default_setup()
    sizes = paper_sizes(quick)["small"]
    rows = []
    small_fracs, large_fracs = [], []
    for n in sizes:
        plan = opt.plan(matrix_size=n, num_devices=len(system))
        report = qr.simulate(n, plan=plan, fidelity="iteration").report
        frac = report.comm_fraction
        rows.append([n, (1.0 - frac) * 100.0, frac * 100.0])
        (small_fracs if n <= 320 else large_fracs if n >= 1280 else []).append(frac)
    obs = ""
    if small_fracs and large_fracs:
        obs = (
            f"comm share {min(small_fracs)*100:.0f}-{max(small_fracs)*100:.0f}% "
            f"at n<=320, {min(large_fracs)*100:.0f}-{max(large_fracs)*100:.0f}% "
            f"at n>=1280 — decreasing as n grows, matching the paper's trend."
        )
    return ExperimentResult(
        name="fig5",
        title="Fig. 5: calculation vs communication share (CPU + 3 GPUs)",
        headers=["matrix", "calc %", "comm %"],
        rows=rows,
        paper_expectation="communication > 20% of time for 160..320, "
        "< 10% for larger matrices.",
        observations=obs,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
