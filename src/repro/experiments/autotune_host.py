"""Extension — autotune a device model for *this* host (Song et al. [7]).

Profiles the real NumPy tile kernels across tile sizes, fits the
``overhead + flops/rate`` model with the library's own least-squares
path, and reports fit quality plus the tuned tile size the fitted model
implies for this machine.
"""

from __future__ import annotations

from ..dag.tasks import Step
from ..devices.autotune import (
    autotune_host_device,
    measure_host_kernels,
    tuned_tile_size,
)
from ..devices.registry import make_system
from .common import ExperimentResult


def run(quick: bool = False) -> ExperimentResult:
    sizes = [8, 16, 32] if quick else [8, 16, 24, 32, 48, 64]
    repeats = 5 if quick else 9
    meas = measure_host_kernels(sizes, repeats=repeats)
    host = autotune_host_device(tile_sizes=sizes, repeats=repeats)
    rows = []
    worst_rel = 0.0
    for step in Step:
        for b in sizes:
            measured = meas[step][b]
            modeled = host.time(step, b)
            rel = abs(modeled - measured) / measured
            worst_rel = max(worst_rel, rel)
            rows.append([step.value, b, measured * 1e6, modeled * 1e6, rel * 100.0])
    system = make_system("host", [host])
    best_b = tuned_tile_size(system, 768, candidates=sizes)
    return ExperimentResult(
        name="autotune-host",
        title="Extension: autotuned host device model "
        "(measured us | fitted us | error %)",
        headers=["step", "b", "measured", "fitted", "err %"],
        rows=rows,
        paper_expectation="(Song et al. [7] workflow) profile small "
        "kernels, fit the model, tune the tile size from it.",
        observations=(
            f"fitted overhead+flops/rate model tracks the measurements "
            f"(worst point error {worst_rel*100:.0f}%); the tuned tile "
            f"size for a 768x768 on this host is b={best_b}. Python-loop "
            f"overhead makes panel kernels (T/E) far slower than the "
            f"BLAS-3 updates here — the same qualitative profile as the "
            f"paper's Fig. 4 devices."
        ),
        extra={"device": host, "tuned_tile_size": best_b},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
