"""Fig. 3 — the tiled-QR task DAG structure.

Regenerates the dependency pattern the paper illustrates: each
triangulation leads the rightward updates and the downward elimination;
each elimination leads its rightward updates and the next column's
triangulation.  Emits the DAG's structural statistics and (in extra) a
Graphviz rendering of the 3x3 case shown in the paper's Fig. 2.
"""

from __future__ import annotations

from ..dag import build_dag
from ..dag.analysis import critical_path_length, max_parallelism
from ..dag.export import to_dot, to_networkx
from .common import ExperimentResult


def run(quick: bool = False) -> ExperimentResult:
    shapes = [3, 4] if quick else [3, 4, 6, 8, 12]
    rows = []
    for g in shapes:
        for elim in ("TS", "TT"):
            dag = build_dag(g, g, elim)
            dag.validate()
            nx_g = to_networkx(dag)
            rows.append(
                [
                    f"{g}x{g}",
                    elim,
                    len(dag),
                    nx_g.number_of_edges(),
                    int(critical_path_length(dag)),
                    max_parallelism(dag),
                ]
            )
    dot = to_dot(build_dag(3, 3))
    return ExperimentResult(
        name="fig3",
        title="Fig. 3: tiled-QR DAG structure (flat-tree TS vs binary-tree TT)",
        headers=["grid", "elim", "tasks", "edges", "crit.path", "max width"],
        rows=rows,
        paper_expectation="T leads rightward UT and downward E; E leads "
        "rightward UE and the next panel's T (Fig. 3); the 3x3 process "
        "follows Fig. 2.",
        observations="TT trees trade more tasks for a shorter critical "
        "path at the same grid — the Bouwmeester et al. [6] trade-off.",
        extra={"dot_3x3": dot},
    )


if __name__ == "__main__":  # pragma: no cover
    res = run()
    print(res.to_text())
    print("\n" + res.extra["dot_3x3"])
