"""Fig. 8 — scalability over growing device subsets.

The paper's x-axis is the number of parallel cores of the devices used:
CPU only (4), CPU + GTX580 (516), CPU + GTX580 + GTX680 (2052), and all
devices (3588); one curve per matrix size 3200..16000, log-log axes.
"""

from __future__ import annotations

from ..core.executor import TiledQR
from ..core.optimizer import Optimizer
from .common import ExperimentResult, default_setup, paper_sizes

SUBSETS = [
    ["cpu-0"],
    ["cpu-0", "gtx580-0"],
    ["cpu-0", "gtx580-0", "gtx680-0"],
    ["cpu-0", "gtx580-0", "gtx680-0", "gtx680-1"],
]


def run(quick: bool = False) -> ExperimentResult:
    system, _opt, _qr = default_setup()
    sizes = paper_sizes(quick)["large"]
    rows = []
    monotone = True
    for n in sizes:
        times = []
        cores = []
        for ids in SUBSETS:
            sub = system.subset(ids)
            opt = Optimizer(sub)
            qr = TiledQR(sub)
            plan = opt.plan(matrix_size=n, num_devices=len(ids))
            times.append(qr.simulate(n, plan=plan, fidelity="iteration").report.makespan)
            cores.append(sub.total_cores)
        monotone &= all(t1 > t2 for t1, t2 in zip(times, times[1:]))
        rows.append([n, *[f"{t:.2f}" for t in times]])
    headers = ["matrix"] + [
        f"{'+'.join(i.split('-')[0] for i in ids)} ({sum(system.device(d).cores for d in ids)}c)"
        for ids in SUBSETS
    ]
    return ExperimentResult(
        name="fig8",
        title="Fig. 8: QR time (s) vs parallel cores of the devices used",
        headers=headers,
        rows=rows,
        paper_expectation="every curve decreases as devices are added "
        "(4 -> 516 -> 2052 -> 3588 cores); e.g. 3200 goes 19.9 s -> "
        "0.28 s, 16000 goes 462 s -> 6.87 s on the authors' hardware.",
        observations=(
            "time decreases monotonically with added devices for every "
            "matrix size" if monotone else "NON-MONOTONE scaling detected"
        ),
        extra={"monotone": monotone},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
