"""Shared scaffolding for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..analysis.reporting import format_table
from ..comm.topology import pcie_star
from ..config import DEFAULT_TILE_SIZE
from ..core.executor import TiledQR
from ..core.optimizer import Optimizer
from ..devices.registry import SystemSpec, paper_testbed


@dataclass
class ExperimentResult:
    """Structured output of one experiment driver.

    Attributes
    ----------
    name:
        Experiment id (e.g. ``"table3"``).
    title:
        Human-readable description referencing the paper artifact.
    headers, rows:
        The regenerated table (same rows/series the paper reports).
    paper_expectation:
        What the paper's version of this artifact shows — the shape the
        reproduction is held against.
    observations:
        Notes filled in by the driver (measured shape summary).
    """

    name: str
    title: str
    headers: list[str]
    rows: list[list]
    paper_expectation: str = ""
    observations: str = ""
    extra: dict = field(default_factory=dict)

    def to_text(self) -> str:
        parts = [format_table(self.headers, self.rows, title=self.title)]
        if self.paper_expectation:
            parts.append(f"\npaper: {self.paper_expectation}")
        if self.observations:
            parts.append(f"measured: {self.observations}")
        return "\n".join(parts)


def default_setup(
    tile_size: int = DEFAULT_TILE_SIZE,
) -> tuple[SystemSpec, Optimizer, TiledQR]:
    """The paper's Table II testbed plus its optimizer and executor."""
    system = paper_testbed()
    topology = pcie_star(system.devices)
    opt = Optimizer(system, topology)
    qr = TiledQR(system, topology)
    return system, opt, qr


def paper_sizes(quick: bool) -> dict[str, Sequence[int]]:
    """Matrix-size sweeps used by the paper, with quick variants for CI."""
    if quick:
        return {
            "small": [160, 320, 640],                 # Fig. 5/6 zoom range
            "table3": list(range(160, 4001, 480)),    # Table III rows
            "large": [3200, 6400],                    # Figs. 8-10
        }
    return {
        "small": list(range(160, 3841, 160)),
        "table3": list(range(160, 4001, 160)),
        "large": [3200, 6400, 9600, 12800, 16000],
    }
