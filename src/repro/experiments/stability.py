"""Extension — numerical stability of QR variants vs conditioning.

The paper chooses Householder reflections "because it is efficient and
well-matching with parallel computations" (Sec. I); the other classic
family it names is Cholesky-based.  This experiment quantifies the
choice: orthogonality loss ``||Q^T Q - I||`` as the condition number
grows, for the tiled Householder QR (this library), CholeskyQR,
CholeskyQR2 and modified Gram-Schmidt.
"""

from __future__ import annotations

import numpy as np

from ..baselines.cholesky_qr import cholesky_qr, cholesky_qr2, modified_gram_schmidt
from ..runtime import tiled_qr
from ..utils import orthogonality_error
from .common import ExperimentResult


def matrix_with_condition(m: int, n: int, cond: float, seed: int = 0) -> np.ndarray:
    """Random tall matrix with prescribed 2-norm condition number.

    Built as ``U diag(s) V^T`` with log-spaced singular values and
    Haar-ish orthogonal factors from our own Householder QR.
    """
    rng = np.random.default_rng(seed)
    from ..kernels.householder import householder_qr

    u, _ = householder_qr(rng.standard_normal((m, n)))
    v, _ = householder_qr(rng.standard_normal((n, n)))
    s = np.logspace(0.0, -np.log10(cond), n)
    return (u[:, :n] * s) @ v.T


def run(quick: bool = False) -> ExperimentResult:
    conds = [1e2, 1e6] if quick else [1e1, 1e3, 1e5, 1e7, 1e9, 1e11]
    m, n = (96, 32) if quick else (192, 48)
    rows = []
    for cond in conds:
        a = matrix_with_condition(m, n, cond, seed=3)
        f = tiled_qr(a, tile_size=16)
        hh = orthogonality_error(f.q_dense()[:, :n])
        try:
            q, _ = cholesky_qr(a)
            cq = orthogonality_error(q)
        except np.linalg.LinAlgError:
            cq = float("inf")
        try:
            q2, _ = cholesky_qr2(a)
            cq2 = orthogonality_error(q2)
        except np.linalg.LinAlgError:
            cq2 = float("inf")
        qm, _ = modified_gram_schmidt(a)
        mgs = orthogonality_error(qm)
        rows.append([f"{cond:.0e}", hh, cq, cq2, mgs])
    return ExperimentResult(
        name="stability",
        title="Extension: orthogonality loss ||Q^T Q - I|| vs cond(A)",
        headers=["cond(A)", "tiled Householder", "CholeskyQR", "CholeskyQR2", "MGS"],
        rows=rows,
        paper_expectation="(motivates the paper's Householder choice) "
        "Householder stays at machine precision independent of "
        "conditioning; CholeskyQR degrades as cond^2 and fails outright "
        "past ~1e8; CholeskyQR2 repairs moderate cases; MGS degrades "
        "linearly.",
        observations="tiled Householder orthogonality is flat across all "
        "tested condition numbers; the alternatives degrade or fail as "
        "theory predicts.",
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
