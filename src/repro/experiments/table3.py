"""Table III — predicted vs actual optimal number of devices.

For each matrix size 160..4000 the predictor (Alg. 3's ``Top + Tcomm``)
and a full simulated execution each normalize the three GPU-count
options; the paper's claim is that the predicted argmin always matches
the actual fastest configuration.
"""

from __future__ import annotations

from .common import ExperimentResult, default_setup, paper_sizes


def run(quick: bool = False) -> ExperimentResult:
    system, opt, qr = default_setup()
    sizes = paper_sizes(quick)["table3"]
    rows = []
    agreements = 0
    for n in sizes:
        actual, predicted = {}, {}
        for p in (1, 2, 3):
            plan = opt.plan(matrix_size=n, num_devices=p)
            actual[p] = qr.simulate(n, plan=plan, fidelity="iteration").report.makespan
            predicted[p] = plan.notes["predicted"][p - 1].total
        pa = min(predicted.values())
        aa = min(actual.values())
        best_pred = min(predicted, key=predicted.get)
        best_act = min(actual, key=actual.get)
        agreements += best_pred == best_act
        rows.append(
            [
                n,
                predicted[1] / pa, predicted[2] / pa, predicted[3] / pa,
                actual[1] / aa, actual[2] / aa, actual[3] / aa,
                f"{best_pred}G", f"{best_act}G",
                "yes" if best_pred == best_act else "NO",
            ]
        )
    return ExperimentResult(
        name="table3",
        title="Table III: normalized predicted (Top+Tcomm) vs actual time "
        "for 1/2/3 GPUs",
        headers=[
            "matrix", "p1G", "p2G", "p3G", "a1G", "a2G", "a3G",
            "pred", "act", "agree",
        ],
        rows=rows,
        paper_expectation="1 GPU optimal for 160-480, 2 GPUs for "
        "640-2560, 3 GPUs from 2720; predicted argmin matches actual at "
        "every size.",
        observations=f"predicted and actual argmin agree on "
        f"{agreements}/{len(sizes)} sizes.",
        extra={"agreements": agreements, "total": len(sizes)},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
