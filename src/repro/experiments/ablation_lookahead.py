"""Ablation — the paper's per-iteration runtime vs lookahead scheduling.

The paper's system (Sec. IV-D) advances panel by panel: the main device
factorizes a whole panel, broadcasts, the others update, repeat.  A
fully asynchronous runtime (PLASMA/StarPU-style, cf. Agullo et al. [11])
instead releases every task the moment its DAG dependencies clear, which
lets successive panel chains pipeline.  The task-level simulator runs
both: ``panel_unit=True`` keeps each device's panel engine serial (the
paper's constraint that GPU kernels don't preempt), ``False`` idealizes
panel work as freely parallel.
"""

from __future__ import annotations

from ..comm.topology import pcie_star
from ..dag import build_dag
from ..sim import simulate_task_level, simulate_iteration_level
from .common import ExperimentResult, default_setup


def run(quick: bool = False) -> ExperimentResult:
    system, opt, _qr = default_setup()
    topology = pcie_star(system.devices)
    sizes = [320, 640] if quick else [320, 640, 960, 1152]
    rows = []
    for n in sizes:
        g = n // 16
        plan = opt.plan(matrix_size=n, num_devices=len(system))
        dag = build_dag(g, g)
        t_paper = simulate_iteration_level(plan, g, g, system, topology).makespan
        t_serial_panel = simulate_task_level(
            dag, plan, system, topology, panel_unit=True
        ).report().makespan
        t_ideal = simulate_task_level(
            dag, plan, system, topology, panel_unit=False
        ).report().makespan
        rows.append(
            [
                n,
                t_paper * 1e3,
                t_serial_panel * 1e3,
                t_ideal * 1e3,
                t_paper / t_serial_panel,
                t_paper / t_ideal,
            ]
        )
    return ExperimentResult(
        name="ablation-lookahead",
        title="Ablation: per-iteration runtime vs lookahead DAG scheduling (ms)",
        headers=[
            "matrix", "paper-iter", "lookahead", "ideal-parallel-panels",
            "iter/lookahead", "iter/ideal",
        ],
        rows=rows,
        paper_expectation="(beyond the paper) asynchronous lookahead "
        "overlaps successive panels and hides part of the elimination "
        "chain the paper's design leaves exposed.",
        observations="lookahead buys tens of percent at these sizes; the "
        "idealized parallel-panel runtime shows how much of the remaining "
        "critical path is the serial chain itself.",
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
