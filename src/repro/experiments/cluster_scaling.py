"""Extension — the paper's policies on a multi-node cluster (Sec. VIII).

Replicates the paper's testbed node 1-4 times behind a network and lets
the *unchanged* optimizer decide: Alg. 3's communication term now prices
remote devices, so the enlisted device count becomes a function of both
matrix size and network quality.  The CA-QR row-block scheme — built for
clusters — runs on the same topologies for contrast.
"""

from __future__ import annotations

from ..cluster import ClusterSpec, NodeSpec, cluster_topology
from ..core.optimizer import Optimizer
from ..devices.registry import paper_testbed
from ..sim.iteration import simulate_iteration_level
from ..sim.rowblock import simulate_rowblock_level
from .common import ExperimentResult


def make_cluster(num_nodes: int) -> ClusterSpec:
    """``num_nodes`` copies of the paper's Table II node."""
    base = paper_testbed()
    return ClusterSpec(
        name=f"icpp13-x{num_nodes}",
        nodes=tuple(
            NodeSpec(name=f"node{i}", devices=base.devices)
            for i in range(num_nodes)
        ),
    )


def run(quick: bool = False) -> ExperimentResult:
    sizes = [1600, 4800] if quick else [1600, 4800, 9600]
    node_counts = [1, 2, 4]
    networks = {"IB": (3.0e9, 120e-6)} if quick else {
        "IB": (3.0e9, 120e-6),
        "GigE": (0.1e9, 500e-6),
    }
    rows = []
    for net_name, (bw, lat) in networks.items():
        for n in sizes:
            g = n // 16
            for nodes in node_counts:
                cluster = make_cluster(nodes)
                system = cluster.flatten()
                topology = cluster_topology(
                    cluster, network_bandwidth=bw, network_latency=lat
                )
                opt = Optimizer(system, topology)
                plan = opt.plan(matrix_size=n)
                t_col = simulate_iteration_level(
                    plan, g, g, system, topology
                ).makespan
                remote = sum(
                    1 for d in plan.participants
                    if cluster.node_of(d) != cluster.node_of(plan.main_device)
                )
                t_row = simulate_rowblock_level(
                    system, list(system.device_ids), g, g, 16, topology,
                    layout="cyclic",
                ).makespan
                rows.append(
                    [net_name, n, nodes, plan.num_devices, remote, t_col, t_row]
                )
    # Observation: does the optimizer ever enlist remote devices, and
    # does the row-block scheme overtake on clusters?
    enlisted = [r for r in rows if r[4] > 0]
    if enlisted:
        col_part = (
            f"Alg. 3 enlists remote devices in {len(enlisted)}/{len(rows)} "
            f"configurations, once the matrix is large enough to amortize "
            f"the network-priced broadcasts"
        )
    else:
        col_part = (
            "Alg. 3 never enlists a remote device at these sizes — the "
            "per-panel factor broadcast repriced over the network always "
            "outweighs the update help, so the column scheme stays "
            "single-node (quantifying why the paper kept it on one node)"
        )
    obs = (
        col_part
        + "; the CA-QR row scheme uses every node unconditionally and "
        + (
            "overtakes the column scheme on multi-node runs"
            if any(r[6] < r[5] for r in rows if r[2] > 1)
            else "still trails the column scheme at these sizes"
        )
        + " — its per-panel communication is a logarithmic R-merge "
        "tree, not a broadcast."
    )
    return ExperimentResult(
        name="cluster-scaling",
        title="Extension: paper policies on 1-4 cluster nodes (s)",
        headers=["net", "matrix", "nodes", "p*", "remote", "column", "row-cyclic"],
        rows=rows,
        paper_expectation="(paper future work) the equations should "
        "extend to a multi-node environment; CA-QR (Sec. VII) is the "
        "cluster-native alternative.",
        observations=obs,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
