"""Ablation — flat-tree (TS) vs binary-tree (TT) elimination.

The paper uses the flat tree (Fig. 2); Bouwmeester et al. [6] study
tree orders.  This ablation runs both DAG flavours through the
task-level simulator on the paper testbed and through the *numeric*
serial runtime to confirm both produce the same factorization.
"""

from __future__ import annotations

import numpy as np

from ..comm.topology import pcie_star
from ..dag import build_dag
from ..runtime import tiled_qr
from ..sim import simulate_task_level
from .common import ExperimentResult, default_setup


def run(quick: bool = False) -> ExperimentResult:
    system, opt, _qr = default_setup()
    topology = pcie_star(system.devices)
    sizes = [320] if quick else [320, 640, 960]
    rows = []
    for n in sizes:
        g = n // 16
        plan = opt.plan(matrix_size=n, num_devices=len(system))
        per_elim = {}
        for elim in ("TS", "TT"):
            dag = build_dag(g, g, elim)
            trace = simulate_task_level(dag, plan, system, topology)
            per_elim[elim] = (len(dag), trace.report().makespan)
        rows.append(
            [
                n,
                per_elim["TS"][0], per_elim["TS"][1] * 1e3,
                per_elim["TT"][0], per_elim["TT"][1] * 1e3,
                per_elim["TT"][1] / per_elim["TS"][1],
            ]
        )
    # Numeric equivalence on a small matrix.
    rng = np.random.default_rng(7)
    a = rng.standard_normal((96, 96))
    r_ts = tiled_qr(a, 16, "TS").r_dense()
    r_tt = tiled_qr(a, 16, "TT").r_dense()
    max_diff = float(np.max(np.abs(np.abs(r_ts) - np.abs(r_tt))))
    return ExperimentResult(
        name="ablation-elimination",
        title="Ablation: TS (flat tree) vs TT (binary tree) elimination",
        headers=["matrix", "TS tasks", "TS ms", "TT tasks", "TT ms", "TT/TS"],
        rows=rows,
        paper_expectation="(beyond the paper) tree elimination shortens "
        "the panel critical path at the cost of more tasks; with a "
        "single main device the flat tree the paper uses is competitive.",
        observations=f"both orders yield the same |R| up to reflector "
        f"sign choices (max abs diff {max_diff:.2e}).",
        extra={"r_equivalence_max_diff": max_diff},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
