"""User-facing linear-algebra operations built on tiled QR.

The paper motivates QR as "the basis for solving some systems of linear
equations ... widely used in data analysis of various domains" (Sec. I).
This package is that downstream surface: solvers, least squares,
inverses and orthonormal bases, all running on the library's own tiled
Householder kernels (no LAPACK driver routines).
"""

from .ops import (
    qr_solve,
    lstsq,
    inv,
    det,
    slogdet,
    orth_basis,
    condition_estimate,
    solve_triangular,
    lq,
)
from .streaming import StreamingLeastSquares
from .rank_revealing import (
    QRCPResult,
    qr_column_pivoting,
    numerical_rank,
    randomized_range,
    low_rank_approx,
)
from .jacobi_svd import svd_jacobi, randomized_svd

__all__ = [
    "qr_solve",
    "lstsq",
    "inv",
    "det",
    "slogdet",
    "orth_basis",
    "condition_estimate",
    "solve_triangular",
    "lq",
    "StreamingLeastSquares",
    "QRCPResult",
    "qr_column_pivoting",
    "numerical_rank",
    "randomized_range",
    "low_rank_approx",
    "svd_jacobi",
    "randomized_svd",
]
