"""Rank-revealing and randomized factorizations on top of the QR stack.

* :func:`qr_column_pivoting` — from-scratch Householder QR with column
  pivoting (LAPACK ``geqp3``-style norm downdating), the classic
  rank-revealing factorization.
* :func:`randomized_range` / :func:`low_rank_approx` — the
  Halko-Martinsson-Tropp randomized range finder, using this library's
  tiled QR as its orthonormalizer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DEFAULT_TILE_SIZE
from ..errors import KernelError, ShapeError
from ..kernels.householder import apply_reflector, make_reflector
from ..runtime.serial import tiled_qr


@dataclass(frozen=True)
class QRCPResult:
    """``A P = Q R`` with decreasing ``|r_kk|``.

    Attributes
    ----------
    q:
        ``(m, m)`` orthogonal factor.
    r:
        ``(m, n)`` upper triangular with non-increasing diagonal
        magnitudes.
    perm:
        Column permutation: ``a[:, perm] == q @ r``.
    rank:
        Numerical rank detected at the given tolerance.
    """

    q: np.ndarray
    r: np.ndarray
    perm: np.ndarray
    rank: int


def qr_column_pivoting(a: np.ndarray, rtol: float = 1e-12) -> QRCPResult:
    """Householder QR with greedy column pivoting.

    At every step the column with the largest remaining norm moves to
    the front; partial norms are downdated and recomputed on
    cancellation (the standard ``geqp3`` safeguard).  The numerical rank
    is the number of diagonal entries above ``rtol * |r_00|``.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got ndim={a.ndim}")
    m, n = a.shape
    if m < 1 or n < 1:
        raise ShapeError(f"matrix must be non-empty, got {a.shape}")
    r = a.copy()
    q = np.eye(m)
    perm = np.arange(n)
    norms = np.sum(r * r, axis=0)
    orig = norms.copy()
    steps = min(m, n)
    for k in range(steps):
        j = k + int(np.argmax(norms[k:]))
        if norms[j] <= 0.0:
            break
        if j != k:
            r[:, [k, j]] = r[:, [j, k]]
            norms[[k, j]] = norms[[j, k]]
            orig[[k, j]] = orig[[j, k]]
            perm[[k, j]] = perm[[j, k]]
        if k < m - 1:
            refl = make_reflector(r[k:, k])
            apply_reflector(refl, r[k:, k:])
            r[k + 1 :, k] = 0.0
            apply_reflector(refl, q[k:, :])
        # Downdate the partial column norms; recompute on cancellation.
        if k + 1 < n:
            norms[k + 1 :] -= r[k, k + 1 :] ** 2
            np.clip(norms[k + 1 :], 0.0, None, out=norms[k + 1 :])
            stale = norms[k + 1 :] < 1e-14 * orig[k + 1 :]
            if np.any(stale):
                idx = np.nonzero(stale)[0] + k + 1
                norms[idx] = np.sum(r[k + 1 :, idx] ** 2, axis=0)
    diag = np.abs(np.diag(r)[:steps])
    top = diag[0] if diag.size else 0.0
    rank = int(np.sum(diag > rtol * top)) if top > 0 else 0
    return QRCPResult(q=q.T, r=np.triu(r), perm=perm, rank=rank)


def numerical_rank(a: np.ndarray, rtol: float = 1e-10) -> int:
    """Numerical rank via pivoted QR."""
    return qr_column_pivoting(a, rtol=rtol).rank


def randomized_range(
    a: np.ndarray,
    k: int,
    oversample: int = 8,
    power_iters: int = 1,
    seed: int | None = 0,
    tile_size: int = DEFAULT_TILE_SIZE,
) -> np.ndarray:
    """Orthonormal basis approximately spanning ``A``'s top-``k`` range.

    Halko-Martinsson-Tropp: sample ``Y = A Omega`` with a Gaussian test
    matrix, optionally run power iterations (re-orthonormalizing with
    the tiled QR between applications), and return the orthonormal
    ``(m, k + oversample)`` basis of ``Y``.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got ndim={a.ndim}")
    m, n = a.shape
    if not 1 <= k <= min(m, n):
        raise KernelError(f"target rank must be in [1, {min(m, n)}], got {k}")
    ell = min(k + max(oversample, 0), min(m, n))
    rng = np.random.default_rng(seed)
    y = a @ rng.standard_normal((n, ell))

    def orthonormalize(block: np.ndarray) -> np.ndarray:
        f = tiled_qr(block, tile_size=tile_size)
        cols = block.shape[1]
        eye = np.zeros((block.shape[0], cols))
        np.fill_diagonal(eye, 1.0)
        return f.apply_q(eye)

    q = orthonormalize(y)
    for _ in range(max(power_iters, 0)):
        q = orthonormalize(a @ (a.T @ q))
    return q


def low_rank_approx(
    a: np.ndarray,
    k: int,
    oversample: int = 8,
    power_iters: int = 1,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Rank-``k+oversample`` approximation ``A ~= Q (Q^T A)``.

    Returns ``(q, b)`` with ``q`` orthonormal and ``b = q.T @ a``; the
    Frobenius error approaches the optimal rank-``k`` error for
    matrices with decaying spectra.
    """
    q = randomized_range(a, k, oversample, power_iters, seed)
    return q, q.T @ np.asarray(a, dtype=np.float64)
