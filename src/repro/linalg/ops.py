"""QR-based dense linear algebra operations (paper Eqs. 1-3)."""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_TILE_SIZE
from ..errors import ShapeError
from ..runtime.factorization import TiledQRFactorization, back_substitution
from ..runtime.serial import tiled_qr
from ..utils import require_2d


def _factorize(a, tile_size: int) -> tuple[TiledQRFactorization, np.ndarray]:
    arr = np.asarray(a, dtype=np.float64)
    require_2d(arr, "A")
    return tiled_qr(arr, tile_size=tile_size), arr


def _numerically_singular(diag: np.ndarray, n: int) -> bool:
    """True when R's diagonal says the matrix is (numerically) singular:
    any |r_ii| below ``n * eps * max|r_jj|``."""
    mags = np.abs(diag)
    top = float(np.max(mags)) if mags.size else 0.0
    if top == 0.0:
        return True
    return bool(np.min(mags) < n * np.finfo(np.float64).eps * top)


def solve_triangular(r: np.ndarray, b: np.ndarray, lower: bool = False) -> np.ndarray:
    """Solve ``R x = b`` for triangular ``R`` (from-scratch sweep).

    Parameters
    ----------
    lower:
        Solve a lower-triangular system instead (forward substitution,
        implemented by flipping into the upper-triangular solver).
    """
    r = np.asarray(r, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    squeeze = b.ndim == 1
    if squeeze:
        b = b[:, None]
    if lower:
        x = back_substitution(r[::-1, ::-1], b[::-1])[::-1]
    else:
        x = back_substitution(r, b)
    return x[:, 0] if squeeze else x


def qr_solve(a: np.ndarray, b: np.ndarray, tile_size: int = DEFAULT_TILE_SIZE) -> np.ndarray:
    """Solve the square system ``A x = b`` via tiled QR (Eqs. 2-3)."""
    f, arr = _factorize(a, tile_size)
    if arr.shape[0] != arr.shape[1]:
        raise ShapeError(f"qr_solve needs a square A, got {arr.shape}")
    n = arr.shape[0]
    if _numerically_singular(np.diag(f.r_dense())[:n], n):
        raise np.linalg.LinAlgError("matrix is singular to working precision")
    return f.solve(b)


def lstsq(
    a: np.ndarray, b: np.ndarray, tile_size: int = DEFAULT_TILE_SIZE
) -> tuple[np.ndarray, np.ndarray]:
    """Least squares ``min_x ||A x - b||`` for tall full-rank ``A``.

    Returns
    -------
    (x, residuals)
        The minimizer and per-column residual 2-norms.
    """
    f, arr = _factorize(a, tile_size)
    m, n = arr.shape
    if m < n:
        raise ShapeError(f"lstsq needs m >= n, got {arr.shape}")
    b_arr = np.asarray(b, dtype=np.float64)
    squeeze = b_arr.ndim == 1
    if squeeze:
        b_arr = b_arr[:, None]
    if b_arr.shape[0] != m:
        raise ShapeError(f"b must have {m} rows, got {b_arr.shape}")
    qtb = f.apply_qt(b_arr)
    x = back_substitution(f.r_dense()[:n, :n], qtb[:n])
    residuals = np.linalg.norm(qtb[n:], axis=0) if m > n else np.zeros(b_arr.shape[1])
    return (x[:, 0], residuals[0]) if squeeze else (x, residuals)


def inv(a: np.ndarray, tile_size: int = DEFAULT_TILE_SIZE) -> np.ndarray:
    """Matrix inverse via ``A^{-1} = R^{-1} Q^T`` (square, nonsingular)."""
    f, arr = _factorize(a, tile_size)
    n = arr.shape[0]
    if arr.shape[0] != arr.shape[1]:
        raise ShapeError(f"inv needs a square A, got {arr.shape}")
    qt = f.apply_qt(np.eye(n))
    return back_substitution(f.r_dense(), qt)


def slogdet(a: np.ndarray, tile_size: int = DEFAULT_TILE_SIZE) -> tuple[float, float]:
    """``(sign, log|det A|)`` from the R factor's diagonal.

    The sign combines the R diagonal's signs with the determinant of Q
    (each Householder reflector contributes −1; reflectors with
    ``tau == 0`` are identities and contribute +1).
    """
    f, arr = _factorize(a, tile_size)
    if arr.shape[0] != arr.shape[1]:
        raise ShapeError(f"slogdet needs a square A, got {arr.shape}")
    diag = np.diag(f.r_dense())
    if _numerically_singular(diag, arr.shape[0]):
        return 0.0, float("-inf")
    reflections = 0
    for _task, factors in f.log:
        reflections += int(np.count_nonzero(factors.taus))
    sign_q = -1.0 if reflections % 2 else 1.0
    sign_r = float(np.prod(np.sign(diag)))
    return sign_q * sign_r, float(np.sum(np.log(np.abs(diag))))


def det(a: np.ndarray, tile_size: int = DEFAULT_TILE_SIZE) -> float:
    """Determinant via :func:`slogdet` (stable for large matrices)."""
    sign, logdet = slogdet(a, tile_size)
    if sign == 0.0:
        return 0.0
    return float(sign * np.exp(logdet))


def lq(a: np.ndarray, tile_size: int = DEFAULT_TILE_SIZE) -> tuple[np.ndarray, np.ndarray]:
    """Economy LQ factorization of a *wide* matrix: ``A = L Q``.

    For ``m <= n``: ``L`` is ``m x m`` lower triangular and ``Q`` is
    ``m x n`` with orthonormal rows — obtained from the tiled QR of
    ``A^T`` (``A^T = Q~ R  =>  A = R^T Q~^T``).
    """
    arr = np.asarray(a, dtype=np.float64)
    require_2d(arr, "A")
    m, n = arr.shape
    if m > n:
        raise ShapeError(f"lq needs a wide matrix (m <= n), got {arr.shape}")
    f = tiled_qr(arr.T, tile_size=tile_size)
    r = f.r_dense()[:m, :m]
    eye = np.zeros((n, m))
    np.fill_diagonal(eye, 1.0)
    q_cols = f.apply_q(eye)  # leading m columns of Q~
    return r.T, q_cols.T


def orth_basis(a: np.ndarray, tile_size: int = DEFAULT_TILE_SIZE) -> np.ndarray:
    """Orthonormal basis of range(A) for tall full-rank ``A``:
    the leading ``n`` columns of ``Q``."""
    f, arr = _factorize(a, tile_size)
    m, n = arr.shape
    if m < n:
        raise ShapeError(f"orth_basis needs m >= n, got {arr.shape}")
    eye = np.zeros((m, n))
    np.fill_diagonal(eye, 1.0)
    return f.apply_q(eye)


def condition_estimate(a: np.ndarray, tile_size: int = DEFAULT_TILE_SIZE) -> float:
    """Cheap condition-number estimate from the R factor.

    ``cond_1(A) >= max|r_ii| / min|r_ii|`` — the classic QR heuristic
    (not a guaranteed bound, but a reliable order-of-magnitude signal).
    """
    f, arr = _factorize(a, tile_size)
    n = min(arr.shape)
    diag = np.abs(np.diag(f.r_dense())[:n])
    if _numerically_singular(diag, n):
        return float("inf")
    return float(np.max(diag) / np.min(diag))
