"""Streaming (recursive) least squares via QR updating.

Maintains the R factor and the rotated right-hand side ``z = Q^T b`` of
a regression problem as rows arrive (and optionally leave, for a
sliding window) — each update is ``O(n^2)`` instead of refactorizing in
``O(m n^2)``.  The batch seed uses the tiled QR; the per-row updates use
the Givens kernels.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_TILE_SIZE
from ..errors import KernelError, ShapeError
from ..kernels.givens import qr_insert_row
from ..runtime.factorization import back_substitution
from ..runtime.serial import tiled_qr


class StreamingLeastSquares:
    """Sliding-window / growing-window linear regression.

    Parameters
    ----------
    num_features:
        Columns of the design matrix.
    window:
        Optional sliding-window length; when set, :meth:`add` beyond the
        window automatically retires the oldest observation.

    Notes
    -----
    State is ``(R, z)`` with ``R^T R = X^T X`` and ``z = Q^T y`` (top
    ``n`` entries), plus the residual sum of squares.  Downdating uses
    the normal-equation identity directly (subtract the outer product
    and re-triangularize via the Golub-Van-Loan rotations on ``R``; the
    ``z`` vector follows the same rotations with the retired target).
    """

    def __init__(self, num_features: int, window: int | None = None):
        if num_features < 1:
            raise ShapeError(f"need at least one feature, got {num_features}")
        if window is not None and window < num_features:
            raise ShapeError(
                f"window ({window}) must hold at least num_features "
                f"({num_features}) observations"
            )
        self.n = num_features
        self.window = window
        self.r = np.zeros((num_features, num_features))
        self.z = np.zeros(num_features)
        self._rss = 0.0
        self.num_observations = 0
        self._history: list[tuple[np.ndarray, float]] = []

    # -- construction -----------------------------------------------------

    @classmethod
    def from_batch(
        cls,
        x: np.ndarray,
        y: np.ndarray,
        window: int | None = None,
        tile_size: int = DEFAULT_TILE_SIZE,
    ) -> "StreamingLeastSquares":
        """Seed from a batch using the tiled QR factorization."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 1 or y.shape[0] != x.shape[0]:
            raise ShapeError(f"incompatible batch shapes {x.shape} / {y.shape}")
        m, n = x.shape
        if m < n:
            raise ShapeError(f"batch needs at least {n} rows, got {m}")
        self = cls(n, window=window)
        f = tiled_qr(x, tile_size=tile_size)
        qty = f.apply_qt(y)
        self.r = np.triu(f.r_dense()[:n, :n])
        self.z = qty[:n].copy()
        self._rss = float(qty[n:] @ qty[n:])
        self.num_observations = m
        if window is not None:
            self._history = [(x[i].copy(), float(y[i])) for i in range(m)]
            while self.num_observations > window:
                self._retire_oldest()
        return self

    # -- updates -------------------------------------------------------------

    def add(self, x_row: np.ndarray, y_value: float) -> None:
        """Incorporate one observation (O(n^2))."""
        x_row = np.asarray(x_row, dtype=np.float64)
        if x_row.shape != (self.n,):
            raise ShapeError(f"feature row must have length {self.n}")
        r_new, rotations = qr_insert_row(self.r, x_row)
        # Replay the rotations on [z; y] to keep z = Q^T y consistent.
        zy = np.concatenate([self.z, [float(y_value)]])
        for k, g in rotations:
            top = g.c * zy[k] + g.s * zy[self.n]
            zy[self.n] = -g.s * zy[k] + g.c * zy[self.n]
            zy[k] = top
        self.r = r_new
        self.z = zy[: self.n]
        self._rss += float(zy[self.n] ** 2)
        self.num_observations += 1
        if self.window is not None:
            self._history.append((x_row.copy(), float(y_value)))
            if self.num_observations > self.window:
                self._retire_oldest()

    def _retire_oldest(self) -> None:
        x_old, y_old = self._history.pop(0)
        self.remove(x_old, y_old)

    def remove(self, x_row: np.ndarray, y_value: float) -> None:
        """Retire one observation (O(n^2) downdate).

        R downdates via the Golub-Van-Loan rotations
        (:func:`repro.kernels.givens.qr_delete_row`); the rotated
        right-hand side follows from the exact normal-equations identity
        ``R'^T z' = R^T z - v y0``, and the residual sum of squares from
        ``rss = y^T y - z^T z``.  Numerically impossible downdates raise
        :class:`numpy.linalg.LinAlgError`.
        """
        from ..kernels.givens import qr_delete_row
        from .ops import solve_triangular

        x_row = np.asarray(x_row, dtype=np.float64)
        if x_row.shape != (self.n,):
            raise ShapeError(f"feature row must have length {self.n}")
        y0 = float(y_value)
        yty_old = self._rss + float(self.z @ self.z)
        s = self.r.T @ self.z - x_row * y0  # X'^T y'
        r_new, _ = qr_delete_row(self.r, x_row)
        z_new = solve_triangular(r_new.T, s, lower=True)
        self.r = r_new
        self.z = z_new
        self._rss = max(0.0, yty_old - y0 * y0 - float(z_new @ z_new))
        self.num_observations -= 1

    # -- queries ----------------------------------------------------------------

    def coefficients(self) -> np.ndarray:
        """Current least-squares solution ``argmin ||X beta - y||``."""
        if self.num_observations < self.n:
            raise KernelError(
                f"need at least {self.n} observations, have {self.num_observations}"
            )
        return back_substitution(self.r, self.z[:, None])[:, 0]

    def predict(self, x_row: np.ndarray) -> float:
        return float(np.asarray(x_row, dtype=np.float64) @ self.coefficients())

    @property
    def residual_sum_of_squares(self) -> float:
        return self._rss
