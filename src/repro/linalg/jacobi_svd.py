"""Singular value decomposition via one-sided Jacobi rotations.

From-scratch (no LAPACK ``gesvd``): one-sided Jacobi orthogonalizes the
columns of ``A`` by plane rotations until all pairs are numerically
orthogonal; the column norms are then the singular values, the rotated
matrix holds ``U diag(s)``, and the accumulated rotations form ``V``.
Slow but exceptionally accurate — intended for small/medium matrices
and as the dense core of :func:`randomized_svd`, whose heavy lifting
(the range finder) runs on the tiled QR.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .rank_revealing import randomized_range


def svd_jacobi(
    a: np.ndarray,
    tol: float = 1e-12,
    max_sweeps: int = 60,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One-sided Jacobi SVD: ``A = U @ diag(s) @ V.T``.

    Parameters
    ----------
    a:
        ``(m, n)`` with ``m >= n``.
    tol:
        Convergence threshold on the normalized off-diagonal inner
        products.
    max_sweeps:
        Safety bound on full column-pair sweeps.

    Returns
    -------
    (u, s, vt)
        ``u`` is ``(m, n)`` with orthonormal columns, ``s`` descending,
        ``vt`` is ``(n, n)``.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got ndim={a.ndim}")
    m, n = a.shape
    if m < n:
        raise ShapeError(f"svd_jacobi requires m >= n, got {a.shape}; pass A.T")
    u = a.copy()
    v = np.eye(n)
    scale = float(np.linalg.norm(a)) or 1.0
    for _sweep in range(max_sweeps):
        rotated = False
        for p in range(n - 1):
            for q in range(p + 1, n):
                apq = float(u[:, p] @ u[:, q])
                app = float(u[:, p] @ u[:, p])
                aqq = float(u[:, q] @ u[:, q])
                if abs(apq) <= tol * scale * scale:
                    continue
                rotated = True
                # Jacobi rotation zeroing the (p, q) inner product.
                tau = (aqq - app) / (2.0 * apq)
                t = np.sign(tau) / (abs(tau) + np.hypot(1.0, tau)) if tau != 0 else 1.0
                c = 1.0 / np.hypot(1.0, t)
                s = c * t
                up = u[:, p].copy()
                u[:, p] = c * up - s * u[:, q]
                u[:, q] = s * up + c * u[:, q]
                vp = v[:, p].copy()
                v[:, p] = c * vp - s * v[:, q]
                v[:, q] = s * vp + c * v[:, q]
        if not rotated:
            break
    sing = np.linalg.norm(u, axis=0)
    # Normalize U's columns; zero singular values get arbitrary unit dirs.
    for j in range(n):
        if sing[j] > 0:
            u[:, j] /= sing[j]
        else:
            u[:, j] = 0.0
            u[min(j, m - 1), j] = 1.0
    order = np.argsort(sing)[::-1]
    return u[:, order], sing[order], v[:, order].T


def randomized_svd(
    a: np.ndarray,
    k: int,
    oversample: int = 8,
    power_iters: int = 2,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Truncated SVD via the randomized range finder + Jacobi core.

    ``A ~= U[:, :k] @ diag(s[:k]) @ Vt[:k]``.  The ``(m, k+p)`` sketch
    basis comes from the tiled-QR-powered
    :func:`~repro.linalg.rank_revealing.randomized_range`; the small
    ``(k+p, n)`` projection is decomposed by one-sided Jacobi.
    """
    a = np.asarray(a, dtype=np.float64)
    q = randomized_range(a, k, oversample, power_iters, seed)
    b = q.T @ a                       # (k+p, n) — small
    # Jacobi needs tall input; decompose b.T = U_b s V_b^T.
    u_b, s, vt_b = svd_jacobi(b.T)
    # b = V_b s U_b^T  =>  A ~= (Q V_b) s U_b^T.
    u = q @ vt_b.T
    vt = u_b.T
    return u[:, :k], s[:k], vt[:k]
