"""Performance-regression tracking over ``BENCH_*.json`` trajectories.

The benchmarks (and any traced run) append one *record* per invocation
to a JSON trajectory file at the repo root::

    [
      {"benchmark": "batched_updates", "timestamp": "...",
       "python": "...", "numpy": "...", "cases": [{...}, ...]},
      ...
    ]

Each case is identified by its *key fields* (e.g. ``grid`` +
``tile_size``) and carries one *gated metric* (e.g. ``speedup``).
:func:`compare_trajectory` pits the newest record's cases against the
baseline built from all earlier records with the same key — the median,
so one lucky or unlucky historical point cannot move the bar — and
flags any gated metric that moved beyond the threshold in the bad
direction.  ``tiledqr perf --check`` turns that into an exit code for
CI; ``tiledqr perf`` prints the delta table.

Runs are machine-dependent, so trajectories mix hosts; the comparison
is deliberately coarse (20% default threshold) and the intended
workflow is to commit points from the same class of machine.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ObservabilityError

#: Default relative change that counts as a regression.
DEFAULT_THRESHOLD = 0.20


@dataclass(frozen=True)
class GatedMetric:
    """What to gate in a benchmark's cases.

    Attributes
    ----------
    metric:
        Case field compared across records.
    higher_is_better:
        Direction: ``True`` gates drops (speedups), ``False`` gates
        rises (seconds).
    case_keys:
        Case fields identifying "the same case" across records.
    """

    metric: str
    higher_is_better: bool
    case_keys: tuple[str, ...]


#: Known benchmarks and their gates.  Unknown benchmark names are
#: reported informationally but never gate.
GATES: dict[str, GatedMetric] = {
    "batched_updates": GatedMetric("speedup", True, ("grid", "tile_size")),
    "backend_kernels": GatedMetric("speedup", True, ("backend", "kernel", "tile_size")),
    "traced_run": GatedMetric("makespan_seconds", False, ("runtime", "n", "tile_size")),
    "elimination_trees": GatedMetric("speedup", True, ("tree", "grid_rows", "grid_cols", "tile_size")),
    # The overhead *fraction* is too close to zero for a relative-delta
    # gate to be stable, so the gated metric is the boolean outcome of
    # the benchmark's own budget check (1.0 in budget / 0.0 blown):
    # disabled tracing ≤3%, live telemetry ≤5%.  A budget-blowing run
    # flips the metric to 0 — a -100% delta — and trips the gate, while
    # noise inside the budget never moves it.  Cases in records that
    # predate the ``mode`` field are skipped silently.
    "observability_overhead": GatedMetric(
        "within_budget", True, ("n", "tile_size", "mode")
    ),
}


@dataclass
class PerfRow:
    """One compared case: newest value vs its trajectory baseline."""

    benchmark: str
    case: dict
    metric: str
    baseline: float
    newest: float
    delta: float  # relative change, signed; positive = newest larger
    regressed: bool
    gated: bool

    def case_label(self) -> str:
        return ", ".join(f"{k}={v}" for k, v in sorted(self.case.items()))


@dataclass
class PerfReport:
    """Outcome of comparing one or more trajectory files."""

    rows: list[PerfRow] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)  # single-point / unknown cases
    threshold: float = DEFAULT_THRESHOLD

    @property
    def regressions(self) -> list[PerfRow]:
        return [r for r in self.rows if r.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_text(self) -> str:
        if not self.rows and not self.skipped:
            return "no comparable benchmark trajectories found"
        lines = [
            f"perf check (threshold {self.threshold:.0%}):",
            f"  {'benchmark':24s} {'case':32s} {'metric':18s} "
            f"{'baseline':>12s} {'newest':>12s} {'delta':>8s}  verdict",
        ]
        for r in self.rows:
            verdict = "REGRESSED" if r.regressed else ("ok" if r.gated else "info")
            lines.append(
                f"  {r.benchmark:24s} {r.case_label():32s} {r.metric:18s} "
                f"{r.baseline:12.6g} {r.newest:12.6g} {r.delta:+8.1%}  {verdict}"
            )
        for s in self.skipped:
            lines.append(f"  (skipped: {s})")
        n = len(self.regressions)
        lines.append(
            f"  -> {n} regression(s) across {len(self.rows)} compared case(s)"
            if n
            else f"  -> no regressions across {len(self.rows)} compared case(s)"
        )
        return "\n".join(lines)


def load_trajectory(path: str | Path) -> list[dict]:
    """Records of one ``BENCH_*.json`` file, oldest first."""
    p = Path(path)
    if not p.is_file():
        raise ObservabilityError(f"no benchmark trajectory at {p}")
    try:
        doc = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"{p} is not valid JSON: {exc}") from None
    if isinstance(doc, dict):
        doc = [doc]
    if not isinstance(doc, list):
        raise ObservabilityError(f"{p}: expected a JSON list of records")
    return doc


def append_record(
    path: str | Path,
    benchmark: str,
    cases: list[dict],
    extra: dict | None = None,
) -> Path:
    """Append one run record to a trajectory file (creating it if new)."""
    if not cases:
        raise ObservabilityError("refusing to append a record with no cases")
    try:
        import numpy as np

        numpy_version = np.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = "unknown"
    record = {
        "benchmark": benchmark,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "numpy": numpy_version,
        **(extra or {}),
        "cases": cases,
    }
    p = Path(path)
    history: list[dict] = []
    if p.is_file():
        try:
            history = load_trajectory(p)
        except ObservabilityError:
            history = []
    history.append(record)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(history, indent=1) + "\n")
    return p


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def compare_trajectory(
    path: str | Path,
    threshold: float = DEFAULT_THRESHOLD,
) -> PerfReport:
    """Each case's newest point vs its trajectory baseline.

    For every case (identified by its key fields) the newest point is
    its value in the last record that contains it, and the baseline is
    the *median* of all earlier values — so records carrying different
    case subsets (a full sweep vs a gate-only run) still compare every
    case that has history.  Cases with a single point are listed as
    skipped.  Unknown benchmark names compare every numeric field
    informationally but can never regress the report.
    """
    records = load_trajectory(path)
    report = PerfReport(threshold=threshold)
    if not records:
        report.skipped.append(f"{Path(path).name}: empty trajectory")
        return report
    by_bench: dict[str, list[dict]] = {}
    for rec in records:
        by_bench.setdefault(str(rec.get("benchmark", Path(path).stem)), []).append(rec)
    for benchmark, recs in by_bench.items():
        gate = GATES.get(benchmark)
        if gate is not None:
            keys, metrics = gate.case_keys, [gate.metric]
        else:
            # No gate registered: float fields are the measurements,
            # everything else (strings, ints like n / tile_size) keys the
            # case; compared informationally only.
            sample = (recs[0].get("cases") or [{}])[0]
            metrics = [k for k, v in sample.items() if isinstance(v, float)]
            keys = tuple(k for k in sample if k not in metrics)
        # Per-case metric series in record order.
        series: dict[tuple, dict[str, list[float]]] = {}
        for rec in recs:
            for case in rec.get("cases", []):
                slot = series.setdefault(tuple(case.get(k) for k in keys), {})
                for m in metrics:
                    if isinstance(case.get(m), (int, float)) and not isinstance(
                        case.get(m), bool
                    ):
                        slot.setdefault(m, []).append(float(case[m]))
        for ck in sorted(series, key=repr):
            for m, values in series[ck].items():
                if len(values) < 2:
                    report.skipped.append(
                        f"{benchmark} "
                        f"[{', '.join(f'{k}={v}' for k, v in zip(keys, ck))}]: "
                        f"single data point, no baseline yet"
                    )
                    continue
                base = _median(values[:-1])
                new = values[-1]
                delta = (new - base) / base if base != 0 else 0.0
                regressed = False
                if gate is not None and base != 0:
                    bad = -delta if gate.higher_is_better else delta
                    regressed = bad > threshold
                report.rows.append(
                    PerfRow(
                        benchmark=benchmark,
                        case={k: v for k, v in zip(keys, ck)},
                        metric=m,
                        baseline=base,
                        newest=new,
                        delta=delta,
                        regressed=regressed,
                        gated=gate is not None,
                    )
                )
    return report


def compare_trajectories(
    paths: list[str | Path],
    threshold: float = DEFAULT_THRESHOLD,
) -> PerfReport:
    """Fold :func:`compare_trajectory` over several files."""
    report = PerfReport(threshold=threshold)
    for path in paths:
        one = compare_trajectory(path, threshold)
        report.rows.extend(one.rows)
        report.skipped.extend(one.skipped)
    return report


def traced_run_case(runtime: str, n: int, tile_size: int, trace) -> dict:
    """A ``traced_run`` trajectory case from an
    :class:`~repro.sim.trace.ExecutionTrace`."""
    return {
        "runtime": runtime,
        "n": n,
        "tile_size": tile_size,
        "makespan_seconds": trace.makespan,
        "compute_busy_seconds": sum(trace.compute_busy().values()),
        "num_tasks": len(trace.tasks),
    }


def record_traced_run(
    path: str | Path,
    runtime: str,
    n: int,
    tile_size: int,
    trace,
    extra: dict | None = None,
) -> Path:
    """Append one traced factorization to a ``traced_run`` trajectory."""
    return append_record(
        path, "traced_run", [traced_run_case(runtime, n, tile_size, trace)], extra
    )
