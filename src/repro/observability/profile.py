"""Persistent kernel profile store: measured runs -> scheduler inputs.

The paper's scheduling policies (Algs. 2-4) consume per-device kernel
times; out of the box those come from the static
:mod:`repro.devices.calibration` models.  :class:`ProfileStore` closes
the measure -> model -> schedule loop: it ingests recorded
:class:`~repro.sim.trace.ExecutionTrace` s (and
:class:`~repro.observability.metrics.MetricsRegistry` snapshots) into
per-``(device, kernel kind, tile size)`` statistics — counts, total
seconds, EWMA mean, p50/p95, achieved GFLOP/s — persists them as
versioned JSON that merges cleanly across runs, and exports calibrated
:class:`~repro.devices.model.KernelTimingModel` /
:class:`~repro.devices.model.DeviceSpec` overrides so the simulators and
``core.main_device`` / ``core.device_count`` / ``core.guide_array`` can
run on *measured* numbers.

Merge semantics
---------------
A store is a keyed set of immutable *runs* (one per ingested trace or
snapshot, identified by a content hash unless an explicit ``run_id`` is
given).  ``merge`` is a union over run ids, so on disjoint runs it is
associative, commutative, and idempotent — stores recorded on different
hosts or at different times can be folded together in any order and
yield identical statistics.  All derived statistics fold runs in
``(recorded_at, run_id)`` order, so they are independent of merge order
too (the EWMA mean weights *newer* runs more, which is what makes the
store usable as a continuously-updated calibration source).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..dag.tasks import Step, TaskKind
from ..devices.model import DeviceKind, DeviceSpec, KernelTimingModel
from ..devices.registry import SystemSpec
from ..errors import ObservabilityError
from ..kernels.flops import flops_geqrt, flops_tsmqr, flops_tsqrt, flops_unmqr
from ..sim.trace import ExecutionTrace
from .metrics import kernel_flops

PROFILE_SCHEMA = 1

#: Flops model per paper step, matching the device timing models (TS
#: kernels; TT eliminations are folded into the same step).
STEP_FLOPS = {
    Step.T: flops_geqrt,
    Step.E: flops_tsqrt,
    Step.UT: flops_unmqr,
    Step.UE: flops_tsmqr,
}

#: Default EWMA smoothing: weight of the newest run's mean.
EWMA_ALPHA = 0.3


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolated quantile of an ascending sample list."""
    if not ordered:
        return 0.0
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return min(ordered[lo] + (ordered[hi] - ordered[lo]) * frac, ordered[hi])


@dataclass
class KernelEntry:
    """Aggregate of one ``(device, kind, tile size)`` within one run.

    ``count`` is in *per-tile kernel equivalents*: batched update
    records are credited under their per-tile kind with ``ncols`` calls
    of ``duration / ncols`` each, so profiles from batched and unbatched
    runs are directly comparable (and usable as per-tile timing models).
    ``samples`` may be empty for aggregate-only ingests (metrics
    snapshots), in which case the stored ``p50``/``p95`` stand in.
    """

    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0
    total_flops: float = 0.0
    samples: list[float] = field(default_factory=list)
    p50: float | None = None
    p95: float | None = None

    def add(self, per_call: float, calls: int, flops: float) -> None:
        self.count += calls
        self.total_seconds += per_call * calls
        self.min_seconds = min(self.min_seconds, per_call)
        self.max_seconds = max(self.max_seconds, per_call)
        self.total_flops += flops
        self.samples.extend([per_call] * calls)

    def to_dict(self) -> dict:
        d = {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "min_seconds": self.min_seconds,
            "max_seconds": self.max_seconds,
            "total_flops": self.total_flops,
            "samples": self.samples,
        }
        if self.p50 is not None:
            d["p50"] = self.p50
        if self.p95 is not None:
            d["p95"] = self.p95
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "KernelEntry":
        return cls(
            count=int(d["count"]),
            total_seconds=float(d["total_seconds"]),
            min_seconds=float(d["min_seconds"]),
            max_seconds=float(d["max_seconds"]),
            total_flops=float(d["total_flops"]),
            samples=[float(v) for v in d.get("samples", [])],
            p50=d.get("p50"),
            p95=d.get("p95"),
        )


@dataclass
class RunProfile:
    """One ingested run: immutable once created, keyed by ``run_id``."""

    run_id: str
    recorded_at: str = ""
    meta: dict = field(default_factory=dict)
    kernels: dict[str, KernelEntry] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "recorded_at": self.recorded_at,
            "meta": self.meta,
            "kernels": {k: e.to_dict() for k, e in sorted(self.kernels.items())},
        }

    @classmethod
    def from_dict(cls, run_id: str, d: dict) -> "RunProfile":
        return cls(
            run_id=run_id,
            recorded_at=str(d.get("recorded_at", "")),
            meta=dict(d.get("meta", {})),
            kernels={k: KernelEntry.from_dict(e) for k, e in d.get("kernels", {}).items()},
        )


@dataclass(frozen=True)
class KernelStats:
    """Merged statistics for one ``(device, kind, tile size, backend)``
    slice.

    ``device`` / ``tile_size`` / ``backend`` are ``None`` when the slice
    pools over that axis.  ``ewma_seconds`` folds per-run means
    oldest-to-newest with weight :data:`EWMA_ALPHA` on the newest run.
    """

    device: str | None
    kind: str
    tile_size: int | None
    count: int
    total_seconds: float
    mean_seconds: float
    ewma_seconds: float
    min_seconds: float
    max_seconds: float
    p50_seconds: float
    p95_seconds: float
    total_flops: float
    backend: str | None = None

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s over the whole slice (flops-model based)."""
        if self.total_seconds <= 0.0:
            return 0.0
        return self.total_flops / self.total_seconds / 1e9


def _entry_key(
    device: str, kind: str, tile_size: int, backend: str = "reference"
) -> str:
    return f"{device}|{kind}|{tile_size}|{backend}"


def _split_key(key: str) -> tuple[str, str, int, str]:
    """Parse an entry key; legacy 3-part keys imply ``reference``.

    New keys are ``device|kind|b|backend``; stores written before the
    backend axis carry ``device|kind|b``.  The tile-size slot is the
    discriminator: it is an integer exactly when the key has a backend
    suffix (backend names never parse as integers — they are registered
    identifiers)."""
    parts = key.rsplit("|", 3)
    if len(parts) == 4:
        device, kind, b, backend = parts
        try:
            return device, kind, int(b), backend
        except ValueError:
            pass
    device, kind, b = key.rsplit("|", 2)
    return device, kind, int(b), "reference"


class ProfileStore:
    """Mergeable, persistent store of measured kernel statistics."""

    def __init__(self, runs: dict[str, RunProfile] | None = None):
        self.runs: dict[str, RunProfile] = dict(runs) if runs else {}

    # -- ingestion --------------------------------------------------------

    def _add_run(self, run: RunProfile) -> str:
        if not run.kernels:
            raise ObservabilityError("refusing to ingest an empty run (no kernel events)")
        existing = self.runs.get(run.run_id)
        if existing is not None:
            if existing.to_dict() != run.to_dict():
                raise ObservabilityError(
                    f"run id {run.run_id!r} already present with different content"
                )
            return run.run_id  # idempotent re-ingest
        self.runs[run.run_id] = run
        return run.run_id

    def ingest_trace(
        self,
        trace: ExecutionTrace,
        tile_size: int,
        run_id: str | None = None,
        recorded_at: str = "",
        meta: dict | None = None,
        backend: str = "reference",
    ) -> str:
        """Fold one recorded (or simulated) trace in as a new run.

        Batched ``*_BATCH`` records are credited under their per-tile
        kind — ``ncols`` calls of ``duration / ncols`` seconds each — so
        total per-kernel seconds are preserved and the statistics stay
        per-tile comparable across batched and unbatched runs.
        ``backend`` names the kernel backend that executed the trace
        (one trace = one backend); it becomes the fourth statistics
        axis, feeding :meth:`backend_ranking`.

        Returns the run id (a content hash unless ``run_id`` is given);
        re-ingesting identical content is a no-op.
        """
        if tile_size < 1:
            raise ObservabilityError(f"tile size must be >= 1, got {tile_size}")
        kernels: dict[str, KernelEntry] = {}
        for rec in trace.tasks:
            ncols = rec.task.ncols
            kind = rec.task.kind.single
            per_call = rec.duration / ncols
            key = _entry_key(rec.device_id, kind.value, tile_size, backend)
            entry = kernels.setdefault(key, KernelEntry())
            entry.add(per_call, ncols, kernel_flops(rec.task.kind, tile_size, ncols))
        run = RunProfile(
            run_id="", recorded_at=recorded_at, meta=dict(meta or {}), kernels=kernels
        )
        run.run_id = run_id if run_id is not None else self._content_id(run)
        return self._add_run(run)

    def ingest_metrics(
        self,
        snapshot: dict,
        tile_size: int,
        device: str = "metrics",
        run_id: str | None = None,
        recorded_at: str = "",
        meta: dict | None = None,
        backend: str = "reference",
    ) -> str:
        """Fold a :meth:`MetricsRegistry.snapshot` in as a new run.

        Snapshots carry aggregate histograms only (no raw samples), so
        the resulting entries store the snapshot's p50/p95 directly and
        contribute no samples to pooled quantiles.  Batched kinds are
        normalized to per-tile equivalents using the snapshot's
        ``kernel.<KIND>.tiles`` totals (mean-tile approximation).
        """
        hists = snapshot.get("histograms", {})
        counters = snapshot.get("counters", {})
        kernels: dict[str, KernelEntry] = {}
        for name, h in hists.items():
            parts = name.split(".")
            if len(parts) != 3 or parts[0] != "kernel" or parts[2] != "seconds":
                continue
            try:
                kind = TaskKind(parts[1])
            except ValueError:
                raise ObservabilityError(f"unknown kernel kind in metric {name!r}") from None
            calls = int(h["count"])
            if calls == 0:
                continue
            scale = 1.0
            count = calls
            if kind.is_batch:
                tiles = hists.get(f"kernel.{kind.value}.tiles", {})
                tiles_total = float(tiles.get("total", calls))
                scale = tiles_total / calls if calls else 1.0
                count = int(round(tiles_total))
            key = _entry_key(device, kind.single.value, tile_size, backend)
            entry = kernels.setdefault(key, KernelEntry())
            entry.count += count
            entry.total_seconds += float(h["total"])
            entry.min_seconds = min(entry.min_seconds, float(h["min"]) / scale)
            entry.max_seconds = max(entry.max_seconds, float(h["max"]) / scale)
            entry.total_flops += float(counters.get(f"kernel.{kind.value}.flops", 0.0))
            entry.p50 = float(h["p50"]) / scale
            entry.p95 = float(h["p95"]) / scale
        run = RunProfile(
            run_id="", recorded_at=recorded_at, meta=dict(meta or {}), kernels=kernels
        )
        run.run_id = run_id if run_id is not None else self._content_id(run)
        return self._add_run(run)

    @staticmethod
    def _content_id(run: RunProfile) -> str:
        payload = json.dumps(run.to_dict(), sort_keys=True)
        return "run-" + hashlib.sha1(payload.encode()).hexdigest()[:12]

    # -- merge / persistence ----------------------------------------------

    def merge(self, other: "ProfileStore") -> "ProfileStore":
        """Union of two stores, keyed by run id (pure; returns a new store).

        Associative and commutative over disjoint run sets; merging the
        same run twice is a no-op; two *different* runs under one id are
        an error (they cannot both be the run the id names).
        """
        merged = ProfileStore(self.runs)
        for run in other.runs.values():
            merged._add_run(run)
        return merged

    @property
    def num_runs(self) -> int:
        return len(self.runs)

    def to_json(self) -> str:
        doc = {
            "schema": PROFILE_SCHEMA,
            "kind": "kernel-profile-store",
            "runs": {rid: self.runs[rid].to_dict() for rid in sorted(self.runs)},
        }
        return json.dumps(doc, indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ProfileStore":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"profile store is not valid JSON: {exc}") from None
        if not isinstance(doc, dict) or doc.get("kind") != "kernel-profile-store":
            raise ObservabilityError("not a kernel profile store document")
        if doc.get("schema") != PROFILE_SCHEMA:
            raise ObservabilityError(
                f"unsupported profile schema {doc.get('schema')!r} "
                f"(expected {PROFILE_SCHEMA})"
            )
        runs = {
            rid: RunProfile.from_dict(rid, d) for rid, d in doc.get("runs", {}).items()
        }
        return cls(runs)

    def save(self, path: str | Path) -> Path:
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(self.to_json() + "\n")
        return p

    @classmethod
    def load(cls, path: str | Path) -> "ProfileStore":
        p = Path(path)
        if not p.is_file():
            raise ObservabilityError(f"no profile store at {p}")
        return cls.from_json(p.read_text())

    # -- statistics -------------------------------------------------------

    def _ordered_runs(self) -> list[RunProfile]:
        return sorted(self.runs.values(), key=lambda r: (r.recorded_at, r.run_id))

    def devices(self) -> list[str]:
        return sorted({_split_key(k)[0] for r in self.runs.values() for k in r.kernels})

    def kinds(self) -> list[str]:
        return sorted({_split_key(k)[1] for r in self.runs.values() for k in r.kernels})

    def tile_sizes(self) -> list[int]:
        return sorted({_split_key(k)[2] for r in self.runs.values() for k in r.kernels})

    def backends(self) -> list[str]:
        return sorted({_split_key(k)[3] for r in self.runs.values() for k in r.kernels})

    def stats(
        self,
        kind: str | TaskKind,
        device: str | None = None,
        tile_size: int | None = None,
        alpha: float = EWMA_ALPHA,
        backend: str | None = None,
    ) -> KernelStats | None:
        """Merged statistics for a kernel kind, optionally filtered by
        device, tile size, and backend (``None`` pools over that axis).
        Returns ``None`` when nothing matches."""
        kind_name = kind.single.value if isinstance(kind, TaskKind) else str(kind)
        count = 0
        total = 0.0
        lo = float("inf")
        hi = 0.0
        flops = 0.0
        samples: list[float] = []
        fallback_quant: list[tuple[int, float, float]] = []  # (count, p50, p95)
        ewma: float | None = None
        for run in self._ordered_runs():
            run_count = 0
            run_total = 0.0
            for key, entry in run.kernels.items():
                dev, kname, b, bk = _split_key(key)
                if kname != kind_name:
                    continue
                if device is not None and dev != device:
                    continue
                if tile_size is not None and b != tile_size:
                    continue
                if backend is not None and bk != backend:
                    continue
                count += entry.count
                total += entry.total_seconds
                lo = min(lo, entry.min_seconds)
                hi = max(hi, entry.max_seconds)
                flops += entry.total_flops
                samples.extend(entry.samples)
                if not entry.samples and entry.p50 is not None:
                    fallback_quant.append((entry.count, entry.p50, entry.p95 or entry.p50))
                run_count += entry.count
                run_total += entry.total_seconds
            if run_count:
                run_mean = run_total / run_count
                ewma = run_mean if ewma is None else alpha * run_mean + (1 - alpha) * ewma
        if count == 0:
            return None
        mean = total / count
        if samples:
            samples.sort()
            p50, p95 = _quantile(samples, 0.50), _quantile(samples, 0.95)
        elif fallback_quant:
            w = sum(c for c, _, _ in fallback_quant)
            p50 = sum(c * v for c, v, _ in fallback_quant) / w
            p95 = sum(c * v for c, _, v in fallback_quant) / w
        else:
            p50 = p95 = mean
        return KernelStats(
            device=device,
            kind=kind_name,
            tile_size=tile_size,
            backend=backend,
            count=count,
            total_seconds=total,
            mean_seconds=mean,
            ewma_seconds=ewma if ewma is not None else mean,
            min_seconds=lo,
            max_seconds=hi,
            p50_seconds=p50,
            p95_seconds=p95,
            total_flops=flops,
        )

    def backend_ranking(
        self,
        device: str | None = None,
        tile_size: int | None = None,
        kinds: list[str] | None = None,
    ) -> list[tuple[str, float]]:
        """Backends ordered fastest-first by summed mean per-call seconds.

        Each measured backend is scored as the sum of its mean per-call
        seconds over the kernel kinds *every* candidate has measurements
        for (restricting to common kinds keeps the comparison fair: a
        backend measured only on cheap kernels must not win on missing
        data).  When the candidates share no kind, each is scored on its
        own measured kinds — the caller should treat such a ranking as
        weak evidence (``best_backend`` still returns its head).
        """
        kind_list = list(kinds) if kinds is not None else self.kinds()
        per: dict[str, dict[str, float]] = {}
        for be in self.backends():
            means = {}
            for kind in kind_list:
                st = self.stats(kind, device=device, tile_size=tile_size, backend=be)
                if st is not None:
                    means[kind] = st.mean_seconds
            if means:
                per[be] = means
        if not per:
            return []
        common = set.intersection(*(set(m) for m in per.values()))
        out = [
            (be, sum(m[k] for k in (common or m)))
            for be, m in per.items()
        ]
        out.sort(key=lambda t: (t[1], t[0]))
        return out

    def best_backend(
        self,
        device: str | None = None,
        tile_size: int | None = None,
        kinds: list[str] | None = None,
    ) -> str | None:
        """Fastest measured backend per :meth:`backend_ranking` (or None)."""
        ranking = self.backend_ranking(device=device, tile_size=tile_size, kinds=kinds)
        return ranking[0][0] if ranking else None

    def table(self) -> list[KernelStats]:
        """One :class:`KernelStats` per measured ``(device, kind, b, backend)``."""
        keys = sorted(
            {_split_key(k) for r in self.runs.values() for k in r.kernels}
        )
        out = []
        for dev, kind, b, bk in keys:
            st = self.stats(kind, device=dev, tile_size=b, backend=bk)
            if st is not None:
                out.append(
                    KernelStats(
                        device=dev, kind=kind, tile_size=b, backend=bk,
                        count=st.count, total_seconds=st.total_seconds,
                        mean_seconds=st.mean_seconds, ewma_seconds=st.ewma_seconds,
                        min_seconds=st.min_seconds, max_seconds=st.max_seconds,
                        p50_seconds=st.p50_seconds, p95_seconds=st.p95_seconds,
                        total_flops=st.total_flops,
                    )
                )
        return out

    def report(self) -> str:
        """Human-readable per-(device, kind, tile, backend) statistics table."""
        lines = [
            f"kernel profile store: {self.num_runs} run(s), "
            f"{len(self.devices())} device(s), tile sizes {self.tile_sizes()}, "
            f"backends {self.backends()}",
            f"  {'device':12s} {'kernel':6s} {'b':>4s} {'backend':10s} {'calls':>7s} "
            f"{'total ms':>10s} {'mean us':>9s} {'ewma us':>9s} "
            f"{'p50 us':>8s} {'p95 us':>8s} {'GF/s':>7s}",
        ]
        for st in self.table():
            lines.append(
                f"  {st.device:12s} {st.kind:6s} {st.tile_size:4d} "
                f"{(st.backend or '-'):10s} {st.count:7d} "
                f"{st.total_seconds * 1e3:10.3f} {st.mean_seconds * 1e6:9.1f} "
                f"{st.ewma_seconds * 1e6:9.1f} {st.p50_seconds * 1e6:8.1f} "
                f"{st.p95_seconds * 1e6:8.1f} {st.gflops:7.2f}"
            )
        return "\n".join(lines)

    # -- scheduler exports ------------------------------------------------

    def step_measurements(self, device: str | None = None) -> dict[Step, dict[int, float]]:
        """Mean per-call seconds per paper step and tile size.

        Kinds sharing a step (``TSQRT``/``TTQRT`` -> E) pool their time
        and call counts.  The shape matches
        :func:`repro.devices.autotune.fit_timing_model` input.
        """
        acc: dict[Step, dict[int, tuple[float, int]]] = {s: {} for s in Step}
        # Pool over backends: one (dev, kind, b) visit regardless of how
        # many backends measured it (stats() already sums across them).
        for dev, kind, b in sorted(
            {_split_key(k)[:3] for r in self.runs.values() for k in r.kernels}
        ):
            if device is not None and dev != device:
                continue
            st = self.stats(kind, device=device, tile_size=b)
            if st is None:
                continue
            step = TaskKind(kind).step
            tot, cnt = acc[step].get(b, (0.0, 0))
            acc[step][b] = (tot + st.total_seconds, cnt + st.count)
        return {
            step: {b: tot / cnt for b, (tot, cnt) in pts.items() if cnt}
            for step, pts in acc.items()
            if pts
        }

    @staticmethod
    def _fit_step(step: Step, points: dict[int, float]) -> tuple[float, float]:
        """Fit ``t = overhead + flops/rate`` to measured per-call times.

        Mirrors :func:`repro.devices.autotune.fit_timing_model`'s
        relative-error weighting; a single measured tile size yields the
        exact rate-only model (overhead 0) for that size.
        """
        bs = sorted(points)
        flops = [STEP_FLOPS[step](b) for b in bs]
        times = [points[b] for b in bs]
        if any(t <= 0.0 for t in times):
            raise ObservabilityError(f"non-positive measured time for step {step}")
        if len(bs) == 1:
            return 0.0, flops[0] / times[0]
        # Weighted least squares on t = c0 + c1*f with rows scaled by 1/t
        # (relative error), solved by the 2x2 normal equations.
        w = [1.0 / t for t in times]
        s_ww = sum(wi * wi for wi in w)
        s_wf = sum(wi * wi * f for wi, f in zip(w, flops))
        s_ff = sum((wi * f) ** 2 for wi, f in zip(w, flops))
        s_w = sum(wi for wi in w)  # rhs: target is 1 per scaled row
        s_f = sum(wi * wi * f * t for wi, f, t in zip(w, flops, times))
        det = s_ww * s_ff - s_wf * s_wf
        if det == 0.0:
            c0, c1 = 0.0, s_w / s_wf if s_wf else 0.0
        else:
            c0 = (s_w * s_ff - s_wf * s_f) / det
            c1 = (s_ww * s_f - s_wf * s_w) / det
        if c1 <= 0.0:
            c1 = 1.0 / 1e15  # degenerate: all overhead, effectively flat
        if c0 < 0.0:
            c0 = 0.0
            num = sum(f / t for f, t in zip(flops, times))
            den = sum((f / t) ** 2 for f, t in zip(flops, times))
            c1 = num / den if den else 1.0 / 1e15
        return c0, 1.0 / c1

    def to_timing_model(
        self,
        device: str | None = None,
        base: KernelTimingModel | None = None,
    ) -> KernelTimingModel:
        """Calibrated ``overhead + flops/rate`` model from measurements.

        Steps missing for ``device`` fall back to the pooled (all-device)
        measurements, then to ``base``; with no fallback left an
        :class:`ObservabilityError` names the missing step.  With a
        single measured tile size the model reproduces the recorded
        per-kernel mean exactly at that size (the round-trip property
        the tests pin down).
        """
        meas = self.step_measurements(device)
        pooled = self.step_measurements(None) if device is not None else meas
        overheads: dict[Step, float] = {}
        rates: dict[Step, float] = {}
        for step in Step:
            points = meas.get(step) or pooled.get(step)
            if points:
                overheads[step], rates[step] = self._fit_step(step, points)
            elif base is not None:
                overheads[step] = base.overheads_s[step]
                rates[step] = base.rates_flops[step]
            else:
                raise ObservabilityError(
                    f"no measurements for step {step.value} "
                    f"(device={device!r}) and no base model to fall back on"
                )
        return KernelTimingModel(overheads_s=overheads, rates_flops=rates)

    def to_device_spec(
        self,
        base: DeviceSpec,
        device: str | None = None,
    ) -> DeviceSpec:
        """Copy of ``base`` with its timing replaced by measured numbers.

        ``device`` selects which measured device feeds the model
        (default: ``base.device_id``, falling back to pooled data).
        """
        dev = device if device is not None else base.device_id
        if dev not in self.devices():
            dev = None  # pooled measurements
        timing = self.to_timing_model(dev, base=base.timing)
        return DeviceSpec(
            device_id=base.device_id,
            name=base.name,
            kind=base.kind,
            cores=base.cores,
            slots=base.slots,
            timing=timing,
            memory_bytes=base.memory_bytes,
        )

    def to_system(
        self,
        base: SystemSpec | None = None,
        name: str | None = None,
        slots: int = 1,
        cores: int = 1,
    ) -> SystemSpec:
        """A :class:`SystemSpec` running Algs. 2-4 on measured numbers.

        With ``base`` given and at least one measured device id matching
        a base device, the matching devices get measured timing models
        and the rest keep their calibration.  Otherwise the system is
        built purely from the measured devices (e.g. ``worker-0..3`` of
        a traced threaded run become schedulable devices with ``slots``
        update slots each).
        """
        measured = self.devices()
        if not measured:
            raise ObservabilityError("profile store is empty; nothing to build a system from")
        if base is not None and any(d in set(base.device_ids) for d in measured):
            devices = tuple(
                self.to_device_spec(d) if d.device_id in measured else d
                for d in base.devices
            )
            return SystemSpec(name=name or f"{base.name}+measured", devices=devices)
        devices = tuple(
            DeviceSpec(
                device_id=d,
                name=f"measured {d}",
                kind=DeviceKind.CPU,
                cores=cores,
                slots=slots,
                timing=self.to_timing_model(d),
            )
            for d in measured
        )
        return SystemSpec(name=name or "measured", devices=devices)

    # -- drift ------------------------------------------------------------

    def drift_report(
        self,
        target: DeviceSpec | SystemSpec,
        device_map: dict[str, str] | None = None,
    ) -> str:
        """Measured-vs-calibrated kernel-time drift, one row per
        ``(measured device, step, tile size)``.

        ``target`` is the calibration to compare against — a single
        :class:`DeviceSpec` (every measured device compares against it)
        or a :class:`SystemSpec` with ``device_map`` mapping measured
        device ids onto its device ids (identity by default; unmapped
        devices are skipped).  Positive drift = measured slower than the
        calibrated model.
        """
        device_map = device_map or {}

        def spec_for(measured_id: str) -> DeviceSpec | None:
            if isinstance(target, DeviceSpec):
                return target
            mapped = device_map.get(measured_id, measured_id)
            try:
                return target.device(mapped)
            except Exception:
                return None

        lines = [
            "kernel-time drift vs calibration (positive = measured slower):",
            f"  {'device':12s} {'vs':12s} {'step':4s} {'b':>4s} "
            f"{'measured us':>12s} {'model us':>10s} {'drift':>8s}",
        ]
        rows = 0
        for dev in self.devices():
            spec = spec_for(dev)
            if spec is None:
                continue
            meas = self.step_measurements(dev)
            for step in Step:
                for b, t_meas in sorted(meas.get(step, {}).items()):
                    t_model = spec.time(step, b)
                    drift = (t_meas - t_model) / t_model if t_model > 0 else float("inf")
                    lines.append(
                        f"  {dev:12s} {spec.device_id:12s} {step.value:4s} {b:4d} "
                        f"{t_meas * 1e6:12.1f} {t_model * 1e6:10.1f} {drift:+8.1%}"
                    )
                    rows += 1
        if rows == 0:
            lines.append("  (no measured device maps onto the calibration target)")
        return "\n".join(lines)
