"""In-run (live) telemetry: event bus, progress/straggler tracking, sinks.

The post-hoc layers (tracer, metrics, JSONL export) only become visible
after a run joins; this package streams telemetry *while* the
factorization executes.  See ``docs/OBSERVABILITY.md`` ("Live
telemetry") for the event schema and wiring examples.
"""

from .bus import DEFAULT_CAPACITY, NULL_BUS, LiveEvent, TelemetryBus, task_payload
from .dashboard import ANSI_REPAINT, render_dashboard
from .heartbeat import DEFAULT_MISS_FACTOR, HeartbeatMonitor
from .progress import DeviceState, ProgressSnapshot, ProgressTracker
from .sinks import LIVE_SCHEMA_VERSION, JsonlStreamSink, read_live_events
from .straggler import (
    DEFAULT_FACTOR,
    DEFAULT_MIN_SECONDS,
    StragglerDetector,
    StragglerRecord,
    predicted_durations,
)

__all__ = [
    "ANSI_REPAINT",
    "DEFAULT_CAPACITY",
    "DEFAULT_FACTOR",
    "DEFAULT_MIN_SECONDS",
    "DEFAULT_MISS_FACTOR",
    "DeviceState",
    "HeartbeatMonitor",
    "JsonlStreamSink",
    "LIVE_SCHEMA_VERSION",
    "LiveEvent",
    "NULL_BUS",
    "ProgressSnapshot",
    "ProgressTracker",
    "StragglerDetector",
    "StragglerRecord",
    "TelemetryBus",
    "predicted_durations",
    "read_live_events",
    "render_dashboard",
    "task_payload",
]
