"""Curses-free terminal dashboard for live telemetry.

:func:`render_dashboard` turns a
:class:`~repro.observability.live.progress.ProgressSnapshot` into a
plain-text frame — per-device utilization bars, inflight kinds,
retry/failover/heartbeat columns, per-kind EWMA durations, and the ETA
header.  ``tiledqr top`` repaints it in place with ANSI
cursor-home/clear codes (no curses, so it works over ssh, in CI logs
with ``--once``, and piped to a file); ``tiledqr watch --attach`` renders
the same frames from a streamed JSONL file.  The only key binding is
the terminal's own interrupt (Ctrl-C) — the dashboard is a pure viewer
and keeps no input state.
"""

from __future__ import annotations

from .progress import ProgressSnapshot

#: ANSI prelude that repaints in place: cursor home + clear-to-end.
ANSI_REPAINT = "\x1b[H\x1b[J"


def _fmt_seconds(s: float | None) -> str:
    if s is None:
        return "--"
    if s >= 120.0:
        return f"{s / 60.0:.1f}m"
    if s >= 1.0:
        return f"{s:.1f}s"
    return f"{s * 1e3:.1f}ms"


def _bar(fraction: float, width: int) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def render_dashboard(snapshot: ProgressSnapshot, width: int = 100) -> str:
    """One dashboard frame as a newline-joined string."""
    width = max(60, width)
    lines: list[str] = []
    progress = snapshot.progress
    head = [
        "tiledqr live",
        f"elapsed {_fmt_seconds(snapshot.elapsed)}",
    ]
    if snapshot.total_units:
        head.append(
            f"units {snapshot.done_units}/{snapshot.total_units}"
            + (f" ({progress:.0%})" if progress is not None else "")
        )
    else:
        head.append(f"units {snapshot.done_units}")
    if snapshot.ready_tasks is not None:
        head.append(f"ready {snapshot.ready_tasks}")
    head.append(f"inflight {snapshot.inflight_units}")
    head.append(
        "done"
        if snapshot.finished
        else f"ETA {_fmt_seconds(snapshot.eta_seconds)}"
    )
    lines.append(" | ".join(head))
    if progress is not None:
        lines.append(_bar(progress, width - 2))
    bar_w = 20
    lines.append(
        f"{'device':16s} {'util':>5s} {'':{bar_w + 2}s} {'done':>6s} "
        f"{'inflight':14s} {'rty':>3s} {'fo':>3s} {'hb':>4s}"
    )
    for dev in snapshot.devices:
        util = (
            dev["busy_seconds"] / snapshot.elapsed if snapshot.elapsed > 0.0 else 0.0
        )
        util = min(1.0, util)
        if dev["dead"]:
            hb = "DEAD"
        elif dev["missed_heartbeats"]:
            hb = "miss"
        else:
            hb = "ok"
        kinds = ",".join(dev["inflight_kinds"])[:14]
        lines.append(
            f"{dev['device'][:16]:16s} {util:4.0%} {_bar(util, bar_w)} "
            f"{dev['done_units']:6d} {kinds:14s} {dev['retries']:3d} "
            f"{dev['failovers']:3d} {hb:>4s}"
        )
    if snapshot.kind_ewma_seconds:
        ewma = " | ".join(
            f"{kind} {_fmt_seconds(sec)}"
            for kind, sec in snapshot.kind_ewma_seconds.items()
        )
        lines.append(f"kind ewma: {ewma}"[:width])
    tallies = (
        f"retries {snapshot.retries} | failovers {snapshot.failovers} | "
        f"checkpoints {snapshot.checkpoints} | stragglers {snapshot.stragglers} | "
        f"missed heartbeats {snapshot.missed_heartbeats}"
    )
    lines.append(tallies)
    for note in snapshot.recent:
        lines.append(f"  {note}"[:width])
    return "\n".join(lines)
