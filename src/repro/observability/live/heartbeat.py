"""Liveness monitoring for in-process runtimes.

The multiprocess manager gets heartbeats for free: every worker reply is
proof of life, and the reply-deadline poll in ``ask()`` is sliced into
heartbeat intervals so silence surfaces *before* the failover deadline.
The serial and threaded runtimes have no pipe to poll, so
:class:`HeartbeatMonitor` supplies the equivalent: a daemon thread that
watches ``task.start``/``task.finish`` events on the bus and publishes

* ``heartbeat`` — one tick per interval with the live inflight count;
* ``heartbeat.missed`` — a device has held a task open for more than
  ``miss_factor`` x the interval without finishing it (a chaos ``hang``
  fault trips this long before the retry-policy deadline classifies the
  task as timed out).

``heartbeat.missed`` is throttled to one event per device per interval
so a long hang cannot flood the ring.
"""

from __future__ import annotations

import threading

from .bus import LiveEvent, TelemetryBus

#: An inflight task older than ``miss_factor * interval`` is a miss.
DEFAULT_MISS_FACTOR = 2.0


def _task_key(data: dict) -> tuple:
    return (
        data.get("kind"),
        data.get("k"),
        data.get("row"),
        data.get("row2"),
        data.get("col"),
        data.get("col_end", -1),
    )


class HeartbeatMonitor:
    """Watch bus traffic and flag devices that go quiet mid-task."""

    def __init__(
        self,
        bus: TelemetryBus,
        interval: float | None = None,
        miss_factor: float = DEFAULT_MISS_FACTOR,
    ):
        resolved = interval if interval is not None else bus.heartbeat_interval
        if resolved is None or resolved <= 0.0:
            raise ValueError(
                "HeartbeatMonitor needs a positive interval (set it here or "
                "via TelemetryBus(heartbeat_interval=...))"
            )
        self.bus = bus
        self.interval = float(resolved)
        self.miss_factor = float(miss_factor)
        self._lock = threading.Lock()
        self._inflight: dict[str, dict[tuple, float]] = {}
        self._last_seen: dict[str, float] = {}
        self._last_missed: dict[str, float] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.misses = 0

    # -- bus subscription -------------------------------------------------

    def on_event(self, event: LiveEvent) -> None:
        if event.type == "task.start":
            with self._lock:
                self._inflight.setdefault(event.device, {})[
                    _task_key(event.data)
                ] = event.t
                self._last_seen[event.device] = event.t
        elif event.type == "task.finish":
            with self._lock:
                self._inflight.get(event.device, {}).pop(_task_key(event.data), None)
                self._last_seen[event.device] = event.t
        elif not event.type.startswith("heartbeat"):
            # Any other activity (retry, checkpoint, ...) is proof of life.
            with self._lock:
                self._last_seen[event.device] = event.t

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "HeartbeatMonitor":
        if self._thread is not None:
            return self
        self.bus.subscribe(self.on_event)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="tiledqr-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.bus.unsubscribe(self.on_event)

    def __enter__(self) -> "HeartbeatMonitor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the tick ---------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.tick()

    def tick(self, now: float | None = None) -> None:
        """One liveness pass (exposed for deterministic tests)."""
        t = self.bus.clock() if now is None else now
        with self._lock:
            inflight = {
                dev: dict(tasks) for dev, tasks in self._inflight.items() if tasks
            }
        total = sum(len(tasks) for tasks in inflight.values())
        self.bus.publish(
            "heartbeat",
            device="monitor",
            data={"inflight": total, "devices": sorted(inflight)},
            t=t,
        )
        limit = self.miss_factor * self.interval
        for dev, tasks in inflight.items():
            oldest_key, oldest_start = min(tasks.items(), key=lambda kv: kv[1])
            age = t - oldest_start
            if age < limit:
                continue
            with self._lock:
                last = self._last_missed.get(dev, -1e30)
                if t - last < self.interval:
                    continue
                self._last_missed[dev] = t
            self.misses += 1
            kind, k, row, row2, col, col_end = oldest_key
            self.bus.publish(
                "heartbeat.missed",
                device=dev,
                data={
                    "silent_seconds": age,
                    "kind": kind,
                    "k": k,
                    "row": row,
                    "row2": row2,
                    "col": col,
                    "col_end": col_end,
                },
                t=t,
            )
