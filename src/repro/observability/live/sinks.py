"""Streaming sinks for live telemetry.

:class:`JsonlStreamSink` appends one JSON line per bus event to a file,
flushing at most every ``flush_seconds`` (plus on close), so the
stream is

* **readable mid-run** — ``tiledqr watch --attach file`` tails it while
  the factorization is still executing, at worst ``flush_seconds``
  behind the run;
* **crash-safe** — a killed run leaves at worst one truncated final
  line, which :func:`read_live_events` skips, yielding every flushed
  event up to the crash (the post-hoc analogue of the worker-exit
  flush fix in the multiprocess runtime);
* **cheap** — bus events fire from worker threads on the kernel hot
  path; flushing every line would serialize the workers on file I/O
  (measured ~30% wall-time on a 512 x 512 threaded run), while the
  time-batched flush keeps the whole live pipeline inside the ≤5%
  budget gated by ``benchmarks/bench_observability_overhead.py``.

Stream layout (``live`` schema v1, versioned independently of the trace
schema in :mod:`repro.observability.export`)::

    {"type": "live.meta", "schema": 1, "host": ..., ...}   # first line
    {"type": "task.finish", "seq": 3, "t": ..., "device": ..., "data": {...}}
    ...

Every non-meta line is one :class:`~repro.observability.live.bus.LiveEvent`
in :meth:`~repro.observability.live.bus.LiveEvent.to_dict` form.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from time import perf_counter

from ...errors import ObservabilityError
from ..export import provenance_meta
from .bus import LiveEvent, TelemetryBus

# Serialization runs on the bus dispatcher thread, which shares the GIL
# with the compute workers — encoder speed is factorization wall-time.
# orjson (when the environment ships it) is ~10x the stdlib encoder;
# both emit the same compact one-doc-per-line stream.
try:  # pragma: no cover - exercised only where orjson is installed
    import orjson

    def _encode(doc: dict) -> str:
        return orjson.dumps(doc).decode()

except ImportError:  # pragma: no cover
    _encode = json.JSONEncoder(separators=(",", ":")).encode

#: Version of the live-stream schema (bump on breaking layout changes).
LIVE_SCHEMA_VERSION = 1


#: Default ceiling on how stale the on-disk stream may go.
DEFAULT_FLUSH_SECONDS = 0.05


class JsonlStreamSink:
    """Append bus events to a JSONL file, one line per event.

    ``flush_seconds`` bounds the staleness of the on-disk stream: a
    write flushes when at least that long has passed since the last
    flush (``0.0`` flushes every line).  The header line always
    flushes immediately so attachers can validate the schema at once.
    """

    def __init__(
        self,
        path: str | Path,
        meta: dict | None = None,
        append: bool = False,
        flush_seconds: float = DEFAULT_FLUSH_SECONDS,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.flush_seconds = flush_seconds
        self._lock = threading.Lock()
        self._fh = open(self.path, "a" if append else "w")
        self._last_flush = 0.0
        self.written = 0
        header = {
            "type": "live.meta",
            "schema": LIVE_SCHEMA_VERSION,
            **provenance_meta(**(meta or {})),
        }
        self._write_line(header, flush=True)

    def _write_line(self, doc: dict, flush: bool = False) -> None:
        self._write_raw(_encode(doc), flush=flush)

    def _write_raw(self, line: str, flush: bool = False) -> None:
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line + "\n")
            now = perf_counter()
            if flush or now - self._last_flush >= self.flush_seconds:
                self._fh.flush()
                self._last_flush = now
            self.written += 1

    def on_event(self, event: LiveEvent) -> None:
        self._write_raw(_encode(event.to_dict()))

    __call__ = on_event

    def attach(self, bus: TelemetryBus) -> "JsonlStreamSink":
        bus.subscribe(self.on_event)
        return self

    def flush(self) -> None:
        """Force buffered lines to disk now (interrupt handlers call this
        before abandoning a run, so the stream holds every event seen)."""
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._last_flush = perf_counter()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()

    def __enter__(self) -> "JsonlStreamSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_live_events(path: str | Path) -> tuple[dict, list[LiveEvent]]:
    """Load a live stream: ``(meta, events)``.

    Tolerates a truncated final line (the crash-safe contract) and
    blank lines; any *other* malformed line raises, as does a stream
    whose header advertises an unknown schema.  A file with no header
    yet (sink created but no flush raced in) yields ``({}, [])``.
    """
    p = Path(path)
    if not p.is_file():
        raise ObservabilityError(f"no live stream at {p}")
    meta: dict = {}
    events: list[LiveEvent] = []
    raw_lines = p.read_text().split("\n")
    for i, line in enumerate(raw_lines):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            if i >= len(raw_lines) - 2:
                break  # torn final write from a killed run
            raise ObservabilityError(
                f"{p}:{i + 1}: malformed live-stream line"
            ) from None
        if doc.get("type") == "live.meta":
            schema = doc.get("schema")
            if schema != LIVE_SCHEMA_VERSION:
                raise ObservabilityError(
                    f"{p}: live schema {schema!r} not supported "
                    f"(expected {LIVE_SCHEMA_VERSION})"
                )
            meta = doc
        else:
            events.append(LiveEvent.from_dict(doc))
    return meta, events
