"""Fold live bus events into per-device progress state and an ETA.

:class:`ProgressTracker` is a bus subscriber that maintains, while a
factorization runs:

* per-device state — units done, busy seconds, inflight task kinds,
  retries, failovers, missed heartbeats, last-seen timestamp;
* per-kind EWMA durations (same ``alpha`` as the
  :class:`~repro.observability.profile.ProfileStore`);
* a critical-path-remaining ETA.

**Units.**  Batched runtimes publish coarsened ``*_BATCH`` finishes
while the planning DAG may be per-tile (and vice versa: the
multiprocess runtime batches over each worker's *owned* columns, which
never matches the planner's batch spans).  To make progress counting
independent of batching, every task — planned or observed — is
normalised to per-tile *units*: the group key ``(single-kind, k, row,
row2)`` plus the set of covered tile columns.  A planned task is done
when its units are covered, whichever batch shape covered them.

**ETA.**  With a DAG, remaining work is priced by the same weight model
the scheduler used (:func:`~repro.dag.analysis.task_weight_model`, i.e.
ProfileStore seconds when a profile is given, flops otherwise) and the
remaining critical path comes from
:func:`~repro.dag.analysis.bottom_level_ranks`.  Model units are
converted to wall seconds by the live calibration ratio *observed busy
seconds / modelled weight of completed units*, so the ETA self-corrects
as real durations drift from the plan::

    eta = max(remaining_rank * scale,            # critical chain bound
              remaining_weight * scale / devs)   # throughput bound

Without a DAG (e.g. ``tiledqr watch --attach`` on a stream that only
carries a ``run.start`` total), the ETA falls back to the observed
unit-completion rate.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter

from .bus import LiveEvent, TelemetryBus

#: EWMA smoothing for live per-kind durations (matches ProfileStore).
EWMA_ALPHA = 0.3


def _single_kind(kind: str | None) -> str:
    k = str(kind or "?")
    return k[: -len("_BATCH")] if k.endswith("_BATCH") else k


def _event_units(data: dict) -> tuple[tuple, tuple[int, ...]]:
    """Normalise a ``task.*`` payload to ``(group key, covered cols)``."""
    key = (
        _single_kind(data.get("kind")),
        data.get("k"),
        data.get("row"),
        data.get("row2"),
    )
    col = int(data.get("col", 0))
    col_end = int(data.get("col_end", -1))
    cols = tuple(range(col, col_end)) if col_end > col else (col,)
    return key, cols


@dataclass
class DeviceState:
    """Live view of one device, folded from its bus events."""

    device: str
    done_units: int = 0
    busy_seconds: float = 0.0
    inflight: dict = field(default_factory=dict)  # (key, cols) -> (kind, start t)
    retries: int = 0
    faults: int = 0
    failovers: int = 0
    missed_heartbeats: int = 0
    checkpoints: int = 0
    last_seen: float = 0.0
    dead: bool = False

    @property
    def inflight_kinds(self) -> list[str]:
        return sorted({kind for kind, _start in self.inflight.values()})

    def to_dict(self) -> dict:
        return {
            "device": self.device,
            "done_units": self.done_units,
            "busy_seconds": self.busy_seconds,
            "inflight": len(self.inflight),
            "inflight_kinds": self.inflight_kinds,
            "retries": self.retries,
            "faults": self.faults,
            "failovers": self.failovers,
            "missed_heartbeats": self.missed_heartbeats,
            "checkpoints": self.checkpoints,
            "last_seen": self.last_seen,
            "dead": self.dead,
        }


@dataclass
class ProgressSnapshot:
    """Point-in-time rollup returned by :meth:`ProgressTracker.snapshot`."""

    t: float
    elapsed: float
    total_units: int | None
    done_units: int
    ready_tasks: int | None
    inflight_units: int
    eta_seconds: float | None
    calibration: float | None  # observed seconds per modelled weight unit
    devices: list[dict]
    kind_ewma_seconds: dict
    retries: int
    failovers: int
    checkpoints: int
    stragglers: int
    missed_heartbeats: int
    finished: bool
    recent: list[str]
    meta: dict

    @property
    def progress(self) -> float | None:
        if not self.total_units:
            return None
        return min(1.0, self.done_units / self.total_units)

    def to_dict(self) -> dict:
        d = {k: v for k, v in self.__dict__.items()}
        d["progress"] = self.progress
        return d


class ProgressTracker:
    """Bus subscriber that folds events into live run state."""

    def __init__(self, dag=None, weight=None, clock=None):
        self.clock = clock if clock is not None else perf_counter
        self._lock = threading.Lock()
        self._devices: dict[str, DeviceState] = {}
        self._covered: dict[tuple, set[int]] = {}
        self._ewma: dict[str, float] = {}
        self._recent: deque[str] = deque(maxlen=6)
        self._meta: dict = {}
        self.started_at: float | None = None
        self.finished = False
        self.done_units = 0
        self.observed_busy = 0.0
        self.stragglers = 0
        self.checkpoints = 0
        self.events_seen = 0
        self.eta_history: list[tuple[float, float]] = []  # (t, eta) per snapshot
        # -- planned-work model (optional) --------------------------------
        self._plan_units: dict[tuple, dict[int, tuple[float, float]]] = {}
        self._plan_tasks: list[tuple] = []  # (task, key, cols frozenset)
        self._preds = None
        self.total_units: int | None = None
        if dag is not None:
            from ...dag.analysis import bottom_level_ranks

            ranks = bottom_level_ranks(dag, weight)
            w = weight if weight is not None else (lambda _t: 1.0)
            total = 0
            for task in dag.tasks:
                key = (task.kind.single.value, task.k, task.row, task.row2)
                cols = (
                    range(task.col, task.col_end) if task.is_batch else (task.col,)
                )
                unit_w = w(task) / task.ncols
                slot = self._plan_units.setdefault(key, {})
                for col in cols:
                    slot[col] = (unit_w, ranks[task])
                    total += 1
                self._plan_tasks.append((task, key, frozenset(cols)))
            self._preds = dag.preds
            self.total_units = total

    # -- wiring -----------------------------------------------------------

    def attach(self, bus: TelemetryBus) -> "ProgressTracker":
        bus.subscribe(self.on_event)
        return self

    def feed(self, event: LiveEvent) -> None:
        self.on_event(event)

    def _dev(self, name: str) -> DeviceState:
        state = self._devices.get(name)
        if state is None:
            state = self._devices[name] = DeviceState(device=name)
        return state

    def on_event(self, event: LiveEvent) -> None:
        with self._lock:
            self.events_seen += 1
            if self.started_at is None:
                self.started_at = event.t
            etype = event.type
            if etype == "run.start":
                self.started_at = event.t
                self._meta = dict(event.data)
                if self.total_units is None and "total_units" in event.data:
                    self.total_units = int(event.data["total_units"])
                return
            if etype == "run.finish":
                self.finished = True
                return
            if etype == "heartbeat":
                # Monitor ticks are global; per-device heartbeats (one
                # per multiprocess reply) refresh the device's liveness.
                if event.device != "monitor":
                    self._dev(event.device).last_seen = max(
                        self._dev(event.device).last_seen, event.t
                    )
                return
            dev = self._dev(event.device)
            dev.last_seen = max(dev.last_seen, event.t)
            if etype == "task.start":
                key, cols = _event_units(event.data)
                dev.inflight[(key, cols)] = (key[0], event.t)
            elif etype == "task.finish":
                key, cols = _event_units(event.data)
                dev.inflight.pop((key, cols), None)
                n = len(cols)
                dev.done_units += n
                self.done_units += n
                duration = float(event.data.get("duration", 0.0))
                dev.busy_seconds += duration
                self.observed_busy += duration
                covered = self._covered.setdefault(key, set())
                covered.update(cols)
                per_unit = duration / n if n else duration
                prev = self._ewma.get(key[0])
                self._ewma[key[0]] = (
                    per_unit
                    if prev is None
                    else (1.0 - EWMA_ALPHA) * prev + EWMA_ALPHA * per_unit
                )
            elif etype == "retry":
                dev.retries += 1
                self._note(event, f"retry on {event.device}")
            elif etype == "task.error":
                self._note(
                    event,
                    f"{event.data.get('error', '?')} at "
                    f"{event.data.get('task', '?')} on {event.device}",
                )
            elif etype == "fault":
                dev.faults += 1
                self._note(event, f"fault {event.data.get('fault', '?')} on {event.device}")
            elif etype == "failover":
                dev.failovers += 1
                if event.data.get("died"):
                    dev.dead = True
                self._note(event, f"failover: {event.data.get('detail', event.device)}")
            elif etype == "checkpoint":
                dev.checkpoints += 1
                self.checkpoints += 1
            elif etype == "heartbeat.missed":
                dev.missed_heartbeats += 1
                self._note(
                    event,
                    f"missed heartbeat: {event.device} silent "
                    f"{event.data.get('silent_seconds', 0.0):.2f}s",
                )
            elif etype == "straggler":
                self.stragglers += 1
                self._note(
                    event,
                    f"straggler: {event.data.get('task', '?')} on {event.device} "
                    f"x{event.data.get('ratio', 0.0):.2f}",
                )
            elif etype == "drift":
                self._note(
                    event,
                    f"drift: {event.device} ewma ratio "
                    f"x{event.data.get('ratio', 0.0):.2f}",
                )

    def _note(self, event: LiveEvent, text: str) -> None:
        self._recent.append(f"[{event.seq}] {text}")

    # -- rollup -----------------------------------------------------------

    def _eta(self, elapsed: float) -> tuple[float | None, float | None]:
        """(eta seconds, calibration) from the planned-work model."""
        if self._plan_units:
            modelled_done = 0.0
            modelled_left = 0.0
            cp_left = 0.0
            for key, units in self._plan_units.items():
                covered = self._covered.get(key, ())
                for col, (unit_w, rank) in units.items():
                    if col in covered:
                        modelled_done += unit_w
                    else:
                        modelled_left += unit_w
                        if rank > cp_left:
                            cp_left = rank
            if modelled_left == 0.0:
                return 0.0, None
            if modelled_done <= 0.0 or self.observed_busy <= 0.0:
                return None, None
            scale = self.observed_busy / modelled_done
            active = max(
                1, sum(1 for d in self._devices.values() if not d.dead and d.done_units)
            )
            return max(cp_left * scale, modelled_left * scale / active), scale
        if self.total_units:
            left = self.total_units - self.done_units
            if left <= 0:
                return 0.0, None
            if self.done_units and elapsed > 0.0:
                return left * elapsed / self.done_units, None
        return None, None

    def _ready_tasks(self) -> int | None:
        if self._preds is None:
            return None
        done = set()
        for task, key, cols in self._plan_tasks:
            if cols <= self._covered.get(key, set()):
                done.add(task)
        ready = sum(
            1
            for task, _key, _cols in self._plan_tasks
            if task not in done and all(p in done for p in self._preds[task])
        )
        inflight = sum(len(d.inflight) for d in self._devices.values())
        return max(0, ready - inflight)

    def snapshot(self, now: float | None = None) -> ProgressSnapshot:
        with self._lock:
            t = self.clock() if now is None else now
            start = self.started_at if self.started_at is not None else t
            elapsed = max(0.0, t - start)
            eta, calibration = self._eta(elapsed)
            if eta is not None:
                self.eta_history.append((t, eta))
            snap = ProgressSnapshot(
                t=t,
                elapsed=elapsed,
                total_units=self.total_units,
                done_units=self.done_units,
                ready_tasks=self._ready_tasks(),
                inflight_units=sum(len(d.inflight) for d in self._devices.values()),
                eta_seconds=eta,
                calibration=calibration,
                devices=[d.to_dict() for _, d in sorted(self._devices.items())],
                kind_ewma_seconds=dict(sorted(self._ewma.items())),
                retries=sum(d.retries for d in self._devices.values()),
                failovers=sum(d.failovers for d in self._devices.values()),
                checkpoints=self.checkpoints,
                stragglers=self.stragglers,
                missed_heartbeats=sum(
                    d.missed_heartbeats for d in self._devices.values()
                ),
                finished=self.finished,
                recent=list(self._recent),
                meta=dict(self._meta),
            )
        return snap
