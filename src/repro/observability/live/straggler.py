"""Detect live drift from the planned timing prediction.

The scheduler priced every kernel kind before the run started (the
ProfileStore timing model, or flops as a last resort).
:class:`StragglerDetector` subscribes to ``task.finish`` events and
compares each observed per-tile duration against its prediction:

* **task stragglers** — one task ran ``>= factor x`` its predicted
  duration (and above an absolute noise floor): a ``straggler`` event
  is published back onto the bus, ``live.straggler.events`` counts it,
  and ``live.straggler.ratio`` histograms the overshoot;
* **device drift** — a device's EWMA of observed/predicted ratios is
  tracked in the ``live.drift.<device>`` gauge; when it crosses the
  factor a ``drift`` event fires (once per crossing, re-armed when the
  device recovers below the factor).

Kinds with no prediction calibrate on the fly against the fleet-wide
EWMA of that kind's live durations, so a straggling device still stands
out relative to its peers even with no ProfileStore.

Every detection appends a :class:`StragglerRecord` — the same
decide/observe/act shape as the planner's DecisionAudit — so the
future online re-planner (ROADMAP item 5) can consume the records
directly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ...dag.tasks import TaskKind
from .bus import LiveEvent, TelemetryBus
from .progress import EWMA_ALPHA, _single_kind

#: A task must overshoot its prediction by this factor to be flagged.
DEFAULT_FACTOR = 2.0
#: ... and by at least this many absolute seconds (noise floor): a 5 µs
#: kernel taking 15 µs is scheduler jitter, not a straggler.
DEFAULT_MIN_SECONDS = 1e-3


@dataclass(frozen=True)
class StragglerRecord:
    """One detection, audit-style: prediction, observation, verdict."""

    t: float
    device: str
    task: str
    kind: str
    predicted_seconds: float
    observed_seconds: float
    ratio: float
    source: str  # "profile" (planned prediction) or "fleet-ewma"

    def to_dict(self) -> dict:
        return dict(self.__dict__)


def predicted_durations(
    profile,
    tile_size: int,
    device: str | None = None,
    backend: str | None = None,
) -> dict[str, float]:
    """Per-tile predicted seconds per kernel kind from a ProfileStore.

    Pools over the store's measurements exactly like the planner's
    :func:`~repro.dag.analysis.task_weight_model`; kinds the store has
    never seen are absent (the detector then falls back to fleet EWMA).
    """
    out: dict[str, float] = {}
    if profile is None:
        return out
    for kind in TaskKind:
        if kind.is_batch:
            continue
        st = profile.stats(kind, device=device, tile_size=tile_size, backend=backend)
        if st is not None and st.mean_seconds > 0.0:
            out[kind.value] = st.mean_seconds
    return out


class StragglerDetector:
    """Flag tasks/devices whose live durations drift from prediction."""

    def __init__(
        self,
        predicted: dict[str, float] | None = None,
        factor: float = DEFAULT_FACTOR,
        min_seconds: float = DEFAULT_MIN_SECONDS,
        metrics=None,
        bus: TelemetryBus | None = None,
    ):
        if factor <= 1.0:
            raise ValueError(f"straggler factor must be > 1, got {factor}")
        self.predicted = dict(predicted or {})
        self.factor = float(factor)
        self.min_seconds = float(min_seconds)
        self.metrics = metrics
        self.bus = bus
        self._lock = threading.Lock()
        self._fleet_ewma: dict[str, float] = {}
        self._device_ratio: dict[str, float] = {}
        self._drifting: set[str] = set()
        self.records: list[StragglerRecord] = []

    def attach(self, bus: TelemetryBus) -> "StragglerDetector":
        self.bus = bus
        bus.subscribe(self.on_event)
        return self

    # -- event folding ----------------------------------------------------

    def on_event(self, event: LiveEvent) -> None:
        if event.type != "task.finish":
            return
        data = event.data
        kind = _single_kind(data.get("kind"))
        col = int(data.get("col", 0))
        col_end = int(data.get("col_end", -1))
        ncols = (col_end - col) if col_end > col else 1
        observed = float(data.get("duration", 0.0)) / max(1, ncols)
        if observed <= 0.0:
            return
        with self._lock:
            predicted = self.predicted.get(kind)
            source = "profile"
            if predicted is None or predicted <= 0.0:
                predicted = self._fleet_ewma.get(kind)
                source = "fleet-ewma"
            prev = self._fleet_ewma.get(kind)
            self._fleet_ewma[kind] = (
                observed
                if prev is None
                else (1.0 - EWMA_ALPHA) * prev + EWMA_ALPHA * observed
            )
            if predicted is None or predicted <= 0.0:
                return  # first sighting of this kind: nothing to compare yet
            ratio = observed / predicted
            dev_prev = self._device_ratio.get(event.device)
            dev_ratio = (
                ratio
                if dev_prev is None
                else (1.0 - EWMA_ALPHA) * dev_prev + EWMA_ALPHA * ratio
            )
            self._device_ratio[event.device] = dev_ratio
        if self.metrics is not None:
            self.metrics.gauge(f"live.drift.{event.device}").set(dev_ratio)
        task_label = "{}[{},{}]k{}".format(
            kind, data.get("row"), data.get("col"), data.get("k")
        )
        if ratio >= self.factor and observed - predicted >= self.min_seconds:
            record = StragglerRecord(
                t=event.t,
                device=event.device,
                task=task_label,
                kind=kind,
                predicted_seconds=predicted,
                observed_seconds=observed,
                ratio=ratio,
                source=source,
            )
            with self._lock:
                self.records.append(record)
            if self.metrics is not None:
                self.metrics.counter("live.straggler.events").inc()
                self.metrics.histogram("live.straggler.ratio").observe(ratio)
            if self.bus is not None:
                self.bus.publish(
                    "straggler", event.device, record.to_dict(), t=event.t
                )
        self._check_drift(event.device, dev_ratio, event.t)

    def _check_drift(self, device: str, dev_ratio: float, t: float) -> None:
        with self._lock:
            was = device in self._drifting
            now = dev_ratio >= self.factor
            if now and not was:
                self._drifting.add(device)
            elif was and not now:
                self._drifting.discard(device)
                return
            if not now or was:
                return
        if self.metrics is not None:
            self.metrics.counter(f"live.drift.{device}.crossings").inc()
        if self.bus is not None:
            self.bus.publish("drift", device, {"ratio": dev_ratio}, t=t)

    # -- reporting --------------------------------------------------------

    @property
    def device_drift(self) -> dict[str, float]:
        with self._lock:
            return dict(self._device_ratio)

    def report(self) -> str:
        with self._lock:
            records = list(self.records)
            drift = dict(self._device_ratio)
        lines = [f"stragglers: {len(records)} (factor >= {self.factor:g})"]
        for r in records:
            lines.append(
                f"  {r.task} on {r.device}: observed {r.observed_seconds:.6f}s vs "
                f"predicted {r.predicted_seconds:.6f}s (x{r.ratio:.2f}, {r.source})"
            )
        if drift:
            lines.append("device drift (ewma observed/predicted):")
            for dev in sorted(drift):
                lines.append(f"  {dev}: x{drift[dev]:.2f}")
        return "\n".join(lines)
