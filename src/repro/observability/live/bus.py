"""In-run telemetry bus: bounded, lock-cheap pub/sub of live events.

Post-hoc tracing (:mod:`repro.observability.tracer`) buffers everything
and merges at join — nothing is visible while a factorization runs.
:class:`TelemetryBus` is the streaming counterpart: the runtimes publish
task start/finish, retry, fault, failover, checkpoint, and heartbeat
events *as they happen*, and any number of subscribers (the
:class:`~repro.observability.live.progress.ProgressTracker`, the
:class:`~repro.observability.live.straggler.StragglerDetector`, the
streaming JSONL sink, the ``tiledqr top`` dashboard) consume them live.

Design constraints, mirroring the tracer's:

* **zero overhead when absent** — the runtimes accept ``bus=None`` and
  resolve the check once per factorize; no bus object exists on the
  default path, so the disabled-tracer overhead gate is untouched;
* **bounded** — events land in a ring buffer (``capacity`` newest
  events); a stalled or absent poller can never make the run grow
  memory without bound;
* **lock-cheap publish** — one short critical section assigns the
  sequence number, appends to the ring, and signals the dispatcher;
  subscriber callbacks (JSON encoding, file writes, progress folding)
  run on a dedicated dispatcher thread, *never* on the publishing
  worker's kernel hot path.  Synchronous delivery was measured at
  25-50% wall-time on a threaded 512 x 512 run (workers serializing on
  the sink's file I/O); asynchronous delivery keeps the full pipeline
  inside the ≤5% live-overhead budget.  :meth:`drain` blocks until
  every published event has been delivered — the runtimes call it
  before returning, so ``factorize()`` + bus still *looks*
  synchronous: when it returns, subscribers have seen everything.  A
  failing subscriber is detached rather than allowed to poison
  delivery.

Event vocabulary (the ``type`` field):

==================  ====================================================
``run.start``       factorization begins (total_tasks, grid, tile_size)
``run.finish``      factorization done (tasks executed)
``task.start``      a kernel slot opened on a device
``task.finish``     a kernel completed (start/end/duration, coords)
``retry``           a retry attempt is about to replay a task
``task.error``      a kernel attempt failed (type, message, retryable)
``fault``           the chaos engine injected a fault
``failover``        a device died / columns migrated (multiprocess)
``checkpoint``      a mid-run snapshot was written
``heartbeat``       proof of life from a device (reply received, tick)
``heartbeat.missed``a device has been silent past the interval
``straggler``       a task ran >= factor x its prediction
``drift``           a device's EWMA drift ratio crossed the threshold
==================  ====================================================
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from ...dag.tasks import Task


#: Default ring capacity — generous for the dashboards (they fold events
#: incrementally) while bounding a run that publishes millions.
DEFAULT_CAPACITY = 8192

#: Dispatcher poll period: the upper bound on subscriber-delivery
#: latency, and the *lower* bound on batch accumulation (publishers
#: never wake the dispatcher — see :meth:`TelemetryBus.publish`).
DISPATCH_POLL_SECONDS = 0.02


@dataclass(frozen=True)
class LiveEvent:
    """One telemetry event on the bus.

    ``t`` is a ``perf_counter``-domain timestamp on the publisher's
    clock (the multiprocess manager rebases worker timestamps with its
    ClockSync offsets before publishing, so one run's events share one
    clock).  ``data`` is the type-specific payload; task events carry
    the task coordinates (``kind``, ``k``, ``row``, ``row2``, ``col``,
    and ``col_end`` for batched kinds) plus timing.
    """

    seq: int
    type: str
    t: float
    device: str
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "type": self.type,
            "seq": self.seq,
            "t": self.t,
            "device": self.device,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LiveEvent":
        return cls(
            seq=int(d.get("seq", 0)),
            type=str(d["type"]),
            t=float(d.get("t", 0.0)),
            device=str(d.get("device", "local")),
            data=dict(d.get("data", {})),
        )


def task_payload(task: Task) -> dict:
    """The standard coordinate payload for ``task.*`` events."""
    d = {
        "kind": task.kind.value,
        "k": task.k,
        "row": task.row,
        "row2": task.row2,
        "col": task.col,
    }
    if task.is_batch:
        d["col_end"] = task.col_end
    return d


class TelemetryBus:
    """Ring-buffered pub/sub for in-run telemetry.

    Parameters
    ----------
    capacity:
        Ring size; only the newest ``capacity`` events are retained for
        :meth:`events` pollers.  Subscribers see every event regardless.
    heartbeat_interval:
        Advisory liveness interval in seconds.  Runtimes that support
        heartbeats (threaded via
        :class:`~repro.observability.live.heartbeat.HeartbeatMonitor`,
        multiprocess via sliced reply polling) read it off the bus so
        one knob configures every runtime; ``None`` disables heartbeats.
    clock:
        Monotonic time source; defaults to :func:`time.perf_counter`.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        heartbeat_interval: float | None = None,
        clock: Callable[[], float] | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"bus capacity must be >= 1, got {capacity}")
        if heartbeat_interval is not None and heartbeat_interval <= 0.0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        self.capacity = capacity
        self.heartbeat_interval = heartbeat_interval
        self.clock = clock if clock is not None else perf_counter
        self._ring: deque[LiveEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._seq = 0
        self._subscribers: list[Callable[[LiveEvent], None]] = []
        self._dispatcher: threading.Thread | None = None
        self._delivered_seq = 0
        self._closed = False
        self.dropped_subscribers = 0
        #: Events the dispatcher never saw because the ring lapped it
        #: (publishers outran delivery by more than ``capacity``).
        self.dropped_events = 0

    # -- publishing -------------------------------------------------------

    def publish(
        self,
        type: str,
        device: str = "local",
        data: dict | None = None,
        t: float | None = None,
    ) -> LiveEvent:
        """Append one event and wake the dispatcher.

        Returns the published event (tests and sinks use the assigned
        sequence number).  Subscribers are notified asynchronously from
        the dispatcher thread; a raising subscriber is detached and
        counted in :attr:`dropped_subscribers`.  Use :meth:`drain` to
        wait for delivery.
        """
        when = self.clock() if t is None else t
        with self._cv:
            self._seq += 1
            event = LiveEvent(
                seq=self._seq, type=type, t=when, device=device, data=data or {}
            )
            self._ring.append(event)
            # Deliberately no notify: waking the dispatcher per event
            # costs ~20% wall-time in context-switch/GIL thrash on a
            # threaded run.  The dispatcher polls every
            # DISPATCH_POLL_SECONDS and drains whatever accumulated.
        return event

    def task_start(self, task: Task, device: str, t: float | None = None) -> None:
        self.publish("task.start", device, task_payload(task), t=t)

    def task_finish(
        self,
        task: Task,
        device: str,
        start: float,
        end: float,
        t: float | None = None,
    ) -> None:
        data = task_payload(task)
        data["start"] = start
        data["end"] = end
        data["duration"] = end - start
        self.publish("task.finish", device, data, t=end if t is None else t)

    # -- subscription / delivery ------------------------------------------

    def subscribe(self, fn: Callable[[LiveEvent], None]) -> None:
        """Register a callback; delivery starts from the *next* event.

        The first subscription starts the daemon dispatcher thread.
        """
        with self._cv:
            if fn in self._subscribers:
                return
            if not self._subscribers:
                # Late subscribers never replay history: delivery picks
                # up after the newest already-published event.
                self._delivered_seq = max(self._delivered_seq, self._seq)
            self._subscribers.append(fn)
            if self._dispatcher is None:
                self._closed = False
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    name="telemetry-bus-dispatch",
                    daemon=True,
                )
                self._dispatcher.start()

    def unsubscribe(self, fn: Callable[[LiveEvent], None]) -> None:
        with self._cv:
            if fn in self._subscribers:
                self._subscribers.remove(fn)

    def _dispatch_loop(self) -> None:
        while True:
            with self._cv:
                while not self._closed and self._seq <= self._delivered_seq:
                    self._cv.wait(timeout=DISPATCH_POLL_SECONDS)
                if self._closed and self._seq <= self._delivered_seq:
                    return
                # Pending events are a suffix of the ring; collect from
                # the right so a keeping-up dispatcher pays O(batch),
                # not O(capacity), inside the lock.
                batch = []
                for e in reversed(self._ring):
                    if e.seq <= self._delivered_seq:
                        break
                    batch.append(e)
                batch.reverse()
                if batch:
                    # A gap means the ring lapped us between batches.
                    self.dropped_events += batch[0].seq - self._delivered_seq - 1
                    target = batch[-1].seq
                else:  # everything pending was already evicted
                    self.dropped_events += self._seq - self._delivered_seq
                    target = self._seq
                subscribers = tuple(self._subscribers)
            dead: set = set()
            for event in batch:
                for fn in subscribers:
                    if fn in dead:
                        continue
                    try:
                        fn(event)
                    except Exception:
                        dead.add(fn)
                        self.unsubscribe(fn)
                        with self._cv:
                            self.dropped_subscribers += 1
            with self._cv:
                self._delivered_seq = max(self._delivered_seq, target)
                self._cv.notify_all()

    def drain(self, timeout: float | None = 5.0) -> bool:
        """Block until every published event has been delivered.

        Returns ``True`` when delivery caught up, ``False`` on timeout.
        A bus with no subscribers (no dispatcher) is trivially drained.
        """
        deadline = None if timeout is None else perf_counter() + timeout
        with self._cv:
            while self._dispatcher is not None and self._delivered_seq < self._seq:
                remaining = (
                    None if deadline is None else max(0.0, deadline - perf_counter())
                )
                if remaining == 0.0:
                    return False
                # Kick the dispatcher out of its poll sleep — waiting
                # out the poll period would cost up to
                # DISPATCH_POLL_SECONDS per drain.
                self._cv.notify_all()
                self._cv.wait(timeout=0.1 if remaining is None else min(0.1, remaining))
        return True

    def close(self) -> None:
        """Drain and stop the dispatcher thread (idempotent)."""
        self.drain()
        with self._cv:
            self._closed = True
            self._cv.notify_all()
            thread = self._dispatcher
            self._dispatcher = None
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)

    def events(self, since_seq: int = 0) -> list[LiveEvent]:
        """Ring snapshot of events with ``seq > since_seq`` (oldest first)."""
        with self._lock:
            return [e for e in self._ring if e.seq > since_seq]

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        """Drop ring contents (sequence numbering continues)."""
        with self._lock:
            self._ring.clear()


#: Shared inert stand-in where a bus argument is required but unwanted.
#: (The runtimes treat ``bus=None`` as disabled; NULL_BUS exists for
#: consumers that want an always-valid object to subscribe to.)
NULL_BUS = TelemetryBus(capacity=1)
