"""Runtime observability: tracing, metrics, exporters, trace analysis.

The real runtimes and the simulators share one trace schema
(:class:`~repro.sim.trace.ExecutionTrace`), so everything here works on
both.  Typical use::

    from repro import ThreadedRuntime
    from repro.observability import MetricsRegistry, Tracer

    metrics = MetricsRegistry()
    tracer = Tracer(metrics=metrics)
    f = ThreadedRuntime(num_workers=4, tracer=tracer).factorize(a)
    trace = tracer.to_trace()          # same schema the simulator emits

See ``docs/OBSERVABILITY.md`` for the span API, metric names, the JSONL
schema, and the ``tiledqr trace`` CLI.
"""

from .analysis import (
    KernelDiff,
    TraceDiff,
    TraceSummary,
    device_utilization,
    diff_traces,
    expand_batched,
    kernel_counts,
    kernel_times,
    summarize_trace,
    trace_critical_path,
)
from .decisions import (
    Candidate,
    DecisionAudit,
    DecisionRecord,
    device_step_inputs,
    explain_plan,
)
from .export import dump_jsonl, load_jsonl, provenance_meta, trace_lines, write_jsonl
from .metrics import KERNEL_FLOPS, Counter, Gauge, Histogram, MetricsRegistry, kernel_flops
from .perf import (
    GatedMetric,
    PerfReport,
    append_record,
    compare_trajectories,
    compare_trajectory,
    load_trajectory,
    record_traced_run,
)
from .live import (
    HeartbeatMonitor,
    JsonlStreamSink,
    LiveEvent,
    ProgressSnapshot,
    ProgressTracker,
    StragglerDetector,
    StragglerRecord,
    TelemetryBus,
    predicted_durations,
    read_live_events,
    render_dashboard,
)
from .postmortem import (
    BUNDLE_SCHEMA_VERSION,
    BundleCapture,
    FailureBundle,
    FlightRecorder,
    PostmortemReport,
    analyze_bundle,
    classify_error,
    write_failure_bundle,
)
from .profile import KernelEntry, KernelStats, ProfileStore, RunProfile
from .tracer import NULL_TRACER, Tracer

__all__ = [
    "Tracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "KERNEL_FLOPS",
    "kernel_flops",
    "dump_jsonl",
    "write_jsonl",
    "load_jsonl",
    "trace_lines",
    "provenance_meta",
    "summarize_trace",
    "diff_traces",
    "expand_batched",
    "TraceSummary",
    "TraceDiff",
    "KernelDiff",
    "kernel_times",
    "kernel_counts",
    "device_utilization",
    "trace_critical_path",
    "ProfileStore",
    "RunProfile",
    "KernelEntry",
    "KernelStats",
    "DecisionAudit",
    "DecisionRecord",
    "Candidate",
    "device_step_inputs",
    "explain_plan",
    "PerfReport",
    "GatedMetric",
    "append_record",
    "load_trajectory",
    "compare_trajectory",
    "compare_trajectories",
    "record_traced_run",
    "TelemetryBus",
    "LiveEvent",
    "HeartbeatMonitor",
    "ProgressTracker",
    "ProgressSnapshot",
    "StragglerDetector",
    "StragglerRecord",
    "JsonlStreamSink",
    "read_live_events",
    "render_dashboard",
    "predicted_durations",
    "FlightRecorder",
    "BundleCapture",
    "FailureBundle",
    "BUNDLE_SCHEMA_VERSION",
    "write_failure_bundle",
    "classify_error",
    "analyze_bundle",
    "PostmortemReport",
]
