"""Scheduler decision audit: why Algs. 2-4 chose what they chose.

Every scheduling policy in :mod:`repro.core` — main-device selection
(Alg. 2), device-count optimization (Alg. 3, Eqs. 10-11), guide-array
distribution (Alg. 4, Eq. 12) — accepts an optional
:class:`DecisionAudit`.  When given, the policy records a structured
:class:`DecisionRecord`: the candidates it weighed, the measured/modeled
per-step kernel inputs it weighed them with, each candidate's score
(update throughput, predicted ``Top(p) + Tcomm(p)``, guide share), the
chosen option, and the margin by which it won.

:meth:`repro.core.optimizer.Optimizer.plan` threads one audit through
all three stages and stashes it in ``plan.notes["audit"]``;
:func:`explain_plan` renders it, and ``tiledqr plan --explain`` exposes
it on the command line.  The audit also serializes (``to_dict``) into
trace JSONL meta — additive keys only, the export schema stays v1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dag.tasks import Step
from ..devices.registry import SystemSpec

#: Stage names the core policies record under.
STAGE_MAIN_DEVICE = "main_device"
STAGE_DEVICE_COUNT = "device_count"
STAGE_DISTRIBUTION = "distribution"
STAGE_BACKEND = "kernel_backend"
STAGE_TREE = "elimination_tree"


@dataclass
class Candidate:
    """One option a policy weighed.

    ``metrics`` holds the numbers the policy compared (e.g. update
    throughput and feasibility-check slack for Alg. 2, ``t_op`` /
    ``t_comm`` / ``total`` for Alg. 3, throughput and guide share for
    Alg. 4).  ``feasible`` marks options that passed the stage's
    eligibility checks; the winner has ``chosen=True``.
    """

    name: str
    feasible: bool = True
    chosen: bool = False
    metrics: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "feasible": self.feasible,
            "chosen": self.chosen,
            "metrics": dict(self.metrics),
        }


@dataclass
class DecisionRecord:
    """One recorded scheduling decision.

    Attributes
    ----------
    stage:
        ``"main_device"``, ``"device_count"``, or ``"distribution"``.
    chosen:
        The winning option, as a string (device id, ``p=<n>``, ...).
    metric:
        Name of the score the stage minimized/maximized.
    margin:
        Relative distance from the winner to the runner-up on that
        score (0.0 when there was no alternative).
    inputs:
        The measured/modeled numbers the decision consumed — notably
        per-device T/E/UT/UE kernel seconds at the plan's tile size.
    candidates:
        Every option weighed, with per-candidate metrics.
    notes:
        Free-form stage extras (fallback reasons, shares, modes).
    """

    stage: str
    chosen: str
    metric: str
    margin: float = 0.0
    inputs: dict = field(default_factory=dict)
    candidates: list[Candidate] = field(default_factory=list)
    notes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "chosen": self.chosen,
            "metric": self.metric,
            "margin": self.margin,
            "inputs": dict(self.inputs),
            "candidates": [c.to_dict() for c in self.candidates],
            "notes": dict(self.notes),
        }

    def to_text(self) -> str:
        lines = [
            f"[{self.stage}] chose {self.chosen} "
            f"(metric: {self.metric}, margin over runner-up: {self.margin:.1%})"
        ]
        for key, val in sorted(self.notes.items()):
            lines.append(f"  note: {key} = {val}")
        if self.inputs:
            lines.append("  measured/modeled inputs:")
            for key, val in sorted(self.inputs.items()):
                lines.append(f"    {key}: {_fmt_value(val)}")
        if self.candidates:
            lines.append("  candidates:")
            for c in self.candidates:
                mark = "*" if c.chosen else ("-" if c.feasible else "x")
                metrics = ", ".join(
                    f"{k}={_fmt_value(v)}" for k, v in sorted(c.metrics.items())
                )
                lines.append(f"    {mark} {c.name}: {metrics}")
        return "\n".join(lines)


def _fmt_value(v) -> str:
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        if v == 0.0:
            return "0"
        if abs(v) < 1e-3 or abs(v) >= 1e5:
            return f"{v:.4g}"
        return f"{v:.6g}"
    if isinstance(v, dict):
        return "{" + ", ".join(f"{k}: {_fmt_value(x)}" for k, x in sorted(v.items())) + "}"
    return str(v)


class DecisionAudit:
    """Collects :class:`DecisionRecord` s across the planning pipeline."""

    def __init__(self):
        self.records: list[DecisionRecord] = []

    def record(self, rec: DecisionRecord) -> DecisionRecord:
        self.records.append(rec)
        return rec

    def get(self, stage: str) -> DecisionRecord | None:
        """Latest record for a stage, or ``None``."""
        for rec in reversed(self.records):
            if rec.stage == stage:
                return rec
        return None

    def to_dict(self) -> dict:
        return {"decisions": [r.to_dict() for r in self.records]}

    def explain(self) -> str:
        if not self.records:
            return "(no scheduling decisions recorded)"
        return "\n".join(r.to_text() for r in self.records)


def margin_over_runner_up(scores: list[float], best: float, minimize: bool = True) -> float:
    """Relative gap from the winning score to the next-best alternative.

    For a minimized score this is ``(runner_up - best) / best``; for a
    maximized one, ``(best - runner_up) / runner_up`` — positive either
    way, 0.0 when there is no alternative or the winner is degenerate.
    """
    others = [s for s in scores if s != best] or [
        s for i, s in enumerate(scores) if i != scores.index(best)
    ]
    if not others:
        return 0.0
    if minimize:
        runner = min(others)
        return (runner - best) / best if best > 0 else 0.0
    runner = max(others)
    return (best - runner) / runner if runner > 0 else 0.0


def device_step_inputs(system: SystemSpec, tile_size: int) -> dict:
    """Per-device T/E/UT/UE kernel seconds at ``tile_size``.

    These are the numbers every stage's comparisons reduce to —
    recorded into ``DecisionRecord.inputs`` so an audit shows *which*
    measured (or calibrated) kernel times produced the choice.
    """
    return {
        d.device_id: {s.value: d.time(s, tile_size) for s in Step}
        for d in system
    }


def explain_plan(plan) -> str:
    """Render the decision audit attached to a plan.

    Reads ``plan.notes["audit"]`` (a :class:`DecisionAudit` left there
    by ``Optimizer.plan(audit=...)``).  Plans built without an audit —
    including plans restored from JSON, which drop their notes — get a
    pointer instead of a traceback.
    """
    audit = plan.notes.get("audit") if isinstance(plan.notes, dict) else None
    header = plan.describe()
    if isinstance(audit, DecisionAudit):
        return f"{header}\n{audit.explain()}"
    return (
        f"{header}\n(no decision audit on this plan — build it with "
        f"Optimizer.plan(audit=DecisionAudit()) or `tiledqr plan --explain`)"
    )
