"""JSON/JSONL serialization of execution traces.

One line per event, schema version 1::

    {"type": "meta", "schema": 1, ...}                         # optional header
    {"type": "task", "kind": "GEQRT", "k": 0, "row": 0,
     "row2": 0, "col": 0, "device": "cpu0",
     "start": 0.0, "end": 0.0012}
    {"type": "transfer", "src": "cpu0", "dst": "gpu0",
     "bytes": 2048.0, "start": 0.0, "end": 0.0003, "tag": "col3"}
    {"type": "annotation", "kind": "retry", "label": "attempt 2 ...",
     "device": "worker-1", "t": 0.0015}                    # resilience events

Both the simulators' traces and the real runtimes' traced runs share
:class:`~repro.sim.trace.ExecutionTrace`, so one exporter/loader pair
covers everything and ``load_jsonl(dump_jsonl(t))`` round-trips exactly.
"""

from __future__ import annotations

import json
import platform
import subprocess
from pathlib import Path
from typing import Iterable

from ..dag.tasks import Task, TaskKind
from ..errors import ObservabilityError
from ..sim.trace import AnnotationRecord, ExecutionTrace, TaskRecord, TransferRecord

SCHEMA_VERSION = 1

# Resolved once per process: False = not yet asked, None = unavailable
# (no git binary, not a checkout — e.g. an installed wheel).
_GIT_SHA: str | None | bool = False


def _git_sha() -> str | None:
    """HEAD commit of the source checkout producing this run, if any."""
    global _GIT_SHA
    if _GIT_SHA is False:
        try:
            proc = subprocess.run(
                ["git", "-C", str(Path(__file__).resolve().parent),
                 "rev-parse", "HEAD"],
                capture_output=True, text=True, timeout=5.0,
            )
            sha = proc.stdout.strip()
            _GIT_SHA = sha if proc.returncode == 0 and sha else None
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA = None
    return _GIT_SHA


def provenance_meta(**extra) -> dict:
    """Standard provenance keys for a JSONL meta header.

    Captures where the trace came from — host, platform, python, the
    package version, and (when running from a checkout) the git SHA of
    the code that produced the run — and folds in whatever run
    parameters the caller knows (grid, tile size, elimination mode,
    ``batch_updates``, decision audit, ...).  All keys are additive on
    top of the schema-1 header, so readers that only know
    ``{"type": "meta", "schema": 1}`` keep working.
    """
    from .. import __version__

    meta = {
        "host": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "version": __version__,
    }
    sha = _git_sha()
    if sha is not None:
        meta["git_sha"] = sha
    meta.update({k: v for k, v in extra.items() if v is not None})
    return meta


def task_record_to_dict(rec: TaskRecord) -> dict:
    t = rec.task
    d = {
        "type": "task",
        "kind": t.kind.value,
        "k": t.k,
        "row": t.row,
        "row2": t.row2,
        "col": t.col,
        "device": rec.device_id,
        "start": rec.start,
        "end": rec.end,
    }
    if t.is_batch:  # additive field; absent (-1) for per-tile tasks
        d["col_end"] = t.col_end
    return d


def transfer_record_to_dict(rec: TransferRecord) -> dict:
    return {
        "type": "transfer",
        "src": rec.src,
        "dst": rec.dst,
        "bytes": rec.num_bytes,
        "start": rec.start,
        "end": rec.end,
        "tag": rec.tag,
    }


def _task_record_from_dict(d: dict) -> TaskRecord:
    task = Task(
        TaskKind(d["kind"]),
        int(d["k"]),
        int(d["row"]),
        int(d["row2"]),
        int(d["col"]),
        int(d.get("col_end", -1)),
    )
    return TaskRecord(task=task, device_id=str(d["device"]), start=float(d["start"]), end=float(d["end"]))


def annotation_record_to_dict(rec: AnnotationRecord) -> dict:
    return {
        "type": "annotation",
        "kind": rec.kind,
        "label": rec.label,
        "device": rec.device,
        "t": rec.t,
    }


def _annotation_record_from_dict(d: dict) -> AnnotationRecord:
    return AnnotationRecord(
        kind=str(d["kind"]),
        label=str(d.get("label", "")),
        device=str(d.get("device", "local")),
        t=float(d.get("t", 0.0)),
    )


def _transfer_record_from_dict(d: dict) -> TransferRecord:
    return TransferRecord(
        src=str(d["src"]),
        dst=str(d["dst"]),
        num_bytes=float(d["bytes"]),
        start=float(d["start"]),
        end=float(d["end"]),
        tag=str(d.get("tag", "")),
    )


def trace_lines(trace: ExecutionTrace, meta: dict | None = None) -> Iterable[str]:
    """Yield the JSONL lines for ``trace`` (header first).

    The header folds in ``trace.meta`` (provenance carried on the trace
    object, e.g. the elimination tree) and then the explicit ``meta``
    argument, so ``load_jsonl(dump_jsonl(t))`` round-trips provenance.
    """
    header = {"type": "meta", "schema": SCHEMA_VERSION}
    if trace.meta:
        header.update(trace.meta)
    if meta:
        header.update(meta)
    yield json.dumps(header)
    for rec in trace.tasks:
        yield json.dumps(task_record_to_dict(rec))
    for rec in trace.transfers:
        yield json.dumps(transfer_record_to_dict(rec))
    for rec in trace.annotations:
        yield json.dumps(annotation_record_to_dict(rec))


def dump_jsonl(trace: ExecutionTrace, meta: dict | None = None) -> str:
    """Serialize a trace to one JSONL string."""
    return "\n".join(trace_lines(trace, meta)) + "\n"


def write_jsonl(trace: ExecutionTrace, path: str | Path, meta: dict | None = None) -> Path:
    """Write a trace to ``path``; parent directories are created."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(dump_jsonl(trace, meta))
    return p


def load_jsonl(source: str | Path | Iterable[str]) -> ExecutionTrace:
    """Load a trace from a JSONL file path or an iterable of lines.

    A string argument is treated as a filesystem path if such a file
    exists, otherwise as JSONL text.
    """
    if isinstance(source, Path):
        lines = source.read_text().splitlines()
    elif isinstance(source, str):
        if "\n" in source:  # JSONL text (never a valid path)
            lines = source.splitlines()
        else:
            p = Path(source)
            lines = p.read_text().splitlines() if p.is_file() else source.splitlines()
    else:
        lines = list(source)
    tasks: list[TaskRecord] = []
    transfers: list[TransferRecord] = []
    annotations: list[AnnotationRecord] = []
    meta: dict = {}
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            d = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"trace line {lineno} is not valid JSON: {exc}") from None
        kind = d.get("type")
        if kind == "meta":
            schema = d.get("schema")
            if schema != SCHEMA_VERSION:
                raise ObservabilityError(
                    f"unsupported trace schema {schema!r} (expected {SCHEMA_VERSION})"
                )
            meta.update(
                {k: v for k, v in d.items() if k not in ("type", "schema")}
            )
        elif kind == "task":
            tasks.append(_task_record_from_dict(d))
        elif kind == "transfer":
            transfers.append(_transfer_record_from_dict(d))
        elif kind == "annotation":
            annotations.append(_annotation_record_from_dict(d))
        else:
            raise ObservabilityError(f"trace line {lineno} has unknown type {kind!r}")
    return ExecutionTrace(
        tasks=tasks, transfers=transfers, annotations=annotations, meta=meta
    )
