"""Structured runtime tracing shared by the real executors and simulators.

The simulators have always produced :class:`~repro.sim.trace.ExecutionTrace`
objects; the real runtimes produced nothing, so the paper's predicted
schedules (Algs. 2-4) could not be validated against actual execution.
:class:`Tracer` closes that gap: spans opened around real kernel calls
emit :class:`~repro.sim.trace.TaskRecord`-compatible events, so a traced
real run yields the *same* trace schema as a simulated one and every
downstream consumer (reports, Gantt charts, exporters, the ``trace``
CLI) works on both.

Design constraints, in order:

* **zero overhead when disabled** — a disabled tracer's :meth:`Tracer.span`
  returns a shared no-op context manager without allocating anything, so
  runtimes can call it unconditionally;
* **thread-safe by construction** — each thread appends to its own
  buffer (registered once under a lock), merged at read time, so worker
  threads never contend on the hot path;
* **mergeable across processes** — :meth:`Tracer.record_task` ingests
  pre-timed events, which is how the multiprocess runtime folds its
  worker-side buffers into the manager's tracer at join.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Callable

from ..dag.tasks import Task, TaskKind
from ..errors import ObservabilityError
from ..sim.trace import AnnotationRecord, ExecutionTrace, TaskRecord, TransferRecord


class _NullSpan:
    """Shared no-op context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """One active kernel span; records a TaskRecord on exit."""

    __slots__ = ("_tracer", "task", "device", "tile_size", "start", "end")

    def __init__(self, tracer: "Tracer", task: Task, device: str, tile_size: int | None):
        self._tracer = tracer
        self.task = task
        self.device = device
        self.tile_size = tile_size
        self.start = 0.0
        self.end = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._push(self)
        self.start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = self._tracer._clock()
        self._tracer._pop(self, failed=exc_type is not None)
        return False


def _coerce_kind(kernel: str | TaskKind) -> TaskKind:
    if isinstance(kernel, TaskKind):
        return kernel
    try:
        return TaskKind[str(kernel).upper()]
    except KeyError:
        raise ObservabilityError(
            f"unknown kernel {kernel!r}; expected one of "
            f"{[k.name for k in TaskKind]}"
        ) from None


class Tracer:
    """Collect per-kernel spans from a real (or simulated) execution.

    Parameters
    ----------
    enabled:
        When False the tracer is inert: spans are shared no-ops and
        ``record_*`` calls return immediately (the zero-overhead path).
    clock:
        Monotonic time source; defaults to :func:`time.perf_counter`.
    metrics:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`;
        every closed span with a known tile size feeds its per-kernel
        duration/GFLOP-rate histograms.

    Examples
    --------
    >>> tracer = Tracer()
    >>> with tracer.span("GEQRT", k=0, i=0, device="cpu"):
    ...     pass  # run the kernel
    >>> len(tracer.task_records())
    1
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] | None = None,
        metrics=None,
    ):
        self.enabled = enabled
        self.metrics = metrics
        self._clock = clock if clock is not None else perf_counter
        self._lock = threading.Lock()
        self._buffers: list[list[TaskRecord]] = []
        self._transfers: list[TransferRecord] = []
        self._annotations: list[AnnotationRecord] = []
        self._local = threading.local()

    # -- span API ---------------------------------------------------------

    def span(
        self,
        kernel: str | TaskKind,
        k: int = 0,
        i: int | None = None,
        j: int | None = None,
        row2: int | None = None,
        device: str = "local",
        tile_size: int | None = None,
    ):
        """Open a kernel span: ``with tracer.span("GEQRT", k=k, i=i): ...``.

        Parameters
        ----------
        kernel:
            Kernel name (``"GEQRT"``, ``"TSQRT"``, ...) or a
            :class:`~repro.dag.tasks.TaskKind`.
        k, i, j, row2:
            Task coordinates: panel index, primary tile row, updated tile
            column (defaults to ``k``), and the top row of an elimination
            pair (defaults to ``k``; ignored for GEQRT/UNMQR).
        device:
            Executor identity recorded on the event (thread/process/device).
        tile_size:
            Tile edge ``b``; required for GFLOP/s metrics accounting.
        """
        if not self.enabled:
            return NULL_SPAN
        kind = _coerce_kind(kernel)
        row = k if i is None else i
        col = k if j is None else j
        if kind in (TaskKind.GEQRT, TaskKind.UNMQR):
            top = row
        else:
            top = k if row2 is None else row2
        task = Task(kind, k, row, top, col)
        return _Span(self, task, device, tile_size)

    def task_span(self, task: Task, device: str = "local", tile_size: int | None = None):
        """Span for an existing DAG task (the runtimes' fast path)."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, task, device, tile_size)

    # -- pre-timed ingestion (cross-process merge) ------------------------

    def record_task(
        self,
        task: Task,
        device: str,
        start: float,
        end: float,
        tile_size: int | None = None,
    ) -> None:
        """Ingest an already-timed kernel event (worker-buffer merge)."""
        if not self.enabled:
            return
        self._buffer().append(TaskRecord(task=task, device_id=device, start=start, end=end))
        if self.metrics is not None and tile_size is not None:
            self.metrics.observe_kernel(
                task.kind, tile_size, end - start, ncols=task.ncols
            )

    def record_transfer(
        self,
        src: str,
        dst: str,
        num_bytes: float,
        start: float,
        end: float,
        tag: str = "",
    ) -> None:
        """Ingest one data movement (the multiprocess runtime's pipes)."""
        if not self.enabled:
            return
        with self._lock:
            self._transfers.append(
                TransferRecord(src=src, dst=dst, num_bytes=num_bytes, start=start, end=end, tag=tag)
            )

    def record_annotation(
        self, kind: str, label: str, device: str = "local", t: float | None = None
    ) -> None:
        """Ingest one out-of-band event (retry, fault, failover, checkpoint).

        Annotations ride along in the trace without affecting any timing
        aggregate — ``tiledqr trace`` lists them so a post-mortem shows
        what the resilience machinery did and when.
        """
        if not self.enabled:
            return
        when = self._clock() if t is None else t
        with self._lock:
            self._annotations.append(
                AnnotationRecord(kind=kind, label=label, device=device, t=when)
            )

    # -- internal span plumbing -------------------------------------------

    def _buffer(self) -> list[TaskRecord]:
        buf = getattr(self._local, "buffer", None)
        if buf is None:
            buf = []
            self._local.buffer = buf
            with self._lock:
                self._buffers.append(buf)
        return buf

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: _Span) -> None:
        self._stack().append(span)

    def _pop(self, span: _Span, failed: bool) -> None:
        stack = self._stack()
        if not stack or stack[-1] is not span:
            raise ObservabilityError(
                f"mis-nested span exit: {span.task.label()} is not the innermost open span"
            )
        stack.pop()
        if failed:
            return  # a span whose body raised is not a completed kernel
        self._buffer().append(
            TaskRecord(task=span.task, device_id=span.device, start=span.start, end=span.end)
        )
        if self.metrics is not None and span.tile_size is not None:
            self.metrics.observe_kernel(
                span.task.kind, span.tile_size, span.end - span.start,
                ncols=span.task.ncols,
            )

    # -- reading ----------------------------------------------------------

    @property
    def open_spans(self) -> int:
        """Depth of this thread's currently open span stack."""
        return len(self._stack())

    def task_records(self) -> list[TaskRecord]:
        """All completed kernel events, chronological."""
        with self._lock:
            merged = [rec for buf in self._buffers for rec in buf]
        merged.sort(key=lambda r: (r.start, r.end))
        return merged

    def transfer_records(self) -> list[TransferRecord]:
        with self._lock:
            out = list(self._transfers)
        out.sort(key=lambda r: (r.start, r.end))
        return out

    def annotation_records(self) -> list[AnnotationRecord]:
        with self._lock:
            out = list(self._annotations)
        out.sort(key=lambda r: r.t)
        return out

    def __len__(self) -> int:
        with self._lock:
            return sum(len(b) for b in self._buffers) + len(self._transfers)

    def to_trace(self, rebase: bool = True) -> ExecutionTrace:
        """Snapshot into the shared :class:`ExecutionTrace` schema.

        Parameters
        ----------
        rebase:
            Shift times so the earliest event starts at 0.0 (real runs
            carry raw ``perf_counter`` timestamps; rebasing makes them
            directly comparable with simulator traces).
        """
        tasks = self.task_records()
        transfers = self.transfer_records()
        annotations = self.annotation_records()
        if rebase and (tasks or transfers):
            t0 = min(
                [r.start for r in tasks] + [t.start for t in transfers]
            )
            tasks = [
                TaskRecord(task=r.task, device_id=r.device_id, start=r.start - t0, end=r.end - t0)
                for r in tasks
            ]
            transfers = [
                TransferRecord(
                    src=t.src, dst=t.dst, num_bytes=t.num_bytes,
                    start=t.start - t0, end=t.end - t0, tag=t.tag,
                )
                for t in transfers
            ]
            annotations = [
                AnnotationRecord(kind=a.kind, label=a.label, device=a.device, t=a.t - t0)
                for a in annotations
            ]
        return ExecutionTrace(tasks=tasks, transfers=transfers, annotations=annotations)

    def clear(self) -> None:
        """Drop all recorded events (buffers stay registered)."""
        with self._lock:
            for buf in self._buffers:
                buf.clear()
            self._transfers.clear()
            self._annotations.clear()


#: Shared inert tracer — pass where a tracer is required but unwanted.
NULL_TRACER = Tracer(enabled=False)
