"""Trace summaries and real-vs-simulated prediction-error reports.

Works on any :class:`~repro.sim.trace.ExecutionTrace` — simulated or
recorded from a real runtime via :class:`~repro.observability.Tracer` —
and powers the ``tiledqr trace`` CLI:

* :func:`summarize_trace` — per-kernel time share, device utilization,
  and the trace's weighted critical path (the makespan lower bound the
  schedule could not have beaten);
* :func:`diff_traces` — per-kernel and makespan prediction error of a
  simulated trace against a real one, the paper's model-validation loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dag import build_dag
from ..dag.analysis import critical_path_length
from ..dag.tasks import TaskKind
from ..sim.trace import ExecutionTrace, TaskRecord


def expand_batched(trace: ExecutionTrace) -> ExecutionTrace:
    """Expand coarsened ``*_BATCH`` records into per-tile task records.

    Each batched record's duration is split evenly across its
    :meth:`~repro.dag.tasks.Task.expand` expansion (per-tile timings
    inside a fused kernel are not observable), so total per-kernel time
    is preserved and the expanded trace is directly comparable — e.g.
    via :func:`diff_traces` — with a per-tile trace of the same
    factorization.  Traces without batched records pass through
    unchanged (same record objects).
    """
    if not any(r.task.is_batch for r in trace.tasks):
        return trace
    tasks: list[TaskRecord] = []
    for rec in trace.tasks:
        if not rec.task.is_batch:
            tasks.append(rec)
            continue
        parts = rec.task.expand()
        dt = rec.duration / len(parts)
        for idx, t in enumerate(parts):
            tasks.append(
                TaskRecord(
                    task=t,
                    device_id=rec.device_id,
                    start=rec.start + idx * dt,
                    end=rec.start + (idx + 1) * dt,
                )
            )
    return ExecutionTrace(
        tasks=tasks,
        transfers=list(trace.transfers),
        annotations=list(trace.annotations),
        meta=dict(trace.meta),
    )


def kernel_times(trace: ExecutionTrace) -> dict[str, float]:
    """Total seconds per kernel kind (e.g. ``{"GEQRT": 0.01, ...}``)."""
    out: dict[str, float] = {}
    for rec in trace.tasks:
        name = rec.task.kind.value
        out[name] = out.get(name, 0.0) + rec.duration
    return out


def kernel_counts(trace: ExecutionTrace) -> dict[str, int]:
    """Number of executed tasks per kernel kind."""
    out: dict[str, int] = {}
    for rec in trace.tasks:
        name = rec.task.kind.value
        out[name] = out.get(name, 0) + 1
    return out


def device_utilization(trace: ExecutionTrace) -> dict[str, float]:
    """Per-device busy fraction of the trace's makespan."""
    makespan = trace.makespan
    if makespan <= 0.0:
        return {d: 0.0 for d in trace.compute_busy()}
    return {d: busy / makespan for d, busy in trace.compute_busy().items()}


def infer_grid(trace: ExecutionTrace) -> tuple[int, int]:
    """Tile-grid shape implied by the trace's task coordinates."""
    if not trace.tasks:
        return (0, 0)
    p = max(r.task.row for r in trace.tasks) + 1
    q = max(r.task.last_col for r in trace.tasks) + 1
    return (p, q)


def trace_critical_path(trace: ExecutionTrace) -> float:
    """Duration-weighted critical path of the factorization DAG.

    Rebuilds the task DAG implied by the trace (grid inferred from the
    task coordinates, elimination tree from the provenance meta when
    recorded, else TT/binary if any TT kernels appear) and weights each
    task with its recorded duration — the schedule-independent lower
    bound on makespan with unlimited devices.  Batched update records
    are expanded onto the unfused DAG first (see :func:`expand_batched`);
    tasks missing from the trace (a partial recording) weigh zero.
    """
    trace = expand_batched(trace)
    p, q = infer_grid(trace)
    if p == 0 or q == 0:
        return 0.0
    elimination = trace.meta.get("elimination") or (
        "TT"
        if any(
            r.task.kind in (TaskKind.TTQRT, TaskKind.TTMQR, TaskKind.TTMQR_BATCH)
            for r in trace.tasks
        )
        else "TS"
    )
    durations: dict = {}
    for rec in trace.tasks:
        durations[rec.task] = durations.get(rec.task, 0.0) + rec.duration
    dag = build_dag(p, q, elimination)
    return critical_path_length(dag, weight=lambda t: durations.get(t, 0.0))


@dataclass
class TraceSummary:
    """Aggregates :func:`summarize_trace` reports (all times in seconds)."""

    makespan: float
    total_compute: float
    comm_time: float
    num_tasks: int
    num_transfers: int
    grid: tuple[int, int]
    kernel_seconds: dict[str, float]
    kernel_counts: dict[str, int]
    utilization: dict[str, float]
    critical_path: float
    meta: dict = field(default_factory=dict)
    annotation_counts: dict = field(default_factory=dict)

    def to_text(self) -> str:
        lines = [
            f"tasks={self.num_tasks} transfers={self.num_transfers} "
            f"grid={self.grid[0]}x{self.grid[1]}",
            f"makespan          {self.makespan * 1e3:10.3f} ms",
            f"critical path     {self.critical_path * 1e3:10.3f} ms "
            f"({_ratio(self.critical_path, self.makespan):.1%} of makespan)",
            f"total compute     {self.total_compute * 1e3:10.3f} ms",
            f"communication     {self.comm_time * 1e3:10.3f} ms",
            "per-kernel time share:",
        ]
        for name in sorted(self.kernel_seconds, key=self.kernel_seconds.get, reverse=True):
            secs = self.kernel_seconds[name]
            lines.append(
                f"  {name:6s} {secs * 1e3:10.3f} ms  "
                f"{_ratio(secs, self.total_compute):6.1%}  "
                f"({self.kernel_counts.get(name, 0)} calls)"
            )
        lines.append("device utilization:")
        for dev in sorted(self.utilization):
            lines.append(f"  {dev:12s} {self.utilization[dev]:6.1%}")
        if self.annotation_counts:
            lines.append("resilience events:")
            for kind in sorted(self.annotation_counts):
                lines.append(f"  {kind:12s} {self.annotation_counts[kind]}")
        return "\n".join(lines)


def _ratio(num: float, denom: float) -> float:
    return num / denom if denom > 0.0 else 0.0


def summarize_trace(trace: ExecutionTrace, **meta) -> TraceSummary:
    """Build a :class:`TraceSummary` from any execution trace."""
    return TraceSummary(
        makespan=trace.makespan,
        total_compute=sum(trace.compute_busy().values()),
        comm_time=trace.comm_time(),
        num_tasks=len(trace.tasks),
        num_transfers=len(trace.transfers),
        grid=infer_grid(trace),
        kernel_seconds=kernel_times(trace),
        kernel_counts=kernel_counts(trace),
        utilization=device_utilization(trace),
        critical_path=trace_critical_path(trace),
        meta=meta,
        annotation_counts=_annotation_counts(trace),
    )


def _annotation_counts(trace: ExecutionTrace) -> dict:
    out: dict = {}
    for a in getattr(trace, "annotations", ()):
        out[a.kind] = out.get(a.kind, 0) + 1
    return out


@dataclass
class KernelDiff:
    """Per-kernel comparison row of :func:`diff_traces`."""

    kernel: str
    real_seconds: float
    sim_seconds: float
    real_calls: int
    sim_calls: int

    @property
    def relative_error(self) -> float:
        """``(sim - real) / real``; ``inf`` when the kernel never ran for real."""
        if self.real_seconds <= 0.0:
            return float("inf") if self.sim_seconds > 0.0 else 0.0
        return (self.sim_seconds - self.real_seconds) / self.real_seconds


def _fmt_err(err: float) -> str:
    """Render a relative error, or ``n/a`` when it is undefined.

    An infinite error means the kernel ran on only one side of the
    comparison — there is no meaningful percentage to print.
    """
    if err in (float("inf"), float("-inf")) or err != err:
        return "     n/a"
    return f"{err:+8.1%}"


@dataclass
class TraceDiff:
    """Prediction-error report: simulated trace vs a real recorded one."""

    real_makespan: float
    sim_makespan: float
    kernels: list[KernelDiff]
    task_sets_match: bool

    @property
    def makespan_error(self) -> float:
        if self.real_makespan <= 0.0:
            return float("inf") if self.sim_makespan > 0.0 else 0.0
        return (self.sim_makespan - self.real_makespan) / self.real_makespan

    @property
    def only_in_real(self) -> list[str]:
        """Kernel names the simulated trace never executed."""
        return [kd.kernel for kd in self.kernels if kd.sim_calls == 0 and kd.real_calls > 0]

    @property
    def only_in_sim(self) -> list[str]:
        """Kernel names the real trace never executed."""
        return [kd.kernel for kd in self.kernels if kd.real_calls == 0 and kd.sim_calls > 0]

    def to_text(self) -> str:
        lines = [
            "sim-vs-real prediction error (positive = simulator overestimates):",
            f"  makespan  real {self.real_makespan * 1e3:10.3f} ms   "
            f"sim {self.sim_makespan * 1e3:10.3f} ms   "
            f"error {_fmt_err(self.makespan_error)}",
            f"  task sets {'match' if self.task_sets_match else 'DIFFER'}",
            "  per-kernel total seconds:",
        ]
        for kd in self.kernels:
            lines.append(
                f"    {kd.kernel:6s} real {kd.real_seconds * 1e3:10.3f} ms "
                f"({kd.real_calls:5d} calls)   sim {kd.sim_seconds * 1e3:10.3f} ms "
                f"({kd.sim_calls:5d} calls)   error {_fmt_err(kd.relative_error)}"
            )
        if self.only_in_real:
            lines.append(f"  kernels only in real trace: {', '.join(self.only_in_real)}")
        if self.only_in_sim:
            lines.append(f"  kernels only in sim trace:  {', '.join(self.only_in_sim)}")
        return "\n".join(lines)


def diff_traces(real: ExecutionTrace, sim: ExecutionTrace) -> TraceDiff:
    """Compare a real recorded trace against a simulated prediction.

    Kernels are matched by kind; ``task_sets_match`` additionally checks
    that both traces executed the same ``(kind, k, row, row2, col)``
    multiset, i.e. that they describe the same factorization.  To compare
    a batched run against a per-tile one, pass both traces through
    :func:`expand_batched` first.

    Traces whose recorded elimination trees differ describe *different*
    factorizations — every per-kernel and makespan delta would be tree
    shape, not model error — so when both metas name a tree and the
    canonical names disagree, :class:`ObservabilityError` is raised
    instead of a misleading diff.
    """
    tree_a = real.meta.get("elimination")
    tree_b = sim.meta.get("elimination")
    if tree_a is not None and tree_b is not None:
        from ..dag.trees import canonical_tree
        from ..errors import ObservabilityError

        if canonical_tree(tree_a) != canonical_tree(tree_b):
            raise ObservabilityError(
                f"cannot diff traces factored with different elimination "
                f"trees ({tree_a!r} vs {tree_b!r}) — the task graphs are "
                f"not comparable; re-record one side with a matching --tree"
            )
    real_t, sim_t = kernel_times(real), kernel_times(sim)
    real_c, sim_c = kernel_counts(real), kernel_counts(sim)
    names = sorted(set(real_t) | set(sim_t))
    kernels = [
        KernelDiff(
            kernel=name,
            real_seconds=real_t.get(name, 0.0),
            sim_seconds=sim_t.get(name, 0.0),
            real_calls=real_c.get(name, 0),
            sim_calls=sim_c.get(name, 0),
        )
        for name in names
    ]
    real_set = sorted(r.task.sort_key() + (r.task.kind.value,) for r in real.tasks)
    sim_set = sorted(r.task.sort_key() + (r.task.kind.value,) for r in sim.tasks)
    return TraceDiff(
        real_makespan=real.makespan,
        sim_makespan=sim.makespan,
        kernels=kernels,
        task_sets_match=real_set == sim_set,
    )
