"""Counters, gauges, and quantile histograms for runtime metrics.

A deliberately small, dependency-free metrics layer: the runtimes (and
anything else) register named instruments in a :class:`MetricsRegistry`
and the ``trace`` CLI / tests read snapshots out.  The kernel-aware
entry point is :meth:`MetricsRegistry.observe_kernel`, which converts a
measured kernel duration into achieved GFLOP/s using the
:mod:`repro.kernels.flops` arithmetic models — the same models the
device calibration and the analysis layer use, so "achieved rate" here
is directly comparable with the paper's model numbers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..dag.tasks import TaskKind
from ..kernels.flops import (
    flops_geqrt,
    flops_tsmqr,
    flops_tsqrt,
    flops_ttmqr,
    flops_ttqrt,
    flops_unmqr,
)

#: Arithmetic model per kernel, shared with the analysis layer.  Batched
#: update kinds use the per-tile model; multiply by the batch width.
KERNEL_FLOPS = {
    TaskKind.GEQRT: flops_geqrt,
    TaskKind.UNMQR: flops_unmqr,
    TaskKind.UNMQR_BATCH: flops_unmqr,
    TaskKind.TSQRT: flops_tsqrt,
    TaskKind.TSMQR: flops_tsmqr,
    TaskKind.TSMQR_BATCH: flops_tsmqr,
    TaskKind.TTQRT: flops_ttqrt,
    TaskKind.TTMQR: flops_ttmqr,
    TaskKind.TTMQR_BATCH: flops_ttmqr,
}


def kernel_flops(kind: TaskKind | str, b: int, ncols: int = 1) -> float:
    """Model flop count of one ``kind`` kernel call on ``b x b`` tiles.

    ``ncols`` is the batch width for ``*_BATCH`` kinds: a batched update
    does exactly the arithmetic of its ``ncols`` fused per-tile calls.
    """
    if isinstance(kind, str):
        kind = TaskKind[kind.upper()]
    return KERNEL_FLOPS[kind](b) * ncols


@dataclass
class Counter:
    """Monotone event counter (thread-safe)."""

    name: str
    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        with self._lock:
            self.value += amount


@dataclass
class Gauge:
    """Last-value-wins instantaneous measurement (thread-safe)."""

    name: str
    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


@dataclass
class Histogram:
    """Exact-quantile histogram over an append-only sample buffer.

    ``observe`` is O(1) amortized: samples append raw and are sorted
    lazily on the first quantile/summary read after new data, so a run
    with millions of observations pays one sort at read time instead of
    an O(n) insertion per observation.  Thread-safe; quantiles
    interpolate linearly between order statistics and are monotone in
    ``q``.
    """

    name: str
    _samples: list[float] = field(default_factory=list)
    total: float = 0.0
    _dirty: bool = field(default=False, init=False, repr=False, compare=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            self._samples.append(v)
            self.total += v
            self._dirty = True

    def _ordered(self) -> list[float]:
        """Sorted sample view; caller must hold ``_lock``."""
        if self._dirty:
            self._samples.sort()
            self._dirty = False
        return self._samples

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._samples)

    @property
    def min(self) -> float:
        with self._lock:
            vals = self._ordered()
            return vals[0] if vals else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            vals = self._ordered()
            return vals[-1] if vals else 0.0

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / len(self._samples) if self._samples else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile, ``0 <= q <= 1``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            vals = self._ordered()
            if not vals:
                return 0.0
            pos = q * (len(vals) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(vals) - 1)
            frac = pos - lo
            # a + (b - a) * frac is exact at frac == 0 (equal neighbors
            # return the sample itself); the clamp guards the residual
            # float overshoot near frac == 1 so quantile stays monotone
            # in q and within [min, max].
            return min(vals[lo] + (vals[hi] - vals[lo]) * frac, vals[hi])

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class MetricsRegistry:
    """Named instruments with get-or-create semantics (thread-safe).

    Naming convention used by the built-in instrumentation::

        kernel.<KIND>.calls      Counter   kernel invocations
        kernel.<KIND>.flops      Counter   model flops executed
        kernel.<KIND>.seconds    Histogram per-call wall time
        kernel.<KIND>.gflops     Histogram per-call achieved GFLOP/s
        kernel.<KIND>.tiles      Histogram per-batch tile count
                                           (``*_BATCH`` kinds only)
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name)
            return self._histograms[name]

    # -- kernel accounting -------------------------------------------------

    def observe_kernel(
        self, kind: TaskKind, b: int, seconds: float, ncols: int = 1
    ) -> None:
        """Record one kernel call: duration + flops-model GFLOP/s.

        ``ncols`` is the batch width for ``*_BATCH`` kinds: the flop
        credit is the sum over the fused per-tile updates, and the tile
        count feeds the ``.tiles`` histogram.
        """
        flops = kernel_flops(kind, b, ncols)
        batched = kind.name.endswith("_BATCH")
        prefix = f"kernel.{kind.value}"
        with self._lock:
            for store, cls, name in (
                (self._counters, Counter, f"{prefix}.calls"),
                (self._counters, Counter, f"{prefix}.flops"),
                (self._histograms, Histogram, f"{prefix}.seconds"),
                (self._histograms, Histogram, f"{prefix}.gflops"),
            ):
                if name not in store:
                    store[name] = cls(name)
            if batched and f"{prefix}.tiles" not in self._histograms:
                self._histograms[f"{prefix}.tiles"] = Histogram(f"{prefix}.tiles")
            self._counters[f"{prefix}.calls"].inc()
            self._counters[f"{prefix}.flops"].inc(flops)
            self._histograms[f"{prefix}.seconds"].observe(seconds)
            if batched:
                self._histograms[f"{prefix}.tiles"].observe(ncols)
            if seconds > 0.0:
                self._histograms[f"{prefix}.gflops"].observe(flops / seconds / 1e9)

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready view of every instrument."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "histograms": {n: h.summary() for n, h in self._histograms.items()},
            }

    def kernel_rates(self) -> dict[str, dict]:
        """Per-kernel achieved-rate summaries (empty if nothing recorded)."""
        with self._lock:
            return {
                name.split(".")[1]: hist.summary()
                for name, hist in self._histograms.items()
                if name.startswith("kernel.") and name.endswith(".gflops")
            }

    def to_prometheus_text(self, prefix: str = "tiledqr") -> str:
        """Prometheus text exposition (v0.0.4) of every instrument.

        Dotted registry names flatten to legal metric names
        (``kernel.GEQRT.seconds`` -> ``tiledqr_kernel_GEQRT_seconds``);
        counters gain the conventional ``_total`` suffix and histograms
        export as summaries (p50/p95/p99 quantiles plus ``_sum`` and
        ``_count``).  Output is sorted by metric name so snapshots diff
        cleanly; scrape endpoints and ``tiledqr metrics`` both serve
        this string verbatim.
        """
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.value for n, g in self._gauges.items()}
            histograms = {n: h.summary() for n, h in self._histograms.items()}
        lines: list[str] = []
        for name in sorted(counters):
            metric = f"{prometheus_name(prefix, name)}_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(counters[name])}")
        for name in sorted(gauges):
            metric = prometheus_name(prefix, name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(gauges[name])}")
        for name in sorted(histograms):
            metric = prometheus_name(prefix, name)
            s = histograms[name]
            lines.append(f"# TYPE {metric} summary")
            for q, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
                lines.append(f'{metric}{{quantile="{q}"}} {_format_value(s[key])}')
            lines.append(f"{metric}_sum {_format_value(s['total'])}")
            lines.append(f"{metric}_count {s['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


def prometheus_name(prefix: str, name: str) -> str:
    """Sanitize a dotted registry name into a Prometheus metric name."""
    flat = f"{prefix}_{name}" if prefix else name
    out = [
        ch if (ch.isalnum() and ch.isascii()) or ch in "_:" else "_" for ch in flat
    ]
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out)


def _format_value(v: float) -> str:
    """Render a sample value: integral floats without the trailing .0."""
    f = float(v)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)
