"""Counters, gauges, and quantile histograms for runtime metrics.

A deliberately small, dependency-free metrics layer: the runtimes (and
anything else) register named instruments in a :class:`MetricsRegistry`
and the ``trace`` CLI / tests read snapshots out.  The kernel-aware
entry point is :meth:`MetricsRegistry.observe_kernel`, which converts a
measured kernel duration into achieved GFLOP/s using the
:mod:`repro.kernels.flops` arithmetic models — the same models the
device calibration and the analysis layer use, so "achieved rate" here
is directly comparable with the paper's model numbers.
"""

from __future__ import annotations

import threading
from bisect import insort
from dataclasses import dataclass, field

from ..dag.tasks import TaskKind
from ..kernels.flops import (
    flops_geqrt,
    flops_tsmqr,
    flops_tsqrt,
    flops_ttmqr,
    flops_ttqrt,
    flops_unmqr,
)

#: Arithmetic model per kernel, shared with the analysis layer.
KERNEL_FLOPS = {
    TaskKind.GEQRT: flops_geqrt,
    TaskKind.UNMQR: flops_unmqr,
    TaskKind.TSQRT: flops_tsqrt,
    TaskKind.TSMQR: flops_tsmqr,
    TaskKind.TTQRT: flops_ttqrt,
    TaskKind.TTMQR: flops_ttmqr,
}


def kernel_flops(kind: TaskKind | str, b: int) -> float:
    """Model flop count of one ``kind`` kernel call on ``b x b`` tiles."""
    if isinstance(kind, str):
        kind = TaskKind[kind.upper()]
    return KERNEL_FLOPS[kind](b)


@dataclass
class Counter:
    """Monotone event counter."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount


@dataclass
class Gauge:
    """Last-value-wins instantaneous measurement."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Exact-quantile histogram (keeps a sorted sample list).

    Sized for per-kernel timing at tiled-QR scale (thousands to a few
    million observations per run); quantiles interpolate linearly
    between order statistics, so ``quantile`` is monotone in ``q`` by
    construction.
    """

    name: str
    _sorted: list[float] = field(default_factory=list)
    total: float = 0.0

    def observe(self, value: float) -> None:
        insort(self._sorted, float(value))
        self.total += float(value)

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def min(self) -> float:
        return self._sorted[0] if self._sorted else 0.0

    @property
    def max(self) -> float:
        return self._sorted[-1] if self._sorted else 0.0

    @property
    def mean(self) -> float:
        return self.total / len(self._sorted) if self._sorted else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile, ``0 <= q <= 1``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        vals = self._sorted
        if not vals:
            return 0.0
        pos = q * (len(vals) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(vals) - 1)
        frac = pos - lo
        return vals[lo] * (1.0 - frac) + vals[hi] * frac

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class MetricsRegistry:
    """Named instruments with get-or-create semantics (thread-safe).

    Naming convention used by the built-in instrumentation::

        kernel.<KIND>.calls      Counter   kernel invocations
        kernel.<KIND>.flops      Counter   model flops executed
        kernel.<KIND>.seconds    Histogram per-call wall time
        kernel.<KIND>.gflops     Histogram per-call achieved GFLOP/s
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name)
            return self._histograms[name]

    # -- kernel accounting -------------------------------------------------

    def observe_kernel(self, kind: TaskKind, b: int, seconds: float) -> None:
        """Record one kernel call: duration + flops-model GFLOP/s."""
        flops = kernel_flops(kind, b)
        prefix = f"kernel.{kind.value}"
        with self._lock:
            for store, cls, name in (
                (self._counters, Counter, f"{prefix}.calls"),
                (self._counters, Counter, f"{prefix}.flops"),
                (self._histograms, Histogram, f"{prefix}.seconds"),
                (self._histograms, Histogram, f"{prefix}.gflops"),
            ):
                if name not in store:
                    store[name] = cls(name)
            self._counters[f"{prefix}.calls"].inc()
            self._counters[f"{prefix}.flops"].inc(flops)
            self._histograms[f"{prefix}.seconds"].observe(seconds)
            if seconds > 0.0:
                self._histograms[f"{prefix}.gflops"].observe(flops / seconds / 1e9)

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready view of every instrument."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "histograms": {n: h.summary() for n, h in self._histograms.items()},
            }

    def kernel_rates(self) -> dict[str, dict]:
        """Per-kernel achieved-rate summaries (empty if nothing recorded)."""
        with self._lock:
            return {
                name.split(".")[1]: hist.summary()
                for name, hist in self._histograms.items()
                if name.startswith("kernel.") and name.endswith(".gflops")
            }
