"""Postmortem forensics: flight recorder, failure bundles, root cause.

When a factorization dies — retry exhaustion, all-workers-dead
failover, a :class:`~repro.errors.NumericalHealthError`, checkpoint
corruption, Ctrl-C — everything the live telemetry pipeline knew about
the run is normally discarded with the process.  This package keeps it:

* :class:`FlightRecorder` — a bounded ring subscriber on the
  :class:`~repro.observability.live.bus.TelemetryBus` retaining the
  last-N events plus every ``task.start`` without a matching finish
  (the in-flight task table at the moment of death);
* :func:`write_failure_bundle` / :class:`BundleCapture` — atomically
  write a schema-versioned ``.zip`` bundle (events, in-flight tasks,
  metrics snapshot, plan + decision audit, provenance, fault plan,
  per-device progress, latest-checkpoint pointer) when a terminal
  error escapes a runtime;
* :func:`analyze_bundle` — fold the bundle's event timeline into a
  causal narrative and classify the failure (``worker_death`` /
  ``hang`` / ``numerical`` / ``timeout`` / ``config`` /
  ``injected-fault`` / ``interrupted``), citing the responsible
  :class:`~repro.resilience.FaultSpec` when chaos seeded it.

Surfaced on the CLI as ``tiledqr postmortem BUNDLE [--json]`` and a
``--bundle-out`` knob on ``factorize``/``top``/``chaos``.  See
``docs/OBSERVABILITY.md``, "Postmortem forensics".
"""

from .analysis import PostmortemReport, analyze_bundle
from .bundle import (
    BUNDLE_SCHEMA_VERSION,
    BundleCapture,
    FailureBundle,
    classify_error,
    error_chain,
    write_failure_bundle,
)
from .recorder import DEFAULT_RECORDER_CAPACITY, FlightRecorder

__all__ = [
    "FlightRecorder",
    "DEFAULT_RECORDER_CAPACITY",
    "BundleCapture",
    "FailureBundle",
    "BUNDLE_SCHEMA_VERSION",
    "write_failure_bundle",
    "classify_error",
    "error_chain",
    "analyze_bundle",
    "PostmortemReport",
]
