"""Flight recorder: the telemetry a run keeps for its own autopsy.

The :class:`~repro.observability.live.bus.TelemetryBus` ring is sized
for live dashboards and is discarded with the bus; a failing run keeps
nothing.  :class:`FlightRecorder` is a bus subscriber that retains, for
the whole run, exactly what a postmortem needs:

* the **tail** — the last ``capacity`` events, oldest first (the final
  seconds before death, where the causal chain lives);
* the **in-flight table** — every ``task.start`` without a matching
  ``task.finish``, keyed by the same per-tile unit normalisation the
  :class:`~repro.observability.live.progress.ProgressTracker` uses, so
  batched and per-tile runtimes agree on what "the same task" means.
  Stranded tasks on a dead worker stay in the table: that is the
  evidence;
* a **per-device fold** — starts/finishes/retries/errors/faults/
  failovers/missed heartbeats/last-seen per device, cheap enough to
  keep even when no :class:`ProgressTracker` is attached.

``on_event`` does a dict update and a deque append under one lock — it
runs on the bus dispatcher thread, off the kernel hot path, and adds
nothing the ≤5% live-overhead budget can see.
"""

from __future__ import annotations

import threading
from collections import deque

from ..live.bus import LiveEvent, TelemetryBus
from ..live.progress import _event_units

#: Default tail length.  Sized to hold the full event stream of a small
#: run and the last few panels of a big one — enough context to walk a
#: failure back through retries, heartbeats, and failovers.
DEFAULT_RECORDER_CAPACITY = 2048


class FlightRecorder:
    """Bounded ring subscriber retaining a run's forensic state.

    Parameters
    ----------
    capacity:
        Tail length: only the newest ``capacity`` events are retained
        (the in-flight table is exact regardless — it is bounded by the
        run's actual concurrency, not by event volume).
    """

    def __init__(self, capacity: int = DEFAULT_RECORDER_CAPACITY):
        if capacity < 1:
            raise ValueError(f"recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._tail: deque[LiveEvent] = deque(maxlen=capacity)
        self._inflight: dict[tuple, LiveEvent] = {}
        self._devices: dict[str, dict] = {}
        self._bus: TelemetryBus | None = None
        self.events_seen = 0

    # -- wiring -----------------------------------------------------------

    def attach(self, bus: TelemetryBus) -> "FlightRecorder":
        bus.subscribe(self.on_event)
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self.on_event)
            self._bus = None

    # -- folding ----------------------------------------------------------

    def _dev(self, name: str) -> dict:
        state = self._devices.get(name)
        if state is None:
            state = self._devices[name] = {
                "device": name,
                "started": 0,
                "finished": 0,
                "retries": 0,
                "task_errors": 0,
                "faults": 0,
                "failovers": 0,
                "missed_heartbeats": 0,
                "checkpoints": 0,
                "last_seen": 0.0,
                "dead": False,
            }
        return state

    def on_event(self, event: LiveEvent) -> None:
        with self._lock:
            self.events_seen += 1
            self._tail.append(event)
            etype = event.type
            if etype in ("run.start", "run.finish"):
                return
            dev = self._dev(event.device)
            dev["last_seen"] = max(dev["last_seen"], event.t)
            if etype == "task.start":
                key = (event.device, *_event_units(event.data))
                self._inflight[key] = event
                dev["started"] += 1
            elif etype == "task.finish":
                self._inflight.pop((event.device, *_event_units(event.data)), None)
                dev["finished"] += 1
            elif etype == "retry":
                dev["retries"] += 1
            elif etype == "task.error":
                dev["task_errors"] += 1
            elif etype == "fault":
                dev["faults"] += 1
            elif etype == "failover":
                dev["failovers"] += 1
                if event.data.get("died"):
                    dev["dead"] = True
            elif etype == "heartbeat.missed":
                dev["missed_heartbeats"] += 1
            elif etype == "checkpoint":
                dev["checkpoints"] += 1

    # -- forensic views ---------------------------------------------------

    def tail(self) -> list[LiveEvent]:
        """The retained events, oldest first."""
        with self._lock:
            return list(self._tail)

    def inflight(self) -> list[dict]:
        """Started-but-unfinished tasks: the stranded-work table.

        Each entry is the ``task.start`` payload plus the device and the
        start timestamp, ordered by start time.
        """
        with self._lock:
            entries = [
                {"device": ev.device, "since": ev.t, "seq": ev.seq, **ev.data}
                for ev in self._inflight.values()
            ]
        entries.sort(key=lambda e: (e["since"], e["seq"]))
        return entries

    def device_progress(self) -> dict[str, dict]:
        """Per-device fold: counts and liveness, keyed by device name."""
        with self._lock:
            return {name: dict(state) for name, state in self._devices.items()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._tail)
