"""Automated root-cause analysis of failure bundles.

:func:`analyze_bundle` folds a bundle's event timeline into a causal
narrative — retries → heartbeat.missed → worker death → failover →
stranded columns — and classifies the failure, citing the responsible
:class:`~repro.resilience.FaultSpec` when the chaos engine seeded it.
This is deterministic evidence-folding, not heuristics over free text:
every narrative line points at a recorded event, and the classification
is derived from the error chain in the manifest cross-checked against
the fault plan and the ``fault`` events in the tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ...resilience.report import COUNTERS, counters_from_snapshot
from ..live.bus import LiveEvent
from .bundle import FailureBundle, classify_error  # noqa: F401  (re-export)

#: Which injected fault kinds can manufacture which failure class.  The
#: analyzer uses this to attribute a failure to the chaos plan: a
#: worker_death with a KILL_WORKER spec in the plan is an injected
#: fault, not an infrastructure surprise.
_CLASS_FAULT_KINDS = {
    "worker_death": ("kill_worker",),
    "timeout": ("hang", "delay"),
    "hang": ("hang", "delay"),
    "numerical": ("corrupt_nan", "corrupt_inf"),
    "injected-fault": ("exception",),
}

#: Injected fault kind -> the failure class it manufactures.
_FAULT_KIND_CLASS = {
    "kill_worker": "worker_death",
    "hang": "hang",
    "delay": "hang",
    "corrupt_nan": "numerical",
    "corrupt_inf": "numerical",
    "exception": "injected-fault",
}

#: Cap on narrative length: the last ``_NARRATIVE_TAIL`` notable events
#: are kept (earlier ones are summarized by a count).
_NARRATIVE_TAIL = 48


@dataclass
class PostmortemReport:
    """What :func:`analyze_bundle` concluded about a dead run."""

    bundle: str
    failure_class: str
    injected: bool
    fault_spec: dict | None
    error: dict
    summary: str
    narrative: list[str] = field(default_factory=list)
    stranded: list[dict] = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    checkpoint: dict | None = None

    def to_dict(self) -> dict:
        return {
            "bundle": self.bundle,
            "failure_class": self.failure_class,
            "injected": self.injected,
            "fault_spec": self.fault_spec,
            "error": dict(self.error),
            "summary": self.summary,
            "narrative": list(self.narrative),
            "stranded": list(self.stranded),
            "counters": dict(self.counters),
            "checkpoint": self.checkpoint,
        }

    def to_text(self) -> str:
        lines = [f"postmortem: {self.bundle}"]
        verdict = self.failure_class
        if self.injected and not verdict.startswith("injected"):
            verdict = f"injected {verdict}"
        lines.append(f"  classification : {verdict}")
        if self.fault_spec is not None:
            lines.append(f"  root cause     : FaultSpec {self.fault_spec}")
        if self.error.get("type"):
            lines.append(
                f"  terminal error : {self.error['type']}: {self.error.get('message')}"
            )
        lines.append(f"  summary        : {self.summary}")
        if self.counters:
            shown = ", ".join(
                f"{name.split('.', 1)[1]}={int(v)}"
                for name, v in self.counters.items()
                if v
            )
            lines.append(f"  counters       : {shown or 'all zero'}")
        if self.checkpoint:
            where = self.checkpoint.get("path")
            if self.checkpoint.get("exists"):
                done = self.checkpoint.get("completed")
                extra = f" ({done} task(s) completed)" if done is not None else ""
                lines.append(f"  resume from    : {where}{extra}")
            else:
                lines.append(f"  checkpoint     : {where} (never written)")
        if self.stranded:
            lines.append(f"  stranded tasks : {len(self.stranded)} in flight at death")
            for entry in self.stranded[:8]:
                lines.append(
                    f"    {entry.get('kind', '?')}[k={entry.get('k')}, "
                    f"row={entry.get('row')}, col={entry.get('col')}] "
                    f"on {entry.get('device')}"
                )
            if len(self.stranded) > 8:
                lines.append(f"    ... and {len(self.stranded) - 8} more")
        if self.narrative:
            lines.append("  timeline:")
            lines.extend(f"    {line}" for line in self.narrative)
        return "\n".join(lines)


def _narrate(events: list[LiveEvent]) -> list[str]:
    """Causal timeline lines from the recorded event tail."""
    if not events:
        return []
    t0 = events[0].t
    lines: list[str] = []

    def at(ev: LiveEvent) -> str:
        return f"+{ev.t - t0:7.3f}s"

    for ev in events:
        d = ev.data
        if ev.type == "run.start":
            lines.append(
                f"{at(ev)} run started: {d.get('runtime', '?')} runtime, "
                f"grid {d.get('grid')}, {d.get('total_tasks')} task(s)"
            )
        elif ev.type == "fault":
            lines.append(
                f"{at(ev)} fault injected: {d.get('fault')} at {d.get('task')} "
                f"on {ev.device}"
            )
        elif ev.type == "task.error":
            lines.append(
                f"{at(ev)} task {d.get('task')} failed on {ev.device} "
                f"(attempt {d.get('attempt')}/{d.get('max_attempts')}): "
                f"{d.get('error')}: {d.get('message')}"
            )
        elif ev.type == "retry":
            lines.append(
                f"{at(ev)} retry: attempt {d.get('attempt')}/"
                f"{d.get('max_attempts')} of {d.get('task')} on {ev.device}"
            )
        elif ev.type == "heartbeat.missed":
            lines.append(
                f"{at(ev)} heartbeat missed: {ev.device} silent "
                f"{d.get('silent_seconds', 0.0):.2f}s"
            )
        elif ev.type == "failover":
            if d.get("died"):
                lines.append(
                    f"{at(ev)} worker death: {ev.device} "
                    f"(panel {d.get('panel')}): {d.get('detail') or d.get('reason')}"
                )
            else:
                lines.append(
                    f"{at(ev)} failover: columns {d.get('columns')} "
                    f"re-homed to {d.get('to')}"
                )
        elif ev.type == "checkpoint":
            lines.append(
                f"{at(ev)} checkpoint: {d.get('completed')}/{d.get('total')} "
                f"task(s) -> {d.get('path')}"
            )
        elif ev.type == "straggler":
            lines.append(
                f"{at(ev)} straggler: {d.get('task')} on {ev.device} "
                f"x{d.get('ratio', 0.0):.2f} predicted"
            )
        elif ev.type == "run.finish":
            lines.append(f"{at(ev)} run finished ({d.get('tasks')} task(s))")
    if len(lines) > _NARRATIVE_TAIL:
        omitted = len(lines) - _NARRATIVE_TAIL
        lines = [f"({omitted} earlier event(s) omitted)"] + lines[-_NARRATIVE_TAIL:]
    return lines


def _attribute_fault(bundle: FailureBundle, failure_class: str):
    """``(failure_class, injected, spec_dict)`` after chaos attribution.

    A failure is attributed to the chaos plan when a spec capable of
    manufacturing the observed class exists in the plan (the fired
    ``fault`` events in the tail confirm it when the recorder saw them;
    a KILL_WORKER victim dies before it can publish, so plan membership
    alone suffices there).  An injected HANG that surfaced as a task
    timeout is upgraded from ``timeout`` to ``hang``.
    """
    fault_events = [e for e in bundle.events if e.type == "fault"]
    plan = bundle.fault_plan
    specs = list(plan.specs) if plan is not None else []

    wanted = _CLASS_FAULT_KINDS.get(failure_class, ())
    for spec in specs:
        if spec.kind.value in wanted:
            if failure_class == "timeout" and spec.kind.value == "hang":
                failure_class = "hang"
            return failure_class, True, spec.to_dict()

    # No spec explains the class directly, but faults demonstrably fired:
    # fall back to the last observed injection (e.g. an unclassifiable
    # SimulationError downstream of an injected kill).
    if fault_events and failure_class == "unknown":
        kind = str(fault_events[-1].data.get("fault", ""))
        mapped = _FAULT_KIND_CLASS.get(kind)
        if mapped is not None:
            for spec in specs:
                if spec.kind.value == kind:
                    return mapped, True, spec.to_dict()
            return mapped, True, None
    return failure_class, False, None


def analyze_bundle(bundle: FailureBundle | str | Path) -> PostmortemReport:
    """Root-cause a failure bundle into a :class:`PostmortemReport`."""
    if not isinstance(bundle, FailureBundle):
        bundle = FailureBundle.load(bundle)
    manifest = bundle.manifest
    error = dict(manifest.get("error") or {})
    failure_class = str(manifest.get("failure_class") or "unknown")
    failure_class, injected, spec = _attribute_fault(bundle, failure_class)

    counters = counters_from_snapshot(bundle.metrics)
    stranded = list(bundle.inflight)
    dead = sorted(
        name
        for name, state in (bundle.progress.get("devices") or {}).items()
        if state.get("dead")
    )

    bits = []
    if injected:
        bits.append(f"seeded {spec['kind'] if spec else 'chaos'} fault")
    if dead:
        bits.append(f"{len(dead)} worker(s) died ({', '.join(dead)})")
    if counters.get("resilience.retries"):
        bits.append(f"{int(counters['resilience.retries'])} retry(ies) spent")
    if counters.get("resilience.failovers"):
        bits.append(f"{int(counters['resilience.failovers'])} failover(s)")
    if stranded:
        bits.append(f"{len(stranded)} task(s) stranded in flight")
    cause = " after ".join(filter(None, [
        f"{error.get('type')}: {error.get('message')}" if error.get("type") else None,
    ]))
    summary = (
        f"run died as {failure_class}"
        + (f" ({cause})" if cause else "")
        + (f" — {'; '.join(bits)}" if bits else "")
    )

    return PostmortemReport(
        bundle=str(bundle.path),
        failure_class=failure_class,
        injected=injected,
        fault_spec=spec,
        error=error,
        summary=summary,
        narrative=_narrate(bundle.events),
        stranded=stranded,
        counters={name: counters.get(name, 0.0) for name in COUNTERS},
        checkpoint=manifest.get("checkpoint"),
    )
